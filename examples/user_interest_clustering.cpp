// Downstream-analysis demo (Sec. 6.9): cluster queries by data-space
// overlap on the raw, cleaned, and removal variants of a synthetic log
// and show how cleaning collapses antipattern noise into fewer, larger,
// interpretable clusters.

#include <cstdio>
#include <cstdlib>

#include "analysis/clustering.h"
#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"
#include "sql/skeleton.h"

namespace {

std::vector<sqlog::analysis::DataSpace> SpacesOf(const sqlog::log::QueryLog& log) {
  std::vector<sqlog::analysis::DataSpace> spaces;
  spaces.reserve(log.size());
  for (const auto& record : log.records()) {
    auto facts = sqlog::sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) continue;
    spaces.push_back(sqlog::analysis::ExtractDataSpace(facts.value()));
  }
  return spaces;
}

void Report(const char* label, const std::vector<sqlog::analysis::DataSpace>& spaces,
            double threshold) {
  sqlog::analysis::ClusteringOptions options;
  options.threshold = threshold;
  auto result = sqlog::analysis::ClusterDataSpaces(spaces, options);
  std::printf("  %-8s queries=%7zu clusters=%6zu avg-size=%9.1f biggest=%7zu  (%.2fs)\n",
              label, spaces.size(), result.cluster_count(), result.average_size(),
              result.clusters.empty() ? size_t{0} : result.clusters.front().size(),
              result.runtime_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  size_t target = 30000;
  if (argc > 1) target = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  sqlog::log::GeneratorConfig config;
  config.target_statements = target;
  sqlog::log::QueryLog raw = sqlog::log::GenerateLog(config);

  sqlog::catalog::Schema schema = sqlog::catalog::MakeSkyServerSchema();
  sqlog::core::Pipeline pipeline;
  pipeline.SetSchema(&schema);
  auto run = pipeline.Run(raw);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  sqlog::core::PipelineResult& result = *run;

  auto raw_spaces = SpacesOf(result.pre_clean);
  auto clean_spaces = SpacesOf(result.clean_log);
  auto removal_spaces = SpacesOf(result.removal_log);

  std::printf("Query clustering by data-space overlap (threshold sweep):\n");
  for (double threshold = 0.3; threshold <= 0.91; threshold += 0.3) {
    std::printf("threshold=%.1f\n", threshold);
    Report("raw", raw_spaces, threshold);
    Report("clean", clean_spaces, threshold);
    Report("removal", removal_spaces, threshold);
  }
  return 0;
}
