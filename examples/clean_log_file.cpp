// End-to-end file cleaning: read a CSV query log (or generate one with
// --generate), clean it, and write <out>.clean.csv / <out>.removal.csv
// plus a statistics report — the tool an operator would run over their
// own log export.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sqlog.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.csv> [output-prefix]\n"
               "       %s --generate <n> <output-prefix>\n"
               "\n"
               "CSV format: seq,timestamp_ms,user,session,row_count,truth,statement\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage(argv[0]);
    return 2;
  }

  sqlog::log::QueryLog raw;
  std::string prefix = "cleaned";

  if (std::strcmp(argv[1], "--generate") == 0) {
    if (argc < 4) {
      Usage(argv[0]);
      return 2;
    }
    sqlog::log::GeneratorConfig config;
    config.target_statements = static_cast<size_t>(std::strtoull(argv[2], nullptr, 10));
    raw = sqlog::log::GenerateLog(config);
    prefix = argv[3];
    sqlog::Status wrote = sqlog::log::LogIo::WriteFile(raw, prefix + ".raw.csv");
    if (!wrote.ok()) {
      std::fprintf(stderr, "error: %s\n", wrote.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s.raw.csv (%zu records)\n", prefix.c_str(), raw.size());
  } else {
    auto loaded = sqlog::log::LogIo::ReadFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    raw = std::move(loaded.value());
    if (argc > 2) prefix = argv[2];
  }

  sqlog::catalog::Schema schema = sqlog::catalog::MakeSkyServerSchema();
  auto pipeline = sqlog::core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(0)  // operator batch job: use every core
                      .ExtraCleanPasses(1)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "bad pipeline config: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  auto run = pipeline->Run(raw);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  sqlog::core::PipelineResult& result = *run;

  std::printf("%s\n", result.stats.ToTable().c_str());
  for (const auto& diagnostic : result.stats.parse_diagnostics) {
    std::fprintf(stderr, "  parse diagnostic (record %llu): %s\n",
                 (unsigned long long)diagnostic.record_seq, diagnostic.message.c_str());
  }

  sqlog::Status s = sqlog::log::LogIo::WriteFile(result.clean_log, prefix + ".clean.csv");
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  s = sqlog::log::LogIo::WriteFile(result.removal_log, prefix + ".removal.csv");
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s.clean.csv (%zu records) and %s.removal.csv (%zu records)\n",
              prefix.c_str(), result.clean_log.size(), prefix.c_str(),
              result.removal_log.size());
  return 0;
}
