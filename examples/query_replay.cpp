// Replays SQL against the in-memory engine: demonstrates that the
// solver's rewritten statements return the same data as the original
// Stifle queries, and lets you poke at the SkyServer sample interactively
// by passing statements on the command line.

#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "core/template_store.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "sql/skeleton.h"
#include "util/string_util.h"

namespace {

void RunAndPrint(const sqlog::engine::Executor& executor, const std::string& sql) {
  std::printf("sql> %s\n", sql.c_str());
  auto result = executor.ExecuteSql(sql);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows)\n\n", result->ToText(10).c_str(), result->row_count());
}

}  // namespace

int main(int argc, char** argv) {
  sqlog::engine::Database db;
  sqlog::Status populated = sqlog::engine::PopulateSkyServerSample(db, 2000);
  if (!populated.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", populated.ToString().c_str());
    return 1;
  }
  sqlog::engine::Executor executor(&db);

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) RunAndPrint(executor, argv[i]);
    return 0;
  }

  // A DW-Stifle: three point lookups an application fired one by one.
  std::vector<int64_t> objids = sqlog::engine::PhotoObjIds(db);
  std::vector<std::string> stifle;
  for (int i = 0; i < 3; ++i) {
    stifle.push_back(sqlog::StrFormat(
        "SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %lld",
        static_cast<long long>(objids[static_cast<size_t>(i) * 7])));
  }
  std::printf("--- original Stifle queries ---\n");
  for (const auto& sql : stifle) RunAndPrint(executor, sql);

  // The solver's rewrite: one IN-list query.
  std::vector<sqlog::core::ParsedQuery> parsed(stifle.size());
  std::vector<const sqlog::core::ParsedQuery*> members;
  for (size_t i = 0; i < stifle.size(); ++i) {
    auto facts = sqlog::sql::ParseAndAnalyze(stifle[i]);
    if (!facts.ok()) {
      std::fprintf(stderr, "parse failed: %s\n", facts.status().ToString().c_str());
      return 1;
    }
    parsed[i].facts = std::move(facts.value());
    members.push_back(&parsed[i]);
  }
  auto rewritten = sqlog::core::RewriteDwStifle(members);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n", rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("--- solver rewrite ---\n");
  RunAndPrint(executor, rewritten.value());
  return 0;
}
