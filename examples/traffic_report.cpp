// Traffic report (cf. the SkyServer traffic reports [9]-[11] the paper
// builds on): session statistics, robot share, and what the robots are
// doing — before and after cleaning.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "analysis/describe.h"
#include "analysis/sessions.h"
#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"

namespace {

void Report(const char* label, const sqlog::core::ParsedLog& parsed) {
  auto sessions = sqlog::analysis::SegmentSessions(parsed);
  auto stats = sqlog::analysis::ComputeTrafficStats(sessions, parsed);
  std::printf("%s\n", label);
  std::printf("  sessions=%zu users=%zu  mean len=%.1f queries  mean dur=%.0fs  "
              "mean gap=%.1fs\n",
              stats.session_count, stats.user_count, stats.mean_session_length,
              stats.mean_session_duration_s, stats.mean_gap_s);
  std::printf("  robot sessions=%zu carrying %.1f%% of queries\n", stats.robot_sessions,
              100.0 * stats.robot_query_share);

  // What are the robots doing? Describe the dominant template of the
  // five biggest robot sessions.
  std::multimap<size_t, const sqlog::analysis::Session*, std::greater<size_t>> by_size;
  for (const auto& session : sessions) {
    if (sqlog::analysis::IsRobotSession(session, parsed)) {
      by_size.emplace(session.size(), &session);
    }
  }
  size_t shown = 0;
  for (const auto& [size, session] : by_size) {
    if (shown++ >= 5) break;
    const auto& sample = parsed.queries[session->query_indices.front()];
    std::printf("    robot session of %zu queries: %s\n", size,
                sqlog::analysis::DescribeTemplate(sample.facts).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t target = 40000;
  if (argc > 1) target = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  sqlog::log::GeneratorConfig config;
  config.target_statements = target;
  sqlog::log::QueryLog raw = sqlog::log::GenerateLog(config);

  sqlog::catalog::Schema schema = sqlog::catalog::MakeSkyServerSchema();
  sqlog::core::Pipeline pipeline;
  pipeline.SetSchema(&schema);
  auto run = pipeline.Run(raw);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  sqlog::core::PipelineResult& result = *run;

  Report("RAW LOG", result.parsed);

  sqlog::core::TemplateStore clean_store;
  sqlog::core::ParsedLog clean_parsed =
      sqlog::core::ParseLog(result.clean_log, clean_store);
  Report("CLEANED LOG", clean_parsed);

  std::printf("Cleaning collapses Stifle bot sessions into single statements, so the\n"
              "robot session count and mean session length drop while human sessions\n"
              "are untouched (the surviving robots are the SWS/spatial downloaders,\n"
              "which are patterns, not antipatterns).\n");
  return 0;
}
