// Extension-point demo (paper Sec. 5.4): register custom antipattern
// rules — two detect-only lint rules and the solvable SNC rule — and run
// them over a synthetic log, reporting per-rule hit statistics like a
// SQL linter would.

#include <cstdio>
#include <cstdlib>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "core/rules.h"
#include "log/generator.h"

int main(int argc, char** argv) {
  size_t target = 20000;
  if (argc > 1) target = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  sqlog::log::GeneratorConfig config;
  config.target_statements = target;
  sqlog::log::QueryLog raw = sqlog::log::GenerateLog(config);

  sqlog::core::PipelineOptions options;
  options.mine_patterns = false;  // pure lint run
  options.detector.custom_rules = {
      sqlog::core::MakeSelectStarRule(),
      sqlog::core::MakeMissingWhereRule(),
  };
  // A bespoke rule written inline: flag unbounded ORDER BY (sorts the
  // whole result without TOP — expensive on big tables).
  sqlog::core::CustomRule unbounded_sort;
  unbounded_sort.name = "unbounded-order-by";
  unbounded_sort.detect = [](const sqlog::core::ParsedQuery& query) {
    const auto& stmt = *query.facts.ast;
    return !stmt.order_by.empty() && stmt.top_count < 0;
  };
  options.detector.custom_rules.push_back(std::move(unbounded_sort));

  sqlog::catalog::Schema schema = sqlog::catalog::MakeSkyServerSchema();
  sqlog::core::Pipeline pipeline(options);
  pipeline.SetSchema(&schema);
  auto run = pipeline.Run(raw);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  sqlog::core::PipelineResult& result = *run;

  std::printf("Linted %zu statements (%zu parsed SELECTs)\n\n", raw.size(),
              result.parsed.queries.size());
  std::printf("%-22s %10s %12s %8s\n", "rule", "hits", "distinct", "users");

  for (size_t r = 0; r < options.detector.custom_rules.size(); ++r) {
    uint64_t hits = 0;
    uint64_t distinct = 0;
    size_t users = 0;
    for (const auto& d : result.antipatterns.distinct) {
      if (d.type != sqlog::core::AntipatternType::kCustom) continue;
      if (d.custom_rule != static_cast<int>(r)) continue;
      hits += d.query_count;
      ++distinct;
      users += d.user_popularity();
    }
    std::printf("%-22s %10llu %12llu %8zu\n",
                options.detector.custom_rules[r].name.c_str(),
                (unsigned long long)hits, (unsigned long long)distinct, users);
  }

  std::printf("\nBuilt-in detectors still ran alongside: %llu Stifle instances, "
              "%llu CTH candidates, %llu SNC.\n",
              (unsigned long long)(result.antipatterns.CountInstances(
                                       sqlog::core::AntipatternType::kDwStifle) +
                                   result.antipatterns.CountInstances(
                                       sqlog::core::AntipatternType::kDsStifle) +
                                   result.antipatterns.CountInstances(
                                       sqlog::core::AntipatternType::kDfStifle)),
              (unsigned long long)result.antipatterns.CountInstances(
                  sqlog::core::AntipatternType::kCthCandidate),
              (unsigned long long)result.antipatterns.CountInstances(
                  sqlog::core::AntipatternType::kSnc));
  return 0;
}
