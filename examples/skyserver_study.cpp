// The SkyServer case study in miniature: generate a synthetic
// SkyServer-style log, run the full pipeline, and print Table 5/6/7
// style summaries (see bench/ for the exact per-table harnesses).

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  size_t target = 100000;
  if (argc > 1) target = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  std::printf("Generating a synthetic SkyServer-style log of ~%zu statements...\n", target);
  sqlog::log::GeneratorConfig config;
  config.target_statements = target;
  sqlog::Timer gen_timer;
  sqlog::log::QueryLog raw = sqlog::log::GenerateLog(config);
  std::printf("  generated %zu records from %zu users in %.2fs\n\n", raw.size(),
              raw.DistinctUserCount(), gen_timer.ElapsedSeconds());

  sqlog::catalog::Schema schema = sqlog::catalog::MakeSkyServerSchema();
  auto pipeline = sqlog::core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(0)  // the case study runs at full width
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "bad pipeline config: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  sqlog::Timer run_timer;
  auto run = pipeline->Run(raw);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  sqlog::core::PipelineResult& result = *run;
  std::printf("Pipeline finished in %.2fs\n\n%s\n", run_timer.ElapsedSeconds(),
              result.stats.ToTable().c_str());

  std::printf("Top 10 patterns by frequency (after mining; A = antipattern):\n");
  size_t shown = 0;
  for (size_t i = 0; i < result.patterns.size() && shown < 10; ++i, ++shown) {
    const auto& pattern = result.patterns[i];
    const auto& tmpl = result.templates.Get(pattern.template_ids[0]).tmpl;
    std::printf("  %2zu. freq=%9s users=%4zu %s  %.90s\n", shown + 1,
                sqlog::WithThousands((long long)pattern.frequency).c_str(),
                pattern.user_popularity(),
                result.PatternIsAntipattern(i) ? "[A]" : "   ", tmpl.ssc.c_str());
  }

  std::printf("\nTop 5 distinct antipatterns by covered queries:\n");
  auto distinct = result.antipatterns.distinct;
  std::sort(distinct.begin(), distinct.end(),
            [](const auto& a, const auto& b) { return a.query_count > b.query_count; });
  for (size_t i = 0; i < distinct.size() && i < 5; ++i) {
    const auto& d = distinct[i];
    const auto& tmpl = result.templates.Get(d.template_ids[0]).tmpl;
    std::printf("  %2zu. %-9s queries=%9s users=%3zu  %.80s\n", i + 1,
                sqlog::core::AntipatternTypeName(d.type),
                sqlog::WithThousands((long long)d.query_count).c_str(),
                d.user_popularity(), tmpl.ssc.c_str());
  }

  std::printf("\nSWS coverage at (freq >= %.2f%%, users <= %zu): %.1f%% of parsed log\n",
              100.0 * pipeline->options().sws.frequency_fraction,
              pipeline->options().sws.max_user_popularity, 100.0 * result.sws.coverage);
  return 0;
}
