// Quickstart: run the cleaning pipeline over the paper's running example
// (Table 1) and show what each stage produces.

#include <cstdio>
#include <utility>

#include "sqlog.h"

namespace {

sqlog::log::LogRecord Make(uint64_t seq, int64_t t_ms, const char* user, const char* sql,
                           int64_t rows) {
  sqlog::log::LogRecord record;
  record.seq = seq;
  record.timestamp_ms = t_ms;
  record.user = user;
  record.statement = sql;
  record.row_count = rows;
  return record;
}

}  // namespace

int main() {
  // The paper's Table 1: one user drives a Circuitous Treasure Hunt whose
  // middle queries also form a DW-ish / DS-ish Stifle.
  sqlog::log::QueryLog raw;
  raw.Append(Make(0, 1000, "10.0.0.7",
                  "SELECT E.empId FROM Employees E WHERE E.department = 'sales'", 1));
  raw.Append(Make(1, 4000, "10.0.0.7",
                  "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12", 1));
  raw.Append(Make(2, 6500, "10.0.0.7",
                  "SELECT E.birthday, E.phone FROM Employees E WHERE E.id = 12", 1));
  raw.Append(Make(3, 9000, "10.0.0.7",
                  "SELECT count(orders) FROM Orders O WHERE O.empId = 12", 1));
  // A web-form reload produces an instant duplicate.
  raw.Append(Make(4, 9400, "10.0.0.7",
                  "SELECT count(orders) FROM Orders O WHERE O.empId = 12", 1));
  // A second user issues the Stifle of Example 9.
  raw.Append(Make(5, 2000, "10.0.0.9",
                  "SELECT name FROM Employee WHERE empId = 8", 1));
  raw.Append(Make(6, 3500, "10.0.0.9",
                  "SELECT name FROM Employee WHERE empId = 1", 1));
  // And the SNC mistake from Sec. 5.4.
  raw.Append(Make(7, 20000, "10.0.0.9",
                  "SELECT * FROM Bugs WHERE assigned_to = NULL", 0));

  sqlog::catalog::Schema schema = sqlog::catalog::MakeSkyServerSchema();
  sqlog::core::MinerOptions miner;
  miner.min_support = 1;  // the running example is tiny
  sqlog::core::DetectorOptions detector;
  detector.cth_min_support = 1;

  auto pipeline = sqlog::core::PipelineBuilder()
                      .WithSchema(&schema)  // enables Def. 11's key check
                      .WithMiner(miner)
                      .WithDetector(std::move(detector))
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "bad pipeline config: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  auto run = pipeline->Run(raw);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  sqlog::core::PipelineResult& result = *run;

  std::printf("== Statistics ==\n%s\n", result.stats.ToTable().c_str());

  std::printf("== Query templates ==\n");
  for (const auto& info : result.templates.templates()) {
    std::printf("  [t%llu] freq=%llu users=%zu  %s %s %s\n",
                (unsigned long long)info.id, (unsigned long long)info.frequency,
                info.user_popularity(), info.tmpl.ssc.c_str(), info.tmpl.sfc.c_str(),
                info.tmpl.swc.c_str());
  }

  std::printf("\n== Antipattern instances ==\n");
  for (const auto& instance : result.antipatterns.instances) {
    std::printf("  %s over %zu queries:\n",
                sqlog::core::AntipatternTypeName(instance.type),
                instance.query_indices.size());
    for (size_t idx : instance.query_indices) {
      size_t record = result.parsed.queries[idx].record_index;
      std::printf("    %s\n", result.pre_clean.records()[record].statement.c_str());
    }
  }

  std::printf("\n== Clean log ==\n");
  for (const auto& record : result.clean_log.records()) {
    std::printf("  [%s] %s\n", record.user.c_str(), record.statement.c_str());
  }
  return 0;
}
