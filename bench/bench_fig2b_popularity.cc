// Fig. 2(b): pattern frequency versus user popularity. Paper: a
// distinctive population of very frequent patterns with userPopularity
// 1 (the robots / machine downloads) coexists with popular low-frequency
// human patterns; 23 of the 40 most popular patterns come from one user.

#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Fig. 2(b) — frequency vs user popularity",
                "paper Fig. 2(b): frequent single-user patterns dominate the top ranks");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);

  // Series for the scatter: (frequency, userPopularity) of every mined
  // length-1 pattern with support ≥ 16, bucketed for display.
  std::printf("%-14s %-14s %s\n", "frequency", "userPopularity", "patterns");
  struct Bucket {
    uint64_t min_freq;
    const char* label;
    size_t single_user = 0;
    size_t low_pop = 0;   // 2..16 users
    size_t high_pop = 0;  // > 16 users
  };
  Bucket buckets[] = {
      {65536, ">= 64k", 0, 0, 0}, {16384, ">= 16k", 0, 0, 0}, {4096, ">= 4k", 0, 0, 0},
      {1024, ">= 1k", 0, 0, 0},   {256, ">= 256", 0, 0, 0},   {16, ">= 16", 0, 0, 0},
  };
  for (const auto& pattern : result.patterns) {
    if (pattern.length() != 1 || pattern.frequency < 16) continue;
    for (auto& bucket : buckets) {
      if (pattern.frequency >= bucket.min_freq) {
        if (pattern.user_popularity() == 1) {
          ++bucket.single_user;
        } else if (pattern.user_popularity() <= 16) {
          ++bucket.low_pop;
        } else {
          ++bucket.high_pop;
        }
        break;
      }
    }
  }
  std::printf("%-10s %12s %12s %12s\n", "freq band", "1 user", "2-16 users", ">16 users");
  for (const auto& bucket : buckets) {
    std::printf("%-10s %12zu %12zu %12zu\n", bucket.label, bucket.single_user,
                bucket.low_pop, bucket.high_pop);
  }

  // Paper's headline: how many of the 40 most popular patterns come from
  // exactly one user?
  size_t single_user_in_top40 = 0;
  size_t shown = 0;
  for (size_t i = 0; i < result.patterns.size() && shown < 40; ++i) {
    if (result.patterns[i].length() != 1) continue;
    ++shown;
    if (result.patterns[i].user_popularity() == 1) ++single_user_in_top40;
  }
  std::printf("\nsingle-user patterns among the top 40: %zu (paper: 23/40)\n",
              single_user_in_top40);
  return 0;
}
