// Future-work experiment (paper Sec. 7): train a next-query recommender
// on the raw log versus the cleaned log and measure
//   (1) how often the raw-trained model recommends antipattern queries
//       (paper item 2: "queries suggested by a recommender system must
//        not contain antipatterns"),
//   (2) hit@k over human (organic) activity, where SWS "machine
//       downloads" inflate raw-log accuracy without helping anyone
//       (paper item 1).

#include <unordered_set>

#include "analysis/recommender.h"
#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Future work (Sec. 7) — recommender trained on raw vs cleaned log",
                "paper Sec. 7 items 1-2 (proposed; numbers are this repo's)");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);

  // Antipattern template fingerprints (from the raw run's detector).
  std::unordered_set<uint64_t> antipattern_fps;
  const core::DetectorSet& detector_set = *result.antipatterns.detectors;
  for (const auto& d : result.antipatterns.distinct) {
    if (!detector_set.info(d.detector).solvable) continue;
    for (uint64_t id : d.template_ids) {
      antipattern_fps.insert(result.templates.Get(id).tmpl.fingerprint);
    }
  }

  // Parse the cleaned log into its own ParsedLog for training.
  core::TemplateStore clean_store;
  core::ParsedLog clean_parsed = core::ParseLog(result.clean_log, clean_store);

  analysis::Recommender raw_model;
  raw_model.Train(result.parsed);
  analysis::Recommender clean_model;
  clean_model.Train(clean_parsed);

  std::printf("training transitions: raw %s, cleaned %s\n\n",
              bench::Thousands(raw_model.transition_count()).c_str(),
              bench::Thousands(clean_model.transition_count()).c_str());

  // (1) antipattern recommendation rate, evaluated over the raw stream
  // (that is what a live system would see).
  double raw_rate = raw_model.FlaggedRecommendationRate(result.parsed, antipattern_fps);
  double clean_rate =
      clean_model.FlaggedRecommendationRate(result.parsed, antipattern_fps);
  std::printf("(1) share of top-1 recommendations that are antipattern templates:\n");
  std::printf("    trained on raw log:     %6.2f%%\n", 100.0 * raw_rate);
  std::printf("    trained on cleaned log: %6.2f%%\n", 100.0 * clean_rate);

  // (2) hit@3 over the cleaned stream (a proxy for human information
  // needs — machine downloads and antipattern chatter are gone).
  double raw_hits = raw_model.HitRate(clean_parsed, 3);
  double clean_hits = clean_model.HitRate(clean_parsed, 3);
  std::printf("\n(2) hit@3 over the cleaned (human-need) stream:\n");
  std::printf("    trained on raw log:     %6.2f%%\n", 100.0 * raw_hits);
  std::printf("    trained on cleaned log: %6.2f%%\n", 100.0 * clean_hits);

  std::printf("\nExpected: the cleaned-trained model recommends (near-)zero\n"
              "antipattern templates while matching or beating the raw-trained\n"
              "model on human-need transitions — the outcome the paper's future\n"
              "work anticipates.\n");
  return 0;
}
