// Ablations for the detector design choices called out in DESIGN.md:
//   1. Def. 11 axiom 3 (filter column must be a key attribute) — what is
//      the false-positive cost of dropping it?
//   2. The instance cohesion gap (max_gap_ms).
//   3. The CTH support threshold.
// Precision/recall are measured against the generator's ground-truth
// labels, substituting the paper's domain experts.

#include "bench_common.h"

namespace {

using namespace sqlog;

struct PrecisionRecall {
  double precision;
  double recall;
  uint64_t claimed;
};

/// Stifle detection quality: a claimed query is a true positive when its
/// ground-truth label is one of the Stifle families (or a CTH-real
/// follow-up, which genuinely is a Stifle run too).
PrecisionRecall StifleQuality(const core::PipelineResult& result) {
  uint64_t claimed = 0;
  uint64_t true_positive = 0;
  uint64_t labelled = 0;
  for (size_t q = 0; q < result.parsed.queries.size(); ++q) {
    size_t record = result.parsed.queries[q].record_index;
    log::TruthLabel truth = result.pre_clean.records()[record].truth;
    bool is_stifle_truth = truth == log::TruthLabel::kDwStifle ||
                           truth == log::TruthLabel::kDsStifle ||
                           truth == log::TruthLabel::kDfStifle ||
                           truth == log::TruthLabel::kCthReal;
    if (is_stifle_truth) ++labelled;
    uint32_t instance_id = result.antipatterns.instance_of_query[q];
    if (instance_id == 0) continue;
    const auto& instance = result.antipatterns.instances[instance_id - 1];
    const core::DetectorInfo& info =
        result.antipatterns.detectors->info(instance.detector);
    if (!info.solvable || info.id == "snc") continue;
    ++claimed;
    if (is_stifle_truth) ++true_positive;
  }
  PrecisionRecall out{};
  out.claimed = claimed;
  out.precision = claimed == 0 ? 1.0
                               : static_cast<double>(true_positive) /
                                     static_cast<double>(claimed);
  out.recall = labelled == 0 ? 1.0
                             : static_cast<double>(true_positive) /
                                   static_cast<double>(labelled);
  return out;
}

}  // namespace

int main() {
  bench::Banner("Ablations — key-attribute axiom, cohesion gap, CTH support",
                "DESIGN.md decisions 1-4; paper Sec. 4.2.1 discusses axiom 3");

  log::QueryLog raw = bench::GenerateStudyLog();

  std::printf("(1) Def. 11 axiom 3 — require key attribute:\n");
  std::printf("    %-10s %10s %11s %9s\n", "key check", "claimed", "precision", "recall");
  for (bool require_key : {true, false}) {
    core::PipelineOptions options;
    options.detector.require_key_attribute = require_key;
    core::PipelineResult result = bench::RunStudyPipeline(raw, options);
    PrecisionRecall quality = StifleQuality(result);
    std::printf("    %-10s %10s %10.1f%% %8.1f%%\n", require_key ? "on" : "off",
                bench::Thousands(quality.claimed).c_str(), 100.0 * quality.precision,
                100.0 * quality.recall);
  }

  std::printf("\n(2) instance cohesion gap (max_gap_ms):\n");
  std::printf("    %-10s %10s %11s %9s\n", "gap", "claimed", "precision", "recall");
  for (int64_t gap_s : {10, 60, 600, 3600}) {
    core::PipelineOptions options;
    options.detector.max_gap_ms = gap_s * 1000;
    options.miner.max_gap_ms = gap_s * 1000;
    core::PipelineResult result = bench::RunStudyPipeline(raw, options);
    PrecisionRecall quality = StifleQuality(result);
    std::printf("    %-10s %10s %10.1f%% %8.1f%%\n",
                sqlog::StrFormat("%llds", (long long)gap_s).c_str(),
                bench::Thousands(quality.claimed).c_str(), 100.0 * quality.precision,
                100.0 * quality.recall);
  }

  std::printf("\n(3) CTH support threshold — distinct candidates kept:\n");
  std::printf("    %-10s %12s\n", "support", "candidates");
  for (uint64_t support : {1, 2, 3, 5, 10}) {
    core::PipelineOptions options;
    options.detector.cth_min_support = support;
    options.mine_patterns = false;  // cheaper; CTH detection is unaffected
    core::PipelineResult result = bench::RunStudyPipeline(raw, options);
    std::printf("    %-10llu %12s\n", (unsigned long long)support,
                bench::Thousands(result.stats.distinct_cth).c_str());
  }

  std::printf("\nExpected: dropping the key check inflates claims at lower precision;\n"
              "tiny gaps hurt recall (bot runs straddle the window), huge gaps admit\n"
              "unrelated queries; higher CTH support trims organic one-offs.\n");
  return 0;
}
