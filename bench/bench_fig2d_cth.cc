// Fig. 2(d): CTH candidates — frequency and user popularity by rank,
// split into real and false hunts. Paper: 28 of 50 candidates are real;
// real hunts concentrate at low user popularity (proprietary software),
// false ones spread over more users.

#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Fig. 2(d) — real vs false CTH candidates",
                "paper Fig. 2(d) + Sec. 6.6: 28/50 candidates are real");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);

  // Ground truth per distinct candidate: majority vote over the member
  // queries' generator labels (substituting the paper's domain experts).
  struct Row {
    uint64_t instances;
    size_t users;
    bool real;
  };
  std::vector<Row> rows;
  for (const auto& d : result.antipatterns.distinct) {
    if (d.type != core::AntipatternType::kCthCandidate) continue;
    size_t real_votes = 0;
    size_t false_votes = 0;
    for (const auto& instance : result.antipatterns.instances) {
      if (instance.type != core::AntipatternType::kCthCandidate) continue;
      // Match instance to this distinct signature via its first query.
      if (result.parsed.queries[instance.query_indices.front()].template_id !=
          d.template_ids.front()) {
        continue;
      }
      for (size_t q : instance.query_indices) {
        size_t record = result.parsed.queries[q].record_index;
        switch (result.pre_clean.records()[record].truth) {
          case log::TruthLabel::kCthReal: ++real_votes; break;
          case log::TruthLabel::kCthFalse: ++false_votes; break;
          default: ++false_votes; break;  // organic coincidences are false
        }
      }
    }
    rows.push_back(Row{d.instance_count, d.user_popularity(), real_votes > false_votes});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.instances > b.instances; });

  std::printf("%-6s %-12s %-14s %s\n", "rank", "frequency", "userPopularity", "verdict");
  size_t real_count = 0;
  double real_users = 0;
  double false_users = 0;
  size_t false_count = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-6zu %-12s %-14zu %s\n", i + 1, bench::Thousands(rows[i].instances).c_str(),
                rows[i].users, rows[i].real ? "real CTH" : "false CTH");
    if (rows[i].real) {
      ++real_count;
      real_users += static_cast<double>(rows[i].users);
    } else {
      ++false_count;
      false_users += static_cast<double>(rows[i].users);
    }
  }
  std::printf("\ncandidates: %zu, real: %zu (%.0f%%; paper 28/50 = 56%%)\n", rows.size(),
              real_count,
              rows.empty() ? 0.0 : 100.0 * static_cast<double>(real_count) /
                                        static_cast<double>(rows.size()));
  if (real_count > 0 && false_count > 0) {
    std::printf("mean userPopularity: real %.1f vs false %.1f (paper: real hunts have\n"
                "lower user popularity)\n",
                real_users / static_cast<double>(real_count),
                false_users / static_cast<double>(false_count));
  }
  return 0;
}
