// Binary log format bench: size and zero-parse ingest rate of `.sqb`
// against the CSV baseline, on the standard study log.
//
// Ingest = read every record from disk and parse it into the template
// store, the hot pass-1 loop of the streaming pipeline. The CSV run
// rides the template fingerprint cache (the BENCH_parse.json "cached"
// configuration); the `.sqb` run additionally seeds that cache from the
// file's template dictionary and rides the per-record shapes, so it
// neither parses nor lexes — the remaining cost is columnar decode +
// rendering facts from the constant spans.
//
//   ./build/bench/bench_format [--json=BENCH_format.json]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parse_cache.h"
#include "core/template_store.h"
#include "log/binlog.h"
#include "log/log_io.h"
#include "util/timer.h"

namespace sqlog {
namespace {

struct IngestResult {
  double seconds = 0;
  uint64_t records = 0;
  core::ParseStats parse_stats;
  double records_per_sec() const {
    return bench::SafeRate(static_cast<double>(records), seconds);
  }
};

/// Reads `path` and parses every record with the fingerprint cache on —
/// the streaming pipeline's pass-1 loop. The `.sqb` run additionally
/// seeds the cache from the dictionary and rides the record shapes,
/// exactly like Pipeline::RunStreaming.
IngestResult IngestOnce(const std::string& path, bool is_sqb) {
  core::ParseCacheOptions cache_options;
  cache_options.enabled = true;
  core::TemplateStore store;
  core::StreamingParser parser(store, /*max_diagnostics=*/0, /*pool=*/nullptr,
                               cache_options);
  log::BinLogReader bin_reader;
  log::LogReader csv_reader;
  log::BinLogReader* bin = is_sqb ? &bin_reader : nullptr;
  log::RecordReader& reader = is_sqb ? static_cast<log::RecordReader&>(bin_reader)
                                     : static_cast<log::RecordReader&>(csv_reader);
  if (!reader.Open(path).ok()) {
    std::fprintf(stderr, "open failed: %s\n", path.c_str());
    std::abort();
  }
  if (bin != nullptr) {
    std::vector<std::unique_ptr<core::ParseCacheEntry>> seeds;
    seeds.reserve(bin->dictionary().size());
    for (const auto& entry : bin->dictionary()) {
      seeds.push_back(core::DeserializeStatementRecipe(entry.text, entry.recipe));
    }
    parser.SeedCache(std::move(seeds));
    parser.ReserveQueries(bin->record_count());
  }

  IngestResult result;
  Timer timer;
  std::vector<log::LogRecord> batch;
  // Shape pool: the live prefix (one per batched record) is overwritten
  // in place so the span vectors keep their capacity across batches.
  std::vector<log::RecordShape> shapes;
  size_t shape_count = 0;
  batch.reserve(4096);
  log::LogRecord record;
  bool eof = false;
  while (true) {
    Status status = reader.ReadRecord(&record, &eof);
    if (!status.ok()) {
      std::fprintf(stderr, "read failed: %s\n", status.ToString().c_str());
      std::abort();
    }
    if (eof) break;
    if (bin != nullptr) {
      if (shape_count == shapes.size()) shapes.emplace_back();
      shapes[shape_count++].CopyFrom(bin->last_shape());
    }
    batch.push_back(std::move(record));
    if (batch.size() == 4096) {
      parser.FeedBatch(batch, bin != nullptr ? &shapes : nullptr);
      batch.clear();
      shape_count = 0;
    }
  }
  parser.FeedBatch(batch, bin != nullptr ? &shapes : nullptr);
  core::ParsedLog parsed = parser.Finish();
  result.seconds = timer.ElapsedSeconds();
  result.records = reader.records_read();
  result.parse_stats = parsed.parse_stats;
  return result;
}

/// Best of five ingest runs — single-shot wall-clock on a shared box
/// swings ±10 %, which matters when the result gates an acceptance
/// ratio. Parse counters are identical across runs by determinism.
IngestResult Ingest(const std::string& path, bool is_sqb) {
  IngestResult best = IngestOnce(path, is_sqb);
  for (int i = 1; i < 5; ++i) {
    IngestResult run = IngestOnce(path, is_sqb);
    if (run.seconds < best.seconds) best = run;
  }
  return best;
}

size_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<size_t>(size);
}

}  // namespace
}  // namespace sqlog

int main(int argc, char** argv) {
  using namespace sqlog;
  std::string json_path = bench::StripJsonFlag(&argc, argv);
  bench::Banner("Binary log format: size + zero-parse ingest vs CSV",
                "format bench (companion to BENCH_parse.json)");

  const log::QueryLog raw = bench::GenerateStudyLog();
  const std::string csv_path = "/tmp/sqlog_bench_format.csv";
  const std::string sqb_path = "/tmp/sqlog_bench_format.sqb";
  Status write_csv = log::LogIo::WriteFile(raw, csv_path);
  Status write_sqb = log::LogIo::WriteFile(raw, sqb_path, log::LogFormat::kSqb,
                                           core::BuildStatementRecipe);
  if (!write_csv.ok() || !write_sqb.ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  const size_t csv_bytes = FileSize(csv_path);
  const size_t sqb_bytes = FileSize(sqb_path);

  IngestResult csv = Ingest(csv_path, /*is_sqb=*/false);
  IngestResult sqb = Ingest(sqb_path, /*is_sqb=*/true);

  const double size_ratio = bench::SafeDiv(static_cast<double>(csv_bytes),
                                           static_cast<double>(sqb_bytes));
  const double speedup = bench::SafeDiv(sqb.records_per_sec(), csv.records_per_sec());

  std::printf("records               %s\n", bench::Thousands(csv.records).c_str());
  std::printf("csv bytes             %s\n", bench::Thousands(csv_bytes).c_str());
  std::printf("sqb bytes             %s  (%.2fx smaller)\n",
              bench::Thousands(sqb_bytes).c_str(), size_ratio);
  std::printf("csv ingest            %.3f s  %.0f rec/s  (%llu full parses)\n",
              csv.seconds, csv.records_per_sec(),
              (unsigned long long)csv.parse_stats.full_parses);
  std::printf("sqb ingest            %.3f s  %.0f rec/s  (%llu full parses)\n",
              sqb.seconds, sqb.records_per_sec(),
              (unsigned long long)sqb.parse_stats.full_parses);
  std::printf("ingest speedup        %.2fx\n", speedup);

  if (sqb.parse_stats.full_parses != 0) {
    std::fprintf(stderr, "FAIL: .sqb ingest ran %llu full parses (want 0)\n",
                 (unsigned long long)sqb.parse_stats.full_parses);
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"benchmark\": \"binary_log_format\",\n"
                 "  \"records\": %llu,\n"
                 "  \"csv\": {\"bytes\": %zu, \"seconds\": %.6f, "
                 "\"records_per_sec\": %.1f, \"full_parses\": %llu},\n"
                 "  \"sqb\": {\"bytes\": %zu, \"seconds\": %.6f, "
                 "\"records_per_sec\": %.1f, \"full_parses\": %llu},\n"
                 "  \"size_ratio\": %.3f,\n"
                 "  \"ingest_speedup\": %.3f,\n"
                 "  \"peak_rss_bytes\": %zu\n"
                 "}\n",
                 (unsigned long long)csv.records, csv_bytes, csv.seconds,
                 csv.records_per_sec(),
                 (unsigned long long)csv.parse_stats.full_parses, sqb_bytes,
                 sqb.seconds, sqb.records_per_sec(),
                 (unsigned long long)sqb.parse_stats.full_parses, size_ratio,
                 speedup, bench::SelfPeakRssBytes());
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::remove(csv_path.c_str());
  std::remove(sqb_path.c_str());
  return 0;
}
