#ifndef SQLOG_BENCH_BENCH_COMMON_H_
#define SQLOG_BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "log/generator.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sqlog::bench {

/// The calling process's own peak RSS in bytes. Linux reads VmHWM from
/// /proc/self/status because it tracks the current address space only:
/// getrusage's ru_maxrss folds in the pre-exec inherited peak, which
/// would make every child echo the parent's footprint.
inline size_t SelfPeakRssBytes() {
#ifdef __APPLE__
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss);
#else
  FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(status);
  return kb * 1024;
#endif
}

/// `numerator / denominator` with the failure modes a timing loop can
/// hit folded to 0: a 0-record or 0-duration run would otherwise emit
/// `inf`/`nan`, which fprintf renders as bare `inf`/`nan` tokens —
/// invalid JSON that breaks every downstream consumer. All emitted
/// rates and ratios must pass through here (scripts/check_bench_json.py
/// rejects non-finite values in checked-in BENCH_*.json).
inline double SafeDiv(double numerator, double denominator) {
  if (!(denominator != 0.0)) return 0.0;
  double v = numerator / denominator;
  return std::isfinite(v) ? v : 0.0;
}

/// Records-per-second guarded against empty or instantaneous runs.
inline double SafeRate(double count, double seconds) {
  if (!(seconds > 0.0) || count <= 0.0) return 0.0;
  return SafeDiv(count, seconds);
}

/// Strips a `--json=<path>` flag from argv (compacting the remaining
/// arguments) and returns the path, or "" when absent. Both bench
/// drivers share this so CI can request machine-readable results.
inline std::string StripJsonFlag(int* argc, char** argv) {
  std::string path;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return path;
}

/// Size of the synthetic study log. The paper's log has 42 M queries; we
/// default to 120 k (≈ 1:350 scale) so every bench finishes in seconds.
/// Override with SQLOG_BENCH_SIZE.
inline size_t StudySize() {
  const char* env = std::getenv("SQLOG_BENCH_SIZE");
  if (env != nullptr) {
    size_t v = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return 120000;
}

/// The study workload: defaults calibrated to the paper's shares.
inline log::GeneratorConfig StudyConfig() {
  log::GeneratorConfig config;
  config.target_statements = StudySize();
  return config;
}

/// Generates the study log (deterministic).
inline log::QueryLog GenerateStudyLog() { return log::GenerateLog(StudyConfig()); }

/// Runs the full pipeline with the bundled SkyServer schema. The schema
/// object must outlive the result, hence the static. Benches configure
/// valid options, so a failed Run aborts the harness loudly.
inline core::PipelineResult RunStudyPipeline(const log::QueryLog& raw,
                                             core::PipelineOptions options = {}) {
  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  core::Pipeline pipeline(options);
  pipeline.SetSchema(&schema);
  Result<core::PipelineResult> result = pipeline.Run(raw);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline std::string Thousands(uint64_t v) {
  return WithThousands(static_cast<long long>(v));
}

}  // namespace sqlog::bench

#endif  // SQLOG_BENCH_BENCH_COMMON_H_
