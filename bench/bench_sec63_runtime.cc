// Sec. 6.3 runtime experiment: execute a slice of Stifle queries against
// the database, then execute the solver's rewrites, and compare counts
// and wall time. Paper: 10222 queries → 254 after rewriting (≈40×
// fewer), running 29.27× faster.

#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/solver.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "sql/skeleton.h"

int main() {
  using namespace sqlog;
  bench::Banner("Sec. 6.3 — runtime of original Stifle queries vs rewritten queries",
                "paper Sec. 6.3: 10222 → 254 queries, 29.27x faster");

  // A database big enough that scans dominate per-query cost.
  engine::Database db;
  Status populated = engine::PopulateSkyServerSample(db, 10000);
  if (!populated.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", populated.ToString().c_str());
    return 1;
  }
  engine::Executor executor(&db);
  std::vector<int64_t> objids = engine::PhotoObjIds(db);

  // Build Stifle slices the way the bots do: runs of 20-60 point lookups.
  Rng rng(20180416);
  size_t target_queries = 5000;
  const char* env = std::getenv("SQLOG_BENCH_QUERIES");
  if (env != nullptr) target_queries = std::strtoull(env, nullptr, 10);

  std::vector<std::vector<std::string>> instances;
  size_t total = 0;
  while (total < target_queries) {
    size_t run = 20 + rng.Uniform(41);
    std::vector<std::string> members;
    for (size_t i = 0; i < run; ++i) {
      members.push_back(StrFormat(
          "SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %lld",
          static_cast<long long>(objids[rng.Uniform(objids.size())])));
    }
    total += run;
    instances.push_back(std::move(members));
  }

  // Rewrite each instance with the DW solver.
  std::vector<std::string> rewritten;
  for (const auto& members : instances) {
    std::vector<core::ParsedQuery> parsed(members.size());
    std::vector<const core::ParsedQuery*> pointers;
    for (size_t i = 0; i < members.size(); ++i) {
      auto facts = sql::ParseAndAnalyze(members[i]);
      if (!facts.ok()) {
        std::fprintf(stderr, "parse failed: %s\n", facts.status().ToString().c_str());
        return 1;
      }
      parsed[i].facts = std::move(facts.value());
      pointers.push_back(&parsed[i]);
    }
    auto rewrite = core::RewriteDwStifle(pointers);
    if (!rewrite.ok()) {
      std::fprintf(stderr, "rewrite failed: %s\n", rewrite.status().ToString().c_str());
      return 1;
    }
    rewritten.push_back(std::move(rewrite.value()));
  }

  // Run the originals.
  Timer original_timer;
  size_t original_rows = 0;
  for (const auto& members : instances) {
    for (const auto& sql : members) {
      auto result = executor.ExecuteSql(sql);
      if (!result.ok()) {
        std::fprintf(stderr, "exec failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      original_rows += result->row_count();
    }
  }
  double original_seconds = original_timer.ElapsedSeconds();

  // Run the rewrites.
  Timer rewritten_timer;
  size_t rewritten_rows = 0;
  for (const auto& sql : rewritten) {
    auto result = executor.ExecuteSql(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "exec failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    rewritten_rows += result->row_count();
  }
  double rewritten_seconds = rewritten_timer.ElapsedSeconds();

  std::printf("%-22s %12s %12s\n", "", "original", "rewritten");
  std::printf("%-22s %12s %12s\n", "statements", bench::Thousands(total).c_str(),
              bench::Thousands(rewritten.size()).c_str());
  std::printf("%-22s %12.2f %12.2f\n", "runtime (s)", original_seconds, rewritten_seconds);
  std::printf("%-22s %12s %12s\n", "result rows", bench::Thousands(original_rows).c_str(),
              bench::Thousands(rewritten_rows).c_str());
  std::printf("\nstatement reduction: %.1fx (paper: 40.2x)\n",
              static_cast<double>(total) / static_cast<double>(rewritten.size()));
  std::printf("speedup:             %.2fx (paper: 29.27x)\n",
              original_seconds / rewritten_seconds);
  std::printf("\nNote: result-row counts can differ slightly because repeated objids\n"
              "inside one instance deduplicate in the IN-list — the rewrite returns\n"
              "each object once, which is the intended semantics.\n");

  // Threads sweep: the same end-to-end pipeline runtime question at
  // scale, over the study log, for the parallel engine. Output is
  // byte-identical across rows (pipeline_parallel_test proves it); only
  // wall time may change with the hardware's core count.
  std::printf("\nPipeline runtime vs num_threads (study log, %zu statements, "
              "%u hardware threads):\n",
              bench::StudySize(), std::thread::hardware_concurrency());
  log::QueryLog study = bench::GenerateStudyLog();
  double serial_seconds = 0.0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    core::PipelineOptions options;
    options.num_threads = threads;
    Timer timer;
    core::PipelineResult result = bench::RunStudyPipeline(study, options);
    double seconds = timer.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    std::printf("  num_threads=%zu  %8.2fs  speedup %.2fx  (clean log %s)\n", threads,
                seconds, serial_seconds / seconds,
                bench::Thousands(result.stats.final_size).c_str());
  }
  return 0;
}
