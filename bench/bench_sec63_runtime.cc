// Sec. 6.3 runtime experiment: execute a slice of Stifle queries against
// the database, then execute the solver's rewrites, and compare counts
// and wall time. Paper: 10222 queries → 254 after rewriting (≈40×
// fewer), running 29.27× faster.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/solver.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/table_heap.h"
#include "log/log_io.h"
#include "sql/skeleton.h"

namespace {

using sqlog::bench::SelfPeakRssBytes;

/// Re-runs this binary with the given arguments and reports the child's
/// wall time and peak RSS. The child measures its own peak (see
/// SelfPeakRssBytes) and reports it over a pipe; a fresh exec'd process
/// per configuration keeps each row's footprint independent.
bool RunChildConfig(const char* exe, const std::vector<std::string>& args,
                    double* seconds, size_t* peak_rss_bytes) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  std::vector<char*> child_argv;
  child_argv.push_back(const_cast<char*>(exe));
  for (const std::string& arg : args)
    child_argv.push_back(const_cast<char*>(arg.c_str()));
  child_argv.push_back(nullptr);
  sqlog::Timer timer;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    execv(exe, child_argv.data());
    _exit(127);
  }
  close(fds[1]);
  FILE* in = fdopen(fds[0], "r");
  size_t peak = 0;
  bool got = false;
  if (in != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof line, in) != nullptr)
      if (std::sscanf(line, "rss-child peak_bytes=%zu", &peak) == 1) got = true;
    std::fclose(in);
  } else {
    close(fds[0]);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  *seconds = timer.ElapsedSeconds();
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || !got) return false;
  *peak_rss_bytes = peak;
  return true;
}

/// Child mode: runs one ingestion configuration against an existing CSV,
/// then prints its own peak RSS on stdout for the parent to collect.
/// argv: --rss-child <mem|stream> <batch_size> <threads> <in> <clean> <removal>
int RunRssChild(int argc, char** argv) {
  using namespace sqlog;
  if (argc != 8) return 2;
  const bool streaming = std::string(argv[2]) == "stream";
  const size_t batch_size = std::strtoull(argv[3], nullptr, 10);
  const size_t threads = std::strtoull(argv[4], nullptr, 10);
  const std::string input_path = argv[5];
  const std::string clean_path = argv[6];
  const std::string removal_path = argv[7];

  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  core::PipelineOptions options;
  options.num_threads = threads;
  options.streaming = streaming;
  if (streaming) options.batch_size = batch_size;
  core::Pipeline pipeline(options);
  pipeline.SetSchema(&schema);
  if (streaming) {
    auto run = pipeline.RunStreaming(input_path, clean_path, removal_path);
    if (!run.ok()) {
      std::fprintf(stderr, "streaming run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  } else {
    auto loaded = log::LogIo::ReadFile(input_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "read failed: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    auto result = pipeline.Run(*loaded);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    // Write the outputs too, so both modes do the same I/O work.
    if (!log::LogIo::WriteFile(result->clean_log, clean_path).ok() ||
        !log::LogIo::WriteFile(result->removal_log, removal_path).ok()) {
      return 1;
    }
  }
  std::printf("rss-child peak_bytes=%zu\n", SelfPeakRssBytes());
  return 0;
}

/// Strips `--name=<uint>` from argv, returning its value or `def`.
size_t StripUintFlag(int* argc, char** argv, const char* name, size_t def) {
  const size_t len = std::strlen(name);
  size_t value = def;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      value = std::strtoull(argv[i] + len + 1, nullptr, 10);
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return value;
}

/// Strips a bare `--name` flag from argv; returns whether it was present.
bool StripBoolFlag(int* argc, char** argv, const char* name) {
  bool present = false;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      present = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return present;
}

/// One cell of the out-of-core sweep matrix, as measured by its child
/// process (every number below is the child's own, so rows are
/// independent of each other and of the parent).
struct OocResult {
  double populate_seconds = 0;
  double index_seconds = 0;
  double query_seconds = 0;
  size_t queries = 0;
  size_t matched = 0;
  unsigned long long data_bytes = 0;
  unsigned long long pool_bytes = 0;
  unsigned long long evictions = 0;
  unsigned long long writebacks = 0;
  size_t peak_rss_bytes = 0;
};

/// Child mode for the out-of-core sweep: builds photoprimary in the
/// requested backend, optionally indexes objid, runs point lookups with
/// the requested access path, and prints one stats line + its peak RSS.
/// argv: --ooc-child <mem|paged> <scan|index> <rows> <buffer_pages> <queries>
int RunOocChild(int argc, char** argv) {
  using namespace sqlog;
  if (argc != 7) return 2;
  const bool paged = std::string(argv[2]) == "paged";
  const bool use_index = std::string(argv[3]) == "index";
  const size_t rows = std::strtoull(argv[4], nullptr, 10);
  const size_t buffer_pages = std::strtoull(argv[5], nullptr, 10);
  const size_t queries = std::strtoull(argv[6], nullptr, 10);

  engine::DatabaseOptions options;
  options.storage = paged ? engine::StorageMode::kPaged : engine::StorageMode::kMemory;
  options.buffer_pool_pages = buffer_pages;
  engine::Database db(options);

  Timer populate_timer;
  Status populated = engine::PopulatePhotoPrimary(db, rows);
  if (!populated.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", populated.ToString().c_str());
    return 1;
  }
  const double populate_seconds = populate_timer.ElapsedSeconds();

  double index_seconds = 0;
  if (use_index) {
    Timer index_timer;
    Status indexed = db.CreateIndex("photoprimary", "objid");
    if (!indexed.ok()) {
      std::fprintf(stderr, "index failed: %s\n", indexed.ToString().c_str());
      return 1;
    }
    index_seconds = index_timer.ElapsedSeconds();
  }

  engine::ExecutorOptions exec_options;
  exec_options.use_indexes = use_index;
  engine::Executor executor(&db, exec_options);

  // Prime-strided probes cover the key range without materializing the
  // objid list (at tens of millions of rows that list alone would rival
  // the buffer pool).
  Timer query_timer;
  size_t matched = 0;
  for (size_t i = 0; i < queries; ++i) {
    const size_t target = (i * 104729) % rows;
    auto result = executor.ExecuteSql(
        StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %lld",
                  static_cast<long long>(engine::SyntheticObjId(target))));
    if (!result.ok()) {
      std::fprintf(stderr, "exec failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    matched += result->row_count();
  }
  const double query_seconds = query_timer.ElapsedSeconds();
  if (matched != queries) {
    std::fprintf(stderr, "expected %zu matches, got %zu\n", queries, matched);
    return 1;
  }

  unsigned long long data_bytes = 0;
  unsigned long long pool_bytes = 0;
  unsigned long long evictions = 0;
  unsigned long long writebacks = 0;
  if (paged) {
    const auto* table =
        static_cast<const engine::PagedTable*>(db.FindTable("photoprimary"));
    data_bytes = table->data_bytes();
  }
  if (db.buffer_pool() != nullptr) {
    pool_bytes = db.buffer_pool()->pool_bytes();
    engine::BufferPool::Stats stats = db.buffer_pool()->stats();
    evictions = stats.evictions;
    writebacks = stats.writebacks;
  }
  std::printf("ooc-child populate_seconds=%.6f index_seconds=%.6f "
              "query_seconds=%.6f queries=%zu matched=%zu data_bytes=%llu "
              "pool_bytes=%llu evictions=%llu writebacks=%llu\n",
              populate_seconds, index_seconds, query_seconds, queries, matched,
              data_bytes, pool_bytes, evictions, writebacks);
  std::printf("rss-child peak_bytes=%zu\n", SelfPeakRssBytes());
  return 0;
}

constexpr double kOocPageSize = static_cast<double>(sqlog::engine::kPageSize);

/// One row of the sweep matrix: configuration plus the child's numbers.
struct OocCell {
  const char* storage;
  const char* access;
  bool skipped = false;
  size_t queries = 0;
  OocResult result;
};

/// Emits the `"out_of_core"` JSON object (no trailing comma/newline).
void WriteOocJson(FILE* out, const std::vector<OocCell>& cells, size_t rows,
                  size_t buffer_pages, double speedup, bool rss_bounded) {
  std::fprintf(out, "  \"out_of_core\": {\n");
  std::fprintf(out, "    \"rows\": %zu,\n    \"buffer_pages\": %zu,\n", rows,
               buffer_pages);
  std::fprintf(out, "    \"index_over_scan_speedup\": %.3f,\n", speedup);
  std::fprintf(out, "    \"peak_rss_bounded\": %s,\n", rss_bounded ? "true" : "false");
  std::fprintf(out, "    \"configs\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const OocCell& cell = cells[i];
    const char* comma = i + 1 < cells.size() ? "," : "";
    if (cell.skipped) {
      std::fprintf(out,
                   "      {\"storage\": \"%s\", \"access\": \"%s\", "
                   "\"skipped\": true}%s\n",
                   cell.storage, cell.access, comma);
      continue;
    }
    std::fprintf(
        out,
        "      {\"storage\": \"%s\", \"access\": \"%s\", \"skipped\": false,\n"
        "       \"queries\": %zu, \"query_seconds\": %.6f, "
        "\"seconds_per_query\": %.9f,\n"
        "       \"populate_seconds\": %.6f, \"index_seconds\": %.6f,\n"
        "       \"data_bytes\": %llu, \"pool_bytes\": %llu,\n"
        "       \"evictions\": %llu, \"writebacks\": %llu, "
        "\"peak_rss_bytes\": %zu}%s\n",
        cell.storage, cell.access, cell.queries, cell.result.query_seconds,
        cell.result.query_seconds / static_cast<double>(cell.queries),
        cell.result.populate_seconds, cell.result.index_seconds,
        cell.result.data_bytes, cell.result.pool_bytes, cell.result.evictions,
        cell.result.writebacks, cell.result.peak_rss_bytes, comma);
  }
  std::fprintf(out, "    ]\n  }");
}

/// Runs one out-of-core sweep cell in a fresh child process and parses
/// its stats + peak-RSS lines.
bool RunOocChildConfig(const char* exe, const char* storage, const char* access,
                       size_t rows, size_t buffer_pages, size_t queries,
                       OocResult* out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  const std::string rows_arg = std::to_string(rows);
  const std::string pages_arg = std::to_string(buffer_pages);
  const std::string queries_arg = std::to_string(queries);
  const char* child_argv[] = {exe,      "--ooc-child",     storage,
                              access,   rows_arg.c_str(),  pages_arg.c_str(),
                              queries_arg.c_str(), nullptr};
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    execv(exe, const_cast<char**>(child_argv));
    _exit(127);
  }
  close(fds[1]);
  FILE* in = fdopen(fds[0], "r");
  bool got_stats = false;
  bool got_rss = false;
  if (in != nullptr) {
    char line[512];
    while (std::fgets(line, sizeof line, in) != nullptr) {
      if (std::sscanf(line,
                      "ooc-child populate_seconds=%lf index_seconds=%lf "
                      "query_seconds=%lf queries=%zu matched=%zu data_bytes=%llu "
                      "pool_bytes=%llu evictions=%llu writebacks=%llu",
                      &out->populate_seconds, &out->index_seconds,
                      &out->query_seconds, &out->queries, &out->matched,
                      &out->data_bytes, &out->pool_bytes, &out->evictions,
                      &out->writebacks) == 9) {
        got_stats = true;
      }
      if (std::sscanf(line, "rss-child peak_bytes=%zu", &out->peak_rss_bytes) == 1)
        got_rss = true;
    }
    std::fclose(in);
  } else {
    close(fds[0]);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0 && got_stats && got_rss;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqlog;
  if (argc > 1 && std::string(argv[1]) == "--rss-child")
    return RunRssChild(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "--ooc-child")
    return RunOocChild(argc, argv);
  const size_t ooc_rows = StripUintFlag(&argc, argv, "--rows", 200000);
  const size_t ooc_pages = StripUintFlag(&argc, argv, "--buffer-pages", 4096);
  const bool ooc_only = StripBoolFlag(&argc, argv, "--ooc-only");
  const std::string json_path = bench::StripJsonFlag(&argc, argv);
  bench::Banner("Sec. 6.3 — runtime of original Stifle queries vs rewritten queries",
                "paper Sec. 6.3: 10222 → 254 queries, 29.27x faster");

  // Out-of-core sweep: photoprimary at --rows across the storage x
  // access-path matrix, one fresh child process per cell. Full scans are
  // capped to a handful of queries (each one walks the whole table);
  // index cells run thousands of point probes. The in-memory cells are
  // skipped past 1M rows — the columnar backend would materialize every
  // Value, which is exactly what the paged backend exists to avoid.
  std::printf("Out-of-core sweep: photoprimary rows=%s, buffer pool %s pages (%.1f MiB)\n",
              bench::Thousands(ooc_rows).c_str(), bench::Thousands(ooc_pages).c_str(),
              static_cast<double>(ooc_pages) * kOocPageSize / (1024.0 * 1024.0));
  const size_t scan_queries =
      std::max<size_t>(3, std::min<size_t>(30, 3000000 / std::max<size_t>(ooc_rows, 1)));
  const size_t index_queries = std::min<size_t>(2000, ooc_rows);
  std::printf("  (scan cells run %zu queries, index cells %zu; each cell is a fresh "
              "process)\n", scan_queries, index_queries);
  std::vector<OocCell> ooc_cells(4);
  ooc_cells[0].storage = "memory"; ooc_cells[0].access = "scan";
  ooc_cells[1].storage = "memory"; ooc_cells[1].access = "index";
  ooc_cells[2].storage = "paged";  ooc_cells[2].access = "scan";
  ooc_cells[3].storage = "paged";  ooc_cells[3].access = "index";
  std::printf("  %-16s %14s %14s %16s %14s\n", "configuration", "populate s",
              "s per query", "peak RSS MiB", "evictions");
  for (OocCell& cell : ooc_cells) {
    const bool memory = std::strcmp(cell.storage, "memory") == 0;
    if (memory && ooc_rows > 1000000) {
      cell.skipped = true;
      std::printf("  %-16s skipped: %s rows would be fully materialized in RAM\n",
                  (std::string(cell.storage) + "/" + cell.access).c_str(),
                  bench::Thousands(ooc_rows).c_str());
      continue;
    }
    cell.queries = std::strcmp(cell.access, "index") == 0 ? index_queries : scan_queries;
    if (!RunOocChildConfig(argv[0], cell.storage, cell.access, ooc_rows, ooc_pages,
                           cell.queries, &cell.result)) {
      std::fprintf(stderr, "out-of-core child failed for %s/%s\n", cell.storage,
                   cell.access);
      return 1;
    }
    std::printf("  %-16s %13.2fs %14.6f %16.1f %14llu\n",
                (std::string(cell.storage) + "/" + cell.access).c_str(),
                cell.result.populate_seconds,
                cell.result.query_seconds / static_cast<double>(cell.queries),
                static_cast<double>(cell.result.peak_rss_bytes) / (1024.0 * 1024.0),
                cell.result.evictions);
  }
  const OocCell& paged_scan = ooc_cells[2];
  const OocCell& paged_index = ooc_cells[3];
  const double ooc_speedup = bench::SafeDiv(
      paged_scan.result.query_seconds / static_cast<double>(paged_scan.queries),
      paged_index.result.query_seconds / static_cast<double>(paged_index.queries));
  const unsigned long long ooc_pool_bytes = paged_index.result.pool_bytes;
  const bool ooc_rss_bounded =
      paged_index.result.peak_rss_bytes < ooc_pool_bytes + (512ull << 20) &&
      paged_scan.result.peak_rss_bytes < ooc_pool_bytes + (512ull << 20);
  std::printf("\n  paged table: %.1f MiB data through a %.1f MiB pool "
              "(peak RSS bounded: %s)\n",
              static_cast<double>(paged_index.result.data_bytes) / (1024.0 * 1024.0),
              static_cast<double>(ooc_pool_bytes) / (1024.0 * 1024.0),
              ooc_rss_bounded ? "yes" : "NO");
  std::printf("  index scan over full scan (paged, per query): %.1fx\n\n", ooc_speedup);

  if (ooc_only) {
    if (!json_path.empty()) {
      FILE* out = std::fopen(json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      std::fprintf(out, "{\n  \"benchmark\": \"sec63_runtime\",\n");
      WriteOocJson(out, ooc_cells, ooc_rows, ooc_pages, ooc_speedup, ooc_rss_bounded);
      std::fprintf(out, ",\n  \"peak_rss_bytes\": %zu\n}\n", SelfPeakRssBytes());
      std::fclose(out);
      std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
  }

  // A database big enough that scans dominate per-query cost.
  engine::Database db;
  Status populated = engine::PopulateSkyServerSample(db, 10000);
  if (!populated.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", populated.ToString().c_str());
    return 1;
  }
  engine::Executor executor(&db);
  std::vector<int64_t> objids = engine::PhotoObjIds(db);

  // Build Stifle slices the way the bots do: runs of 20-60 point lookups.
  Rng rng(20180416);
  size_t target_queries = 5000;
  const char* env = std::getenv("SQLOG_BENCH_QUERIES");
  if (env != nullptr) target_queries = std::strtoull(env, nullptr, 10);

  std::vector<std::vector<std::string>> instances;
  size_t total = 0;
  while (total < target_queries) {
    size_t run = 20 + rng.Uniform(41);
    std::vector<std::string> members;
    for (size_t i = 0; i < run; ++i) {
      members.push_back(StrFormat(
          "SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %lld",
          static_cast<long long>(objids[rng.Uniform(objids.size())])));
    }
    total += run;
    instances.push_back(std::move(members));
  }

  // Rewrite each instance with the DW solver.
  std::vector<std::string> rewritten;
  for (const auto& members : instances) {
    std::vector<core::ParsedQuery> parsed(members.size());
    std::vector<const core::ParsedQuery*> pointers;
    for (size_t i = 0; i < members.size(); ++i) {
      auto facts = sql::ParseAndAnalyze(members[i]);
      if (!facts.ok()) {
        std::fprintf(stderr, "parse failed: %s\n", facts.status().ToString().c_str());
        return 1;
      }
      parsed[i].facts = std::move(facts.value());
      pointers.push_back(&parsed[i]);
    }
    auto rewrite = core::RewriteDwStifle(pointers);
    if (!rewrite.ok()) {
      std::fprintf(stderr, "rewrite failed: %s\n", rewrite.status().ToString().c_str());
      return 1;
    }
    rewritten.push_back(std::move(rewrite.value()));
  }

  // Run the originals.
  Timer original_timer;
  size_t original_rows = 0;
  for (const auto& members : instances) {
    for (const auto& sql : members) {
      auto result = executor.ExecuteSql(sql);
      if (!result.ok()) {
        std::fprintf(stderr, "exec failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      original_rows += result->row_count();
    }
  }
  double original_seconds = original_timer.ElapsedSeconds();

  // Run the rewrites.
  Timer rewritten_timer;
  size_t rewritten_rows = 0;
  for (const auto& sql : rewritten) {
    auto result = executor.ExecuteSql(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "exec failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    rewritten_rows += result->row_count();
  }
  double rewritten_seconds = rewritten_timer.ElapsedSeconds();

  std::printf("%-22s %12s %12s\n", "", "original", "rewritten");
  std::printf("%-22s %12s %12s\n", "statements", bench::Thousands(total).c_str(),
              bench::Thousands(rewritten.size()).c_str());
  std::printf("%-22s %12.2f %12.2f\n", "runtime (s)", original_seconds, rewritten_seconds);
  std::printf("%-22s %12s %12s\n", "result rows", bench::Thousands(original_rows).c_str(),
              bench::Thousands(rewritten_rows).c_str());
  std::printf("\nstatement reduction: %.1fx (paper: 40.2x)\n",
              static_cast<double>(total) / static_cast<double>(rewritten.size()));
  std::printf("speedup:             %.2fx (paper: 29.27x)\n",
              original_seconds / rewritten_seconds);
  std::printf("\nNote: result-row counts can differ slightly because repeated objids\n"
              "inside one instance deduplicate in the IN-list — the rewrite returns\n"
              "each object once, which is the intended semantics.\n");

  // Threads sweep: the same end-to-end pipeline runtime question at
  // scale, over the study log, for the parallel engine. Output is
  // byte-identical across rows (pipeline_parallel_test proves it); only
  // wall time may change with the hardware's core count.
  std::printf("\nPipeline runtime vs num_threads (study log, %zu statements, "
              "%u hardware threads):\n",
              bench::StudySize(), std::thread::hardware_concurrency());
  log::QueryLog study = bench::GenerateStudyLog();
  double serial_seconds = 0.0;
  std::vector<std::pair<size_t, double>> thread_sweep;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    core::PipelineOptions options;
    options.num_threads = threads;
    Timer timer;
    core::PipelineResult result = bench::RunStudyPipeline(study, options);
    double seconds = timer.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    thread_sweep.emplace_back(threads, seconds);
    std::printf("  num_threads=%zu  %8.2fs  speedup %.2fx  (clean log %s)\n", threads,
                seconds, bench::SafeDiv(serial_seconds, seconds),
                bench::Thousands(result.stats.final_size).c_str());
  }

  // Streaming vs in-memory ingestion over the same study log read from a
  // CSV file. Each configuration re-runs this binary (--rss-child) in a
  // fresh process so the peak-RSS column is that run's own footprint.
  const char* tmpdir = std::getenv("TMPDIR");
  std::string input_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/sqlog_bench_stream_input.csv";
  std::string clean_path = input_path + ".clean";
  std::string removal_path = input_path + ".removal";
  Status written = log::LogIo::WriteFile(study, input_path);
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  study = log::QueryLog();

  std::printf("\nStreaming vs in-memory ingestion (study log from CSV, "
              "fresh process per run):\n");
  std::printf("  %-28s %10s %14s\n", "configuration", "seconds", "peak RSS MiB");
  struct SweepConfig {
    const char* label;
    const char* mode;
    size_t batch_size;
    size_t threads;
  };
  const SweepConfig sweep[] = {
      {"in-memory, 1 thread", "mem", 0, 1},
      {"in-memory, 8 threads", "mem", 0, 8},
      {"streaming b=1024, 1 thread", "stream", 1024, 1},
      {"streaming b=4096, 8 threads", "stream", 4096, 8},
      {"streaming b=65536, 8 threads", "stream", 65536, 8},
  };
  struct SweepRow {
    const SweepConfig* config;
    double seconds;
    size_t peak_rss;
  };
  std::vector<SweepRow> sweep_rows;
  for (const SweepConfig& config : sweep) {
    double seconds = 0.0;
    size_t peak_rss = 0;
    std::vector<std::string> args = {"--rss-child",
                                     config.mode,
                                     std::to_string(config.batch_size),
                                     std::to_string(config.threads),
                                     input_path,
                                     clean_path,
                                     removal_path};
    if (!RunChildConfig(argv[0], args, &seconds, &peak_rss)) {
      std::fprintf(stderr, "child run failed for %s\n", config.label);
      return 1;
    }
    sweep_rows.push_back({&config, seconds, peak_rss});
    std::printf("  %-28s %9.2fs %14.1f\n", config.label, seconds,
                static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  }
  std::remove(input_path.c_str());
  std::remove(clean_path.c_str());
  std::remove(removal_path.c_str());

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"sec63_runtime\",\n");
    std::fprintf(out, "  \"stifle\": {\n");
    std::fprintf(out, "    \"original_statements\": %zu,\n", total);
    std::fprintf(out, "    \"rewritten_statements\": %zu,\n", rewritten.size());
    std::fprintf(out, "    \"original_seconds\": %.6f,\n", original_seconds);
    std::fprintf(out, "    \"rewritten_seconds\": %.6f,\n", rewritten_seconds);
    std::fprintf(out, "    \"speedup\": %.3f\n  },\n",
                 bench::SafeDiv(original_seconds, rewritten_seconds));
    std::fprintf(out, "  \"pipeline_thread_sweep\": [\n");
    for (size_t i = 0; i < thread_sweep.size(); ++i) {
      std::fprintf(out,
                   "    {\"threads\": %zu, \"seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   thread_sweep[i].first, thread_sweep[i].second,
                   bench::SafeDiv(serial_seconds, thread_sweep[i].second),
                   i + 1 < thread_sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"ingestion_sweep\": [\n");
    for (size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& row = sweep_rows[i];
      std::fprintf(out,
                   "    {\"label\": \"%s\", \"seconds\": %.6f, "
                   "\"peak_rss_bytes\": %zu}%s\n",
                   row.config->label, row.seconds, row.peak_rss,
                   i + 1 < sweep_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    WriteOocJson(out, ooc_cells, ooc_rows, ooc_pages, ooc_speedup, ooc_rss_bounded);
    std::fprintf(out, ",\n  \"peak_rss_bytes\": %zu\n}\n", SelfPeakRssBytes());
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
