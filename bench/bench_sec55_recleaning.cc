// Sec. 5.5: after one cleaning pass, how many solvable antipatterns
// remain, and does a second pass converge? Paper: 0.09% after the first
// cleaning — negligible, so they stop after one pass.

#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Sec. 5.5 — residual solvable antipatterns after re-cleaning",
                "paper Sec. 5.5: 0.09% after the first pass");

  log::QueryLog raw = bench::GenerateStudyLog();

  log::QueryLog current = raw;
  std::printf("%-6s %-14s %-22s %-10s\n", "pass", "log size", "solvable AP queries",
              "share");
  for (int pass = 1; pass <= 4; ++pass) {
    core::PipelineResult result = bench::RunStudyPipeline(current);
    uint64_t solvable = result.stats.queries_dw + result.stats.queries_ds +
                        result.stats.queries_df + result.stats.queries_snc;
    double share = current.empty() ? 0.0
                                   : 100.0 * static_cast<double>(solvable) /
                                         static_cast<double>(current.size());
    std::printf("%-6d %-14s %-22s %9.3f%%\n", pass,
                bench::Thousands(current.size()).c_str(),
                bench::Thousands(solvable).c_str(), share);
    if (solvable == 0) break;
    current = result.clean_log;
  }

  std::printf("\nShape check vs paper Sec. 5.5: the share collapses after the first\n"
              "pass (merged DS pairs can line up into fresh DW runs, which the\n"
              "second pass absorbs) and reaches ~0 quickly.\n");
  return 0;
}
