// Table 5: results overview of the whole case study — log sizes at each
// stage and per-antipattern counts. Paper: 42.0M raw → 40.2M SELECT
// (95.9%) → 38.5M deduped (91.7%) → 30.5M final (72.5%); 1018 distinct
// DW / 6.3M queries, 6562 DS / 1.28M, 487 DF / 0.21M, 50 CTH candidates
// / 0.42M.

#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Table 5 — results overview", "paper Table 5");

  log::QueryLog raw = bench::GenerateStudyLog();
  Timer timer;
  core::PipelineResult result = bench::RunStudyPipeline(raw);
  double seconds = timer.ElapsedSeconds();

  std::printf("%s\n", result.stats.ToTable().c_str());
  std::printf("pipeline wall time: %.2fs over %s statements (%.0f stmts/s)\n\n", seconds,
              bench::Thousands(raw.size()).c_str(),
              bench::SafeRate(static_cast<double>(raw.size()), seconds));

  double final_share = 100.0 * static_cast<double>(result.stats.final_size) /
                       static_cast<double>(result.stats.original_size);
  std::printf("Shape check vs paper:\n");
  std::printf("  SELECT share          measured %5.1f%%   paper 95.9%%\n",
              100.0 *
                  static_cast<double>(result.stats.select_count +
                                      result.stats.duplicates_removed) /
                  static_cast<double>(result.stats.original_size));
  std::printf("  post-dedup share      measured %5.1f%%   paper 91.7%%\n",
              100.0 * static_cast<double>(result.stats.after_dedup_size) /
                  static_cast<double>(result.stats.original_size));
  std::printf("  final (clean) share   measured %5.1f%%   paper 72.5%%\n", final_share);
  std::printf("  DW >> DS >> DF query counts: %s >> %s >> %s (paper 6.3M >> 1.3M >> 0.2M)\n",
              bench::Thousands(result.stats.queries_dw).c_str(),
              bench::Thousands(result.stats.queries_ds).c_str(),
              bench::Thousands(result.stats.queries_df).c_str());
  return 0;
}
