// Table 7: the most popular patterns after cleaning — frequency,
// coverage, description, distinct IPs. Paper: all top-5 are spatial
// searches (fGetNearbyObjEq / fGetObjFromRect / HTM-range counts), most
// from a single IP; coverage 8.7% / 8.0% / 5.7% / 5.4% / 1.8%.

#include "analysis/describe.h"
#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Table 7 — most popular patterns after cleaning", "paper Table 7");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult first = bench::RunStudyPipeline(raw);
  // Re-run over the clean log so the ranking reflects the cleaned state.
  core::PipelineResult result = bench::RunStudyPipeline(first.clean_log);

  size_t parsed = result.parsed.queries.size();
  std::printf("%-4s %-10s %-9s %-4s %s\n", "#", "frequency", "coverage", "IPs",
              "description / skeleton");
  size_t shown = 0;
  for (size_t i = 0; i < result.patterns.size() && shown < 10; ++i) {
    const auto& pattern = result.patterns[i];
    if (pattern.length() != 1) continue;  // Table 7 lists template patterns
    if (result.PatternIsAntipattern(i, /*solvable_only=*/true)) continue;
    const auto& info = result.templates.Get(pattern.template_ids[0]);
    // Describe via the template's first concrete query.
    const auto& sample = result.parsed.queries[info.first_query];
    std::printf("%-4zu %-10s %7.2f%%  %-4zu %s\n", ++shown,
                bench::Thousands(pattern.frequency).c_str(),
                100.0 * static_cast<double>(pattern.frequency) /
                    static_cast<double>(parsed),
                pattern.user_popularity(),
                analysis::DescribeTemplate(sample.facts).c_str());
    std::printf("%31s %.100s\n", "",
                (info.tmpl.ssc + " " + info.tmpl.sfc + " " + info.tmpl.swc).c_str());
  }

  std::printf("\nShape check vs paper Table 7: spatial-search robots dominate; the\n"
              "most popular patterns come from very few IPs; no solvable\n"
              "antipattern remains in the top ranks after cleaning.\n");
  return 0;
}
