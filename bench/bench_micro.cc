// Micro-benchmarks (google-benchmark): component throughput of the
// pipeline stages, plus the DESIGN.md ablation comparing hash-first
// template grouping against canonical-string comparison.
//
// A custom main handles `--json=<path>` (google-benchmark rejects flags
// it does not know): after the registered benchmarks run, it measures
// the parse stage with the template fingerprint cache on and off over a
// template-heavy generator workload and writes the machine-readable
// comparison (records/sec, ns/record, hit rate, peak RSS) to the path —
// CI checks this in as BENCH_parse.json.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "catalog/schema.h"
#include "core/pipeline.h"
#include "core/template_store.h"
#include "log/generator.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/skeleton.h"
#include "util/csv.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace sqlog;

const char* kStatements[] = {
    "SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = 587722981742123456",
    "SELECT p.objID, p.ra, p.dec, p.r FROM fGetObjFromRect(180.0, 0.0, 180.5, 0.5) n, "
    "photoPrimary p WHERE n.objID = p.objID and r between 14 and 17",
    "SELECT g.objID, g.ra, g.dec, g.u, g.g, g.r, g.i, g.z, s.specObjID FROM photoObjAll "
    "as g JOIN fGetNearbyObjEq(180.0, 0.0, 1.0) as gn ON g.objID = gn.objID LEFT OUTER "
    "JOIN specObj s ON s.bestObjID = gn.objID",
    "SELECT count(*) FROM photoPrimary WHERE htmid >= 1099511627776 and htmid <= "
    "1099511644160",
};

void BM_Lex(benchmark::State& state) {
  const char* sql = kStatements[state.range(0)];
  for (auto _ : state) {
    auto tokens = sql::Lex(sql);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex)->DenseRange(0, 3);

void BM_Parse(benchmark::State& state) {
  const char* sql = kStatements[state.range(0)];
  for (auto _ : state) {
    auto stmt = sql::ParseSelect(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parse)->DenseRange(0, 3);

void BM_Analyze(benchmark::State& state) {
  const char* sql = kStatements[state.range(0)];
  for (auto _ : state) {
    auto facts = sql::ParseAndAnalyze(sql);
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_Analyze)->DenseRange(0, 3);

void BM_SkeletonPrint(benchmark::State& state) {
  auto stmt = sql::ParseSelect(kStatements[state.range(0)]);
  sql::PrintOptions opts;
  opts.placeholders = true;
  for (auto _ : state) {
    std::string printed = Print(*stmt.value(), opts);
    benchmark::DoNotOptimize(printed);
  }
}
BENCHMARK(BM_SkeletonPrint)->DenseRange(0, 3);

/// Ablation (DESIGN.md decision 1): template identity via fingerprint
/// hash with bucket verification...
void BM_TemplateGroupingHashFirst(benchmark::State& state) {
  std::vector<sql::QueryFacts> facts;
  for (int i = 0; i < 256; ++i) {
    auto f = sql::ParseAndAnalyze(
        StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %d", i));
    facts.push_back(std::move(f.value()));
  }
  for (auto _ : state) {
    core::TemplateStore store;
    for (size_t i = 0; i < facts.size(); ++i) {
      benchmark::DoNotOptimize(store.Intern(facts[i].tmpl, i));
    }
  }
}
BENCHMARK(BM_TemplateGroupingHashFirst);

/// ...versus grouping by the full canonical skeleton string.
void BM_TemplateGroupingStringKey(benchmark::State& state) {
  std::vector<sql::QueryFacts> facts;
  for (int i = 0; i < 256; ++i) {
    auto f = sql::ParseAndAnalyze(
        StrFormat("SELECT rowc_g, colc_g FROM photoPrimary WHERE objID = %d", i));
    facts.push_back(std::move(f.value()));
  }
  for (auto _ : state) {
    std::map<std::string, uint64_t> store;
    uint64_t next_id = 0;
    for (const auto& f : facts) {
      std::string key = f.tmpl.ssc + "|" + f.tmpl.sfc + "|" + f.tmpl.swc + "|" + f.tmpl.tail;
      auto [it, inserted] = store.try_emplace(key, next_id);
      if (inserted) ++next_id;
      benchmark::DoNotOptimize(it->second);
    }
  }
}
BENCHMARK(BM_TemplateGroupingStringKey);

/// A slice of the study log shared by the kernel benchmarks below: big
/// enough to wash out dispatch overhead, small enough per iteration.
const log::QueryLog& KernelBenchLog() {
  static log::QueryLog log = [] {
    log::GeneratorConfig config;
    config.target_statements = 20000;
    return log::GenerateLog(config);
  }();
  return log;
}

/// Pins the kernel table for one benchmark run: Arg(0) forces the
/// scalar twins, Arg(1) leaves runtime dispatch in charge — comparing
/// the two rows is the measured SIMD speedup on the study workload.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(int64_t arg) {
    if (arg == 0) simd::ForceLevelForTest(simd::Level::kScalar);
  }
  ~KernelModeGuard() { simd::ResetLevelForTest(); }
};

const char* KernelModeLabel(int64_t arg) { return arg == 0 ? "scalar" : "dispatched"; }

/// Lex + normalized-key fingerprint over the study slice — the hot loop
/// of the parse cache (skip-space/skip-identifier kernels plus the
/// block-wise 128-bit hash).
void BM_LexFingerprintKernels(benchmark::State& state) {
  const log::QueryLog& log = KernelBenchLog();
  KernelModeGuard guard(state.range(0));
  std::string key;
  for (auto _ : state) {
    for (const auto& record : log.records()) {
      auto tokens = sql::Lex(record.statement);
      if (!tokens.ok()) continue;
      key.clear();
      sql::AppendNormalizedKey(tokens.value(), &key);
      sql::TokenFingerprint fp = sql::FingerprintKey(key);
      benchmark::DoNotOptimize(fp);
    }
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(log.size()));
  }
  state.SetLabel(KernelModeLabel(state.range(0)));
}
BENCHMARK(BM_LexFingerprintKernels)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// CSV logical-line splitting over the serialized study slice, fed in
/// 64 KiB chunks like the streaming reader (quote/CR/LF scan kernel).
void BM_CsvSplitKernels(benchmark::State& state) {
  static std::string content = [] {
    std::string text;
    for (const auto& record : KernelBenchLog().records()) {
      text += Csv::JoinLine({std::to_string(record.seq),
                             std::to_string(record.timestamp_ms), record.user,
                             record.statement});
      text += '\n';
    }
    return text;
  }();
  KernelModeGuard guard(state.range(0));
  constexpr size_t kChunk = 64 * 1024;
  std::string line;
  for (auto _ : state) {
    Csv::LineSplitter splitter;
    size_t lines = 0;
    for (size_t i = 0; i < content.size(); i += kChunk) {
      splitter.Feed(std::string_view(content).substr(i, kChunk));
      while (splitter.Next(&line)) ++lines;
    }
    splitter.Finish();
    while (splitter.Next(&line)) ++lines;
    benchmark::DoNotOptimize(lines);
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(content.size()));
  }
  state.SetLabel(KernelModeLabel(state.range(0)));
}
BENCHMARK(BM_CsvSplitKernels)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_GenerateLog(benchmark::State& state) {
  for (auto _ : state) {
    log::GeneratorConfig config;
    config.target_statements = static_cast<size_t>(state.range(0));
    log::QueryLog log = log::GenerateLog(config);
    benchmark::DoNotOptimize(log);
    state.SetItemsProcessed(state.items_processed() + static_cast<int64_t>(log.size()));
  }
}
BENCHMARK(BM_GenerateLog)->Arg(5000)->Arg(20000);

/// End-to-end pipeline throughput. Second argument is the thread count
/// handed to PipelineOptions::num_threads (1 = serial path), sweeping
/// the parallel engine at fixed input size — compare the num_threads=1
/// and num_threads=4 rows for the end-to-end speedup.
void BM_FullPipeline(benchmark::State& state) {
  log::GeneratorConfig config;
  config.target_statements = static_cast<size_t>(state.range(0));
  log::QueryLog raw = log::GenerateLog(config);
  catalog::Schema schema = catalog::MakeSkyServerSchema();
  core::PipelineOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    core::Pipeline pipeline(options);
    pipeline.SetSchema(&schema);
    auto result = pipeline.Run(raw);
    benchmark::DoNotOptimize(result);
    state.SetItemsProcessed(state.items_processed() + static_cast<int64_t>(raw.size()));
  }
}
BENCHMARK(BM_FullPipeline)
    ->Args({5000, 1})
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Args({20000, 8})
    ->Unit(benchmark::kMillisecond);

/// Parse-stage throughput with the fingerprint cache on vs off (the
/// tentpole comparison; `sqlog --no-parse-cache` is the same switch).
void BM_ParseLog(benchmark::State& state) {
  static log::QueryLog raw = [] {
    log::GeneratorConfig config;
    config.target_statements = 20000;
    return log::GenerateLog(config);
  }();
  core::ParseCacheOptions options;
  options.enabled = state.range(0) != 0;
  for (auto _ : state) {
    core::TemplateStore store;
    core::ParsedLog parsed = core::ParseLog(raw, store, nullptr, 0, options);
    benchmark::DoNotOptimize(parsed);
    state.SetItemsProcessed(state.items_processed() + static_cast<int64_t>(raw.size()));
  }
}
BENCHMARK(BM_ParseLog)
    ->Arg(0)  // cache off: every SELECT takes the full parser
    ->Arg(1)  // cache on: repeats lex + fingerprint only
    ->Unit(benchmark::kMillisecond);

struct ParseMeasurement {
  double seconds = 0.0;
  double records_per_sec = 0.0;
  double ns_per_record = 0.0;
  core::ParseStats stats;
};

ParseMeasurement MeasureParse(const log::QueryLog& raw, bool cache_enabled) {
  core::ParseCacheOptions options;
  options.enabled = cache_enabled;
  // Warm-up pass (page in the records), then the timed pass.
  {
    core::TemplateStore store;
    core::ParsedLog parsed = core::ParseLog(raw, store, nullptr, 0, options);
    benchmark::DoNotOptimize(parsed);
  }
  ParseMeasurement m;
  Timer timer;
  core::TemplateStore store;
  core::ParsedLog parsed = core::ParseLog(raw, store, nullptr, 0, options);
  m.seconds = timer.ElapsedSeconds();
  m.stats = parsed.parse_stats;
  m.records_per_sec = bench::SafeRate(static_cast<double>(raw.size()), m.seconds);
  m.ns_per_record = bench::SafeDiv(m.seconds * 1e9, static_cast<double>(raw.size()));
  return m;
}

int WriteParseJson(const std::string& path) {
  log::QueryLog raw = bench::GenerateStudyLog();
  ParseMeasurement uncached = MeasureParse(raw, /*cache_enabled=*/false);
  ParseMeasurement cached = MeasureParse(raw, /*cache_enabled=*/true);
  const uint64_t keyed = cached.stats.cache_hits + cached.stats.cache_misses +
                         cached.stats.uncacheable_hits + cached.stats.failure_hits;
  const double hit_rate =
      keyed == 0 ? 0.0
                 : static_cast<double>(cached.stats.parses_avoided()) /
                       static_cast<double>(keyed);

  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"parse_avoidance\",\n");
  std::fprintf(out, "  \"records\": %zu,\n", raw.size());
  std::fprintf(out,
               "  \"uncached\": {\"seconds\": %.6f, \"records_per_sec\": %.1f, "
               "\"ns_per_record\": %.1f, \"full_parses\": %llu},\n",
               uncached.seconds, uncached.records_per_sec, uncached.ns_per_record,
               static_cast<unsigned long long>(uncached.stats.full_parses));
  std::fprintf(out,
               "  \"cached\": {\"seconds\": %.6f, \"records_per_sec\": %.1f, "
               "\"ns_per_record\": %.1f, \"full_parses\": %llu, "
               "\"cache_hit_rate\": %.4f, \"parses_avoided\": %llu, "
               "\"templates_cached\": %llu, \"cache_bytes\": %llu},\n",
               cached.seconds, cached.records_per_sec, cached.ns_per_record,
               static_cast<unsigned long long>(cached.stats.full_parses), hit_rate,
               static_cast<unsigned long long>(cached.stats.parses_avoided()),
               static_cast<unsigned long long>(cached.stats.templates_cached),
               static_cast<unsigned long long>(cached.stats.cache_bytes));
  const double speedup = bench::SafeDiv(uncached.seconds, cached.seconds);
  std::fprintf(out, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(out, "  \"peak_rss_bytes\": %zu\n}\n", bench::SelfPeakRssBytes());
  std::fclose(out);
  std::printf("wrote %s (parse speedup %.2fx, hit rate %.1f%%)\n", path.c_str(), speedup,
              hit_rate * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = sqlog::bench::StripJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) return WriteParseJson(json_path);
  return 0;
}
