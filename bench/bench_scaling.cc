// Scaling sweep: end-to-end records/sec across a threads × batch-size
// grid, with a per-stage wall-time breakdown (dedup, parse, mine,
// detect, sws, solve). The parse stage runs through StreamingParser fed
// in `batch_size` slices, so the sweep exercises the same sharded
// map-reduce + merge path the streaming ingester uses — the batch axis
// shows where merge overhead eats the shard parallelism, the thread
// axis shows which stages scale and which stay serial.
//
// `--json=<path>` writes the grid as BENCH_scaling.json for CI. Timing
// lives in this file, not in src/ (lint rule R2 keeps wall clocks out
// of the library); each configuration is best-of-N (SQLOG_BENCH_REPS,
// default 2) and every emitted rate goes through bench::SafeRate so a
// 0-record or 0-duration run yields 0, not `inf`.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "catalog/schema.h"
#include "core/antipattern.h"
#include "core/dedup.h"
#include "core/detector.h"
#include "core/pattern_miner.h"
#include "core/pipeline.h"
#include "core/solver.h"
#include "core/sws.h"
#include "core/template_store.h"
#include "log/record.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace sqlog;

struct StageSeconds {
  double dedup = 0.0;
  double parse = 0.0;
  double mine = 0.0;
  double detect = 0.0;
  double sws = 0.0;
  double solve = 0.0;
  size_t result_sink = 0;  // clean-log + SWS sizes, so stages stay observable

  double total() const { return dedup + parse + mine + detect + sws + solve; }
};

size_t Reps() {
  const char* env = std::getenv("SQLOG_BENCH_REPS");
  if (env != nullptr) {
    size_t v = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return 2;
}

/// One full staged run at the given thread count, feeding the parser in
/// `batch_size` slices. Stage options mirror the pipeline defaults; the
/// batch slices are copied out before the clock starts so the parse
/// number is FeedBatch + Finish, not memcpy.
StageSeconds RunOnce(const log::QueryLog& raw, const catalog::Schema& schema,
                     std::shared_ptr<const core::DetectorSet> detectors, size_t threads,
                     size_t batch_size) {
  const core::PipelineOptions defaults;
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads - 1);

  StageSeconds out;
  Timer timer;

  core::DedupStats dedup_stats;
  log::QueryLog pre_clean =
      core::RemoveDuplicates(raw, defaults.dedup, &dedup_stats, pool.get());
  out.dedup = timer.ElapsedSeconds();

  std::vector<std::vector<log::LogRecord>> batches;
  const std::vector<log::LogRecord>& records = pre_clean.records();
  for (size_t begin = 0; begin < records.size(); begin += batch_size) {
    size_t end = std::min(records.size(), begin + batch_size);
    batches.emplace_back(records.begin() + static_cast<ptrdiff_t>(begin),
                         records.begin() + static_cast<ptrdiff_t>(end));
  }

  core::TemplateStore store;
  timer.Reset();
  core::StreamingParser parser(store, /*max_diagnostics=*/0, pool.get());
  parser.ReserveQueries(records.size());
  for (const auto& batch : batches) parser.FeedBatch(batch);
  core::ParsedLog parsed = parser.Finish();
  out.parse = timer.ElapsedSeconds();

  timer.Reset();
  std::vector<core::Pattern> patterns = core::MinePatterns(parsed, defaults.miner, pool.get());
  core::SortByFrequency(patterns);
  out.mine = timer.ElapsedSeconds();

  timer.Reset();
  core::AntipatternReport report = core::DetectAntipatterns(
      parsed, store, &schema, defaults.detector, std::move(detectors), pool.get());
  out.detect = timer.ElapsedSeconds();

  timer.Reset();
  core::SwsReport sws = core::DetectSws(patterns, parsed.queries.size(), defaults.sws);
  out.sws = timer.ElapsedSeconds();

  timer.Reset();
  core::SolveOutcome outcome =
      core::SolveAntipatterns(pre_clean, parsed, report, defaults.detector.custom_rules);
  out.solve = timer.ElapsedSeconds();

  // Keep the otherwise-unused results observable so nothing is elided.
  out.result_sink = sws.patterns.size() + outcome.clean_log.size();

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::StripJsonFlag(&argc, argv);
  bench::Banner("Scaling sweep — records/sec vs threads × batch size",
                "paper Sec. 6.3 runtime discussion");

  log::QueryLog raw = bench::GenerateStudyLog();
  catalog::Schema schema = catalog::MakeSkyServerSchema();
  Result<std::shared_ptr<const core::DetectorSet>> detectors =
      core::DetectorSet::Resolve(core::PipelineOptions().detector);
  if (!detectors.ok()) {
    std::fprintf(stderr, "detector resolve failed: %s\n",
                 detectors.status().ToString().c_str());
    return 1;
  }

  const size_t reps = Reps();
  const size_t thread_axis[] = {1, 2, 4, 8};
  const size_t batch_axis[] = {1024, 16384, 1048576};

  struct Row {
    size_t threads;
    size_t batch_size;
    StageSeconds best;
  };
  std::vector<Row> rows;

  std::printf("%zu records, best of %zu runs per configuration\n\n", raw.size(), reps);
  std::printf("  %7s %9s %9s | %8s %8s %8s %8s %8s %8s | %12s\n", "threads", "batch",
              "seconds", "dedup", "parse", "mine", "detect", "sws", "solve", "records/s");
  for (size_t threads : thread_axis) {
    for (size_t batch_size : batch_axis) {
      StageSeconds best;
      for (size_t rep = 0; rep < reps; ++rep) {
        StageSeconds run = RunOnce(raw, schema, detectors.value(), threads, batch_size);
        if (rep == 0 || run.total() < best.total()) best = run;
      }
      rows.push_back({threads, batch_size, best});
      std::printf("  %7zu %9zu %8.2fs | %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f | %12.0f\n",
                  threads, batch_size, best.total(), best.dedup, best.parse, best.mine,
                  best.detect, best.sws, best.solve,
                  bench::SafeRate(static_cast<double>(raw.size()), best.total()));
    }
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"scaling\",\n");
    std::fprintf(out, "  \"records\": %zu,\n", raw.size());
    std::fprintf(out, "  \"best_of\": %zu,\n", reps);
    std::fprintf(out, "  \"configs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"threads\": %zu, \"batch_size\": %zu, \"seconds\": %.6f, "
                   "\"records_per_sec\": %.1f, \"stages\": {\"dedup\": %.6f, "
                   "\"parse\": %.6f, \"mine\": %.6f, \"detect\": %.6f, \"sws\": %.6f, "
                   "\"solve\": %.6f}}%s\n",
                   row.threads, row.batch_size, row.best.total(),
                   bench::SafeRate(static_cast<double>(raw.size()), row.best.total()),
                   row.best.dedup, row.best.parse, row.best.mine, row.best.detect,
                   row.best.sws, row.best.solve, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"peak_rss_bytes\": %zu\n}\n", bench::SelfPeakRssBytes());
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
