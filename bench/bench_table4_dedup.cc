// Table 4: experiments with the threshold parameter for deleting
// duplicates. Paper shape: ~96% of the log survives at 1s; larger
// thresholds remove only fractionally more; "non restricted" removes
// ~0.5% beyond the 1s setting.

#include "bench_common.h"
#include "core/dedup.h"

int main() {
  using namespace sqlog;
  bench::Banner("Table 4 — duplicate time threshold sweep",
                "paper Table 4 (sample of 5.7M queries; 95.95% at 1s, 95.41% unrestricted)");

  log::QueryLog raw = bench::GenerateStudyLog();
  std::printf("%-16s %14s %10s\n", "threshold", "log size", "% of orig");
  std::printf("%-16s %14s %10.2f\n", "Original Log",
              bench::Thousands(raw.size()).c_str(), 100.0);

  auto run = [&](const char* label, core::DedupOptions options) {
    core::DedupStats stats;
    log::QueryLog out = core::RemoveDuplicates(raw, options, &stats);
    std::printf("%-16s %14s %10.2f\n", label, bench::Thousands(out.size()).c_str(),
                100.0 * static_cast<double>(out.size()) / static_cast<double>(raw.size()));
  };

  for (int64_t seconds : {1, 2, 5, 10}) {
    core::DedupOptions options;
    options.threshold_ms = seconds * 1000;
    run(StrFormat("%lld sec", static_cast<long long>(seconds)).c_str(), options);
  }
  core::DedupOptions unrestricted;
  unrestricted.unrestricted = true;
  run("Non restricted", unrestricted);

  std::printf("\nExpected shape: most duplicates are caught at 1s; widening the\n"
              "threshold removes only fractionally more. The unrestricted setting\n"
              "additionally eats genuine re-issues of low-variety statements\n"
              "(web-form queries repeated across sessions), which is exactly why\n"
              "the paper warns against threshold = infinity.\n");
  return 0;
}
