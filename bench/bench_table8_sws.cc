// Table 8: SWS coverage depending on frequency and userPopularity
// thresholds. Paper grid (frequency columns 10% / 1% / 0.1% / 0.01%,
// userPopularity rows 1..16): 8.7%→35.4% on row 1, rising to
// 8.7%→46.3% at userPopularity 16.

#include "bench_common.h"
#include "core/sws.h"

int main() {
  using namespace sqlog;
  bench::Banner("Table 8 — SWS coverage vs (frequency, userPopularity) thresholds",
                "paper Table 8");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);
  size_t parsed = result.parsed.queries.size();

  const double kFrequencies[] = {0.10, 0.01, 0.001, 0.0001};
  const size_t kPopularities[] = {1, 2, 4, 8, 16};

  std::printf("%-16s", "userPopularity");
  for (double f : kFrequencies) std::printf(" %9.2f%%", 100.0 * f);
  std::printf("\n");

  double previous_row_tail = -1.0;
  for (size_t user_pop : kPopularities) {
    std::printf("%-16zu", user_pop);
    double row_tail = 0.0;
    for (double frequency : kFrequencies) {
      core::SwsOptions options;
      options.frequency_fraction = frequency;
      options.max_user_popularity = user_pop;
      core::SwsReport report = core::DetectSws(result.patterns, parsed, options);
      std::printf(" %9.1f%%", 100.0 * report.coverage);
      row_tail = report.coverage;
    }
    std::printf("\n");
    if (previous_row_tail >= 0.0 && row_tail + 1e-12 < previous_row_tail) {
      std::printf("  (warning: non-monotone row — unexpected)\n");
    }
    previous_row_tail = row_tail;
  }

  std::printf("\nShape check vs paper Table 8: coverage grows monotonically to the\n"
              "right (looser frequency) and downward (looser userPopularity),\n"
              "saturating once every single-user robot is included.\n");
  return 0;
}
