// Fig. 3: downstream query clustering (Nguyen et al. [1] reproduction) —
// cluster count, average cluster size, and runtime over thresholds
// 0.1..0.9 for the raw, cleaned, and removal logs. Paper: the raw log
// yields many small clusters (1393 at θ=0.9); removal yields few,
// large, interpretable ones (51 at θ=0.9); removal is fastest.

#include "analysis/clustering.h"
#include "bench_common.h"
#include "sql/skeleton.h"

namespace {

std::vector<sqlog::analysis::DataSpace> SpacesOf(const sqlog::log::QueryLog& log,
                                                 size_t limit) {
  std::vector<sqlog::analysis::DataSpace> spaces;
  spaces.reserve(std::min(log.size(), limit));
  for (const auto& record : log.records()) {
    if (spaces.size() >= limit) break;
    auto facts = sqlog::sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) continue;
    spaces.push_back(sqlog::analysis::ExtractDataSpace(facts.value()));
  }
  return spaces;
}

}  // namespace

int main() {
  using namespace sqlog;
  bench::Banner("Fig. 3 — clustering: count / avg size / runtime vs threshold",
                "paper Fig. 3 (1.3M-query sample; raw ≫ clean > removal cluster counts)");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);

  // Scale the paper's 1.3M sample down in proportion to the study size.
  size_t sample = bench::StudySize() / 8;
  auto raw_spaces = SpacesOf(result.pre_clean, sample);
  auto clean_spaces = SpacesOf(result.clean_log, sample);
  auto removal_spaces = SpacesOf(result.removal_log, sample);
  std::printf("samples: raw=%zu clean=%zu removal=%zu\n\n", raw_spaces.size(),
              clean_spaces.size(), removal_spaces.size());

  std::printf("%-10s | %22s | %22s | %22s\n", "", "clusters", "avg size", "runtime (s)");
  std::printf("%-10s | %6s %7s %7s | %6s %7s %7s | %6s %7s %7s\n", "threshold", "raw",
              "clean", "removal", "raw", "clean", "removal", "raw", "clean", "removal");

  for (double threshold = 0.1; threshold < 0.95; threshold += 0.1) {
    analysis::ClusteringOptions options;
    options.threshold = threshold;
    auto raw_result = analysis::ClusterDataSpaces(raw_spaces, options);
    auto clean_result = analysis::ClusterDataSpaces(clean_spaces, options);
    auto removal_result = analysis::ClusterDataSpaces(removal_spaces, options);
    std::printf("%-10.1f | %6zu %7zu %7zu | %6.0f %7.0f %7.0f | %6.2f %7.2f %7.2f\n",
                threshold, raw_result.cluster_count(), clean_result.cluster_count(),
                removal_result.cluster_count(), raw_result.average_size(),
                clean_result.average_size(), removal_result.average_size(),
                raw_result.runtime_seconds, clean_result.runtime_seconds,
                removal_result.runtime_seconds);
  }

  std::printf("\nShape check vs paper Fig. 3: the threshold has little effect (most\n"
              "pairwise distances are exactly 0 or 1); raw yields the most and\n"
              "smallest clusters; removal the fewest and biggest.\n");
  return 0;
}
