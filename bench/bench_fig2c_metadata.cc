// Fig. 2(c): top-10 pattern frequencies with full input (user/session
// metadata) versus reduced input (SQL + timestamps only). Paper: the
// frequencies barely move; the cleaned-log size differs by only 0.36%.

#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Fig. 2(c) — with vs without user/session metadata",
                "paper Fig. 2(c) + Sec. 6.8: result sizes differ by ~0.36%");

  log::QueryLog raw = bench::GenerateStudyLog();

  core::PipelineResult with_meta = bench::RunStudyPipeline(raw);

  core::PipelineOptions reduced;
  reduced.use_user_metadata = false;
  core::PipelineResult without_meta = bench::RunStudyPipeline(raw, reduced);

  std::printf("%-6s %-16s %-16s\n", "rank", "freq (with FI)", "freq (without FI)");
  size_t top = std::min<size_t>(10, std::min(with_meta.patterns.size(),
                                             without_meta.patterns.size()));
  for (size_t i = 0; i < top; ++i) {
    std::printf("%-6zu %-16s %-16s\n", i + 1,
                bench::Thousands(with_meta.patterns[i].frequency).c_str(),
                bench::Thousands(without_meta.patterns[i].frequency).c_str());
  }

  double size_delta =
      100.0 *
      (static_cast<double>(with_meta.stats.final_size) -
       static_cast<double>(without_meta.stats.final_size)) /
      static_cast<double>(with_meta.stats.final_size);
  std::printf("\nclean-log size: with FI %s, without FI %s (delta %.2f%%; paper 0.36%%)\n",
              bench::Thousands(with_meta.stats.final_size).c_str(),
              bench::Thousands(without_meta.stats.final_size).c_str(), size_delta);
  std::printf("solvable-antipattern queries: with FI %s, without FI %s\n",
              bench::Thousands(with_meta.stats.queries_dw + with_meta.stats.queries_ds +
                               with_meta.stats.queries_df)
                  .c_str(),
              bench::Thousands(without_meta.stats.queries_dw +
                               without_meta.stats.queries_ds +
                               without_meta.stats.queries_df)
                  .c_str());
  std::printf("\nShape check: top frequencies and cleaned sizes barely move without\n"
              "metadata, because instance members arrive back-to-back in time.\n");
  return 0;
}
