// Fig. 4(a,b): cluster sizes by rank at θ=0.9 for raw vs removal and
// cleaned vs removal; (c): the top-20 DS-clusters in the cleaned vs the
// raw log. Paper: every removal cluster also exists in raw and cleaned;
// DS-clusters in the raw log are ≈2× the size of their cleaned
// counterparts.

#include "analysis/clustering.h"
#include "bench_common.h"
#include "sql/skeleton.h"

namespace {

using sqlog::analysis::DataSpace;

struct Extracted {
  std::vector<DataSpace> spaces;
  std::vector<bool> is_ds;  // member of a DS-Stifle family (by truth label)
};

Extracted SpacesOf(const sqlog::log::QueryLog& log, size_t limit) {
  Extracted out;
  for (const auto& record : log.records()) {
    if (out.spaces.size() >= limit) break;
    auto facts = sqlog::sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) continue;
    out.spaces.push_back(sqlog::analysis::ExtractDataSpace(facts.value()));
    out.is_ds.push_back(record.truth == sqlog::log::TruthLabel::kDsStifle);
  }
  return out;
}

void PrintRankCurve(const char* label, const sqlog::analysis::ClusteringResult& result) {
  std::printf("%s: %zu clusters; sizes by rank:", label, result.cluster_count());
  size_t shown = 0;
  for (size_t rank = 0; rank < result.clusters.size() && shown < 12; rank += 1 + rank / 2) {
    std::printf(" #%zu=%zu", rank + 1, result.clusters[rank].size());
    ++shown;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sqlog;
  bench::Banner("Fig. 4 — cluster sizes by rank; DS-cluster sizes cleaned vs raw",
                "paper Fig. 4 (θ = 0.9)");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);

  size_t sample = bench::StudySize() / 8;
  Extracted raw_x = SpacesOf(result.pre_clean, sample);
  Extracted clean_x = SpacesOf(result.clean_log, sample);
  Extracted removal_x = SpacesOf(result.removal_log, sample);

  analysis::ClusteringOptions options;
  options.threshold = 0.9;
  auto raw_clusters = analysis::ClusterDataSpaces(raw_x.spaces, options);
  auto clean_clusters = analysis::ClusterDataSpaces(clean_x.spaces, options);
  auto removal_clusters = analysis::ClusterDataSpaces(removal_x.spaces, options);

  std::printf("(a) raw vs removal / (b) cleaned vs removal — size-by-rank curves:\n");
  PrintRankCurve("  raw    ", raw_clusters);
  PrintRankCurve("  cleaned", clean_clusters);
  PrintRankCurve("  removal", removal_clusters);

  // (c) DS-clusters: clusters containing DS-Stifle members, raw vs clean.
  auto ds_cluster_sizes = [](const analysis::ClusteringResult& clusters,
                             const std::vector<bool>& is_ds) {
    std::vector<size_t> sizes;
    for (const auto& cluster : clusters.clusters) {
      bool has_ds = false;
      for (size_t member : cluster.members) {
        if (is_ds[member]) {
          has_ds = true;
          break;
        }
      }
      if (has_ds) sizes.push_back(cluster.size());
    }
    return sizes;
  };
  // In the clean log, DS members were merged; find their rewritten form
  // via the data space (same FROM/WHERE): reuse truth labels carried by
  // the rewritten records (the merged record keeps the first member's
  // metadata, including its truth label).
  std::vector<bool> clean_is_ds;
  {
    size_t i = 0;
    for (const auto& record : result.clean_log.records()) {
      if (i >= clean_x.spaces.size()) break;
      auto facts = sql::ParseAndAnalyze(record.statement);
      if (!facts.ok()) continue;
      clean_is_ds.push_back(record.truth == log::TruthLabel::kDsStifle);
      ++i;
    }
  }

  auto raw_ds = ds_cluster_sizes(raw_clusters, raw_x.is_ds);
  auto clean_ds = ds_cluster_sizes(clean_clusters, clean_is_ds);
  std::printf("\n(c) top DS-cluster sizes (clusters containing DS-Stifle queries):\n");
  std::printf("    %-6s %-12s %-12s\n", "rank", "raw log", "cleaned log");
  for (size_t i = 0; i < 20 && (i < raw_ds.size() || i < clean_ds.size()); ++i) {
    std::printf("    %-6zu %-12s %-12s\n", i + 1,
                i < raw_ds.size() ? bench::Thousands(raw_ds[i]).c_str() : "-",
                i < clean_ds.size() ? bench::Thousands(clean_ds[i]).c_str() : "-");
  }
  double raw_total = 0;
  double clean_total = 0;
  for (size_t i = 0; i < raw_ds.size() && i < 20; ++i) raw_total += (double)raw_ds[i];
  for (size_t i = 0; i < clean_ds.size() && i < 20; ++i) clean_total += (double)clean_ds[i];
  if (clean_total > 0) {
    std::printf("\n    raw/cleaned DS-cluster mass ratio: %.1fx (paper: ≈2x)\n",
                raw_total / clean_total);
  }
  std::printf("\nShape check vs paper Fig. 4: removal's curve sits below raw's and\n"
              "cleaned's; DS-clusters shrink visibly after cleaning because the\n"
              "pairs collapsed into single statements.\n");
  return 0;
}
