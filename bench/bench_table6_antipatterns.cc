// Table 6: the most popular antipatterns — frequency, type, skeleton
// statements, distinct IPs. Paper: top 3 are DW-Stifles on
// photoprimary.objid (rowc_g/colc_g, rowc_r/colc_r, rowc_i/colc_i) from
// 1-3 IPs; ranks 4-5 are DS-Stifles on the same templates.

#include <algorithm>

#include "bench_common.h"

int main() {
  using namespace sqlog;
  bench::Banner("Table 6 — most popular antipatterns", "paper Table 6");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult result = bench::RunStudyPipeline(raw);

  auto distinct = result.antipatterns.distinct;
  // Keep solvable Stifles (what Table 6 lists) ranked by covered queries.
  distinct.erase(std::remove_if(distinct.begin(), distinct.end(),
                                [](const core::DistinctAntipattern& d) {
                                  return d.type == core::AntipatternType::kCthCandidate ||
                                         d.type == core::AntipatternType::kSnc;
                                }),
                 distinct.end());
  std::sort(distinct.begin(), distinct.end(),
            [](const auto& a, const auto& b) { return a.query_count > b.query_count; });

  std::printf("%-4s %-10s %-9s %-4s %s\n", "#", "queries", "type", "IPs",
              "skeleton statements");
  for (size_t i = 0; i < distinct.size() && i < 10; ++i) {
    const auto& d = distinct[i];
    std::string skeletons;
    for (size_t k = 0; k < d.template_ids.size() && k < 2; ++k) {
      const auto& tmpl = result.templates.Get(d.template_ids[k]).tmpl;
      if (k > 0) skeletons += "  ||  ";
      skeletons += tmpl.ssc + " " + tmpl.sfc + " " + tmpl.swc;
    }
    std::printf("%-4zu %-10s %-9s %-4zu %.110s\n", i + 1,
                bench::Thousands(d.query_count).c_str(),
                result.antipatterns.detectors->info(d.detector).display_name.c_str(),
                d.user_popularity(), skeletons.c_str());
  }

  std::printf("\nShape check vs paper Table 6: the top antipatterns are DW-Stifles\n"
              "filtering photoprimary by the internal objid key, issued by 1-3 IPs;\n"
              "DS-Stifles over the same centroid columns follow.\n");
  return 0;
}
