// Fig. 2(a): frequencies of the 30 most popular patterns before and
// after cleaning, with antipatterns flagged. Paper: 9 antipatterns in
// the top 30 (6 in the top 15) before; none after.

#include "bench_common.h"

namespace {

void PrintTop(const sqlog::core::PipelineResult& result, const char* label) {
  std::printf("%s (rank, frequency, users, flag):\n", label);
  size_t antipatterns_top15 = 0;
  size_t antipatterns_top30 = 0;
  size_t shown = 0;
  for (size_t i = 0; i < result.patterns.size() && shown < 30; ++i) {
    const auto& pattern = result.patterns[i];
    bool is_anti = result.PatternIsAntipattern(i, /*solvable_only=*/true);
    ++shown;
    if (is_anti && shown <= 15) ++antipatterns_top15;
    if (is_anti) ++antipatterns_top30;
    std::printf("  %2zu %10s %5zu %s\n", shown,
                sqlog::bench::Thousands(pattern.frequency).c_str(),
                pattern.user_popularity(), is_anti ? "ANTIPATTERN" : "pattern");
  }
  std::printf("  → antipatterns in top 15: %zu, in top 30: %zu\n\n", antipatterns_top15,
              antipatterns_top30);
}

}  // namespace

int main() {
  using namespace sqlog;
  bench::Banner("Fig. 2(a) — top-30 patterns before/after cleaning",
                "paper Fig. 2(a): 9 antipatterns in top 30 before, 0 after");

  log::QueryLog raw = bench::GenerateStudyLog();
  core::PipelineResult before = bench::RunStudyPipeline(raw);
  PrintTop(before, "BEFORE cleaning");

  core::PipelineResult after = bench::RunStudyPipeline(before.clean_log);
  PrintTop(after, "AFTER cleaning");

  std::printf("Shape check: solvable antipatterns appear among the top ranks before\n"
              "cleaning and disappear from them after.\n");
  return 0;
}
