#ifndef SQLOG_TOOLS_LINT_LINTER_H_
#define SQLOG_TOOLS_LINT_LINTER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/facts.h"
#include "util/status.h"

namespace sqlog::lint {

/// One diagnostic. `rule` is "R1".."R10" for the repo rules, or "config"
/// for problems with the lint input itself (malformed suppression,
/// unknown rule id, manifest type missing from its file). Config
/// findings are never suppressible.
struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  std::string ToString() const;
};

/// Parsed lint_config.txt. Format, one directive per line ('#' comments):
///
///   r1-allow <rel-path-prefix>
///       Files whose repo-relative path starts with the prefix may call
///       the SQL parser directly (R1).
///   manifest <path-suffix> <TypeName>
///       Concurrency manifest (R5): every mutable data member (trailing
///       '_' declarator) of TypeName, declared in a file whose path ends
///       with path-suffix, must carry one of the thread_annotations.h
///       markers: SQLOG_GUARDED_BY / SQLOG_PT_GUARDED_BY /
///       SQLOG_SHARD_LOCAL / SQLOG_CONST_AFTER_INIT /
///       SQLOG_SELF_SYNCHRONIZED.
///   r6-allow <rel-path-prefix>
///       Files whose repo-relative path starts with the prefix may derive
///       from core::Detector (R6). Everything else under src/ must keep
///       detector implementations in the registration unit so the global
///       registry stays the single catalog of detection behavior.
///   r7-allow <rel-path-prefix>
///       Files that may call the locale-dependent <cctype> classifiers
///       (R7) — the byte_class.h implementation itself.
///   layer <name> <rel-path-prefix>
///       Declares an architecture layer (R8): every file under the
///       prefix belongs to the layer. A file matching no layer is
///       unconstrained.
///   layer-edge <from> <to>
///       Declares that layer <from> may depend on (include from) layer
///       <to>. Dependencies are transitive: core → log and log → sql
///       together allow core → sql. Both names must be declared with
///       `layer` first, and the declared edges must form a DAG.
///   hot <rel-path-prefix>
///       Marks every function in matching files as hot for R10 (the
///       allocation lint). Individual functions elsewhere opt in with a
///       `// sqlog-hot` marker comment on or above the signature line.
///   exclude <rel-path-prefix>
///       Skipped during directory expansion in the driver (lint fixture
///       trees). Explicit file arguments are always linted.
struct LintConfig {
  struct ManifestEntry {
    std::string path_suffix;
    std::string type_name;
  };
  struct Layer {
    std::string name;
    std::string prefix;
  };
  std::vector<std::string> r1_allow;
  std::vector<ManifestEntry> manifest;
  std::vector<std::string> r6_allow;
  std::vector<std::string> r7_allow;
  std::vector<Layer> layers;
  std::vector<std::pair<std::string, std::string>> layer_edges;  // from → to
  std::vector<std::string> hot;
  std::vector<std::string> exclude;
};

/// Parses a config ("origin" names it in error messages). Rejects
/// layer-edge directives naming undeclared layers and declared edge sets
/// that contain a cycle (the layer graph must be a DAG).
Result<LintConfig> ParseConfig(std::string_view text, const std::string& origin);

/// Reads and parses a config file.
Result<LintConfig> LoadConfig(const std::string& path);

/// Phase 2: runs every rule over a merged fact database (repo-relative
/// path → facts, from ExtractFacts or the fact cache). Single-file rules
/// (R1-R7, R10) consult only that file's facts; R8 checks every include
/// edge against the layer DAG and reports include cycles among the
/// database's files; R9 builds the cross-file lock-order graph and
/// reports cycles as potential deadlocks. Findings come back sorted by
/// (file, line, rule).
std::vector<Finding> LintDb(const LintConfig& config, const FactDb& db);

/// Lints one source file's `content` (extract + LintDb over a
/// single-entry database).
///
/// `rel_path` is the repo-relative path: it scopes the path-dependent
/// rules (R2/R3 fire under src/core/, src/log/, and tests/; R1 consults
/// the allowlist; R5 consults the manifest; R8 consults the layer map;
/// R10 consults the hot list) and is the path findings report.
/// Suppression: a comment of the form `// sqlog-lint: allow(R2 reason)`
/// suppresses that one rule on its own line and on the next line; a
/// `// sqlog-lint: deterministic-merge(reason)` comment is the
/// R3-specific tag asserting the iteration order cannot reach output or
/// hashed state. An `allow(R10 reason)` on or above a function's
/// signature line suppresses the allocation rule for the whole function.
std::vector<Finding> LintSource(const LintConfig& config, const std::string& rel_path,
                                std::string_view content);

/// Reads `root`/`rel_path` and lints it. A non-empty `assume_path`
/// substitutes for `rel_path` in rule scoping and reported findings —
/// how the negative fixtures under tests/lint/ exercise the path-scoped
/// rules.
Result<std::vector<Finding>> LintFile(const LintConfig& config, const std::string& root,
                                      const std::string& rel_path,
                                      const std::string& assume_path = "");

}  // namespace sqlog::lint

#endif  // SQLOG_TOOLS_LINT_LINTER_H_
