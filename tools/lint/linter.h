#ifndef SQLOG_TOOLS_LINT_LINTER_H_
#define SQLOG_TOOLS_LINT_LINTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sqlog::lint {

/// One diagnostic. `rule` is "R1".."R6" for the repo rules, or "config"
/// for problems with the lint input itself (malformed suppression,
/// unknown rule id, manifest type missing from its file). Config
/// findings are never suppressible.
struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  std::string ToString() const;
};

/// Parsed lint_config.txt. Format, one directive per line ('#' comments):
///
///   r1-allow <rel-path-prefix>
///       Files whose repo-relative path starts with the prefix may call
///       the SQL parser directly (R1).
///   manifest <path-suffix> <TypeName>
///       Concurrency manifest (R5): every mutable data member (trailing
///       '_' declarator) of TypeName, declared in a file whose path ends
///       with path-suffix, must carry one of the thread_annotations.h
///       markers: SQLOG_GUARDED_BY / SQLOG_PT_GUARDED_BY /
///       SQLOG_SHARD_LOCAL / SQLOG_CONST_AFTER_INIT /
///       SQLOG_SELF_SYNCHRONIZED.
///   r6-allow <rel-path-prefix>
///       Files whose repo-relative path starts with the prefix may derive
///       from core::Detector (R6). Everything else under src/ must keep
///       detector implementations in the registration unit so the global
///       registry stays the single catalog of detection behavior.
struct LintConfig {
  struct ManifestEntry {
    std::string path_suffix;
    std::string type_name;
  };
  std::vector<std::string> r1_allow;
  std::vector<ManifestEntry> manifest;
  std::vector<std::string> r6_allow;
  std::vector<std::string> r7_allow;
};

/// Parses a config ("origin" names it in error messages).
Result<LintConfig> ParseConfig(std::string_view text, const std::string& origin);

/// Reads and parses a config file.
Result<LintConfig> LoadConfig(const std::string& path);

/// Lints one source file's `content`.
///
/// `rel_path` is the repo-relative path: it scopes the path-dependent
/// rules (R2/R3 fire only under src/core/ and src/log/; R1 consults the
/// allowlist; R5 consults the manifest) and is the path findings report.
/// Suppression: a comment of the form `// sqlog-lint: allow(R2 reason)`
/// suppresses that one rule on its own line and on the next line; a
/// `// sqlog-lint: deterministic-merge(reason)` comment is the
/// R3-specific tag asserting the iteration order cannot reach output or
/// hashed state.
std::vector<Finding> LintSource(const LintConfig& config, const std::string& rel_path,
                                std::string_view content);

/// Reads `root`/`rel_path` and lints it. A non-empty `assume_path`
/// substitutes for `rel_path` in rule scoping and reported findings —
/// how the negative fixtures under tests/lint/ exercise the path-scoped
/// rules.
Result<std::vector<Finding>> LintFile(const LintConfig& config, const std::string& root,
                                      const std::string& rel_path,
                                      const std::string& assume_path = "");

}  // namespace sqlog::lint

#endif  // SQLOG_TOOLS_LINT_LINTER_H_
