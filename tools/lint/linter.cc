#include "lint/linter.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace sqlog::lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `word` occurs at `pos` in `s` with word boundaries on both
/// sides. ':' is not a word character, so qualified names still match
/// their last component.
bool WordAt(std::string_view s, size_t pos, std::string_view word) {
  if (pos + word.size() > s.size()) return false;
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsWordChar(s[pos - 1])) return false;
  size_t end = pos + word.size();
  if (end < s.size() && IsWordChar(s[end])) return false;
  return true;
}

std::vector<size_t> FindWordAll(std::string_view s, std::string_view word) {
  std::vector<size_t> hits;
  for (size_t pos = s.find(word); pos != std::string_view::npos;
       pos = s.find(word, pos + 1)) {
    if (WordAt(s, pos, word)) hits.push_back(pos);
  }
  return hits;
}

size_t SkipSpaces(std::string_view s, size_t pos) {
  while (pos < s.size() && IsSpace(s[pos])) ++pos;
  return pos;
}

/// The input split into two equal-length masks: `code` keeps everything
/// outside comments and literal contents (literal quotes stay, contents
/// are blanked); `comments` keeps only comment text. Newlines survive in
/// both, so offsets and line numbers agree between the masks and the
/// original file.
struct SplitSource {
  std::string code;
  std::string comments;
};

SplitSource SplitCodeAndComments(std::string_view src) {
  SplitSource out;
  out.code.assign(src.size(), ' ');
  out.comments.assign(src.size(), ' ');
  auto keep_newlines = [&](size_t from, size_t to) {
    for (size_t k = from; k < to && k < src.size(); ++k) {
      if (src[k] == '\n') {
        out.code[k] = '\n';
        out.comments[k] = '\n';
      }
    }
  };
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      for (size_t k = i; k < end; ++k) out.comments[k] = src[k];
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      end = end == std::string_view::npos ? n : end + 2;
      for (size_t k = i; k < end; ++k) {
        out.comments[k] = src[k] == '\n' ? ' ' : src[k];
      }
      keep_newlines(i, end);
      i = end;
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (i == 0 || !IsWordChar(src[i - 1]))) {
      // Raw string literal: R"delim( ... )delim".
      size_t open = src.find('(', i + 2);
      if (open != std::string_view::npos) {
        std::string closer = ")";
        closer.append(src.substr(i + 2, open - (i + 2)));
        closer.push_back('"');
        size_t end = src.find(closer, open + 1);
        end = end == std::string_view::npos ? n : end + closer.size();
        out.code[i] = 'R';
        out.code[i + 1] = '"';
        out.code[end - 1] = '"';
        keep_newlines(i, end);
        i = end;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      out.code[i] = c;
      size_t k = i + 1;
      while (k < n && src[k] != c) {
        if (src[k] == '\\') ++k;
        if (src[k] == '\n') out.code[k] = '\n';  // unterminated; keep lines aligned
        ++k;
      }
      if (k < n) out.code[k] = c;
      i = k + 1;
      continue;
    }
    out.code[i] = c;
    ++i;
  }
  return out;
}

/// Offsets where each 1-based line starts, for offset → line mapping.
std::vector<size_t> LineStarts(std::string_view s) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

size_t LineOf(const std::vector<size_t>& starts, size_t offset) {
  auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<size_t>(it - starts.begin());  // 1-based
}

const std::set<std::string, std::less<>> kRuleIds = {"R1", "R2", "R3", "R4",
                                                     "R5", "R6", "R7"};

/// Inline suppressions: rule → lines it is allowed on.
struct Suppressions {
  std::map<size_t, std::set<std::string, std::less<>>> allowed_by_line;
  std::vector<Finding> errors;

  bool Allows(std::string_view rule, size_t line) const {
    auto it = allowed_by_line.find(line);
    return it != allowed_by_line.end() && it->second.count(rule) > 0;
  }
};

Suppressions CollectSuppressions(const std::string& rel_path, std::string_view comments,
                                 const std::vector<size_t>& line_starts) {
  Suppressions out;
  static constexpr std::string_view kMarker = "sqlog-lint:";
  for (size_t pos = comments.find(kMarker); pos != std::string_view::npos;
       pos = comments.find(kMarker, pos + kMarker.size())) {
    size_t line = LineOf(line_starts, pos);
    size_t p = SkipSpaces(comments, pos + kMarker.size());
    auto add_allow = [&](std::string_view rule) {
      // A suppression covers its own line and the next one, so it can
      // sit at the end of the offending line or on its own line above.
      out.allowed_by_line[line].emplace(rule);
      out.allowed_by_line[line + 1].emplace(rule);
    };
    if (StartsWith(comments.substr(p), "allow(")) {
      p += 6;
      size_t close = comments.find(')', p);
      if (close == std::string_view::npos) {
        out.errors.push_back({rel_path, line, "config",
                              "unterminated sqlog-lint: allow(...) suppression"});
        continue;
      }
      std::string_view body = comments.substr(p, close - p);
      size_t space = body.find_first_of(" \t");
      std::string_view rule = body.substr(0, space);
      std::string_view reason =
          space == std::string_view::npos ? std::string_view{} : body.substr(space + 1);
      while (!reason.empty() && IsSpace(reason.front())) reason.remove_prefix(1);
      if (kRuleIds.count(rule) == 0) {
        out.errors.push_back(
            {rel_path, line, "config",
             StrFormat("unknown rule id '%.*s' in sqlog-lint suppression (expected R1..R7)",
                       (int)rule.size(), rule.data())});
        continue;
      }
      if (reason.empty()) {
        out.errors.push_back(
            {rel_path, line, "config",
             StrFormat("sqlog-lint suppression for %.*s is missing a reason: "
                       "write allow(%.*s why-this-is-safe)",
                       (int)rule.size(), rule.data(), (int)rule.size(), rule.data())});
        continue;
      }
      add_allow(rule);
      continue;
    }
    if (StartsWith(comments.substr(p), "deterministic-merge")) {
      // The R3-specific tag: asserts the iteration order cannot reach
      // output or hashed state. An optional (reason) follows.
      add_allow("R3");
      continue;
    }
    out.errors.push_back({rel_path, line, "config",
                          "unrecognized sqlog-lint directive (expected allow(RN reason) "
                          "or deterministic-merge(reason))"});
  }
  return out;
}

void Report(std::vector<Finding>& findings, const Suppressions& supp,
            const std::string& rel_path, size_t line, std::string_view rule,
            std::string message) {
  if (supp.Allows(rule, line)) return;
  findings.push_back({rel_path, line, std::string(rule), std::move(message)});
}

// --- R1: direct parser calls --------------------------------------------

constexpr std::string_view kParserEntryPoints[] = {
    "ParseSelect", "ParseTokens", "ParseAndAnalyze", "ParseAndAnalyzeTokens"};

void CheckR1(const LintConfig& config, const std::string& rel_path,
             std::string_view code, const std::vector<size_t>& line_starts,
             const Suppressions& supp, std::vector<Finding>& findings) {
  for (const auto& prefix : config.r1_allow) {
    if (StartsWith(rel_path, prefix)) return;
  }
  for (std::string_view fn : kParserEntryPoints) {
    for (size_t pos : FindWordAll(code, fn)) {
      Report(findings, supp, rel_path, LineOf(line_starts, pos), "R1",
             StrFormat("direct SQL-parser call '%.*s' outside the parse-avoidance "
                       "allowlist; route statements through core::ParseLog / the "
                       "parse cache, or extend r1-allow in the lint config",
                       (int)fn.size(), fn.data()));
    }
  }
}

// --- R2: nondeterminism sources in src/core + src/log -------------------

bool InDeterministicScope(std::string_view rel_path) {
  return StartsWith(rel_path, "src/core/") || StartsWith(rel_path, "src/log/");
}

void CheckR2(const std::string& rel_path, std::string_view code,
             const std::vector<size_t>& line_starts, const Suppressions& supp,
             std::vector<Finding>& findings) {
  if (!InDeterministicScope(rel_path)) return;
  auto flag = [&](size_t pos, std::string_view what) {
    Report(findings, supp, rel_path, LineOf(line_starts, pos), "R2",
           StrFormat("nondeterminism source '%.*s' in pipeline code (src/core, "
                     "src/log must be bit-deterministic); use sqlog::Rng with a "
                     "fixed seed, or take timestamps from the input records",
                     (int)what.size(), what.data()));
  };
  for (std::string_view word : {"rand", "srand", "random_device"}) {
    for (size_t pos : FindWordAll(code, word)) flag(pos, word);
  }
  for (size_t pos = code.find("std::time"); pos != std::string_view::npos;
       pos = code.find("std::time", pos + 1)) {
    if (!WordAt(code, pos + 5, "time")) continue;  // e.g. std::timespec
    flag(pos, "std::time");
  }
  for (std::string_view engine : {"mt19937", "mt19937_64"}) {
    for (size_t pos : FindWordAll(code, engine)) {
      size_t p = SkipSpaces(code, pos + engine.size());
      if (p >= code.size()) continue;
      char c = code[p];
      if (c == ':' || c == '&' || c == '*' || c == '>' || c == ',') {
        continue;  // type usage (template arg, reference parameter, ...)
      }
      if (c == '(' || c == '{') {
        // Temporary: seeded when the parens/braces are non-empty.
        char close = c == '(' ? ')' : '}';
        if (SkipSpaces(code, p + 1) < code.size() &&
            code[SkipSpaces(code, p + 1)] != close) {
          continue;
        }
        flag(pos, engine);
        continue;
      }
      // Declaration: skip the variable name, then look at what follows.
      size_t q = p;
      while (q < code.size() && IsWordChar(code[q])) ++q;
      q = SkipSpaces(code, q);
      if (q >= code.size() || code[q] == ';' || code[q] == ',' || code[q] == ')') {
        flag(pos, engine);  // default-constructed → seeded from a fixed constant
        continue;
      }
      if (code[q] == '(' || code[q] == '{') {
        char close = code[q] == '(' ? ')' : '}';
        size_t arg = SkipSpaces(code, q + 1);
        if (arg >= code.size() || code[arg] == close) flag(pos, engine);
      }
    }
  }
}

// --- R3: unordered-container iteration ----------------------------------

/// Advances past a balanced template-argument list; `pos` is at '<'.
/// Returns the offset one past the matching '>'.
size_t SkipTemplateArgs(std::string_view code, size_t pos) {
  size_t angle = 0, paren = 0;
  while (pos < code.size()) {
    char c = code[pos];
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    if (paren == 0) {
      if (c == '<') ++angle;
      if (c == '>') {
        --angle;
        if (angle == 0) return pos + 1;
      }
    }
    ++pos;
  }
  return pos;
}

void CheckR3(const std::string& rel_path, std::string_view code,
             const std::vector<size_t>& line_starts, const Suppressions& supp,
             std::vector<Finding>& findings) {
  if (!InDeterministicScope(rel_path)) return;
  // Pass 1: names declared with an unordered container type.
  std::set<std::string, std::less<>> unordered_names;
  for (std::string_view container : {"unordered_map", "unordered_set",
                                     "unordered_multimap", "unordered_multiset"}) {
    for (size_t pos : FindWordAll(code, container)) {
      size_t p = SkipSpaces(code, pos + container.size());
      if (p >= code.size() || code[p] != '<') continue;
      p = SkipSpaces(code, SkipTemplateArgs(code, p));
      // A reference or pointer to an unordered container iterates in
      // hash order just the same — skip the declarator decoration.
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipSpaces(code, p + 1);
      }
      size_t name_begin = p;
      while (p < code.size() && IsWordChar(code[p])) ++p;
      if (p == name_begin) continue;  // e.g. ...>::iterator, closing a nested <>
      if (SkipSpaces(code, p) < code.size() && code[SkipSpaces(code, p)] == '(') {
        continue;  // function returning the container, not a variable
      }
      unordered_names.emplace(code.substr(name_begin, p - name_begin));
    }
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for loops whose range expression names one of them.
  for (size_t pos : FindWordAll(code, "for")) {
    size_t open = SkipSpaces(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    size_t depth = 0, colon = std::string_view::npos, close = std::string_view::npos;
    bool classic = false;
    for (size_t p = open; p < code.size(); ++p) {
      char c = code[p];
      if (c == '(') ++depth;
      if (c == ')') {
        if (--depth == 0) {
          close = p;
          break;
        }
      }
      if (depth == 1 && c == ';') classic = true;
      if (depth == 1 && c == ':' && colon == std::string_view::npos) {
        bool qualified = (p > 0 && code[p - 1] == ':') ||
                         (p + 1 < code.size() && code[p + 1] == ':');
        if (!qualified) colon = p;
      }
    }
    if (classic || colon == std::string_view::npos || close == std::string_view::npos) {
      continue;
    }
    std::string_view range_expr = code.substr(colon + 1, close - colon - 1);
    for (const auto& name : unordered_names) {
      if (FindWordAll(range_expr, name).empty()) continue;
      Report(findings, supp, rel_path, LineOf(line_starts, pos), "R3",
             StrFormat("range-for over unordered container '%s': iteration order is "
                       "not deterministic; sort a copy first, or assert the order "
                       "cannot reach output or hashed state with a "
                       "deterministic-merge(reason) tag",
                       name.c_str()));
      break;
    }
  }
}

// --- R4: raw std::mutex -------------------------------------------------

constexpr std::string_view kRawMutexTypes[] = {
    "std::mutex",        "std::recursive_mutex", "std::timed_mutex",
    "std::shared_mutex", "std::lock_guard",      "std::unique_lock",
    "std::scoped_lock",  "std::shared_lock"};

void CheckR4(const std::string& rel_path, std::string_view code,
             const std::vector<size_t>& line_starts, const Suppressions& supp,
             std::vector<Finding>& findings) {
  if (EndsWith(rel_path, "util/thread_annotations.h")) return;  // the wrapper itself
  for (std::string_view type : kRawMutexTypes) {
    std::string_view name = type.substr(5);  // past "std::"
    for (size_t pos = code.find(type); pos != std::string_view::npos;
         pos = code.find(type, pos + 1)) {
      if (!WordAt(code, pos + 5, name)) continue;
      if (pos > 0 && IsWordChar(code[pos - 1])) continue;
      Report(findings, supp, rel_path, LineOf(line_starts, pos), "R4",
             StrFormat("raw '%.*s' — use the annotated sqlog::util::Mutex / "
                       "MutexLock / CondVarLock wrappers (util/thread_annotations.h) "
                       "so -Wthread-safety and lint rule R5 can check the guarded "
                       "state",
                       (int)type.size(), type.data()));
    }
  }
}

// --- R5: concurrency-manifest annotations -------------------------------

constexpr std::string_view kMemberMarkers[] = {
    "SQLOG_GUARDED_BY", "SQLOG_PT_GUARDED_BY", "SQLOG_SHARD_LOCAL",
    "SQLOG_CONST_AFTER_INIT", "SQLOG_SELF_SYNCHRONIZED"};

/// One depth-1 statement of a class body.
struct MemberStatement {
  std::string text;
  size_t offset = 0;  // of its first non-space character
};

/// Collects the depth-1 `;`-terminated statements of the class body that
/// opens at `body_open` ('{'). Nested braces (inline function bodies,
/// nested types, brace initializers) are skipped wholesale, which keeps
/// the scan simple: R5 covers `type name_ = ...;`-style members, the
/// repo's style for mutable state.
std::vector<MemberStatement> ClassBodyStatements(std::string_view code,
                                                 size_t body_open) {
  std::vector<MemberStatement> out;
  MemberStatement current;
  size_t i = body_open + 1;
  while (i < code.size()) {
    char c = code[i];
    if (c == '}') break;  // end of the class body
    if (c == '{') {
      size_t depth = 1;
      for (++i; i < code.size() && depth > 0; ++i) {
        if (code[i] == '{') ++depth;
        if (code[i] == '}') --depth;
      }
      current = {};  // whatever preceded the brace was not a data member
      continue;
    }
    if (c == ';') {
      if (!current.text.empty()) out.push_back(std::move(current));
      current = {};
      ++i;
      continue;
    }
    if (!IsSpace(c) && current.text.empty()) current.offset = i;
    if (!current.text.empty() || !IsSpace(c)) current.text.push_back(c);
    ++i;
  }
  return out;
}

/// Splits a statement into word tokens at angle/paren depth 0, stopping
/// at a top-level '=' (the initializer). Returns the tokens seen.
std::vector<std::string> TopLevelTokens(std::string_view stmt) {
  std::vector<std::string> tokens;
  size_t angle = 0, paren = 0;
  std::string word;
  for (size_t i = 0; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    if (paren == 0 && c == '<') ++angle;
    if (paren == 0 && c == '>' && angle > 0) --angle;
    if (angle == 0 && paren == 0 && c == '=') break;
    if (IsWordChar(c) && angle == 0 && paren == 0) {
      word.push_back(c);
    } else if (!word.empty()) {
      tokens.push_back(std::move(word));
      word.clear();
    }
  }
  if (!word.empty()) tokens.push_back(std::move(word));
  return tokens;
}

void CheckR5(const LintConfig& config, const std::string& rel_path,
             std::string_view code, const std::vector<size_t>& line_starts,
             const Suppressions& supp, std::vector<Finding>& findings) {
  for (const auto& entry : config.manifest) {
    if (!EndsWith(rel_path, entry.path_suffix)) continue;
    // Locate `class Name {` / `struct Name {` (or with a base clause).
    size_t body_open = std::string_view::npos;
    for (size_t pos : FindWordAll(code, entry.type_name)) {
      // The keyword must directly precede the name.
      size_t back = pos;
      while (back > 0 && IsSpace(code[back - 1])) --back;
      size_t kw_end = back;
      while (back > 0 && IsWordChar(code[back - 1])) --back;
      std::string_view kw = code.substr(back, kw_end - back);
      if (kw != "class" && kw != "struct") continue;
      size_t p = pos + entry.type_name.size();
      while (p < code.size() && code[p] != '{' && code[p] != ';') ++p;
      if (p < code.size() && code[p] == '{') {
        body_open = p;
        break;
      }
    }
    if (body_open == std::string_view::npos) {
      findings.push_back({rel_path, 1, "config",
                          StrFormat("concurrency-manifest type '%s' not found in this "
                                    "file; update the lint config",
                                    entry.type_name.c_str())});
      continue;
    }
    for (const auto& stmt : ClassBodyStatements(code, body_open)) {
      std::string_view text = stmt.text;
      // Drop access-specifier labels glued to the statement front.
      for (std::string_view label : {"public", "protected", "private"}) {
        if (StartsWith(text, label)) {
          size_t p = SkipSpaces(text, label.size());
          if (p < text.size() && text[p] == ':') text.remove_prefix(p + 1);
        }
      }
      bool has_marker = false;
      for (std::string_view marker : kMemberMarkers) {
        if (!FindWordAll(text, marker).empty()) has_marker = true;
      }
      if (has_marker) continue;
      std::vector<std::string> tokens = TopLevelTokens(text);
      if (tokens.empty()) continue;
      static const std::set<std::string, std::less<>> kSkipLeading = {
          "using", "typedef", "friend", "static", "constexpr", "const",
          "class",  "struct", "enum",   "explicit"};
      if (kSkipLeading.count(tokens.front()) > 0) continue;
      if (tokens.front() == "Mutex") continue;  // the capability itself
      const std::string& declarator = tokens.back();
      if (declarator.empty() || declarator.back() != '_') continue;
      Report(findings, supp, rel_path, LineOf(line_starts, stmt.offset), "R5",
             StrFormat("mutable member '%s' of concurrency-manifest type '%s' has no "
                       "annotation; add SQLOG_GUARDED_BY(mu), SQLOG_SHARD_LOCAL, "
                       "SQLOG_CONST_AFTER_INIT, or SQLOG_SELF_SYNCHRONIZED "
                       "(util/thread_annotations.h)",
                       declarator.c_str(), entry.type_name.c_str()));
    }
  }
}

// --- R6: Detector implementations outside the registration unit ---------

/// A class deriving from core::Detector anywhere under src/ except the
/// allowlisted registration unit bypasses the plugin registry: its
/// behavior would not appear in DetectorRegistry::Global().Ids(), the
/// `sqlog report` catalog, or the statistics rows. The scan looks for a
/// base-clause use of the word `Detector` — i.e. one preceded (past any
/// `ns::` qualifiers) by an access specifier or a lone base-clause ':'.
/// Type uses (`Detector&`, `std::vector<Detector*>`, `class Detector {`)
/// never match.
void CheckR6(const LintConfig& config, const std::string& rel_path,
             std::string_view code, const std::vector<size_t>& line_starts,
             const Suppressions& supp, std::vector<Finding>& findings) {
  if (!StartsWith(rel_path, "src/")) return;
  for (const auto& prefix : config.r6_allow) {
    if (StartsWith(rel_path, prefix)) return;
  }
  for (size_t pos : FindWordAll(code, "Detector")) {
    // Walk backward past `ns::` qualifiers (core::Detector, sqlog::core::
    // Detector) to whatever introduces the name.
    size_t back = pos;
    while (back >= 2 && code[back - 1] == ':' && code[back - 2] == ':') {
      back -= 2;
      while (back > 0 && IsWordChar(code[back - 1])) --back;
      while (back > 0 && IsSpace(code[back - 1])) --back;
    }
    while (back > 0 && IsSpace(code[back - 1])) --back;
    if (back == 0) continue;
    bool base_clause = false;
    if (IsWordChar(code[back - 1])) {
      size_t end = back;
      while (back > 0 && IsWordChar(code[back - 1])) --back;
      std::string_view word = code.substr(back, end - back);
      base_clause = word == "public" || word == "protected" || word == "private";
    } else if (code[back - 1] == ':' && (back < 2 || code[back - 2] != ':')) {
      // A lone ':' is either a base clause (struct X : Detector — default
      // inheritance) or an access label (public: Detector* d). The word
      // before the colon disambiguates: labels ARE the specifier word.
      size_t q = back - 1;
      while (q > 0 && IsSpace(code[q - 1])) --q;
      size_t end = q;
      while (q > 0 && IsWordChar(code[q - 1])) --q;
      std::string_view before = code.substr(q, end - q);
      base_clause = end > q && before != "public" && before != "protected" &&
                    before != "private";
    }
    if (!base_clause) continue;
    Report(findings, supp, rel_path, LineOf(line_starts, pos), "R6",
           "class derives from core::Detector outside the registration unit; "
           "implement detectors in src/core/detectors.cc next to "
           "RegisterBuiltinDetectors() so the global registry stays the single "
           "catalog, or extend r6-allow in the lint config");
  }
}

// --- R7: locale-dependent <cctype> classification in src/ ---------------

/// The <cctype> classifiers and case mappers read the global locale, so
/// their verdict on bytes >= 0x80 depends on the host environment —
/// tokenization, fingerprint keys, and case folds would differ between
/// machines running the same binary on the same log. util/byte_class.h
/// is the locale-independent replacement (and the only allowed home for
/// these calls, via r7-allow).
constexpr std::string_view kCtypeClassifiers[] = {
    "isalpha", "isalnum", "isdigit", "isxdigit", "isspace", "isupper",
    "islower", "ispunct", "isprint", "isgraph",  "iscntrl", "isblank",
    "tolower", "toupper",
};

void CheckR7(const LintConfig& config, const std::string& rel_path,
             std::string_view code, const std::vector<size_t>& line_starts,
             const Suppressions& supp, std::vector<Finding>& findings) {
  if (!StartsWith(rel_path, "src/")) return;
  for (const auto& prefix : config.r7_allow) {
    if (StartsWith(rel_path, prefix)) return;
  }
  for (std::string_view fn : kCtypeClassifiers) {
    for (size_t pos : FindWordAll(code, fn)) {
      Report(findings, supp, rel_path, LineOf(line_starts, pos), "R7",
             StrFormat("locale-dependent <cctype> call '%.*s'; use the "
                       "byte-class helpers from util/byte_class.h (IsAlphaByte, "
                       "ToLowerByte, ...) so classification cannot vary with the "
                       "host locale, or extend r7-allow in the lint config",
                       (int)fn.size(), fn.data()));
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  return StrFormat("%s:%zu: %s: %s", file.c_str(), line, rule.c_str(),
                   message.c_str());
}

Result<LintConfig> ParseConfig(std::string_view text, const std::string& origin) {
  LintConfig config;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive) || directive[0] == '#') continue;
    if (directive == "r1-allow") {
      std::string prefix;
      if (!(fields >> prefix)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: r1-allow needs a path prefix", origin.c_str(),
                      line_number));
      }
      config.r1_allow.push_back(std::move(prefix));
      continue;
    }
    if (directive == "r6-allow") {
      std::string prefix;
      if (!(fields >> prefix)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: r6-allow needs a path prefix", origin.c_str(),
                      line_number));
      }
      config.r6_allow.push_back(std::move(prefix));
      continue;
    }
    if (directive == "r7-allow") {
      std::string prefix;
      if (!(fields >> prefix)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: r7-allow needs a path prefix", origin.c_str(),
                      line_number));
      }
      config.r7_allow.push_back(std::move(prefix));
      continue;
    }
    if (directive == "manifest") {
      LintConfig::ManifestEntry entry;
      if (!(fields >> entry.path_suffix >> entry.type_name)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: manifest needs <path-suffix> <TypeName>",
                      origin.c_str(), line_number));
      }
      config.manifest.push_back(std::move(entry));
      continue;
    }
    return Status::InvalidArgument(StrFormat("%s:%zu: unknown directive '%s'",
                                             origin.c_str(), line_number,
                                             directive.c_str()));
  }
  return config;
}

Result<LintConfig> LoadConfig(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrFormat("cannot open lint config %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseConfig(buffer.str(), path);
}

std::vector<Finding> LintSource(const LintConfig& config, const std::string& rel_path,
                                std::string_view content) {
  SplitSource split = SplitCodeAndComments(content);
  std::vector<size_t> line_starts = LineStarts(split.code);
  Suppressions supp = CollectSuppressions(rel_path, split.comments, line_starts);

  std::vector<Finding> findings = supp.errors;
  CheckR1(config, rel_path, split.code, line_starts, supp, findings);
  CheckR2(rel_path, split.code, line_starts, supp, findings);
  CheckR3(rel_path, split.code, line_starts, supp, findings);
  CheckR4(rel_path, split.code, line_starts, supp, findings);
  CheckR5(config, rel_path, split.code, line_starts, supp, findings);
  CheckR6(config, rel_path, split.code, line_starts, supp, findings);
  CheckR7(config, rel_path, split.code, line_starts, supp, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

Result<std::vector<Finding>> LintFile(const LintConfig& config, const std::string& root,
                                      const std::string& rel_path,
                                      const std::string& assume_path) {
  std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return Status::IoError(StrFormat("cannot open %s", full.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(config, assume_path.empty() ? rel_path : assume_path, buffer.str());
}

}  // namespace sqlog::lint
