#include "lint/linter.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace sqlog::lint {

namespace {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool MatchesAnyPrefix(const std::vector<std::string>& prefixes, std::string_view path) {
  for (const auto& prefix : prefixes) {
    if (StartsWith(path, prefix)) return true;
  }
  return false;
}

/// Inline suppressions for one file, rebuilt from the fact table.
struct Suppressions {
  std::map<size_t, std::set<std::string, std::less<>>> allowed_by_line;

  explicit Suppressions(const FileFacts& facts) {
    for (const auto& supp : facts.suppressions) {
      allowed_by_line[supp.line].emplace(supp.rule);
    }
  }

  bool Allows(std::string_view rule, size_t line) const {
    auto it = allowed_by_line.find(line);
    return it != allowed_by_line.end() && it->second.count(rule) > 0;
  }
};

void Report(std::vector<Finding>& findings, const Suppressions& supp,
            const std::string& rel_path, size_t line, std::string_view rule,
            std::string message) {
  if (supp.Allows(rule, line)) return;
  findings.push_back({rel_path, line, std::string(rule), std::move(message)});
}

// --- single-file rule-site checks (R1, R2, R3, R4, R6, R7) ---------------

bool InDeterministicScope(std::string_view rel_path) {
  return StartsWith(rel_path, "src/core/") || StartsWith(rel_path, "src/log/") ||
         StartsWith(rel_path, "tests/");
}

void CheckRuleSites(const LintConfig& config, const std::string& rel_path,
                    const FileFacts& facts, const Suppressions& supp,
                    std::vector<Finding>& findings) {
  const bool r1_scoped = !MatchesAnyPrefix(config.r1_allow, rel_path);
  const bool deterministic = InDeterministicScope(rel_path);
  const bool r4_scoped = !EndsWith(rel_path, "util/thread_annotations.h");
  const bool r6_scoped =
      StartsWith(rel_path, "src/") && !MatchesAnyPrefix(config.r6_allow, rel_path);
  const bool r7_scoped =
      StartsWith(rel_path, "src/") && !MatchesAnyPrefix(config.r7_allow, rel_path);

  for (const auto& site : facts.rule_sites) {
    if (site.rule == "R1") {
      if (!r1_scoped) continue;
      Report(findings, supp, rel_path, site.line, "R1",
             StrFormat("direct SQL-parser call '%s' outside the parse-avoidance "
                       "allowlist; route statements through core::ParseLog / the "
                       "parse cache, or extend r1-allow in the lint config",
                       site.detail.c_str()));
    } else if (site.rule == "R2") {
      if (!deterministic) continue;
      Report(findings, supp, rel_path, site.line, "R2",
             StrFormat("nondeterminism source '%s' in pipeline code (src/core, "
                       "src/log, tests must be bit-deterministic); use sqlog::Rng "
                       "with a fixed seed, or take timestamps from the input records",
                       site.detail.c_str()));
    } else if (site.rule == "R3") {
      if (!deterministic) continue;
      Report(findings, supp, rel_path, site.line, "R3",
             StrFormat("range-for over unordered container '%s': iteration order is "
                       "not deterministic; sort a copy first, or assert the order "
                       "cannot reach output or hashed state with a "
                       "deterministic-merge(reason) tag",
                       site.detail.c_str()));
    } else if (site.rule == "R4") {
      if (!r4_scoped) continue;
      Report(findings, supp, rel_path, site.line, "R4",
             StrFormat("raw '%s' — use the annotated sqlog::util::Mutex / "
                       "MutexLock / CondVarLock wrappers (util/thread_annotations.h) "
                       "so -Wthread-safety and lint rule R5 can check the guarded "
                       "state",
                       site.detail.c_str()));
    } else if (site.rule == "R6") {
      if (!r6_scoped) continue;
      Report(findings, supp, rel_path, site.line, "R6",
             "class derives from core::Detector outside the registration unit; "
             "implement detectors in src/core/detectors.cc next to "
             "RegisterBuiltinDetectors() so the global registry stays the single "
             "catalog, or extend r6-allow in the lint config");
    } else if (site.rule == "R7") {
      if (!r7_scoped) continue;
      Report(findings, supp, rel_path, site.line, "R7",
             StrFormat("locale-dependent <cctype> call '%s'; use the "
                       "byte-class helpers from util/byte_class.h (IsAlphaByte, "
                       "ToLowerByte, ...) so classification cannot vary with the "
                       "host locale, or extend r7-allow in the lint config",
                       site.detail.c_str()));
    }
  }
}

// --- R5: concurrency-manifest annotations -------------------------------

void CheckR5(const LintConfig& config, const std::string& rel_path,
             const FileFacts& facts, const Suppressions& supp,
             std::vector<Finding>& findings) {
  static const std::set<std::string, std::less<>> kSkipLeading = {
      "using", "typedef", "friend", "static", "constexpr", "const",
      "class",  "struct", "enum",   "explicit"};
  for (const auto& entry : config.manifest) {
    if (!EndsWith(rel_path, entry.path_suffix)) continue;
    bool type_found = false;
    for (const auto& type : facts.types) {
      if (type.name == entry.type_name) type_found = true;
    }
    if (!type_found) {
      findings.push_back({rel_path, 1, "config",
                          StrFormat("concurrency-manifest type '%s' not found in this "
                                    "file; update the lint config",
                                    entry.type_name.c_str())});
      continue;
    }
    for (const auto& member : facts.members) {
      if (member.type_name != entry.type_name) continue;
      if (member.annotated) continue;
      if (kSkipLeading.count(member.leading) > 0) continue;
      if (member.leading == "Mutex") continue;  // the capability itself
      if (member.declarator.empty() || member.declarator.back() != '_') continue;
      Report(findings, supp, rel_path, member.line, "R5",
             StrFormat("mutable member '%s' of concurrency-manifest type '%s' has no "
                       "annotation; add SQLOG_GUARDED_BY(mu), SQLOG_SHARD_LOCAL, "
                       "SQLOG_CONST_AFTER_INIT, or SQLOG_SELF_SYNCHRONIZED "
                       "(util/thread_annotations.h)",
                       member.declarator.c_str(), entry.type_name.c_str()));
    }
  }
}

// --- R8: layering DAG ----------------------------------------------------

/// The layer a repo-relative path belongs to, or nullptr.
const LintConfig::Layer* LayerOf(const LintConfig& config, std::string_view path) {
  for (const auto& layer : config.layers) {
    if (StartsWith(path, layer.prefix)) return &layer;
  }
  return nullptr;
}

/// Resolves an include target to a repo-relative path. Quoted includes
/// resolve against the two include roots (src/, tools/) the build uses;
/// the raw target is tried last so fixture files can name repo paths
/// directly.
std::vector<std::string> IncludeCandidates(const std::string& target) {
  return {"src/" + target, "tools/" + target, target};
}

const LintConfig::Layer* IncludeTargetLayer(const LintConfig& config,
                                            const std::string& target) {
  for (const auto& cand : IncludeCandidates(target)) {
    if (const auto* layer = LayerOf(config, cand)) return layer;
  }
  return nullptr;
}

/// layer name → set of layer names it may (transitively) depend on.
using LayerClosure = std::map<std::string, std::set<std::string>>;

LayerClosure BuildLayerClosure(const LintConfig& config) {
  LayerClosure allowed;
  for (const auto& [from, to] : config.layer_edges) allowed[from].insert(to);
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [from, tos] : allowed) {
      std::set<std::string> next = tos;
      for (const auto& to : tos) {
        auto it = allowed.find(to);
        if (it == allowed.end()) continue;
        next.insert(it->second.begin(), it->second.end());
      }
      if (next.size() != tos.size()) {
        tos = std::move(next);
        changed = true;
      }
    }
  }
  return allowed;
}

void CheckR8Edges(const LintConfig& config, const LayerClosure& closure,
                  const std::string& rel_path, const FileFacts& facts,
                  const Suppressions& supp, std::vector<Finding>& findings) {
  const LintConfig::Layer* from = LayerOf(config, rel_path);
  if (from == nullptr) return;  // unlayered files are unconstrained
  auto it = closure.find(from->name);
  const std::set<std::string>* allowed = it == closure.end() ? nullptr : &it->second;
  for (const auto& inc : facts.includes) {
    if (inc.angled) continue;  // system headers are outside the DAG
    const LintConfig::Layer* to = IncludeTargetLayer(config, inc.target);
    if (to == nullptr || to->name == from->name) continue;
    if (allowed != nullptr && allowed->count(to->name) > 0) continue;
    Report(findings, supp, rel_path, inc.line, "R8",
           StrFormat("include \"%s\" is a layering back-edge: layer '%s' may not "
                     "depend on layer '%s' (declared DAG: util ← sql ← {log, "
                     "catalog} ← core ← {engine, analysis} ← tools); invert the "
                     "dependency or declare a layer-edge in the lint config",
                     inc.target.c_str(), from->name.c_str(), to->name.c_str()));
  }
}

/// Cross-file half of R8: cycles in the include graph restricted to
/// files present in the database. Each cycle is reported once, anchored
/// at its lexicographically-first member, with the full include chain.
void CheckR8Cycles(const FactDb& db,
                   const std::map<std::string, Suppressions>& supps,
                   std::vector<Finding>& findings) {
  // file → (resolved include target file, line of the #include)
  std::map<std::string, std::vector<std::pair<std::string, size_t>>> graph;
  for (const auto& [file, facts] : db) {
    for (const auto& inc : facts.includes) {
      if (inc.angled) continue;
      for (const auto& cand : IncludeCandidates(inc.target)) {
        auto it = db.find(cand);
        if (it == db.end()) continue;
        graph[file].push_back({cand, inc.line});
        break;
      }
    }
  }

  std::set<std::string> reported;  // canonical cycle keys
  std::vector<std::pair<std::string, size_t>> stack;  // (file, include line into next)
  std::set<std::string> on_stack;
  std::set<std::string> done;

  std::function<void(const std::string&)> visit = [&](const std::string& file) {
    on_stack.insert(file);
    for (const auto& [next, line] : graph[file]) {
      if (on_stack.count(next) > 0) {
        // Found a cycle: the stack suffix from `next` plus this edge.
        std::vector<std::string> cycle;
        size_t begin = 0;
        for (size_t k = 0; k < stack.size(); ++k) {
          if (stack[k].first == next) begin = k;
        }
        for (size_t k = begin; k < stack.size(); ++k) cycle.push_back(stack[k].first);
        cycle.push_back(file);
        // Canonicalize: rotate so the smallest file leads.
        size_t smallest = 0;
        for (size_t k = 1; k < cycle.size(); ++k) {
          if (cycle[k] < cycle[smallest]) smallest = k;
        }
        std::rotate(cycle.begin(), cycle.begin() + smallest, cycle.end());
        std::string key;
        std::string chain;
        for (const auto& f : cycle) {
          key += f + "|";
          chain += f + " -> ";
        }
        chain += cycle.front();
        if (!reported.insert(key).second) continue;
        auto supp_it = supps.find(file);
        if (supp_it != supps.end() && supp_it->second.Allows("R8", line)) continue;
        findings.push_back(
            {file, line, "R8",
             StrFormat("include cycle between layered translation units: %s; break "
                       "the cycle with a forward declaration or by moving the "
                       "shared pieces down a layer",
                       chain.c_str())});
        continue;
      }
      if (done.count(next) > 0) continue;
      stack.push_back({file, line});
      visit(next);
      stack.pop_back();
    }
    on_stack.erase(file);
    done.insert(file);
  };
  for (const auto& [file, _] : graph) {
    if (done.count(file) == 0) visit(file);
  }
}

// --- R9: lock-order graph ------------------------------------------------

struct LockWitness {
  std::string file;
  size_t line = 0;
  std::string via;  // "in <func>" or "call to <callee> from <func>"
  bool suppressed = false;
};

using LockEdges = std::map<std::pair<std::string, std::string>,
                           std::vector<LockWitness>>;

/// Resolves a call-site name to a unique function in the database.
/// Returns (file, function index) or nullopt when the name is unknown or
/// ambiguous — one-level resolution only ever follows certain matches.
struct ResolvedFn {
  const std::string* file = nullptr;
  size_t func = kNoFunction;
};

ResolvedFn ResolveCallee(const FactDb& db, const std::string& callee) {
  ResolvedFn out;
  size_t matches = 0;
  for (const auto& [file, facts] : db) {
    for (size_t k = 0; k < facts.functions.size(); ++k) {
      const auto& fn = facts.functions[k];
      bool match = fn.qual == callee || fn.name == callee ||
                   EndsWith(fn.qual, "::" + callee);
      if (!match) continue;
      ++matches;
      out.file = &file;
      out.func = k;
    }
  }
  if (matches != 1) return {};
  return out;
}

LockEdges BuildLockEdges(const FactDb& db,
                         const std::map<std::string, Suppressions>& supps) {
  LockEdges edges;
  auto supp_allows = [&](const std::string& file, size_t line) {
    auto it = supps.find(file);
    return it != supps.end() && it->second.Allows("R9", line);
  };
  for (const auto& [file, facts] : db) {
    for (const auto& acq : facts.acquisitions) {
      if (acq.held.empty()) continue;
      LockWitness witness{file, acq.line,
                          StrFormat("in %s", acq.func == kNoFunction
                                                 ? "<file scope>"
                                                 : facts.functions[acq.func].qual.c_str()),
                          supp_allows(file, acq.line)};
      for (const auto& held : acq.held) {
        edges[{held, acq.mutex}].push_back(witness);
      }
    }
    for (const auto& call : facts.locked_calls) {
      ResolvedFn target = ResolveCallee(db, call.callee);
      if (target.file == nullptr) continue;
      const FileFacts& callee_facts = db.at(*target.file);
      for (const auto& acq : callee_facts.acquisitions) {
        if (acq.func != target.func) continue;
        bool suppressed = supp_allows(file, call.line) ||
                          supp_allows(*target.file, acq.line);
        LockWitness witness{
            file, call.line,
            StrFormat("call to %s from %s",
                      callee_facts.functions[target.func].qual.c_str(),
                      call.func == kNoFunction
                          ? "<file scope>"
                          : facts.functions[call.func].qual.c_str()),
            suppressed};
        for (const auto& held : call.held) {
          edges[{held, acq.mutex}].push_back(witness);
        }
      }
    }
  }
  return edges;
}

void CheckR9(const FactDb& db, const std::map<std::string, Suppressions>& supps,
             std::vector<Finding>& findings) {
  LockEdges all_edges = BuildLockEdges(db, supps);

  // Active edges: at least one unsuppressed witness (shown in reports).
  std::map<std::pair<std::string, std::string>, LockWitness> edges;
  for (const auto& [key, witnesses] : all_edges) {
    for (const auto& w : witnesses) {
      if (w.suppressed) continue;
      edges.emplace(key, w);
      break;
    }
  }
  if (edges.empty()) return;

  // Self-edges are re-acquisition deadlocks on their own.
  std::set<std::string> nodes;
  for (const auto& [key, _] : edges) {
    nodes.insert(key.first);
    nodes.insert(key.second);
  }
  for (const auto& [key, witness] : edges) {
    if (key.first != key.second) continue;
    findings.push_back(
        {witness.file, witness.line, "R9",
         StrFormat("potential deadlock: lock '%s' is acquired while already held "
                   "(%s); the annotated wrappers do not support recursive "
                   "acquisition",
                   key.first.c_str(), witness.via.c_str())});
  }

  // Strongly connected components over the remaining edges; any SCC with
  // more than one node is a lock-order cycle.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, _] : edges) {
    if (key.first != key.second) adj[key.first].push_back(key.second);
  }
  std::map<std::string, size_t> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  size_t counter = 0;
  std::vector<std::vector<std::string>> sccs;
  std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack.insert(v);
    for (const auto& w : adj[v]) {
      if (index.count(w) == 0) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack.count(w) > 0) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = stack.back();
        stack.pop_back();
        on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      if (scc.size() > 1) {
        std::sort(scc.begin(), scc.end());
        sccs.push_back(std::move(scc));
      }
    }
  };
  for (const auto& node : nodes) {
    if (index.count(node) == 0) strongconnect(node);
  }
  std::sort(sccs.begin(), sccs.end());

  for (const auto& scc : sccs) {
    std::set<std::string> members(scc.begin(), scc.end());
    // Every edge inside the SCC is a witness path of the cycle.
    std::string paths;
    const LockWitness* anchor = nullptr;
    for (const auto& [key, witness] : edges) {
      if (key.first == key.second) continue;
      if (members.count(key.first) == 0 || members.count(key.second) == 0) continue;
      if (!paths.empty()) paths += "; ";
      paths += StrFormat("%s -> %s at %s:%zu (%s)", key.first.c_str(),
                         key.second.c_str(), witness.file.c_str(), witness.line,
                         witness.via.c_str());
      if (anchor == nullptr) anchor = &witness;
    }
    if (anchor == nullptr) continue;
    std::string cycle;
    for (const auto& node : scc) {
      if (!cycle.empty()) cycle += ", ";
      cycle += node;
    }
    findings.push_back(
        {anchor->file, anchor->line, "R9",
         StrFormat("potential deadlock: lock-order cycle among {%s}; witness "
                   "paths: %s — acquire these locks in one global order",
                   cycle.c_str(), paths.c_str())});
  }
}

// --- R10: hot-path allocations ------------------------------------------

void CheckR10(const LintConfig& config, const std::string& rel_path,
              const FileFacts& facts, const Suppressions& supp,
              std::vector<Finding>& findings) {
  const bool hot_file = MatchesAnyPrefix(config.hot, rel_path);
  for (const auto& alloc : facts.allocations) {
    if (alloc.func == kNoFunction) continue;  // static init runs once
    const FunctionFact& fn = facts.functions[alloc.func];
    if (!hot_file && !fn.hot) continue;
    if (supp.Allows("R10", alloc.line)) continue;
    if (supp.Allows("R10", fn.line)) continue;  // function-level suppression
    Report(findings, supp, rel_path, alloc.line, "R10",
           StrFormat("allocation '%s' in hot function '%s' (%s); reuse a caller or "
                     "member buffer, or justify with // sqlog-lint: allow(R10 "
                     "reason) on the line or the function signature",
                     alloc.what.c_str(), fn.qual.c_str(),
                     hot_file ? "hot file" : "marked sqlog-hot"));
  }
}

}  // namespace

std::string Finding::ToString() const {
  return StrFormat("%s:%zu: %s: %s", file.c_str(), line, rule.c_str(),
                   message.c_str());
}

Result<LintConfig> ParseConfig(std::string_view text, const std::string& origin) {
  LintConfig config;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive) || directive[0] == '#') continue;
    auto one_path = [&](std::vector<std::string>* out) -> Status {
      std::string prefix;
      if (!(fields >> prefix)) {
        return Status::InvalidArgument(StrFormat("%s:%zu: %s needs a path prefix",
                                                 origin.c_str(), line_number,
                                                 directive.c_str()));
      }
      out->push_back(std::move(prefix));
      return Status::OK();
    };
    if (directive == "r1-allow") {
      SQLOG_RETURN_IF_ERROR_R(one_path(&config.r1_allow));
      continue;
    }
    if (directive == "r6-allow") {
      SQLOG_RETURN_IF_ERROR_R(one_path(&config.r6_allow));
      continue;
    }
    if (directive == "r7-allow") {
      SQLOG_RETURN_IF_ERROR_R(one_path(&config.r7_allow));
      continue;
    }
    if (directive == "hot") {
      SQLOG_RETURN_IF_ERROR_R(one_path(&config.hot));
      continue;
    }
    if (directive == "exclude") {
      SQLOG_RETURN_IF_ERROR_R(one_path(&config.exclude));
      continue;
    }
    if (directive == "manifest") {
      LintConfig::ManifestEntry entry;
      if (!(fields >> entry.path_suffix >> entry.type_name)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: manifest needs <path-suffix> <TypeName>",
                      origin.c_str(), line_number));
      }
      config.manifest.push_back(std::move(entry));
      continue;
    }
    if (directive == "layer") {
      LintConfig::Layer layer;
      if (!(fields >> layer.name >> layer.prefix)) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: layer needs <name> <rel-path-prefix>",
                      origin.c_str(), line_number));
      }
      for (const auto& existing : config.layers) {
        if (existing.name == layer.name) {
          return Status::InvalidArgument(StrFormat("%s:%zu: duplicate layer '%s'",
                                                   origin.c_str(), line_number,
                                                   layer.name.c_str()));
        }
      }
      config.layers.push_back(std::move(layer));
      continue;
    }
    if (directive == "layer-edge") {
      std::string from, to;
      if (!(fields >> from >> to)) {
        return Status::InvalidArgument(StrFormat(
            "%s:%zu: layer-edge needs <from> <to>", origin.c_str(), line_number));
      }
      for (const std::string& name : {from, to}) {
        bool declared = false;
        for (const auto& layer : config.layers) {
          if (layer.name == name) declared = true;
        }
        if (!declared) {
          return Status::InvalidArgument(
              StrFormat("%s:%zu: layer-edge references undeclared layer '%s' "
                        "(declare it with `layer %s <prefix>` first)",
                        origin.c_str(), line_number, name.c_str(), name.c_str()));
        }
      }
      config.layer_edges.emplace_back(std::move(from), std::move(to));
      continue;
    }
    return Status::InvalidArgument(StrFormat("%s:%zu: unknown directive '%s'",
                                             origin.c_str(), line_number,
                                             directive.c_str()));
  }
  // The declared layer graph must be a DAG: the transitive closure may
  // not put any layer in its own dependency set.
  LayerClosure closure = BuildLayerClosure(config);
  for (const auto& [from, tos] : closure) {
    if (tos.count(from) > 0) {
      return Status::InvalidArgument(
          StrFormat("%s: layer-edge declarations form a cycle through '%s'; the "
                    "layer graph must be a DAG",
                    origin.c_str(), from.c_str()));
    }
  }
  return config;
}

Result<LintConfig> LoadConfig(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrFormat("cannot open lint config %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseConfig(buffer.str(), path);
}

std::vector<Finding> LintDb(const LintConfig& config, const FactDb& db) {
  std::vector<Finding> findings;
  std::map<std::string, Suppressions> supps;
  for (const auto& [file, facts] : db) {
    supps.emplace(file, Suppressions(facts));
  }
  LayerClosure closure = BuildLayerClosure(config);

  for (const auto& [file, facts] : db) {
    const Suppressions& supp = supps.at(file);
    for (const auto& err : facts.config_errors) {
      findings.push_back({file, err.line, "config", err.detail});
    }
    CheckRuleSites(config, file, facts, supp, findings);
    CheckR5(config, file, facts, supp, findings);
    CheckR8Edges(config, closure, file, facts, supp, findings);
    CheckR10(config, file, facts, supp, findings);
  }
  CheckR8Cycles(db, supps, findings);
  CheckR9(db, supps, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> LintSource(const LintConfig& config, const std::string& rel_path,
                                std::string_view content) {
  FactDb db;
  db[rel_path] = ExtractFacts(content);
  return LintDb(config, db);
}

Result<std::vector<Finding>> LintFile(const LintConfig& config, const std::string& root,
                                      const std::string& rel_path,
                                      const std::string& assume_path) {
  std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return Status::IoError(StrFormat("cannot open %s", full.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(config, assume_path.empty() ? rel_path : assume_path, buffer.str());
}

}  // namespace sqlog::lint
