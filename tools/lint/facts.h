#ifndef SQLOG_TOOLS_LINT_FACTS_H_
#define SQLOG_TOOLS_LINT_FACTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// Phase 1 of the two-phase linter: a single scan of each source file
/// produces a config-independent **fact table** — includes, namespaces,
/// type and member declarations, function extents, annotated-wrapper
/// lock acquisitions with the lexically-held set, allocation
/// expressions, the R1-R7 rule sites, and suppression directives. Phase
/// 2 (linter.cc) runs every rule over the merged fact database, so the
/// file is read and lexed exactly once no matter how many rules exist,
/// and cross-file analyses (layering R8, lock order R9) see the whole
/// tree. Facts are cacheable on disk keyed by content hash: extraction
/// never looks at the lint config, so a config edit cannot stale the
/// cache — only a content change or a kFactFormatVersion bump can.
namespace sqlog::lint {

/// Bump whenever extraction output changes shape or meaning; a cache
/// written by a different version is discarded wholesale.
inline constexpr int kFactFormatVersion = 1;

inline constexpr size_t kNoFunction = static_cast<size_t>(-1);

/// The input split into two equal-length masks: `code` keeps everything
/// outside comments and literal contents (literal quotes stay, contents
/// are blanked); `comments` keeps only comment text. Newlines survive in
/// both, so offsets and line numbers agree between the masks and the
/// original file. Handles raw strings (including the u8/u/U/L-prefixed
/// forms) and backslash-continued `//` comments.
struct SplitSource {
  std::string code;
  std::string comments;
};

SplitSource SplitCodeAndComments(std::string_view src);

/// Offsets where each 1-based line starts, for offset → line mapping.
std::vector<size_t> LineStarts(std::string_view s);
size_t LineOf(const std::vector<size_t>& starts, size_t offset);

// --- fact records --------------------------------------------------------

/// One `#include` directive. `target` is the path as written; `angled`
/// distinguishes `<...>` (system, never layered) from `"..."`.
struct IncludeFact {
  size_t line = 0;
  bool angled = false;
  std::string target;
};

/// One class/struct definition (`class X {`, with or without a base
/// clause). Used by R5 to diagnose manifest types missing from their
/// file, and by the facts dump.
struct TypeFact {
  size_t line = 0;
  std::string name;
};

/// One depth-1 data-member statement of a class body (R5 input).
/// `annotated` is true when the statement carries one of the
/// thread_annotations.h markers; `leading` is the first token (used by
/// the checker to skip using/typedef/friend/static/... statements).
struct MemberFact {
  size_t line = 0;
  std::string type_name;
  std::string declarator;
  std::string leading;
  bool annotated = false;
};

/// One function definition (a body was seen). `qual` prepends the
/// enclosing namespace/class scopes to the name as written, so
/// out-of-class definitions read e.g. `sqlog::engine::BufferPool::Fetch`.
/// `hot` is true when a `// sqlog-hot` marker sits on the signature line
/// or the line above (R10 opt-in for functions outside hot files).
struct FunctionFact {
  size_t line = 0;
  bool hot = false;
  std::string name;
  std::string qual;
};

/// One lock acquisition through the annotated wrappers: a
/// `MutexLock`/`CondVarLock` declaration, or a manual `.Lock()` call.
/// `mutex` is the normalized lock identity (member locks are qualified
/// with the enclosing type, e.g. `BufferPool::mu_`); `held` lists the
/// identities lexically held at this site — the source of R9 edges.
struct AcquisitionFact {
  size_t line = 0;
  size_t func = kNoFunction;
  std::string wrapper;  // "MutexLock" | "CondVarLock" | "Lock"
  std::string mutex;
  std::vector<std::string> held;
};

/// One call site reached while at least one lock is held (only those are
/// recorded — R9 resolves the callee one level into the fact DB and
/// inherits its acquisitions as edges).
struct CallFact {
  size_t line = 0;
  size_t func = kNoFunction;
  std::string callee;  // `Name` or `Scope::Name` as written; object exprs drop to the member name
  std::vector<std::string> held;
};

/// One allocation expression inside a function body (R10 input):
/// `new`, `make_unique`/`make_shared`, a `std::string` construction, or
/// a container-growth member call (push_back/append/resize/...).
struct AllocationFact {
  size_t line = 0;
  size_t func = kNoFunction;
  std::string what;
};

/// A single-file rule site for the line-local rules: the fact says
/// "rule N's pattern occurs here", the checker decides whether path
/// scoping, allowlists, and suppressions let it fire.
struct RuleSiteFact {
  std::string rule;
  size_t line = 0;
  std::string detail;
};

/// One line covered by an inline `allow(RN reason)` suppression comment
/// (directives are pre-expanded to their own line and the next).
struct SuppressionFact {
  std::string rule;
  size_t line = 0;
};

/// Everything extracted from one file. Config-independent by design.
struct FileFacts {
  uint64_t content_hash = 0;
  std::vector<IncludeFact> includes;
  std::vector<std::string> namespaces;
  std::vector<TypeFact> types;
  std::vector<MemberFact> members;
  std::vector<FunctionFact> functions;
  std::vector<AcquisitionFact> acquisitions;
  std::vector<CallFact> locked_calls;
  std::vector<AllocationFact> allocations;
  std::vector<RuleSiteFact> rule_sites;
  std::vector<SuppressionFact> suppressions;
  std::vector<RuleSiteFact> config_errors;  // rule == "config", unsuppressible
};

/// The merged database phase 2 analyses run over: repo-relative path →
/// facts. std::map so every cross-file walk is deterministic.
using FactDb = std::map<std::string, FileFacts>;

/// Content hash the fact cache is keyed by (FNV-1a folded with the
/// format version, so a version bump invalidates every entry even if
/// the header line is hand-edited).
uint64_t HashSourceContent(std::string_view content);

/// The single extraction pass. Sets content_hash itself.
FileFacts ExtractFacts(std::string_view content);

/// Deterministic human-readable dump, pinned by the golden fact test
/// (tests/lint_facts_test.cc). Not the cache format.
std::string DumpFacts(const std::string& rel_path, const FileFacts& facts);

// --- on-disk fact cache --------------------------------------------------

/// Serializes one file's facts as cache records (no `file` header line).
void SerializeFacts(const FileFacts& facts, std::string* out);

/// Loads a fact cache written by SaveFactCache. A missing file, a
/// version mismatch, or any malformed record yields an empty cache (the
/// cache is an accelerator, never a correctness input).
FactDb LoadFactCache(const std::string& path);

/// Atomically (write + rename) persists the database.
Status SaveFactCache(const std::string& path, const FactDb& db);

}  // namespace sqlog::lint

#endif  // SQLOG_TOOLS_LINT_FACTS_H_
