#include "lint/facts.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/hash.h"
#include "util/string_util.h"

namespace sqlog::lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// True when `word` occurs at `pos` in `s` with word boundaries on both
/// sides. ':' is not a word character, so qualified names still match
/// their last component.
bool WordAt(std::string_view s, size_t pos, std::string_view word) {
  if (pos + word.size() > s.size()) return false;
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsWordChar(s[pos - 1])) return false;
  size_t end = pos + word.size();
  if (end < s.size() && IsWordChar(s[end])) return false;
  return true;
}

std::vector<size_t> FindWordAll(std::string_view s, std::string_view word) {
  std::vector<size_t> hits;
  for (size_t pos = s.find(word); pos != std::string_view::npos;
       pos = s.find(word, pos + 1)) {
    if (WordAt(s, pos, word)) hits.push_back(pos);
  }
  return hits;
}

size_t SkipSpaces(std::string_view s, size_t pos) {
  while (pos < s.size() && IsSpace(s[pos])) ++pos;
  return pos;
}

}  // namespace

SplitSource SplitCodeAndComments(std::string_view src) {
  SplitSource out;
  out.code.assign(src.size(), ' ');
  out.comments.assign(src.size(), ' ');
  auto keep_newlines = [&](size_t from, size_t to) {
    for (size_t k = from; k < to && k < src.size(); ++k) {
      if (src[k] == '\n') {
        out.code[k] = '\n';
        out.comments[k] = '\n';
      }
    }
  };
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      // A backslash immediately before the newline splices the next
      // physical line into the comment ([lex.phases] p2 runs before
      // comment recognition), so the comment does not end there.
      size_t end = i;
      while (true) {
        size_t nl = src.find('\n', end);
        if (nl == std::string_view::npos) {
          end = n;
          break;
        }
        size_t last = nl;
        if (last > 0 && src[last - 1] == '\r') --last;
        if (last > i && src[last - 1] == '\\') {
          end = nl + 1;
          continue;
        }
        end = nl;
        break;
      }
      for (size_t k = i; k < end; ++k) {
        out.comments[k] = src[k] == '\n' ? ' ' : src[k];
      }
      keep_newlines(i, end);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      end = end == std::string_view::npos ? n : end + 2;
      for (size_t k = i; k < end; ++k) {
        out.comments[k] = src[k] == '\n' ? ' ' : src[k];
      }
      keep_newlines(i, end);
      i = end;
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim", possibly with an
      // encoding prefix (u8R", uR", UR", LR").
      size_t pre = i;
      if (pre >= 2 && src[pre - 1] == '8' && src[pre - 2] == 'u') {
        pre -= 2;
      } else if (pre >= 1 &&
                 (src[pre - 1] == 'u' || src[pre - 1] == 'U' || src[pre - 1] == 'L')) {
        pre -= 1;
      }
      if (pre == 0 || !IsWordChar(src[pre - 1])) {
        size_t open = src.find('(', i + 2);
        if (open != std::string_view::npos) {
          std::string closer = ")";
          closer.append(src.substr(i + 2, open - (i + 2)));
          closer.push_back('"');
          size_t end = src.find(closer, open + 1);
          end = end == std::string_view::npos ? n : end + closer.size();
          out.code[i] = 'R';
          out.code[i + 1] = '"';
          out.code[end - 1] = '"';
          keep_newlines(i, end);
          i = end;
          continue;
        }
      }
    }
    if (c == '"' || c == '\'') {
      out.code[i] = c;
      size_t k = i + 1;
      while (k < n && src[k] != c) {
        if (src[k] == '\\') ++k;
        if (src[k] == '\n') out.code[k] = '\n';  // unterminated; keep lines aligned
        ++k;
      }
      if (k < n) out.code[k] = c;
      i = k + 1;
      continue;
    }
    out.code[i] = c;
    ++i;
  }
  return out;
}

std::vector<size_t> LineStarts(std::string_view s) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

size_t LineOf(const std::vector<size_t>& starts, size_t offset) {
  auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<size_t>(it - starts.begin());  // 1-based
}

uint64_t HashSourceContent(std::string_view content) {
  return HashCombine(Fnv1a64(content),
                     static_cast<uint64_t>(kFactFormatVersion));
}

namespace {

const std::set<std::string, std::less<>> kRuleIds = {
    "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"};

// --- suppressions --------------------------------------------------------

void ExtractSuppressions(std::string_view comments,
                         const std::vector<size_t>& line_starts, FileFacts* facts) {
  static constexpr std::string_view kMarker = "sqlog-lint:";
  for (size_t pos = comments.find(kMarker); pos != std::string_view::npos;
       pos = comments.find(kMarker, pos + kMarker.size())) {
    size_t line = LineOf(line_starts, pos);
    size_t p = SkipSpaces(comments, pos + kMarker.size());
    auto add_allow = [&](std::string_view rule) {
      // A suppression covers its own line and the next one, so it can
      // sit at the end of the offending line or on its own line above.
      facts->suppressions.push_back({std::string(rule), line});
      facts->suppressions.push_back({std::string(rule), line + 1});
    };
    if (StartsWith(comments.substr(p), "allow(")) {
      p += 6;
      size_t close = comments.find(')', p);
      if (close == std::string_view::npos) {
        facts->config_errors.push_back(
            {"config", line, "unterminated sqlog-lint: allow(...) suppression"});
        continue;
      }
      std::string_view body = comments.substr(p, close - p);
      size_t space = body.find_first_of(" \t");
      std::string_view rule = body.substr(0, space);
      std::string_view reason =
          space == std::string_view::npos ? std::string_view{} : body.substr(space + 1);
      while (!reason.empty() && IsSpace(reason.front())) reason.remove_prefix(1);
      if (kRuleIds.count(rule) == 0) {
        facts->config_errors.push_back(
            {"config", line,
             StrFormat("unknown rule id '%.*s' in sqlog-lint suppression (expected R1..R10)",
                       (int)rule.size(), rule.data())});
        continue;
      }
      if (reason.empty()) {
        facts->config_errors.push_back(
            {"config", line,
             StrFormat("sqlog-lint suppression for %.*s is missing a reason: "
                       "write allow(%.*s why-this-is-safe)",
                       (int)rule.size(), rule.data(), (int)rule.size(), rule.data())});
        continue;
      }
      add_allow(rule);
      continue;
    }
    if (StartsWith(comments.substr(p), "deterministic-merge")) {
      // The R3-specific tag: asserts the iteration order cannot reach
      // output or hashed state. An optional (reason) follows.
      add_allow("R3");
      continue;
    }
    facts->config_errors.push_back(
        {"config", line,
         "unrecognized sqlog-lint directive (expected allow(RN reason) "
         "or deterministic-merge(reason))"});
  }
}

// --- includes ------------------------------------------------------------

/// Includes are located in the code mask (so a commented-out #include is
/// ignored) but the target text is read from the original source: the
/// mask blanks string-literal contents, which is exactly the "..." path.
void ExtractIncludes(std::string_view src, std::string_view code,
                     const std::vector<size_t>& line_starts, FileFacts* facts) {
  for (size_t pos = code.find('#'); pos != std::string_view::npos;
       pos = code.find('#', pos + 1)) {
    size_t line_start = line_starts[LineOf(line_starts, pos) - 1];
    if (SkipSpaces(code, line_start) != pos) continue;  // not line-leading
    size_t p = SkipSpaces(code, pos + 1);
    if (!WordAt(code, p, "include")) continue;
    p = SkipSpaces(code, p + 7);
    if (p >= src.size()) continue;
    char open = src[p];
    char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
    if (close == '\0') continue;
    size_t end = src.find(close, p + 1);
    if (end == std::string_view::npos) continue;
    facts->includes.push_back({LineOf(line_starts, pos), open == '<',
                               std::string(src.substr(p + 1, end - p - 1))});
  }
}

// --- R1/R2/R3/R4/R6/R7 sites --------------------------------------------

constexpr std::string_view kParserEntryPoints[] = {
    "ParseSelect", "ParseTokens", "ParseAndAnalyze", "ParseAndAnalyzeTokens"};

void ExtractR1Sites(std::string_view code, const std::vector<size_t>& line_starts,
                    FileFacts* facts) {
  for (std::string_view fn : kParserEntryPoints) {
    for (size_t pos : FindWordAll(code, fn)) {
      facts->rule_sites.push_back({"R1", LineOf(line_starts, pos), std::string(fn)});
    }
  }
}

void ExtractR2Sites(std::string_view code, const std::vector<size_t>& line_starts,
                    FileFacts* facts) {
  auto site = [&](size_t pos, std::string_view what) {
    facts->rule_sites.push_back({"R2", LineOf(line_starts, pos), std::string(what)});
  };
  for (std::string_view word : {"rand", "srand", "random_device"}) {
    for (size_t pos : FindWordAll(code, word)) site(pos, word);
  }
  for (size_t pos = code.find("std::time"); pos != std::string_view::npos;
       pos = code.find("std::time", pos + 1)) {
    if (!WordAt(code, pos + 5, "time")) continue;  // e.g. std::timespec
    site(pos, "std::time");
  }
  for (std::string_view engine : {"mt19937", "mt19937_64"}) {
    for (size_t pos : FindWordAll(code, engine)) {
      size_t p = SkipSpaces(code, pos + engine.size());
      if (p >= code.size()) continue;
      char c = code[p];
      if (c == ':' || c == '&' || c == '*' || c == '>' || c == ',') {
        continue;  // type usage (template arg, reference parameter, ...)
      }
      if (c == '(' || c == '{') {
        // Temporary: seeded when the parens/braces are non-empty.
        char close = c == '(' ? ')' : '}';
        if (SkipSpaces(code, p + 1) < code.size() &&
            code[SkipSpaces(code, p + 1)] != close) {
          continue;
        }
        site(pos, engine);
        continue;
      }
      // Declaration: skip the variable name, then look at what follows.
      size_t q = p;
      while (q < code.size() && IsWordChar(code[q])) ++q;
      q = SkipSpaces(code, q);
      if (q >= code.size() || code[q] == ';' || code[q] == ',' || code[q] == ')') {
        site(pos, engine);  // default-constructed → seeded from a fixed constant
        continue;
      }
      if (code[q] == '(' || code[q] == '{') {
        char close = code[q] == '(' ? ')' : '}';
        size_t arg = SkipSpaces(code, q + 1);
        if (arg >= code.size() || code[arg] == close) site(pos, engine);
      }
    }
  }
}

/// Advances past a balanced template-argument list; `pos` is at '<'.
/// Returns the offset one past the matching '>'.
size_t SkipTemplateArgs(std::string_view code, size_t pos) {
  size_t angle = 0, paren = 0;
  while (pos < code.size()) {
    char c = code[pos];
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    if (paren == 0) {
      if (c == '<') ++angle;
      if (c == '>') {
        --angle;
        if (angle == 0) return pos + 1;
      }
    }
    ++pos;
  }
  return pos;
}

void ExtractR3Sites(std::string_view code, const std::vector<size_t>& line_starts,
                    FileFacts* facts) {
  // Pass 1: names declared with an unordered container type.
  std::set<std::string, std::less<>> unordered_names;
  for (std::string_view container : {"unordered_map", "unordered_set",
                                     "unordered_multimap", "unordered_multiset"}) {
    for (size_t pos : FindWordAll(code, container)) {
      size_t p = SkipSpaces(code, pos + container.size());
      if (p >= code.size() || code[p] != '<') continue;
      p = SkipSpaces(code, SkipTemplateArgs(code, p));
      // A reference or pointer to an unordered container iterates in
      // hash order just the same — skip the declarator decoration.
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = SkipSpaces(code, p + 1);
      }
      size_t name_begin = p;
      while (p < code.size() && IsWordChar(code[p])) ++p;
      if (p == name_begin) continue;  // e.g. ...>::iterator, closing a nested <>
      if (SkipSpaces(code, p) < code.size() && code[SkipSpaces(code, p)] == '(') {
        continue;  // function returning the container, not a variable
      }
      unordered_names.emplace(code.substr(name_begin, p - name_begin));
    }
  }
  if (unordered_names.empty()) return;
  // Pass 2: range-for loops whose range expression names one of them.
  for (size_t pos : FindWordAll(code, "for")) {
    size_t open = SkipSpaces(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    size_t depth = 0, colon = std::string_view::npos, close = std::string_view::npos;
    bool classic = false;
    for (size_t p = open; p < code.size(); ++p) {
      char c = code[p];
      if (c == '(') ++depth;
      if (c == ')') {
        if (--depth == 0) {
          close = p;
          break;
        }
      }
      if (depth == 1 && c == ';') classic = true;
      if (depth == 1 && c == ':' && colon == std::string_view::npos) {
        bool qualified = (p > 0 && code[p - 1] == ':') ||
                         (p + 1 < code.size() && code[p + 1] == ':');
        if (!qualified) colon = p;
      }
    }
    if (classic || colon == std::string_view::npos || close == std::string_view::npos) {
      continue;
    }
    std::string_view range_expr = code.substr(colon + 1, close - colon - 1);
    for (const auto& name : unordered_names) {
      if (FindWordAll(range_expr, name).empty()) continue;
      facts->rule_sites.push_back({"R3", LineOf(line_starts, pos), name});
      break;
    }
  }
}

constexpr std::string_view kRawMutexTypes[] = {
    "std::mutex",        "std::recursive_mutex", "std::timed_mutex",
    "std::shared_mutex", "std::lock_guard",      "std::unique_lock",
    "std::scoped_lock",  "std::shared_lock"};

void ExtractR4Sites(std::string_view code, const std::vector<size_t>& line_starts,
                    FileFacts* facts) {
  for (std::string_view type : kRawMutexTypes) {
    std::string_view name = type.substr(5);  // past "std::"
    for (size_t pos = code.find(type); pos != std::string_view::npos;
         pos = code.find(type, pos + 1)) {
      if (!WordAt(code, pos + 5, name)) continue;
      if (pos > 0 && IsWordChar(code[pos - 1])) continue;
      facts->rule_sites.push_back({"R4", LineOf(line_starts, pos), std::string(type)});
    }
  }
}

/// The scan looks for a base-clause use of the word `Detector` — i.e.
/// one preceded (past any `ns::` qualifiers) by an access specifier or a
/// lone base-clause ':'. Type uses (`Detector&`, `std::vector<Detector*>`,
/// `class Detector {`) never match.
void ExtractR6Sites(std::string_view code, const std::vector<size_t>& line_starts,
                    FileFacts* facts) {
  for (size_t pos : FindWordAll(code, "Detector")) {
    // Walk backward past `ns::` qualifiers (core::Detector, sqlog::core::
    // Detector) to whatever introduces the name.
    size_t back = pos;
    while (back >= 2 && code[back - 1] == ':' && code[back - 2] == ':') {
      back -= 2;
      while (back > 0 && IsWordChar(code[back - 1])) --back;
      while (back > 0 && IsSpace(code[back - 1])) --back;
    }
    while (back > 0 && IsSpace(code[back - 1])) --back;
    if (back == 0) continue;
    bool base_clause = false;
    if (IsWordChar(code[back - 1])) {
      size_t end = back;
      while (back > 0 && IsWordChar(code[back - 1])) --back;
      std::string_view word = code.substr(back, end - back);
      base_clause = word == "public" || word == "protected" || word == "private";
    } else if (code[back - 1] == ':' && (back < 2 || code[back - 2] != ':')) {
      // A lone ':' is either a base clause (struct X : Detector — default
      // inheritance) or an access label (public: Detector* d). The word
      // before the colon disambiguates: labels ARE the specifier word.
      size_t q = back - 1;
      while (q > 0 && IsSpace(code[q - 1])) --q;
      size_t end = q;
      while (q > 0 && IsWordChar(code[q - 1])) --q;
      std::string_view before = code.substr(q, end - q);
      base_clause = end > q && before != "public" && before != "protected" &&
                    before != "private";
    }
    if (!base_clause) continue;
    facts->rule_sites.push_back({"R6", LineOf(line_starts, pos), ""});
  }
}

constexpr std::string_view kCtypeClassifiers[] = {
    "isalpha", "isalnum", "isdigit", "isxdigit", "isspace", "isupper",
    "islower", "ispunct", "isprint", "isgraph",  "iscntrl", "isblank",
    "tolower", "toupper",
};

void ExtractR7Sites(std::string_view code, const std::vector<size_t>& line_starts,
                    FileFacts* facts) {
  for (std::string_view fn : kCtypeClassifiers) {
    for (size_t pos : FindWordAll(code, fn)) {
      facts->rule_sites.push_back({"R7", LineOf(line_starts, pos), std::string(fn)});
    }
  }
}

// --- class members (R5 input) -------------------------------------------

constexpr std::string_view kMemberMarkers[] = {
    "SQLOG_GUARDED_BY", "SQLOG_PT_GUARDED_BY", "SQLOG_SHARD_LOCAL",
    "SQLOG_CONST_AFTER_INIT", "SQLOG_SELF_SYNCHRONIZED"};

/// One depth-1 statement of a class body.
struct MemberStatement {
  std::string text;
  size_t offset = 0;  // of its first non-space character
};

/// Collects the depth-1 `;`-terminated statements of the class body that
/// opens at `body_open` ('{'). Nested braces (inline function bodies,
/// nested types, brace initializers) are skipped wholesale, which keeps
/// the scan simple: R5 covers `type name_ = ...;`-style members, the
/// repo's style for mutable state.
std::vector<MemberStatement> ClassBodyStatements(std::string_view code,
                                                 size_t body_open) {
  std::vector<MemberStatement> out;
  MemberStatement current;
  size_t i = body_open + 1;
  while (i < code.size()) {
    char c = code[i];
    if (c == '}') break;  // end of the class body
    if (c == '{') {
      size_t depth = 1;
      for (++i; i < code.size() && depth > 0; ++i) {
        if (code[i] == '{') ++depth;
        if (code[i] == '}') --depth;
      }
      current = {};  // whatever preceded the brace was not a data member
      continue;
    }
    if (c == ';') {
      if (!current.text.empty()) out.push_back(std::move(current));
      current = {};
      ++i;
      continue;
    }
    if (!IsSpace(c) && current.text.empty()) current.offset = i;
    if (!current.text.empty() || !IsSpace(c)) current.text.push_back(c);
    ++i;
  }
  return out;
}

/// Splits a statement into word tokens at angle/paren depth 0, stopping
/// at a top-level '=' (the initializer). Returns the tokens seen.
std::vector<std::string> TopLevelTokens(std::string_view stmt) {
  std::vector<std::string> tokens;
  size_t angle = 0, paren = 0;
  std::string word;
  for (size_t i = 0; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    if (paren == 0 && c == '<') ++angle;
    if (paren == 0 && c == '>' && angle > 0) --angle;
    if (angle == 0 && paren == 0 && c == '=') break;
    if (IsWordChar(c) && angle == 0 && paren == 0) {
      word.push_back(c);
    } else if (!word.empty()) {
      tokens.push_back(std::move(word));
      word.clear();
    }
  }
  if (!word.empty()) tokens.push_back(std::move(word));
  return tokens;
}

/// Records the class's R5-relevant member rows: statements whose
/// declarator carries the repo's trailing-underscore convention, or that
/// already carry a thread_annotations.h marker. Everything else (method
/// declarations, using aliases, constants) is irrelevant to R5 and kept
/// out of the fact table.
void ExtractMembers(std::string_view code, size_t body_open,
                    const std::string& type_name,
                    const std::vector<size_t>& line_starts, FileFacts* facts) {
  for (const auto& stmt : ClassBodyStatements(code, body_open)) {
    std::string_view text = stmt.text;
    // Drop access-specifier labels glued to the statement front.
    for (std::string_view label : {"public", "protected", "private"}) {
      if (StartsWith(text, label)) {
        size_t p = SkipSpaces(text, label.size());
        if (p < text.size() && text[p] == ':') text.remove_prefix(p + 1);
      }
    }
    bool annotated = false;
    for (std::string_view marker : kMemberMarkers) {
      if (!FindWordAll(text, marker).empty()) annotated = true;
    }
    std::vector<std::string> tokens = TopLevelTokens(text);
    if (tokens.empty()) continue;
    const std::string& declarator = tokens.back();
    if (!annotated && (declarator.empty() || declarator.back() != '_')) continue;
    MemberFact member;
    member.line = LineOf(line_starts, stmt.offset);
    member.type_name = type_name;
    member.declarator = declarator;
    member.leading = tokens.front();
    member.annotated = annotated;
    facts->members.push_back(std::move(member));
  }
}

// --- the scope-tracking walker ------------------------------------------

/// The walker runs on a copy of the code mask with preprocessor lines
/// blanked, so macro bodies can't unbalance the brace tracking. Offsets
/// still align with the original source.
std::string BlankPreprocessorLines(std::string_view code) {
  std::string out(code);
  const size_t n = out.size();
  size_t i = 0;
  while (i < n) {
    size_t line_end = out.find('\n', i);
    if (line_end == std::string::npos) line_end = n;
    size_t first = SkipSpaces(out, i);
    if (first < line_end && out[first] == '#') {
      // Blank this directive and any backslash-continued followers.
      while (true) {
        size_t last = line_end;
        while (last > i && IsSpace(out[last - 1])) --last;
        bool continued = last > i && out[last - 1] == '\\';
        for (size_t k = i; k < line_end; ++k) out[k] = ' ';
        i = line_end < n ? line_end + 1 : n;
        if (!continued || i >= n) break;
        line_end = out.find('\n', i);
        if (line_end == std::string::npos) line_end = n;
      }
      continue;
    }
    i = line_end < n ? line_end + 1 : n;
  }
  return out;
}

enum class ScopeKind { kNamespace, kType, kFunction, kBlock };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;                  // namespace / type name ("" otherwise)
  size_t func = kNoFunction;         // kFunction: index into facts->functions
  std::vector<std::string> active;   // lock identities acquired in this scope
};

const std::set<std::string, std::less<>> kControlKeywords = {
    "if",       "for",      "while",       "switch",       "catch",
    "return",   "sizeof",   "alignof",     "decltype",     "noexcept",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "new",      "delete",   "throw",       "else",         "do",
    "case",     "default",  "operator",    "assert",       "co_return"};

const std::set<std::string, std::less<>> kGrowthCalls = {
    "push_back", "emplace_back", "emplace", "append", "insert", "resize",
    "reserve"};

struct Walker {
  std::string_view walk;  // preprocessor-blanked code mask
  const std::vector<size_t>& line_starts;
  FileFacts* facts;
  const std::set<size_t>& hot_lines;  // lines carrying a sqlog-hot marker

  std::vector<Scope> stack;
  size_t stmt_begin = 0;
  size_t paren_depth = 0;

  size_t CurrentFunc() const {
    for (size_t k = stack.size(); k > 0; --k) {
      if (stack[k - 1].kind == ScopeKind::kFunction) return stack[k - 1].func;
    }
    return kNoFunction;
  }

  bool InFunction() const { return CurrentFunc() != kNoFunction; }

  std::vector<std::string> HeldSet() const {
    std::vector<std::string> held;
    for (const Scope& s : stack) {
      held.insert(held.end(), s.active.begin(), s.active.end());
    }
    return held;
  }

  /// Joins the namespace/type names enclosing the current position.
  std::string ScopePrefix() const {
    std::string prefix;
    for (const Scope& s : stack) {
      if (s.kind != ScopeKind::kNamespace && s.kind != ScopeKind::kType) continue;
      if (s.name.empty()) continue;
      if (!prefix.empty()) prefix += "::";
      prefix += s.name;
    }
    return prefix;
  }

  /// The class scope an unqualified member lock belongs to: the function's
  /// qualified name minus its final component (so `BufferPool::Fetch`'s
  /// `mu_` becomes `BufferPool::mu_` whether Fetch is defined inline or
  /// out of class).
  std::string MutexQualifier() const {
    size_t fn = CurrentFunc();
    if (fn == kNoFunction) return "";
    const std::string& qual = facts->functions[fn].qual;
    size_t sep = qual.rfind("::");
    return sep == std::string::npos ? "" : qual.substr(0, sep);
  }

  std::string NormalizeMutex(std::string_view expr) const {
    std::string out;
    for (char c : expr) {
      if (IsSpace(c) || c == ',' || c == ';') continue;
      out.push_back(c);
    }
    while (!out.empty() && out.front() == '&') out.erase(out.begin());
    if (StartsWith(out, "this->")) out.erase(0, 6);
    bool simple = !out.empty();
    for (char c : out) simple = simple && IsWordChar(c);
    if (simple) {
      std::string prefix = MutexQualifier();
      if (!prefix.empty()) out = prefix + "::" + out;
    }
    return out;
  }

  void Run() {
    const size_t n = walk.size();
    size_t i = 0;
    while (i < n) {
      char c = walk[i];
      if (c == '(') {
        ++paren_depth;
        ++i;
        continue;
      }
      if (c == ')') {
        if (paren_depth > 0) --paren_depth;
        ++i;
        continue;
      }
      if (c == ';' && paren_depth == 0) {
        stmt_begin = i + 1;
        ++i;
        continue;
      }
      if (c == '{') {
        PushScope(walk.substr(stmt_begin, i - stmt_begin), i);
        stmt_begin = i + 1;
        paren_depth = 0;
        ++i;
        continue;
      }
      if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        stmt_begin = i + 1;
        paren_depth = 0;
        ++i;
        continue;
      }
      if (IsWordChar(c) && (i == 0 || !IsWordChar(walk[i - 1]))) {
        size_t j = i;
        while (j < n && IsWordChar(walk[j])) ++j;
        i = HandleWord(i, j);
        continue;
      }
      ++i;
    }
  }

  void PushScope(std::string_view stmt, size_t brace_offset) {
    Scope scope;
    scope.kind = Classify(stmt, brace_offset, &scope);
    stack.push_back(std::move(scope));
  }

  ScopeKind Classify(std::string_view stmt, size_t brace_offset, Scope* scope) {
    // Namespace?
    for (size_t pos : FindWordAll(stmt, "namespace")) {
      std::string name;
      for (size_t p = SkipSpaces(stmt, pos + 9); p < stmt.size(); ++p) {
        char c = stmt[p];
        if (IsWordChar(c) || c == ':') {
          name.push_back(c);
        } else if (!IsSpace(c)) {
          break;
        }
      }
      scope->name = name;  // anonymous namespaces keep an empty name
      std::string qual = ScopePrefix();
      facts->namespaces.push_back(qual.empty() ? name
                                               : name.empty() ? qual
                                                              : qual + "::" + name);
      return ScopeKind::kNamespace;
    }

    // Type? Take the LAST class/struct/union keyword so `template <class
    // T> struct Foo` classifies by Foo.
    size_t type_kw = std::string_view::npos;
    for (std::string_view kw : {"class", "struct", "union"}) {
      for (size_t pos : FindWordAll(stmt, kw)) {
        // `enum class` / `enum struct` open an enum body, not a type.
        size_t back = pos;
        while (back > 0 && IsSpace(stmt[back - 1])) --back;
        size_t kw_end = back;
        while (back > 0 && IsWordChar(stmt[back - 1])) --back;
        if (stmt.substr(back, kw_end - back) == "enum") continue;
        if (type_kw == std::string_view::npos || pos > type_kw) {
          type_kw = pos + kw.size();
        }
      }
    }
    if (type_kw != std::string_view::npos) {
      size_t p = SkipSpaces(stmt, type_kw);
      // The type name is the LAST word before the body / base clause:
      // earlier words are attribute macros (class SQLOG_EXPORT Foo) and
      // parenthesized attributes (alignas(64)) are skipped wholesale.
      std::string name;
      while (p < stmt.size()) {
        size_t begin = p;
        while (p < stmt.size() && IsWordChar(stmt[p])) ++p;
        if (p == begin) break;
        std::string word(stmt.substr(begin, p - begin));
        p = SkipSpaces(stmt, p);
        if (p < stmt.size() && stmt[p] == '(') {
          // A parenthesized attribute (alignas(64), MACRO(x)): skip it.
          size_t depth = 0;
          while (p < stmt.size()) {
            if (stmt[p] == '(') ++depth;
            if (stmt[p] == ')' && --depth == 0) {
              ++p;
              break;
            }
            ++p;
          }
          p = SkipSpaces(stmt, p);
          continue;
        }
        if (word != "final") name = std::move(word);
        if (p < stmt.size() && IsWordChar(stmt[p])) continue;  // attribute word
        break;
      }
      bool at_body = p >= stmt.size() || stmt[p] == ':' || stmt[p] == '{';
      if (!name.empty() && at_body) {
        scope->name = name;
        facts->types.push_back({LineOf(line_starts, brace_offset), name});
        ExtractMembers(walk, brace_offset, name, line_starts, facts);
        return ScopeKind::kType;
      }
      return ScopeKind::kBlock;
    }

    if (InFunction()) return ScopeKind::kBlock;

    // Function? The statement must contain a top-level call-shaped `(`
    // preceded by a non-control identifier, and no top-level `=` (which
    // would make the brace an initializer).
    size_t eq = std::string_view::npos;
    size_t depth = 0;
    size_t first_paren = std::string_view::npos;
    for (size_t p = 0; p < stmt.size(); ++p) {
      char c = stmt[p];
      if (c == '(') {
        if (depth == 0 && first_paren == std::string_view::npos) first_paren = p;
        ++depth;
      }
      if (c == ')' && depth > 0) --depth;
      if (c == '=' && depth == 0 &&
          (p == 0 || (stmt[p - 1] != '=' && stmt[p - 1] != '!' && stmt[p - 1] != '<' &&
                      stmt[p - 1] != '>')) &&
          (p + 1 >= stmt.size() || stmt[p + 1] != '=')) {
        eq = p;
        break;
      }
    }
    if (eq != std::string_view::npos || first_paren == std::string_view::npos) {
      return ScopeKind::kBlock;
    }
    // The name: the `::`-qualified chain ending just before the paren.
    size_t back = first_paren;
    while (back > 0 && IsSpace(stmt[back - 1])) --back;
    std::string name;
    if (back > 0 && !IsWordChar(stmt[back - 1]) && stmt[back - 1] != '~') {
      // Symbol before '(' — an operator overload like operator= / operator<<.
      size_t sym_end = back;
      while (back > 0 && !IsWordChar(stmt[back - 1]) && !IsSpace(stmt[back - 1])) {
        --back;
      }
      size_t word_end = back;
      size_t word_begin = back;
      while (word_begin > 0 && IsWordChar(stmt[word_begin - 1])) --word_begin;
      if (stmt.substr(word_begin, word_end - word_begin) != "operator") {
        return ScopeKind::kBlock;
      }
      name = "operator";
      name += std::string(stmt.substr(word_end, sym_end - word_end));
      back = word_begin;
    } else {
      size_t end = back;
      while (back > 0 && (IsWordChar(stmt[back - 1]) || stmt[back - 1] == '~')) --back;
      name = std::string(stmt.substr(back, end - back));
    }
    if (name.empty() || kControlKeywords.count(name) > 0) return ScopeKind::kBlock;
    // Prepend `Scope::` qualifiers written at the definition.
    while (back >= 2 && stmt[back - 1] == ':' && stmt[back - 2] == ':') {
      size_t end = back - 2;
      size_t begin = end;
      while (begin > 0 && IsWordChar(stmt[begin - 1])) --begin;
      if (begin == end) break;
      name = std::string(stmt.substr(begin, end - begin)) + "::" + name;
      back = begin;
    }
    FunctionFact fn;
    // stmt is a substring of walk; its first non-space character pins
    // the signature line.
    fn.line = LineOf(line_starts, (stmt.data() - walk.data()) + SkipSpaces(stmt, 0));
    std::string prefix = ScopePrefix();
    fn.name = name;
    fn.qual = prefix.empty() ? name : prefix + "::" + name;
    fn.hot = hot_lines.count(fn.line) > 0 || hot_lines.count(fn.line - 1) > 0;
    scope->func = facts->functions.size();
    facts->functions.push_back(std::move(fn));
    return ScopeKind::kFunction;
  }

  /// Dispatches one word occurrence; returns the next scan offset.
  size_t HandleWord(size_t begin, size_t end) {
    std::string_view word = walk.substr(begin, end - begin);

    if ((word == "MutexLock" || word == "CondVarLock") && InFunction()) {
      size_t consumed = TryAcquisition(begin, end, word);
      if (consumed != 0) return consumed;
      return end;
    }

    bool after_member_access =
        begin > 0 && (walk[begin - 1] == '.' ||
                      (begin > 1 && walk[begin - 1] == '>' && walk[begin - 2] == '-'));

    if ((word == "Lock" || word == "Unlock") && after_member_access && InFunction()) {
      HandleManualLock(begin, end, word == "Lock");
      return end;
    }

    if (!InFunction()) return end;

    size_t next = SkipSpaces(walk, end);
    char next_c = next < walk.size() ? walk[next] : '\0';

    // Allocation expressions.
    if (word == "new") {
      RecordAllocation(begin, "new");
      return end;
    }
    if ((word == "make_unique" || word == "make_shared") &&
        (next_c == '<' || next_c == '(')) {
      RecordAllocation(begin, std::string(word));
      return end;
    }
    if (word == "string" && begin >= 2 && walk[begin - 1] == ':' &&
        walk[begin - 2] == ':') {
      // `std::string x` declarations and `std::string(...)` temporaries
      // own heap storage; references, pointers and nested template args
      // do not.
      if (next_c != '\0' && (IsWordChar(next_c) || next_c == '(' || next_c == '{')) {
        RecordAllocation(begin, "std::string");
      }
      return end;
    }
    if (kGrowthCalls.count(word) > 0 && after_member_access && next_c == '(') {
      RecordAllocation(begin, std::string(word));
      return end;
    }

    // Call sites while holding a lock.
    if (next_c == '(' && kControlKeywords.count(word) == 0 && word != "string") {
      std::vector<std::string> held = HeldSet();
      if (!held.empty()) {
        CallFact call;
        call.line = LineOf(line_starts, begin);
        call.func = CurrentFunc();
        call.held = std::move(held);
        if (after_member_access) {
          call.callee = std::string(word);
        } else {
          std::string callee(word);
          size_t back = begin;
          while (back >= 2 && walk[back - 1] == ':' && walk[back - 2] == ':') {
            size_t qend = back - 2;
            size_t qbegin = qend;
            while (qbegin > 0 && IsWordChar(walk[qbegin - 1])) --qbegin;
            if (qbegin == qend) break;
            callee = std::string(walk.substr(qbegin, qend - qbegin)) + "::" + callee;
            back = qbegin;
          }
          call.callee = std::move(callee);
        }
        facts->locked_calls.push_back(std::move(call));
      }
    }
    return end;
  }

  /// Parses `MutexLock name(expr)` / `CondVarLock name(expr)` starting at
  /// the wrapper word; returns the offset past ')' on success, 0 if the
  /// occurrence is not an acquisition (class definition, parameter, ...).
  size_t TryAcquisition(size_t begin, size_t end, std::string_view wrapper) {
    size_t p = SkipSpaces(walk, end);
    size_t var_begin = p;
    while (p < walk.size() && IsWordChar(walk[p])) ++p;
    if (p == var_begin) return 0;  // no variable name → not a declaration
    p = SkipSpaces(walk, p);
    if (p >= walk.size() || walk[p] != '(') return 0;
    size_t depth = 0;
    size_t open = p;
    while (p < walk.size()) {
      if (walk[p] == '(') ++depth;
      if (walk[p] == ')' && --depth == 0) break;
      ++p;
    }
    if (p >= walk.size()) return 0;
    std::string mutex = NormalizeMutex(walk.substr(open + 1, p - open - 1));
    if (mutex.empty()) return 0;
    AcquisitionFact acq;
    acq.line = LineOf(line_starts, begin);
    acq.func = CurrentFunc();
    acq.wrapper = std::string(wrapper);
    acq.mutex = mutex;
    acq.held = HeldSet();
    facts->acquisitions.push_back(std::move(acq));
    if (!stack.empty()) stack.back().active.push_back(std::move(mutex));
    return p + 1;
  }

  void HandleManualLock(size_t begin, size_t end, bool is_lock) {
    size_t p = SkipSpaces(walk, end);
    if (p >= walk.size() || walk[p] != '(') return;
    // Recover the object expression before the `.` / `->`.
    size_t dot = begin - 1;
    if (walk[dot] == '>') --dot;  // `->`: dot now at '-'
    size_t k = dot;
    while (k > 0) {
      char c = walk[k - 1];
      if (IsWordChar(c) || c == '.') {
        --k;
      } else if (c == ':' && k > 1 && walk[k - 2] == ':') {
        k -= 2;
      } else if (c == '>' && k > 1 && walk[k - 2] == '-') {
        k -= 2;
      } else {
        break;
      }
    }
    if (k == dot) return;
    std::string mutex = NormalizeMutex(walk.substr(k, dot - k));
    if (mutex.empty()) return;
    if (is_lock) {
      AcquisitionFact acq;
      acq.line = LineOf(line_starts, begin);
      acq.func = CurrentFunc();
      acq.wrapper = "Lock";
      acq.mutex = mutex;
      acq.held = HeldSet();
      facts->acquisitions.push_back(std::move(acq));
      // A manual Lock() outlives the current block: attach it to the
      // function scope so the held-set survives until Unlock or return.
      for (size_t s = stack.size(); s > 0; --s) {
        if (stack[s - 1].kind == ScopeKind::kFunction) {
          stack[s - 1].active.push_back(std::move(mutex));
          return;
        }
      }
      if (!stack.empty()) stack.back().active.push_back(std::move(mutex));
    } else {
      for (size_t s = stack.size(); s > 0; --s) {
        auto& active = stack[s - 1].active;
        auto it = std::find(active.begin(), active.end(), mutex);
        if (it != active.end()) {
          active.erase(it);
          return;
        }
      }
    }
  }

  void RecordAllocation(size_t offset, std::string what) {
    AllocationFact alloc;
    alloc.line = LineOf(line_starts, offset);
    alloc.func = CurrentFunc();
    alloc.what = std::move(what);
    facts->allocations.push_back(std::move(alloc));
  }
};

std::set<size_t> HotMarkerLines(std::string_view comments,
                                const std::vector<size_t>& line_starts) {
  std::set<size_t> lines;
  static constexpr std::string_view kHot = "sqlog-hot";
  for (size_t pos = comments.find(kHot); pos != std::string_view::npos;
       pos = comments.find(kHot, pos + kHot.size())) {
    lines.insert(LineOf(line_starts, pos));
  }
  return lines;
}

}  // namespace

FileFacts ExtractFacts(std::string_view content) {
  FileFacts facts;
  facts.content_hash = HashSourceContent(content);

  SplitSource split = SplitCodeAndComments(content);
  std::vector<size_t> line_starts = LineStarts(split.code);

  ExtractSuppressions(split.comments, line_starts, &facts);
  ExtractIncludes(content, split.code, line_starts, &facts);
  ExtractR1Sites(split.code, line_starts, &facts);
  ExtractR2Sites(split.code, line_starts, &facts);
  ExtractR3Sites(split.code, line_starts, &facts);
  ExtractR4Sites(split.code, line_starts, &facts);
  ExtractR6Sites(split.code, line_starts, &facts);
  ExtractR7Sites(split.code, line_starts, &facts);

  std::set<size_t> hot_lines = HotMarkerLines(split.comments, line_starts);
  std::string walk = BlankPreprocessorLines(split.code);
  Walker walker{walk, line_starts, &facts, hot_lines, {}, 0, 0};
  walker.Run();

  std::sort(facts.rule_sites.begin(), facts.rule_sites.end(),
            [](const RuleSiteFact& a, const RuleSiteFact& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.detail < b.detail;
            });
  return facts;
}

namespace {

std::string JoinHeld(const std::vector<std::string>& held) {
  if (held.empty()) return "-";
  std::string out;
  for (const auto& h : held) {
    if (!out.empty()) out += ',';
    out += h;
  }
  return out;
}

std::vector<std::string> SplitHeld(const std::string& csv) {
  std::vector<std::string> out;
  if (csv == "-") return out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t comma = csv.find(',', begin);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(begin));
      break;
    }
    out.push_back(csv.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}

std::string FuncName(const FileFacts& facts, size_t func) {
  return func == kNoFunction || func >= facts.functions.size()
             ? "-"
             : facts.functions[func].qual;
}

}  // namespace

std::string DumpFacts(const std::string& rel_path, const FileFacts& facts) {
  std::ostringstream out;
  out << "file " << rel_path << "\n";
  for (const auto& inc : facts.includes) {
    out << "include " << inc.line << " " << (inc.angled ? "<>" : "\"\"") << " "
        << inc.target << "\n";
  }
  for (const auto& ns : facts.namespaces) {
    out << "namespace " << (ns.empty() ? "(anonymous)" : ns) << "\n";
  }
  for (const auto& type : facts.types) {
    out << "type " << type.line << " " << type.name << "\n";
  }
  for (const auto& m : facts.members) {
    out << "member " << m.line << " " << m.type_name << "::" << m.declarator
        << " leading=" << m.leading << " annotated=" << (m.annotated ? 1 : 0) << "\n";
  }
  for (const auto& fn : facts.functions) {
    out << "function " << fn.line << " " << fn.qual << " hot=" << (fn.hot ? 1 : 0)
        << "\n";
  }
  for (const auto& acq : facts.acquisitions) {
    out << "acquire " << acq.line << " " << acq.wrapper << " " << acq.mutex
        << " func=" << FuncName(facts, acq.func) << " held=" << JoinHeld(acq.held)
        << "\n";
  }
  for (const auto& call : facts.locked_calls) {
    out << "call " << call.line << " " << call.callee
        << " func=" << FuncName(facts, call.func) << " held=" << JoinHeld(call.held)
        << "\n";
  }
  for (const auto& alloc : facts.allocations) {
    out << "alloc " << alloc.line << " " << alloc.what
        << " func=" << FuncName(facts, alloc.func) << "\n";
  }
  for (const auto& site : facts.rule_sites) {
    out << "site " << site.rule << " " << site.line;
    if (!site.detail.empty()) out << " " << site.detail;
    out << "\n";
  }
  for (const auto& supp : facts.suppressions) {
    out << "suppress " << supp.rule << " " << supp.line << "\n";
  }
  for (const auto& err : facts.config_errors) {
    out << "error " << err.line << " " << err.detail << "\n";
  }
  return out.str();
}

// --- cache serialization -------------------------------------------------

void SerializeFacts(const FileFacts& facts, std::string* out) {
  std::ostringstream buf;
  for (const auto& inc : facts.includes) {
    buf << "I " << inc.line << " " << (inc.angled ? 1 : 0) << " " << inc.target << "\n";
  }
  for (const auto& ns : facts.namespaces) {
    buf << "N " << ns << "\n";
  }
  for (const auto& type : facts.types) {
    buf << "T " << type.line << " " << type.name << "\n";
  }
  for (const auto& m : facts.members) {
    buf << "M " << m.line << " " << (m.annotated ? 1 : 0) << " " << m.type_name << " "
        << m.leading << " " << m.declarator << "\n";
  }
  for (const auto& fn : facts.functions) {
    buf << "F " << fn.line << " " << (fn.hot ? 1 : 0) << " " << fn.name << " "
        << fn.qual << "\n";
  }
  for (const auto& acq : facts.acquisitions) {
    buf << "A " << acq.line << " " << acq.func << " " << acq.wrapper << " "
        << acq.mutex << " " << JoinHeld(acq.held) << "\n";
  }
  for (const auto& call : facts.locked_calls) {
    buf << "C " << call.line << " " << call.func << " " << JoinHeld(call.held) << " "
        << call.callee << "\n";
  }
  for (const auto& alloc : facts.allocations) {
    buf << "X " << alloc.line << " " << alloc.func << " " << alloc.what << "\n";
  }
  for (const auto& site : facts.rule_sites) {
    buf << "S " << site.rule << " " << site.line << " " << site.detail << "\n";
  }
  for (const auto& supp : facts.suppressions) {
    buf << "P " << supp.rule << " " << supp.line << "\n";
  }
  for (const auto& err : facts.config_errors) {
    buf << "E " << err.line << " " << err.detail << "\n";
  }
  out->append(buf.str());
}

namespace {

/// Parses one cache record line into `facts`. Returns false on any
/// malformed input (the caller then discards the whole cache).
bool ParseRecord(const std::string& line, FileFacts* facts) {
  if (line.size() < 2 || line[1] != ' ') return false;
  std::istringstream in(line.substr(2));
  auto rest_of_line = [&]() {
    std::string rest;
    std::getline(in >> std::ws, rest);
    return rest;
  };
  switch (line[0]) {
    case 'I': {
      IncludeFact inc;
      int angled = 0;
      if (!(in >> inc.line >> angled)) return false;
      inc.angled = angled != 0;
      inc.target = rest_of_line();
      if (inc.target.empty()) return false;
      facts->includes.push_back(std::move(inc));
      return true;
    }
    case 'N': {
      facts->namespaces.push_back(line.substr(2));
      return true;
    }
    case 'T': {
      TypeFact type;
      if (!(in >> type.line >> type.name)) return false;
      facts->types.push_back(std::move(type));
      return true;
    }
    case 'M': {
      MemberFact m;
      int annotated = 0;
      if (!(in >> m.line >> annotated >> m.type_name >> m.leading >> m.declarator)) {
        return false;
      }
      m.annotated = annotated != 0;
      facts->members.push_back(std::move(m));
      return true;
    }
    case 'F': {
      FunctionFact fn;
      int hot = 0;
      if (!(in >> fn.line >> hot >> fn.name >> fn.qual)) return false;
      fn.hot = hot != 0;
      facts->functions.push_back(std::move(fn));
      return true;
    }
    case 'A': {
      AcquisitionFact acq;
      std::string held;
      if (!(in >> acq.line >> acq.func >> acq.wrapper >> acq.mutex >> held)) {
        return false;
      }
      acq.held = SplitHeld(held);
      facts->acquisitions.push_back(std::move(acq));
      return true;
    }
    case 'C': {
      CallFact call;
      std::string held;
      if (!(in >> call.line >> call.func >> held >> call.callee)) return false;
      call.held = SplitHeld(held);
      facts->locked_calls.push_back(std::move(call));
      return true;
    }
    case 'X': {
      AllocationFact alloc;
      if (!(in >> alloc.line >> alloc.func >> alloc.what)) return false;
      facts->allocations.push_back(std::move(alloc));
      return true;
    }
    case 'S': {
      RuleSiteFact site;
      if (!(in >> site.rule >> site.line)) return false;
      site.detail = rest_of_line();
      facts->rule_sites.push_back(std::move(site));
      return true;
    }
    case 'P': {
      SuppressionFact supp;
      if (!(in >> supp.rule >> supp.line)) return false;
      facts->suppressions.push_back(std::move(supp));
      return true;
    }
    case 'E': {
      RuleSiteFact err;
      err.rule = "config";
      if (!(in >> err.line)) return false;
      err.detail = rest_of_line();
      facts->config_errors.push_back(std::move(err));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

FactDb LoadFactCache(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) ||
      line != StrFormat("sqlog-lint-facts %d", kFactFormatVersion)) {
    return {};
  }
  FactDb db;
  FileFacts* current = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (StartsWith(line, "file ")) {
      std::istringstream header(line.substr(5));
      std::string file_path;
      std::string hash_hex;
      if (!(header >> file_path >> hash_hex)) return {};
      unsigned long long hash = 0;
      if (std::sscanf(hash_hex.c_str(), "%llx", &hash) != 1) return {};
      current = &db[file_path];
      current->content_hash = hash;
      continue;
    }
    if (current == nullptr || !ParseRecord(line, current)) return {};
  }
  return db;
}

Status SaveFactCache(const std::string& path, const FactDb& db) {
  std::string out = StrFormat("sqlog-lint-facts %d\n", kFactFormatVersion);
  for (const auto& [file, facts] : db) {
    out += StrFormat("file %s %llx\n", file.c_str(),
                     static_cast<unsigned long long>(facts.content_hash));
    SerializeFacts(facts, &out);
  }
  std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      return Status::IoError(StrFormat("cannot write lint fact cache %s", tmp.c_str()));
    }
    f << out;
    if (!f) {
      return Status::IoError(StrFormat("short write to lint fact cache %s", tmp.c_str()));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError(
        StrFormat("cannot rename lint fact cache %s into place", tmp.c_str()));
  }
  return Status::OK();
}

}  // namespace sqlog::lint
