// sqlog — the operator command-line tool. Wraps the library end to end:
//
//   sqlog generate <n> <out.csv>            synthesize a SkyServer-style log
//   sqlog convert <in> <out>                convert between CSV and binary .sqb
//   sqlog clean <in> <out-prefix>           run the full pipeline, write
//                                           <prefix>.clean/.removal in csv or
//                                           sqb (--out-format)
//   sqlog stats <in>                        Table 5-style overview
//   sqlog patterns <in.csv> [k]             top-k patterns with descriptions
//   sqlog antipatterns <in.csv> [k]         top-k distinct antipatterns
//   sqlog report <in.csv>                   per-detector hits, template-clustered
//   sqlog cluster <in.csv> [threshold]      Sec. 6.9 clustering summary
//   sqlog recommend <in.csv> <sql...>       next-query suggestions
//
// The command list above, the Usage() text, and the main() dispatch are
// all generated from the single kCommands table at the bottom.

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <string>

#include "sqlog.h"

#include "analysis/clustering.h"
#include "analysis/describe.h"
#include "analysis/recommender.h"
#include "log/binlog.h"

namespace {

using namespace sqlog;

// Usage() and main() render/dispatch the kCommands table below; the
// command handlers only need the forward declaration.
int Usage();

/// --streaming / --batch-size=<n> / --no-parse-cache / --format=<f>,
/// stripped from the argument list by ParseStreamFlags (remaining
/// positional args shift down). Returns the new argc, or -1 after
/// printing an error for a malformed flag value.
struct StreamFlags {
  bool streaming = false;
  size_t batch_size = 4096;
  bool parse_cache = true;
  /// Input format; auto probes for the `.sqb` magic.
  log::LogFormat format = log::LogFormat::kAuto;
  /// Output format for `clean` (csv or sqb); picks the file extensions.
  log::LogFormat out_format = log::LogFormat::kCsv;
};

int ParseStreamFlags(int argc, char** argv, StreamFlags* flags) {
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--streaming") == 0) {
      flags->streaming = true;
      continue;
    }
    if (std::strncmp(argv[i], "--batch-size=", 13) == 0) {
      flags->batch_size = std::strtoull(argv[i] + 13, nullptr, 10);
      flags->streaming = true;
      continue;
    }
    if (std::strcmp(argv[i], "--no-parse-cache") == 0) {
      flags->parse_cache = false;
      continue;
    }
    if (std::strncmp(argv[i], "--format=", 9) == 0) {
      auto format = log::ParseLogFormatName(argv[i] + 9);
      if (!format.ok()) {
        std::fprintf(stderr, "error: %s\n", format.status().ToString().c_str());
        return -1;
      }
      flags->format = *format;
      continue;
    }
    if (std::strncmp(argv[i], "--out-format=", 13) == 0) {
      auto format = log::ParseLogFormatName(argv[i] + 13);
      if (!format.ok() || *format == log::LogFormat::kAuto) {
        std::fprintf(stderr, "error: --out-format must be csv or sqb\n");
        return -1;
      }
      flags->out_format = *format;
      continue;
    }
    argv[kept++] = argv[i];
  }
  return kept;
}

/// Parse-avoidance effectiveness, printed after the overview table. The
/// hit/miss split depends on thread sharding, so this never goes into
/// the golden-compared table itself.
void PrintParseCacheReport(const core::ParseStats& ps) {
  if (ps.cache_hits + ps.cache_misses + ps.uncacheable_hits + ps.failure_hits == 0) {
    return;  // cache disabled (or nothing was parsed through it)
  }
  uint64_t keyed = ps.cache_hits + ps.cache_misses + ps.uncacheable_hits + ps.failure_hits;
  double hit_rate = keyed == 0 ? 0.0 : 100.0 * (double)ps.parses_avoided() / (double)keyed;
  std::printf(
      "parse cache: %llu templates (%.1f KiB), %llu hits / %llu misses, "
      "%llu parses avoided (%.1f%% of fingerprinted statements)\n",
      (unsigned long long)ps.templates_cached, ps.cache_bytes / 1024.0,
      (unsigned long long)(ps.cache_hits + ps.failure_hits),
      (unsigned long long)ps.cache_misses, (unsigned long long)ps.parses_avoided(),
      hit_rate);
}

Result<log::QueryLog> Load(const char* path,
                           log::LogFormat format = log::LogFormat::kAuto) {
  return log::LogIo::ReadFile(path, format);
}

Result<core::PipelineResult> RunPipeline(const log::QueryLog& raw,
                                         const StreamFlags& flags = {}) {
  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(0)  // CLI batch work: use every core
                      .ParseCache(flags.parse_cache)
                      .Build();
  SQLOG_RETURN_IF_ERROR_R(pipeline.status());
  return pipeline->Run(raw);
}

Result<core::StreamingRunResult> RunStreamingPipeline(const StreamFlags& flags,
                                                      const std::string& input,
                                                      const std::string& clean_path,
                                                      const std::string& removal_path) {
  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(0)
                      .Streaming(true)
                      .BatchSize(flags.batch_size)
                      .ParseCache(flags.parse_cache)
                      .InputFormat(flags.format)
                      .OutputFormat(flags.out_format)
                      .Build();
  SQLOG_RETURN_IF_ERROR_R(pipeline.status());
  return pipeline->RunStreaming(input, clean_path, removal_path);
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 2) return Usage();
  log::GeneratorConfig config;
  config.target_statements = static_cast<size_t>(std::strtoull(argv[0], nullptr, 10));
  log::QueryLog log = log::GenerateLog(config);
  Status s = log::LogIo::WriteFile(log, argv[1]);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records, %zu users)\n", argv[1], log.size(),
              log.DistinctUserCount());
  return 0;
}

/// `sqlog convert`: re-encodes a log between CSV and the binary `.sqb`
/// container. The direction comes from --to-csv/--to-sqb or, absent
/// both, the output extension; the input format is probed. A CSV →
/// `.sqb` → CSV round trip is byte-identical.
int CmdConvert(int argc, char** argv) {
  log::LogFormat target = log::LogFormat::kAuto;
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--to-csv") == 0) {
      target = log::LogFormat::kCsv;
      continue;
    }
    if (std::strcmp(argv[i], "--to-sqb") == 0) {
      target = log::LogFormat::kSqb;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (argc < 2) return Usage();
  const std::string in_path = argv[0];
  const std::string out_path = argv[1];
  target = log::ResolveWriteFormat(target, out_path);

  auto reader = log::LogIo::OpenLogReader(in_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.status().ToString().c_str());
    return 1;
  }
  auto copy_all = [&](log::RecordWriter& writer) -> Status {
    SQLOG_RETURN_IF_ERROR(writer.Open(out_path));
    log::LogRecord record;
    bool eof = false;
    while (true) {
      SQLOG_RETURN_IF_ERROR((*reader)->ReadRecord(&record, &eof));
      if (eof) break;
      SQLOG_RETURN_IF_ERROR(writer.Append(record));
    }
    return writer.Close();
  };

  if (target == log::LogFormat::kSqb) {
    log::BinLogWriterOptions options;
    // Recipes make the file self-describing: re-ingestion seeds the
    // parse cache from the dictionary and runs with zero full parses.
    options.recipe_builder = core::BuildStatementRecipe;
    log::BinLogWriter writer(options);
    Status s = copy_all(writer);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%llu records, %llu templates, %llu stored verbatim)\n",
                out_path.c_str(), (unsigned long long)writer.records_written(),
                (unsigned long long)writer.dictionary_size(),
                (unsigned long long)writer.verbatim_records());
  } else {
    log::LogWriter writer;
    Status s = copy_all(writer);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%llu records)\n", out_path.c_str(),
                (unsigned long long)writer.records_written());
  }
  return 0;
}

int CmdClean(int argc, char** argv) {
  StreamFlags flags;
  argc = ParseStreamFlags(argc, argv, &flags);
  if (argc < 0) return 2;
  if (argc < 2) return Usage();
  const bool sqb_out = flags.out_format == log::LogFormat::kSqb;
  const char* clean_suffix = sqb_out ? ".clean.sqb" : ".clean.csv";
  const char* removal_suffix = sqb_out ? ".removal.sqb" : ".removal.csv";
  if (flags.streaming) {
    std::string prefix = argv[1];
    std::string clean_path = prefix + clean_suffix;
    std::string removal_path = prefix + removal_suffix;
    auto run = RunStreamingPipeline(flags, argv[0], clean_path, removal_path);
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", run->stats.ToTable().c_str());
    PrintParseCacheReport(run->parsed.parse_stats);
    std::printf("wrote %s (%llu records)\n", clean_path.c_str(),
                (unsigned long long)run->stats.final_size);
    std::printf("wrote %s (%llu records)\n", removal_path.c_str(),
                (unsigned long long)run->stats.removal_size);
    return 0;
  }
  auto raw = Load(argv[0], flags.format);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto run = RunPipeline(*raw, flags);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  core::PipelineResult& result = *run;
  std::printf("%s\n", result.stats.ToTable().c_str());
  PrintParseCacheReport(result.parsed.parse_stats);
  std::string prefix = argv[1];
  for (const auto& [suffix, log] :
       {std::pair<const char*, const log::QueryLog*>{clean_suffix, &result.clean_log},
        std::pair<const char*, const log::QueryLog*>{removal_suffix,
                                                     &result.removal_log}}) {
    Status s = log::LogIo::WriteFile(*log, prefix + suffix, flags.out_format,
                                     sqb_out ? core::BuildStatementRecipe : nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s%s (%zu records)\n", prefix.c_str(), suffix, log->size());
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  StreamFlags flags;
  argc = ParseStreamFlags(argc, argv, &flags);
  if (argc < 0) return 2;
  if (argc < 1) return Usage();
  if (flags.streaming) {
    // stats has no output files of its own; the streaming pass still
    // writes the clean/removal logs, so park them next to the input and
    // remove them afterwards.
    std::string clean_path = std::string(argv[0]) + ".stats-tmp.clean.csv";
    std::string removal_path = std::string(argv[0]) + ".stats-tmp.removal.csv";
    auto run = RunStreamingPipeline(flags, argv[0], clean_path, removal_path);
    std::remove(clean_path.c_str());
    std::remove(removal_path.c_str());
    if (!run.ok()) {
      std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", run->stats.ToTable().c_str());
    PrintParseCacheReport(run->parsed.parse_stats);
    return 0;
  }
  auto raw = Load(argv[0], flags.format);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto run = RunPipeline(*raw, flags);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  core::PipelineResult& result = *run;
  std::printf("%s", result.stats.ToTable().c_str());
  PrintParseCacheReport(result.parsed.parse_stats);
  return 0;
}

int CmdPatterns(int argc, char** argv) {
  if (argc < 1) return Usage();
  size_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15;
  auto raw = Load(argv[0]);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto run = RunPipeline(*raw);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  core::PipelineResult& result = *run;
  std::printf("%-4s %-10s %-6s %-4s %s\n", "#", "freq", "users", "AP?", "description");
  for (size_t i = 0; i < result.patterns.size() && i < k; ++i) {
    const auto& pattern = result.patterns[i];
    const auto& info = result.templates.Get(pattern.template_ids[0]);
    const auto& sample = result.parsed.queries[info.first_query];
    std::printf("%-4zu %-10llu %-6zu %-4s %s\n", i + 1,
                (unsigned long long)pattern.frequency, pattern.user_popularity(),
                result.PatternIsAntipattern(i) ? "yes" : "",
                analysis::DescribeTemplate(sample.facts).c_str());
  }
  return 0;
}

int CmdAntipatterns(int argc, char** argv) {
  if (argc < 1) return Usage();
  size_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15;
  auto raw = Load(argv[0]);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto run = RunPipeline(*raw);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  core::PipelineResult& result = *run;
  auto distinct = result.antipatterns.distinct;
  std::sort(distinct.begin(), distinct.end(),
            [](const auto& a, const auto& b) { return a.query_count > b.query_count; });
  std::printf("%-4s %-12s %-10s %-6s %s\n", "#", "detector", "queries", "users",
              "skeleton");
  const core::DetectorSet& set = *result.antipatterns.detectors;
  for (size_t i = 0; i < distinct.size() && i < k; ++i) {
    const auto& d = distinct[i];
    const auto& tmpl = result.templates.Get(d.template_ids[0]).tmpl;
    std::printf("%-4zu %-12s %-10llu %-6zu %.80s\n", i + 1,
                set.info(d.detector).display_name.c_str(),
                (unsigned long long)d.query_count, d.user_popularity(),
                (tmpl.ssc + " " + tmpl.swc).c_str());
  }
  return 0;
}

/// `sqlog report`: runs the full registered detector catalog (or the
/// --detectors=<id,...> subset) and prints, per detector, its distinct
/// hit groups bucketed by template cluster — the Sec. 6.9 data-space
/// clustering applied to detector output, so one robot that tripped a
/// detector under many templates reads as one cluster.
int CmdReport(int argc, char** argv) {
  StreamFlags flags;
  argc = ParseStreamFlags(argc, argv, &flags);
  if (argc < 0) return 2;
  std::vector<std::string> ids = core::DetectorRegistry::Global().Ids();
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--detectors=", 12) == 0) {
      ids.clear();
      std::string list = argv[i] + 12;
      size_t start = 0;
      while (start < list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) ids.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (argc < 1) return Usage();

  auto raw = Load(argv[0], flags.format);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  static catalog::Schema schema = catalog::MakeSkyServerSchema();
  auto pipeline = core::PipelineBuilder()
                      .WithSchema(&schema)
                      .NumThreads(0)
                      .Detectors(std::move(ids))
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "error: %s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto run = pipeline->Run(*raw);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& result = *run;
  const core::AntipatternReport& report = result.antipatterns;
  const core::DetectorSet& set = *report.detectors;

  for (size_t d = 0; d < set.size(); ++d) {
    const core::DetectorInfo& info = set.info(d);
    std::vector<const core::DistinctAntipattern*> groups;
    for (const auto& group : report.distinct) {
      if (group.detector == d) groups.push_back(&group);
    }
    std::printf("== %s (%s): %zu distinct, %llu queries\n", info.display_name.c_str(),
                info.id.c_str(), groups.size(),
                (unsigned long long)report.QueriesOf(static_cast<uint32_t>(d)));
    if (!info.description.empty()) std::printf("   %s\n", info.description.c_str());
    if (groups.empty()) continue;

    std::vector<analysis::DataSpace> spaces;
    for (const auto* group : groups) {
      spaces.push_back(
          analysis::ExtractDataSpace(result.parsed.queries[group->sample_query].facts));
    }
    auto clusters = analysis::ClusterDataSpaces(spaces, analysis::ClusteringOptions{});

    struct Row {
      size_t group_count;
      unsigned long long queries;
      size_t sample_query;
    };
    std::vector<Row> rows;
    for (const auto& cluster : clusters.clusters) {
      Row row{cluster.size(), 0, groups[cluster.members[0]]->sample_query};
      for (size_t member : cluster.members) row.queries += groups[member]->query_count;
      rows.push_back(row);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.queries > b.queries; });
    for (size_t i = 0; i < rows.size() && i < 8; ++i) {
      std::printf(
          "   cluster %zu: %zu groups, %llu queries — %s\n", i + 1, rows[i].group_count,
          rows[i].queries,
          analysis::DescribeTemplate(result.parsed.queries[rows[i].sample_query].facts)
              .c_str());
    }
    if (rows.size() > 8) std::printf("   ... %zu more clusters\n", rows.size() - 8);
  }
  return 0;
}

int CmdCluster(int argc, char** argv) {
  if (argc < 1) return Usage();
  double threshold = argc > 1 ? std::strtod(argv[1], nullptr) : 0.9;
  auto raw = Load(argv[0]);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  std::vector<analysis::DataSpace> spaces;
  for (const auto& record : raw->records()) {
    // sqlog-lint: allow(R1 one-shot clustering scan with no cache to warm)
    auto facts = sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) continue;
    spaces.push_back(analysis::ExtractDataSpace(facts.value()));
  }
  analysis::ClusteringOptions options;
  options.threshold = threshold;
  auto clusters = analysis::ClusterDataSpaces(spaces, options);
  std::printf("queries=%zu clusters=%zu avg-size=%.1f runtime=%.2fs\n", spaces.size(),
              clusters.cluster_count(), clusters.average_size(),
              clusters.runtime_seconds);
  for (size_t i = 0; i < clusters.clusters.size() && i < 10; ++i) {
    std::printf("  cluster %zu: %zu queries\n", i + 1, clusters.clusters[i].size());
  }
  return 0;
}

int CmdRecommend(int argc, char** argv) {
  if (argc < 2) return Usage();
  auto raw = Load(argv[0]);
  if (!raw.ok()) {
    std::fprintf(stderr, "error: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  // Train on the cleaned log so suggestions are antipattern-free
  // (exactly the setup the paper's future work argues for).
  auto run = RunPipeline(*raw);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  core::PipelineResult& result = *run;
  core::TemplateStore clean_store;
  core::ParsedLog clean_parsed = core::ParseLog(result.clean_log, clean_store);
  analysis::Recommender model;
  model.Train(clean_parsed);

  // sqlog-lint: allow(R1 a single user-typed statement is parsed once)
  auto facts = sql::ParseAndAnalyze(argv[1]);
  if (!facts.ok()) {
    std::fprintf(stderr, "cannot parse query: %s\n", facts.status().ToString().c_str());
    return 1;
  }
  auto suggestions = model.Recommend(facts->tmpl.fingerprint, 5);
  if (suggestions.empty()) {
    std::printf("no suggestions (template unseen in the cleaned log)\n");
    return 0;
  }
  // Resolve fingerprints back to a sample statement each.
  std::printf("likely next queries:\n");
  for (uint64_t fp : suggestions) {
    for (const auto& info : clean_store.templates()) {
      if (info.tmpl.fingerprint != fp) continue;
      const auto& sample = clean_parsed.queries[info.first_query];
      std::printf("  - %s\n     e.g. %.100s\n",
                  analysis::DescribeTemplate(sample.facts).c_str(),
                  result.clean_log.records()[sample.record_index].statement.c_str());
      break;
    }
  }
  return 0;
}

/// The single source of truth for the CLI surface: Usage() renders it,
/// main() dispatches over it, and the file header mirrors it.
struct Command {
  const char* name;
  const char* syntax;  // positional args + per-command flags
  const char* help;    // one line
  int (*fn)(int argc, char** argv);
};

constexpr Command kCommands[] = {
    {"generate", "<n> <out.csv>", "synthesize a SkyServer-style log", CmdGenerate},
    {"convert", "<in> <out> [--to-csv|--to-sqb]",
     "convert between CSV and the binary .sqb format", CmdConvert},
    {"clean", "<in> <out-prefix>",
     "clean a log; writes <prefix>.clean.{csv,sqb} and <prefix>.removal.{csv,sqb}",
     CmdClean},
    {"stats", "<in>", "results overview (paper Table 5)", CmdStats},
    {"patterns", "<in.csv> [k]", "top-k patterns with descriptions", CmdPatterns},
    {"antipatterns", "<in.csv> [k]", "top-k distinct antipatterns", CmdAntipatterns},
    {"report", "<in> [--detectors=a,b]",
     "per-detector hits grouped by template cluster", CmdReport},
    {"cluster", "<in.csv> [threshold]", "data-space clustering summary", CmdCluster},
    {"recommend", "<in.csv> <sql>", "suggest likely next queries", CmdRecommend},
};

int Usage() {
  std::fprintf(stderr, "usage: sqlog <command> [flags] [args]\n");
  for (const Command& command : kCommands) {
    std::string invocation = std::string(command.name) + " " + command.syntax;
    std::fprintf(stderr, "  %-30s %s\n", invocation.c_str(), command.help);
  }
  std::fprintf(
      stderr,
      "flags for clean/stats:\n"
      "  --streaming                  bounded-memory two-pass ingestion; the\n"
      "                               input must be (timestamp, seq)-ordered\n"
      "  --batch-size=<n>             records per streaming batch (default 4096;\n"
      "                               implies --streaming)\n"
      "  --no-parse-cache             disable the template fingerprint cache and\n"
      "                               fully parse every statement (escape hatch;\n"
      "                               output is identical either way)\n"
      "  --format=auto|csv|sqb        input format (default auto: the binary\n"
      "                               .sqb magic is probed, anything else is CSV)\n"
      "  --out-format=csv|sqb         clean/removal output format (default csv;\n"
      "                               sqb embeds parse-cache recipes)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  for (const Command& command : kCommands) {
    if (std::strcmp(argv[1], command.name) == 0) return command.fn(argc - 2, argv + 2);
  }
  return Usage();
}
