// sqlog-lint — repo-specific static checks over the C++ tree.
//
//   sqlog-lint [--config=<file>] [--root=<dir>] [--assume-path=<rel>]
//              [--cache=<file>] [--json=<file>] <path>...
//
// Paths are files or directories (recursive over *.h / *.cc), resolved
// against --root (default: the working directory) and reported relative
// to it. Rules R1-R10 are documented in DESIGN.md ("Static analysis &
// enforced invariants"); the allowlists, concurrency manifest, layer DAG
// and hot-path list live in tools/lint/lint_config.txt. --assume-path
// lints a single file as if it sat at the given repo-relative path,
// which is how the negative fixtures under tests/lint/ exercise the
// path-scoped rules.
//
// The tool runs in two phases: every file is scanned once into a fact
// table (includes, scopes, lock acquisitions, allocations, rule sites),
// then all rules — including the cross-file layering (R8) and lock-order
// (R9) analyses — run over the merged fact database. --cache=<file>
// persists the fact tables keyed by content hash, so a warm re-lint only
// re-extracts files that changed.
//
// Exit codes: 0 clean, 1 findings, 2 usage/config/IO error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/facts.h"
#include "lint/linter.h"

namespace {

namespace fs = std::filesystem;
using sqlog::lint::FactDb;
using sqlog::lint::FileFacts;
using sqlog::lint::Finding;
using sqlog::lint::LintConfig;

int Usage() {
  std::fprintf(stderr,
               "usage: sqlog-lint [--config=<file>] [--root=<dir>] "
               "[--assume-path=<rel>] [--cache=<file>] [--json=<file>] <path>...\n");
  return 2;
}

bool IsSourceFile(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".cc";
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// JSON string escaping (control characters, quotes, backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto start = std::chrono::steady_clock::now();
  std::string config_path;
  std::string root = ".";
  std::string assume_path;
  std::string cache_path;
  std::string json_path;
  bool dump_facts = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--config=", 9) == 0) {
      config_path = arg + 9;
    } else if (std::strncmp(arg, "--root=", 7) == 0) {
      root = arg + 7;
    } else if (std::strncmp(arg, "--assume-path=", 14) == 0) {
      assume_path = arg + 14;
    } else if (std::strncmp(arg, "--cache=", 8) == 0) {
      cache_path = arg + 8;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--dump-facts") == 0) {
      dump_facts = true;
    } else if (arg[0] == '-') {
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();
  if (!assume_path.empty() && inputs.size() != 1) {
    std::fprintf(stderr, "sqlog-lint: --assume-path requires exactly one input file\n");
    return 2;
  }

  LintConfig config;
  if (!config_path.empty()) {
    auto loaded = sqlog::lint::LoadConfig(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "sqlog-lint: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    config = std::move(loaded).value();
  }

  // Expand directories into a sorted file list so output order (and the
  // exit code on ties) never depends on directory-iteration order.
  // Config `exclude` prefixes apply only to directory expansion: an
  // explicitly named file is always linted (how the fixture tests drive
  // files under the excluded tests/lint/ tree).
  std::vector<std::string> rel_paths;
  std::error_code ec;
  for (const std::string& input : inputs) {
    fs::path full = fs::path(root) / input;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
          std::string rel = fs::relative(it->path(), root, ec).generic_string();
          bool excluded = false;
          for (const std::string& prefix : config.exclude) {
            if (HasPrefix(rel, prefix)) excluded = true;
          }
          if (!excluded) rel_paths.push_back(std::move(rel));
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      rel_paths.push_back(fs::path(input).generic_string());
    } else {
      std::fprintf(stderr, "sqlog-lint: no such file or directory: %s\n",
                   full.generic_string().c_str());
      return 2;
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()), rel_paths.end());

  // Phase 1: one scan per file into the fact database, reusing cached
  // fact tables whose content hash still matches.
  FactDb cached;
  if (!cache_path.empty()) cached = sqlog::lint::LoadFactCache(cache_path);
  FactDb db;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  for (const std::string& rel : rel_paths) {
    std::string full = root.empty() ? rel : root + "/" + rel;
    std::ifstream in(full, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "sqlog-lint: cannot open %s\n", full.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    // With --assume-path, the file is linted as if it sat at that
    // repo-relative path, so the path-scoped rules apply to fixtures
    // living elsewhere.
    const std::string& key = assume_path.empty() ? rel : assume_path;
    uint64_t hash = sqlog::lint::HashSourceContent(content);
    auto it = cached.find(key);
    if (it != cached.end() && it->second.content_hash == hash) {
      db[key] = it->second;
      ++cache_hits;
    } else {
      db[key] = sqlog::lint::ExtractFacts(content);
      ++cache_misses;
    }
  }
  if (!cache_path.empty()) {
    auto saved = sqlog::lint::SaveFactCache(cache_path, db);
    if (!saved.ok()) {
      std::fprintf(stderr, "sqlog-lint: %s\n", saved.ToString().c_str());
      return 2;
    }
  }

  if (dump_facts) {
    // Debugging / golden-test aid: print the extracted fact tables
    // instead of running the rules.
    for (const auto& [file, facts] : db) {
      std::fputs(sqlog::lint::DumpFacts(file, facts).c_str(), stdout);
    }
    return 0;
  }

  // Phase 2: every rule over the merged database (cross-file analyses
  // see the whole tree at once).
  std::vector<Finding> findings = sqlog::lint::LintDb(config, db);
  for (const Finding& finding : findings) {
    std::printf("%s\n", finding.ToString().c_str());
  }

  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n";
    json << "  \"tool\": \"sqlog-lint\",\n";
    json << "  \"schema_version\": 1,\n";
    json << "  \"files_scanned\": " << db.size() << ",\n";
    json << "  \"finding_count\": " << findings.size() << ",\n";
    json << "  \"cache\": {\"enabled\": " << (cache_path.empty() ? "false" : "true")
         << ", \"hits\": " << cache_hits << ", \"misses\": " << cache_misses
         << "},\n";
    char elapsed_buf[64];
    std::snprintf(elapsed_buf, sizeof elapsed_buf, "%.6f", elapsed);
    json << "  \"elapsed_seconds\": " << elapsed_buf << ",\n";
    json << "  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      json << (i == 0 ? "\n" : ",\n");
      json << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
           << JsonEscape(f.message) << "\"}";
    }
    json << (findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << json.str())) {
      std::fprintf(stderr, "sqlog-lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
  }

  if (!cache_path.empty()) {
    std::fprintf(stderr,
                 "sqlog-lint: scanned %zu file(s), cache %zu hit(s) / %zu miss(es), "
                 "%.0f ms\n",
                 db.size(), cache_hits, cache_misses, elapsed * 1000.0);
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "sqlog-lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), db.size());
    return 1;
  }
  return 0;
}
