// sqlog-lint — repo-specific static checks over the C++ tree.
//
//   sqlog-lint [--config=<file>] [--root=<dir>] [--assume-path=<rel>] <path>...
//
// Paths are files or directories (recursive over *.h / *.cc), resolved
// against --root (default: the working directory) and reported relative
// to it. Rules R1-R6 are documented in DESIGN.md ("Static analysis &
// enforced invariants"); the allowlist and concurrency manifest live in
// tools/lint/lint_config.txt. --assume-path lints a single file as if it
// sat at the given repo-relative path, which is how the negative
// fixtures under tests/lint/ exercise the path-scoped rules.
//
// Exit codes: 0 clean, 1 findings, 2 usage/config/IO error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace {

namespace fs = std::filesystem;
using sqlog::lint::Finding;
using sqlog::lint::LintConfig;

int Usage() {
  std::fprintf(stderr,
               "usage: sqlog-lint [--config=<file>] [--root=<dir>] "
               "[--assume-path=<rel>] <path>...\n");
  return 2;
}

bool IsSourceFile(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string root = ".";
  std::string assume_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--config=", 9) == 0) {
      config_path = arg + 9;
    } else if (std::strncmp(arg, "--root=", 7) == 0) {
      root = arg + 7;
    } else if (std::strncmp(arg, "--assume-path=", 14) == 0) {
      assume_path = arg + 14;
    } else if (arg[0] == '-') {
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();
  if (!assume_path.empty() && inputs.size() != 1) {
    std::fprintf(stderr, "sqlog-lint: --assume-path requires exactly one input file\n");
    return 2;
  }

  LintConfig config;
  if (!config_path.empty()) {
    auto loaded = sqlog::lint::LoadConfig(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "sqlog-lint: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    config = std::move(loaded).value();
  }

  // Expand directories into a sorted file list so output order (and the
  // exit code on ties) never depends on directory-iteration order.
  std::vector<std::string> rel_paths;
  std::error_code ec;
  for (const std::string& input : inputs) {
    fs::path full = fs::path(root) / input;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
          rel_paths.push_back(fs::relative(it->path(), root, ec).generic_string());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      rel_paths.push_back(fs::path(input).generic_string());
    } else {
      std::fprintf(stderr, "sqlog-lint: no such file or directory: %s\n",
                   full.generic_string().c_str());
      return 2;
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()), rel_paths.end());

  size_t finding_count = 0;
  size_t file_count = 0;
  for (const std::string& rel : rel_paths) {
    // With --assume-path, the file is linted as if it sat at that
    // repo-relative path, so the path-scoped rules (R1/R2/R3/R5) apply
    // to fixtures living elsewhere.
    auto findings = sqlog::lint::LintFile(config, root, rel, assume_path);
    if (!findings.ok()) {
      std::fprintf(stderr, "sqlog-lint: %s\n", findings.status().ToString().c_str());
      return 2;
    }
    ++file_count;
    for (const Finding& finding : *findings) {
      std::printf("%s\n", finding.ToString().c_str());
      ++finding_count;
    }
  }
  if (finding_count > 0) {
    std::fprintf(stderr, "sqlog-lint: %zu finding(s) in %zu file(s)\n", finding_count,
                 file_count);
    return 1;
  }
  return 0;
}
