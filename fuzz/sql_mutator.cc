#include "fuzz/sql_mutator.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "log/generator.h"
#include "sql/lexer.h"
#include "util/string_util.h"

namespace sqlog::fuzz {

namespace {

using sql::TokenType;

/// Owning token copy for mutation: the lexer's tokens are string_views
/// into the input, so edits (literal swaps, splices from other seeds)
/// work on detached text.
struct OwnedToken {
  TokenType type = TokenType::kEnd;
  std::string text;

  bool Is(TokenType t) const { return type == t; }
};

std::vector<OwnedToken> OwnTokens(const sql::TokenStream& stream) {
  std::vector<OwnedToken> out;
  out.reserve(stream.size());
  for (const sql::Token& token : stream) {
    out.push_back(OwnedToken{token.type, std::string(token.text)});
  }
  return out;
}

bool IsBareIdentifier(const std::string& text) {
  if (text.empty()) return false;
  char first = text[0];
  bool start_ok = (first >= 'a' && first <= 'z') || (first >= 'A' && first <= 'Z') ||
                  first == '_' || first == '#';
  if (!start_ok) return false;
  for (char c : text) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '$' || c == '#';
    if (!ok) return false;
  }
  return true;
}

std::string FlipCase(const std::string& text, Rng& rng) {
  std::string out = text;
  for (char& c : out) {
    if (!rng.Chance(0.5)) continue;
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    else if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string RandomWhitespace(Rng& rng) {
  static constexpr const char* kRuns[] = {" ", "  ", "\t", "\n", " \t ", "\r\n", "   \n"};
  return kRuns[rng.Uniform(sizeof(kRuns) / sizeof(kRuns[0]))];
}

std::string RandomNumber(Rng& rng) {
  std::string out;
  size_t digits = 1 + rng.Uniform(6);
  for (size_t i = 0; i < digits; ++i) out.push_back(static_cast<char>('0' + rng.Uniform(10)));
  if (rng.Chance(0.25)) {
    out.push_back('.');
    out.push_back(static_cast<char>('0' + rng.Uniform(10)));
  }
  return out;
}

std::string RandomStringBody(Rng& rng) {
  std::string out;
  size_t len = rng.Uniform(12);
  for (size_t i = 0; i < len; ++i) out.push_back(static_cast<char>('a' + rng.Uniform(26)));
  return out;
}

/// Renders one token back to source text. Identifiers that are not bare
/// re-quote with `"` (doubling embedded quotes), so bracketed names with
/// spaces survive the trip.
std::string RenderToken(const OwnedToken& token, Rng& rng, bool mutate_case) {
  switch (token.type) {
    case TokenType::kIdentifier:
      if (IsBareIdentifier(token.text)) {
        return mutate_case ? FlipCase(token.text, rng) : token.text;
      } else {
        std::string out = "\"";
        for (char c : token.text) {
          if (c == '"') out += "\"\"";
          else out.push_back(c);
        }
        out.push_back('"');
        return out;
      }
    case TokenType::kVariable:
      return "@" + (mutate_case ? FlipCase(token.text, rng) : token.text);
    case TokenType::kNumber:
      return token.text;
    case TokenType::kString: {
      std::string out = "'";
      for (char c : token.text) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
    case TokenType::kEnd:
      return "";
    default:
      return sql::TokenTypeName(token.type);
  }
}

/// True when `tokens[i]` is the numeric argument of TOP (`top 5` or
/// `top (5)`), whose value prints concretely in the skeleton and is
/// therefore part of the template.
bool IsTopCount(const std::vector<OwnedToken>& tokens, size_t i) {
  if (!tokens[i].Is(TokenType::kNumber)) return false;
  if (i >= 1 && tokens[i - 1].Is(TokenType::kIdentifier) &&
      EqualsIgnoreCase(tokens[i - 1].text, "top")) {
    return true;
  }
  return i >= 2 && tokens[i - 1].Is(TokenType::kLParen) &&
         tokens[i - 2].Is(TokenType::kIdentifier) &&
         EqualsIgnoreCase(tokens[i - 2].text, "top");
}

std::string RenderTokens(std::vector<OwnedToken> tokens, Rng& rng, bool mutate_literals) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    OwnedToken& token = tokens[i];
    if (token.Is(TokenType::kEnd)) break;
    if (mutate_literals) {
      if (token.Is(TokenType::kNumber) && !IsTopCount(tokens, i) && rng.Chance(0.7)) {
        token.text = RandomNumber(rng);
      } else if (token.Is(TokenType::kString) && rng.Chance(0.7)) {
        token.text = RandomStringBody(rng);
      } else if (token.Is(TokenType::kNotEq) && rng.Chance(0.5)) {
        token.text = (token.text == "<>") ? "!=" : "<>";
      }
    }
    // A separator between every token pair keeps adjacent tokens from
    // fusing into comments (`--`, `/*`) or compound operators (`<>`).
    if (!out.empty()) out += RandomWhitespace(rng);
    if (token.Is(TokenType::kNotEq)) {
      out += token.text.empty() ? "<>" : token.text;
    } else {
      out += RenderToken(token, rng, /*mutate_case=*/true);
    }
  }
  if (rng.Chance(0.2)) out += RandomWhitespace(rng);
  if (rng.Chance(0.15)) out += ";";
  return out;
}

std::string RenderPreserving(const std::string& sql, Rng& rng, bool mutate_literals) {
  auto tokens = sql::Lex(sql);
  if (!tokens.ok()) return sql;
  return RenderTokens(OwnTokens(tokens.value()), rng, mutate_literals);
}

// --- destructive mutation ---------------------------------------------------

const char* kKeywords[] = {
    "select", "from", "where", "group", "by",  "order",    "having", "join",
    "inner",  "left", "right", "full",  "on",  "and",      "or",     "not",
    "in",     "like", "is",    "between", "as", "union",   "top",    "distinct",
    "case",   "when", "then",  "else",  "end", "exists",   "null",   "asc",
    "desc",   "outer", "cross",
};

const char* kExtremeLiterals[] = {
    "999999999999999999999999999",
    "0x7fffffffffffffff",
    "1e308",
    "1e-308",
    "0.0000000000000001",
    "''",
    "'%%%___%%%'",
    "-0",
};

OwnedToken MakeToken(TokenType type, std::string text) {
  OwnedToken token;
  token.type = type;
  token.text = std::move(text);
  return token;
}

void TokenHavoc(std::vector<OwnedToken>& tokens, Rng& rng) {
  if (tokens.empty()) return;
  // Strip the kEnd sentinel while editing.
  if (tokens.back().Is(TokenType::kEnd)) tokens.pop_back();
  if (tokens.empty()) return;
  size_t ops = 1 + rng.Uniform(4);
  for (size_t op = 0; op < ops && !tokens.empty(); ++op) {
    size_t pos = rng.Uniform(tokens.size());
    switch (rng.Uniform(8)) {
      case 0: {  // delete a short span
        size_t len = std::min(tokens.size() - pos, size_t{1} + rng.Uniform(3));
        tokens.erase(tokens.begin() + pos, tokens.begin() + pos + len);
        break;
      }
      case 1: {  // duplicate a short span
        size_t len = std::min(tokens.size() - pos, size_t{1} + rng.Uniform(3));
        std::vector<OwnedToken> span(tokens.begin() + pos, tokens.begin() + pos + len);
        tokens.insert(tokens.begin() + pos, span.begin(), span.end());
        break;
      }
      case 2: {  // swap two tokens
        std::swap(tokens[pos], tokens[rng.Uniform(tokens.size())]);
        break;
      }
      case 3: {  // inject a keyword
        size_t k = rng.Uniform(sizeof(kKeywords) / sizeof(kKeywords[0]));
        tokens.insert(tokens.begin() + pos,
                      MakeToken(TokenType::kIdentifier, kKeywords[k]));
        break;
      }
      case 4: {  // wrap a span in parentheses
        size_t len = std::min(tokens.size() - pos, size_t{1} + rng.Uniform(5));
        tokens.insert(tokens.begin() + pos + len, MakeToken(TokenType::kRParen, ")"));
        tokens.insert(tokens.begin() + pos, MakeToken(TokenType::kLParen, "("));
        break;
      }
      case 5: {  // replace a literal with an extreme value
        if (tokens[pos].Is(TokenType::kNumber) || tokens[pos].Is(TokenType::kString)) {
          size_t k = rng.Uniform(sizeof(kExtremeLiterals) / sizeof(kExtremeLiterals[0]));
          tokens[pos] = MakeToken(TokenType::kNumber, kExtremeLiterals[k]);
        } else {
          tokens[pos] = MakeToken(TokenType::kNumber, RandomNumber(rng));
        }
        break;
      }
      case 6: {  // splice a token range from a seed statement
        const auto& seeds = SeedStatements();
        auto donor = sql::Lex(seeds[rng.Uniform(seeds.size())]);
        if (donor.ok() && donor.value().size() > 1) {
          std::vector<OwnedToken> dt = OwnTokens(donor.value());
          dt.pop_back();  // kEnd
          size_t from = rng.Uniform(dt.size());
          size_t len = std::min(dt.size() - from, size_t{1} + rng.Uniform(6));
          tokens.insert(tokens.begin() + pos, dt.begin() + from,
                        dt.begin() + from + len);
        }
        break;
      }
      case 7: {  // operator shuffle
        static constexpr TokenType kOps[] = {
            TokenType::kEq,     TokenType::kNotEq,     TokenType::kLess,
            TokenType::kLessEq, TokenType::kGreater,   TokenType::kGreaterEq,
            TokenType::kPlus,   TokenType::kMinus,     TokenType::kStar,
            TokenType::kSlash,  TokenType::kPercent,   TokenType::kComma,
            TokenType::kDot,
        };
        TokenType t = kOps[rng.Uniform(sizeof(kOps) / sizeof(kOps[0]))];
        tokens.insert(tokens.begin() + pos, MakeToken(t, sql::TokenTypeName(t)));
        break;
      }
    }
  }
}

/// Renders havoc'd tokens with *loose* spacing: separators are usually
/// emitted but sometimes dropped, so the fuzzer also explores token
/// fusion (`--` comments, `<>` from `<` + `>`, identifier gluing).
std::string RenderLoose(const std::vector<OwnedToken>& tokens, Rng& rng) {
  std::string out;
  for (const OwnedToken& token : tokens) {
    if (token.Is(TokenType::kEnd)) break;
    if (!out.empty() && !rng.Chance(0.15)) out += RandomWhitespace(rng);
    out += RenderToken(token, rng, rng.Chance(0.5));
  }
  return out;
}

size_t ByteHavoc(uint8_t* data, size_t size, size_t max_size, Rng& rng) {
  std::string buf(reinterpret_cast<const char*>(data), size);
  size_t ops = 1 + rng.Uniform(4);
  for (size_t op = 0; op < ops; ++op) {
    switch (rng.Uniform(4)) {
      case 0:
        if (!buf.empty()) buf[rng.Uniform(buf.size())] = static_cast<char>(rng.Uniform(256));
        break;
      case 1:
        buf.insert(buf.begin() + rng.Uniform(buf.size() + 1),
                   static_cast<char>(rng.Uniform(128)));
        break;
      case 2:
        if (!buf.empty()) {
          size_t pos = rng.Uniform(buf.size());
          size_t len = std::min(buf.size() - pos, size_t{1} + rng.Uniform(8));
          buf.erase(pos, len);
        }
        break;
      case 3:
        if (!buf.empty()) {
          size_t pos = rng.Uniform(buf.size());
          size_t len = std::min(buf.size() - pos, size_t{1} + rng.Uniform(8));
          buf.insert(pos, buf.substr(pos, len));
        }
        break;
    }
  }
  size_t out_size = std::min(buf.size(), max_size);
  std::memcpy(data, buf.data(), out_size);
  return out_size;
}

}  // namespace

std::string MutatePreservingCanonicalForm(const std::string& sql, Rng& rng) {
  return RenderPreserving(sql, rng, /*mutate_literals=*/false);
}

std::string MutatePreservingTemplate(const std::string& sql, Rng& rng) {
  return RenderPreserving(sql, rng, /*mutate_literals=*/true);
}

size_t MutateSqlBuffer(uint8_t* data, size_t size, size_t max_size, unsigned seed) {
  if (max_size == 0) return 0;
  uint64_t state = 0x9e3779b97f4a7c15ULL ^ seed;
  for (size_t i = 0; i < size; ++i) state = (state ^ data[i]) * 0x100000001b3ULL;
  Rng rng(state);

  std::string input(reinterpret_cast<const char*>(data), size);
  auto tokens = sql::Lex(input);
  if (!tokens.ok() || tokens.value().size() <= 1 || rng.Chance(0.2)) {
    // Not lexable (or occasionally on purpose): byte-level havoc keeps
    // the lexer's error paths under pressure too.
    return ByteHavoc(data, size, max_size, rng);
  }

  std::vector<OwnedToken> stream = OwnTokens(tokens.value());
  TokenHavoc(stream, rng);
  std::string out = RenderLoose(stream, rng);
  if (out.empty()) out = SeedStatements()[rng.Uniform(SeedStatements().size())];
  size_t out_size = std::min(out.size(), max_size);
  std::memcpy(data, out.data(), out_size);
  return out_size;
}

const std::vector<std::string>& SeedStatements() {
  static const std::vector<std::string>* kSeeds = [] {
    auto* seeds = new std::vector<std::string>();
    // A tiny run of the deterministic workload generator covers every
    // family emitter: spatial functions, Stifle shapes, CTH follow-ups,
    // SWS windows, SNC mistakes, plus noise and broken statements.
    log::GeneratorConfig config;
    config.seed = 20180416;
    config.target_statements = 400;
    config.cth_families = 6;
    config.human_users = 40;
    std::set<std::string> unique;
    const log::QueryLog generated = log::GenerateLog(config);
    for (const auto& record : generated.records()) {
      unique.insert(record.statement);
    }
    seeds->assign(unique.begin(), unique.end());
    // Hand-written shapes that the generator does not emit.
    seeds->push_back("SELECT a, b FROM t WHERE a = 0 AND b >= 3");
    seeds->push_back("SELECT top (5) * FROM g JOIN s ON g.id = s.id ORDER BY g.r DESC");
    seeds->push_back("SELECT CASE x WHEN 1 THEN 'a' ELSE 'b' END FROM t");
    seeds->push_back("SELECT x FROM (SELECT y AS x FROM u) d WHERE EXISTS "
                     "(SELECT 1 FROM v WHERE v.id = d.x)");
    seeds->push_back("SELECT - -5, NOT NOT a, [bracketed name].\"quoted id\" FROM "
                     "[Schema Name].t AS alias");
    seeds->push_back("SELECT count(distinct u) FROM t WHERE s LIKE 'x%' AND r "
                     "BETWEEN 1 AND 2 OR q IN (1, 2, 3) ;");
    return seeds;
  }();
  return *kSeeds;
}

}  // namespace sqlog::fuzz
