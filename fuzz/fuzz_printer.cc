// Fuzz harness for the canonical printer: any input the parser accepts
// must survive parse → print → parse as a fixpoint (the canonical
// reprint parses, and reprinting the reparse is byte-identical), and
// the non-canonical print must re-parse to the same canonical form.
// This differential caught the `- -5` → `--5` line-comment fusion bug.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/sql_mutator.h"
#include "tests/oracles/oracles.h"

namespace {
constexpr size_t kMaxInput = 1 << 14;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  sqlog::oracle::AbortOnFailure(sqlog::oracle::CheckParsePrintFixpoint(input), input);
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return sqlog::fuzz::MutateSqlBuffer(data, size, max_size, seed);
}
