// Fuzz harness for the SQL lexer: arbitrary bytes must lex into a
// well-formed token stream (offsets nondecreasing and in-bounds, one
// trailing end sentinel) or be rejected with a diagnostic — never
// crash, hang, or lex nondeterministically.
//
// Builds against libFuzzer when the toolchain provides it
// (-fsanitize=fuzzer); otherwise fuzz/standalone_driver.cc supplies
// main() with corpus replay and a timed in-process mutation loop.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/sql_mutator.h"
#include "tests/oracles/oracles.h"

namespace {
// Statements in real logs are a few KB; a generous cap keeps the lexer
// harness from spending its budget scanning megabyte monsters.
constexpr size_t kMaxInput = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  sqlog::oracle::AbortOnFailure(sqlog::oracle::CheckLexInvariants(input), input);
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return sqlog::fuzz::MutateSqlBuffer(data, size, max_size, seed);
}
