#ifndef SQLOG_FUZZ_SQL_MUTATOR_H_
#define SQLOG_FUZZ_SQL_MUTATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace sqlog::fuzz {

/// Re-renders the token stream of `sql` with randomized whitespace
/// (spaces, tabs, newlines between every token pair) and randomized
/// identifier / keyword / variable casing. Lexing, parsing, the
/// canonical print, and the skeleton template are all invariant under
/// this mutation. Returns the input unchanged when it does not lex.
std::string MutatePreservingCanonicalForm(const std::string& sql, Rng& rng);

/// As above, and additionally replaces literal values: numeric literals
/// get fresh digits, string literals fresh content, and `!=` / `<>`
/// swap spelling. The *canonical* print may change, but the skeleton
/// template (Def. 4) is invariant — literals collapse to placeholders.
/// The numeric argument of TOP is left alone (TOP counts print
/// concretely in the skeleton, so they are part of the template).
std::string MutatePreservingTemplate(const std::string& sql, Rng& rng);

/// Structure-aware destructive mutation for fuzzing: lexes the buffer
/// and applies token-level havoc (span deletion/duplication/swap,
/// keyword injection, paren wrapping, literal extremes, splicing from
/// seed statements), falling back to byte-level havoc when the buffer
/// does not lex. Mutates `data` in place; returns the new size
/// (<= max_size). Deterministic in (data, size, max_size, seed).
size_t MutateSqlBuffer(uint8_t* data, size_t size, size_t max_size, unsigned seed);

/// Deterministic seed statements covering the synthetic generator's
/// statement shapes (spatial functions, Stifle runs, CTH follow-ups,
/// SWS windows, human ad-hoc queries) — the fuzzers' starting corpus.
const std::vector<std::string>& SeedStatements();

}  // namespace sqlog::fuzz

#endif  // SQLOG_FUZZ_SQL_MUTATOR_H_
