// Fuzz harness for the `.sqb` binary log reader: arbitrary bytes must
// either decode deterministically or be rejected with a structured
// ParseError naming the failing offset and section — never crash, hang,
// over-allocate, or silently produce a short read. Corpus seeds are
// minimized corrupt files (bit-flipped blocks, truncated footers, bad
// magics, future versions) plus a small valid file to mutate from.
//
// Builds against libFuzzer when the toolchain provides it
// (-fsanitize=fuzzer); otherwise fuzz/standalone_driver.cc supplies
// main() with corpus replay and a timed in-process mutation loop.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/sql_mutator.h"
#include "tests/oracles/oracles.h"

namespace {
// Real `.sqb` files are block-framed; corrupt headers and footers are
// found within a few hundred bytes, so a modest cap keeps the budget on
// structure, not bulk.
constexpr size_t kMaxInput = 1 << 18;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  sqlog::oracle::AbortOnFailure(sqlog::oracle::CheckBinLogRobustness(input), input);
  return 0;
}
