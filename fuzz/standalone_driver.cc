// Minimal libFuzzer-compatible driver for toolchains without
// -fsanitize=fuzzer (this repo's baseline is GCC). It links against a
// harness's LLVMFuzzerTestOneInput and provides:
//
//   - corpus replay: every file / directory argument is executed once,
//     so `fuzz_parser ../fuzz/corpus/parser` reproduces regressions;
//   - a timed in-process mutation loop (-seconds=N) seeded from the
//     replayed corpus plus the structure-aware seed statements, driving
//     inputs through sqlog::fuzz::MutateSqlBuffer (the same custom
//     mutator libFuzzer would use);
//   - crash triage: on SIGSEGV/SIGABRT/... the last input is written to
//     ./crash-last-input.sql and echoed to stderr before re-raising.
//
// Coverage feedback is the one thing missing versus real libFuzzer —
// the structure-aware mutator compensates by keeping most inputs
// lexable, deep in the grammar instead of bouncing off the first token.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/sql_mutator.h"
#include "util/random.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> g_last_input;

// Async-signal context: stick to write(2) and _exit-safe calls.
void WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = write(fd, p, size);
    if (n <= 0) return;
    p += n;
    size -= static_cast<size_t>(n);
  }
}

void CrashHandler(int sig) {
  static const char banner[] = "\n=== fuzz driver: crash, dumping last input to "
                               "crash-last-input.sql ===\n";
  WriteAll(2, banner, sizeof(banner) - 1);
  WriteAll(2, g_last_input.data(), g_last_input.size());
  WriteAll(2, "\n", 1);
  int fd = open("crash-last-input.sql", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    WriteAll(fd, g_last_input.data(), g_last_input.size());
    close(fd);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

void RunOne(const std::vector<uint8_t>& input) {
  g_last_input = input;
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

bool ReadFile(const std::filesystem::path& path, std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

long FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return -1;
  return std::atol(arg + len + 1);
}

}  // namespace

int main(int argc, char** argv) {
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    signal(sig, CrashHandler);
  }

  long seconds = 0;
  long runs = 0;
  long max_len = 4096;
  unsigned seed = 20180416;
  std::vector<std::filesystem::path> paths;
  for (int i = 1; i < argc; ++i) {
    long value;
    if ((value = FlagValue(argv[i], "-seconds")) >= 0) {
      seconds = value;
    } else if ((value = FlagValue(argv[i], "-runs")) >= 0) {
      runs = value;
    } else if ((value = FlagValue(argv[i], "-max_len")) >= 0 && value > 0) {
      max_len = value;
    } else if ((value = FlagValue(argv[i], "-seed")) >= 0) {
      seed = static_cast<unsigned>(value);
    } else if (std::strcmp(argv[i], "-help") == 0 || std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: %s [-seconds=N] [-runs=N] [-max_len=N] [-seed=N] "
                   "[corpus file or dir]...\n",
                   argv[0]);
      return 0;
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  // Phase 1: replay. Every corpus entry runs exactly once.
  std::vector<std::vector<uint8_t>> pool;
  size_t replayed = 0;
  for (const auto& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        std::vector<uint8_t> bytes;
        if (!ReadFile(file, bytes)) continue;
        RunOne(bytes);
        ++replayed;
        pool.push_back(std::move(bytes));
      }
    } else {
      std::vector<uint8_t> bytes;
      if (!ReadFile(path, bytes)) {
        std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
        return 2;
      }
      RunOne(bytes);
      ++replayed;
      pool.push_back(std::move(bytes));
    }
  }
  std::fprintf(stderr, "fuzz driver: replayed %zu corpus entries\n", replayed);
  if (seconds <= 0 && runs <= 0) return 0;

  // Phase 2: timed mutation loop over corpus + seed statements.
  for (const auto& statement : sqlog::fuzz::SeedStatements()) {
    pool.emplace_back(statement.begin(), statement.end());
  }

  sqlog::Rng rng(seed);
  std::vector<uint8_t> buffer;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(seconds);
  auto last_report = start;
  long execs = 0;
  while (true) {
    if (seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    if (runs > 0 && execs >= runs) break;

    const auto& base = pool[rng.Uniform(pool.size())];
    buffer.assign(base.begin(), base.end());
    if (buffer.size() > static_cast<size_t>(max_len)) {
      buffer.resize(static_cast<size_t>(max_len));
    }
    buffer.resize(static_cast<size_t>(max_len));
    size_t new_size = sqlog::fuzz::MutateSqlBuffer(
        buffer.data(), std::min(base.size(), static_cast<size_t>(max_len)),
        static_cast<size_t>(max_len), static_cast<unsigned>(rng.Next()));
    buffer.resize(new_size);
    RunOne(buffer);
    ++execs;

    auto now = std::chrono::steady_clock::now();
    if (now - last_report >= std::chrono::seconds(10)) {
      last_report = now;
      auto elapsed =
          std::chrono::duration_cast<std::chrono::seconds>(now - start).count();
      std::fprintf(stderr, "fuzz driver: %ld execs in %llds (%ld/s)\n", execs,
                   static_cast<long long>(elapsed),
                   elapsed > 0 ? execs / elapsed : execs);
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::fprintf(stderr, "fuzz driver: done, %ld execs in %llds, no crashes\n", execs,
               static_cast<long long>(elapsed));
  return 0;
}
