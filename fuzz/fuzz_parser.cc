// Fuzz harness for the recursive-descent parser: arbitrary bytes must
// either parse into an AST or yield a ParseError with a non-empty
// message — never crash (the kMaxParseDepth guard exists because this
// harness overflowed the stack on kilobyte runs of '(').

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/sql_mutator.h"
#include "sql/parser.h"
#include "tests/oracles/oracles.h"

namespace {
constexpr size_t kMaxInput = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // sqlog-lint: allow(R1 the raw parser is this harness's fuzz target)
  auto parsed = sqlog::sql::ParseSelect(input);
  if (!parsed.ok() && parsed.status().message().empty()) {
    sqlog::oracle::AbortOnFailure(
        sqlog::oracle::Fail("parser rejected input without a diagnostic message"),
        input);
  }
  // The lexer invariants must hold on whatever the parser just consumed.
  sqlog::oracle::AbortOnFailure(sqlog::oracle::CheckLexInvariants(input), input);
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return sqlog::fuzz::MutateSqlBuffer(data, size, max_size, seed);
}
