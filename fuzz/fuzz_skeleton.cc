// Fuzz harness for skeleton extraction (paper Def. 4): analysis must be
// idempotent (the template of a statement equals the template of its
// canonical reprint) and invariant under whitespace jitter, identifier
// case flips, and literal-value replacement — the property that makes
// templates usable as pattern-mining alphabet symbols.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz/sql_mutator.h"
#include "tests/oracles/oracles.h"

namespace {
constexpr size_t kMaxInput = 1 << 14;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  std::string_view input(reinterpret_cast<const char*>(data), size);
  const uint64_t seed = sqlog::oracle::SeedFromBytes(input);
  sqlog::oracle::AbortOnFailure(sqlog::oracle::CheckSkeletonIdempotence(input), input);
  sqlog::oracle::AbortOnFailure(sqlog::oracle::CheckTemplateInvariance(input, seed),
                                input);
  return 0;
}

extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,
                                          size_t max_size, unsigned int seed) {
  return sqlog::fuzz::MutateSqlBuffer(data, size, max_size, seed);
}
