#!/usr/bin/env python3
"""Schema check for checked-in BENCH_*.json artifacts.

A bench run that hits a 0-record or 0-duration edge can divide by zero;
fprintf renders the result as a bare `inf`/`nan` token, which json.loads
technically accepts (as Infinity/NaN) but no strict JSON consumer does.
This gate rejects:

  * files that are not valid strict JSON (bare inf/nan included),
  * any non-finite number anywhere in the document,
  * files missing the common envelope: a top-level object with a
    "benchmark" string and a numeric "peak_rss_bytes",
  * sec63_runtime artifacts without a populated "out_of_core" section
    (the storage-engine sweep must be part of the checked-in run).

Usage: check_bench_json.py FILE [FILE...]
"""

import json
import math
import sys


def _reject_constant(token):
    raise ValueError(f"non-finite JSON token {token!r}")


def check_numbers(node, path):
    """Yields error strings for every non-finite number under `node`."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            yield f"{path}: non-finite value {node!r}"
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from check_numbers(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from check_numbers(value, f"{path}[{i}]")


def check_file(path):
    """Returns a list of error strings for one bench JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh, parse_constant=_reject_constant)
    except (OSError, ValueError) as err:
        return [f"{path}: {err}"]

    errors = []
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    if not isinstance(doc.get("benchmark"), str) or not doc["benchmark"]:
        errors.append(f"{path}: missing or empty \"benchmark\" string")
    rss = doc.get("peak_rss_bytes")
    if isinstance(rss, bool) or not isinstance(rss, (int, float)):
        errors.append(f"{path}: missing numeric \"peak_rss_bytes\"")
    if doc.get("benchmark") == "sec63_runtime":
        errors.extend(f"{path}: {e}" for e in check_sec63(doc))
    errors.extend(f"{path}: {e}" for e in check_numbers(doc, "$"))
    return errors


def check_sec63(doc):
    """Yields errors for the sec63_runtime-specific out-of-core section."""
    ooc = doc.get("out_of_core")
    if not isinstance(ooc, dict):
        yield 'missing "out_of_core" object'
        return
    configs = ooc.get("configs")
    if not isinstance(configs, list) or not configs:
        yield '"out_of_core.configs" must be a non-empty array'
        return
    speedup = ooc.get("index_over_scan_speedup")
    if isinstance(speedup, bool) or not isinstance(speedup, (int, float)):
        yield 'missing numeric "out_of_core.index_over_scan_speedup"'
    ran = [c for c in configs if isinstance(c, dict) and not c.get("skipped")]
    if not ran:
        yield 'every "out_of_core" config was skipped'
    for cell in ran:
        label = f"{cell.get('storage')}/{cell.get('access')}"
        for key in ("queries", "query_seconds", "peak_rss_bytes"):
            value = cell.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                yield f'out_of_core config {label}: missing numeric "{key}"'


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        failures.extend(check_file(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    if not failures:
        print(f"checked {len(argv) - 1} bench JSON file(s): all valid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
