#!/usr/bin/env bash
# Full local gate: warning-clean build, sqlog-lint, the default test
# sweep, then the sanitizer presets. Run from anywhere inside the repo;
# everything a PR must pass runs here. ~5-10 minutes on 8 cores.
#
# Usage: scripts/check.sh [--fast] [--tidy]
#   --fast   skip the asan-ubsan and tsan preset builds
#   --tidy   also run clang-tidy over src/ (no-op when clang-tidy is
#            not on PATH)

set -euo pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"
jobs=$(nproc 2>/dev/null || echo 4)
fast=0
tidy=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --tidy) tidy=1 ;;
    *) echo "usage: scripts/check.sh [--fast] [--tidy]" >&2; exit 2 ;;
  esac
done

step() { printf '\n=== %s ===\n' "$*"; }

# 1. Warning-clean build. -Wall -Wextra -Werror=unused-result come from
#    CMakeLists.txt; -Werror promotes the rest. -Wthread-safety needs
#    clang, so only clang builds add SQLOG_THREAD_SAFETY=ON — under GCC
#    the annotations compile as no-ops and the gate is warnings-only.
step "configure + build (warnings are errors)"
thread_safety=OFF
if command -v clang++ >/dev/null 2>&1; then
  thread_safety=ON
  export CXX=clang++
fi
cmake --preset default \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" \
  -DSQLOG_THREAD_SAFETY=${thread_safety}
cmake --build --preset default -j "$jobs"

# 2. Repo lint (rules R1-R10, see DESIGN.md). Runs twice against a fresh
#    fact cache: the cold run extracts facts for every file, the warm run
#    must reuse them all — both the timing line and the JSON report (via
#    the schema gate below) prove the incremental cache works.
step "sqlog-lint (cold vs warm fact cache)"
lint_cache=/tmp/sqlog_check_lint.cache
lint_json=/tmp/sqlog_check_lint.json
rm -f "$lint_cache"
t0=$(date +%s%N)
./build/tools/sqlog-lint --config=tools/lint/lint_config.txt \
  --cache="$lint_cache" src tools bench fuzz tests
t1=$(date +%s%N)
./build/tools/sqlog-lint --config=tools/lint/lint_config.txt \
  --cache="$lint_cache" --json="$lint_json" src tools bench fuzz tests
t2=$(date +%s%N)
rm -f "$lint_cache"
printf 'lint cache: cold %d ms, warm %d ms\n' \
  $(( (t1 - t0) / 1000000 )) $(( (t2 - t1) / 1000000 ))

# 2b. The lint JSON report must satisfy its schema, and checked-in bench
#     artifacts must be strict JSON with finite numbers (a 0-duration
#     run would otherwise leak bare inf/nan tokens).
step "lint + bench JSON schema checks"
python3 scripts/check_lint_json.py "$lint_json"
rm -f "$lint_json"
python3 scripts/check_bench_json.py BENCH_*.json

# 2c. Optional clang-tidy pass: a second, independent static analyzer
#     over the library sources. Skipped silently when clang-tidy is not
#     installed so the gate stays runnable everywhere.
if [[ $tidy -eq 1 ]]; then
  step "clang-tidy"
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' -print0 |
      xargs -0 -P "$jobs" -n 8 clang-tidy -p build --quiet
  else
    echo "clang-tidy not on PATH; skipping"
  fi
fi

# 3. CLI smoke: the report subcommand must run the full detector catalog
#    over a generated log without errors (the per-detector P/R tests live
#    in detector_registry_test; this catches CLI-level wiring breaks).
step "sqlog report smoke"
smoke_log=$(mktemp /tmp/sqlog_smoke.XXXXXX.csv)
trap 'rm -f "$smoke_log" "${smoke_log%.csv}".* /tmp/sqlog_smoke_clean.*' EXIT
./build/tools/sqlog generate 2000 "$smoke_log"
./build/tools/sqlog report "$smoke_log" >/dev/null

# 3b. Binary-format smoke: convert to `.sqb`, clean from it (exercising
#     the zero-parse ingest path), convert back, and require the result
#     to be byte-identical to cleaning the CSV directly.
step "sqb convert round-trip smoke"
smoke_sqb="${smoke_log%.csv}.sqb"
smoke_back="${smoke_log%.csv}.back.csv"
./build/tools/sqlog convert "$smoke_log" "$smoke_sqb" >/dev/null
./build/tools/sqlog convert "$smoke_sqb" "$smoke_back" >/dev/null
cmp "$smoke_log" "$smoke_back"
./build/tools/sqlog clean "$smoke_log" /tmp/sqlog_smoke_clean.a --streaming >/dev/null
./build/tools/sqlog clean "$smoke_sqb" /tmp/sqlog_smoke_clean.b --streaming >/dev/null
cmp /tmp/sqlog_smoke_clean.a.clean.csv /tmp/sqlog_smoke_clean.b.clean.csv
cmp /tmp/sqlog_smoke_clean.a.removal.csv /tmp/sqlog_smoke_clean.b.removal.csv

# 3c. Binary clean *output*: `clean --out-format=sqb` must produce `.sqb`
#     logs that convert back byte-identical to the CSV clean outputs, in
#     both the in-memory and streaming pipelines.
step "sqb clean-output smoke"
./build/tools/sqlog clean --out-format=sqb "$smoke_log" /tmp/sqlog_smoke_clean.c >/dev/null
./build/tools/sqlog convert --to-csv /tmp/sqlog_smoke_clean.c.clean.sqb \
  /tmp/sqlog_smoke_clean.c.clean.back.csv >/dev/null
./build/tools/sqlog convert --to-csv /tmp/sqlog_smoke_clean.c.removal.sqb \
  /tmp/sqlog_smoke_clean.c.removal.back.csv >/dev/null
cmp /tmp/sqlog_smoke_clean.a.clean.csv /tmp/sqlog_smoke_clean.c.clean.back.csv
cmp /tmp/sqlog_smoke_clean.a.removal.csv /tmp/sqlog_smoke_clean.c.removal.back.csv
./build/tools/sqlog clean --streaming --out-format=sqb "$smoke_log" \
  /tmp/sqlog_smoke_clean.d >/dev/null
./build/tools/sqlog convert --to-csv /tmp/sqlog_smoke_clean.d.clean.sqb \
  /tmp/sqlog_smoke_clean.d.clean.back.csv >/dev/null
cmp /tmp/sqlog_smoke_clean.a.clean.csv /tmp/sqlog_smoke_clean.d.clean.back.csv

# 3d. Storage-engine smoke: the Sec 6.3 out-of-core sweep at a tiny row
#     count runs all four {memory,paged} x {scan,index} cells (each cell
#     verifies every point probe hits) and its JSON must pass the bench
#     schema gate, including the sec63-specific out_of_core checks.
step "out-of-core sweep smoke (both storage modes)"
./build/bench/bench_sec63_runtime --ooc-only --rows=2000 --buffer-pages=16 \
  --json=/tmp/sqlog_smoke_clean.sec63.json >/dev/null
python3 scripts/check_bench_json.py /tmp/sqlog_smoke_clean.sec63.json

# 4. Default test sweep (includes check-lint, the golden pipeline test,
#    and the memory-budget test).
step "ctest (default preset)"
ctest --preset default -j "$jobs"

# 4b. The same sweep with the dispatched kernels forced to their scalar
#     twins: every test (golden matrix included) must be byte-identical
#     in both dispatch modes.
step "ctest (default preset, SQLOG_FORCE_SCALAR=1)"
SQLOG_FORCE_SCALAR=1 ctest --preset default -j "$jobs"

if [[ $fast -eq 1 ]]; then
  step "done (--fast: sanitizer presets skipped)"
  exit 0
fi

# 5. ASan+UBSan: full sweep plus the checked-in fuzz corpus replay. The
#    memory-budget test is excluded by the preset — ASan shadow memory
#    inflates peak RSS ~3x past the 256 MiB cap the test pins.
step "asan-ubsan preset"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

# 6. TSan: the concurrency surface under ThreadSanitizer. Perf and
#    memory-budget tests are excluded by the preset — sanitizer overhead
#    breaks their thresholds, not their correctness.
step "tsan preset"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
ctest --preset tsan -j "$jobs"

step "all checks passed"
