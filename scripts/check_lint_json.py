#!/usr/bin/env python3
"""Schema check for sqlog-lint --json output.

check.sh pipes the lint run through this gate so the machine-readable
report stays consumable by strict JSON tooling. Rejects:

  * files that are not valid strict JSON (bare inf/nan included),
  * any non-finite number anywhere in the document,
  * a missing or wrong envelope: tool must be "sqlog-lint",
    schema_version must be 1, files_scanned / finding_count must be
    non-negative integers, elapsed_seconds a non-negative number, and
    cache an object with boolean "enabled" and integer hits/misses,
  * findings that are not objects with string "file"/"rule"/"message"
    and a positive integer "line",
  * a finding_count that disagrees with len(findings).

Usage: check_lint_json.py FILE [FILE...]
"""

import json
import math
import sys


def _reject_constant(token):
    raise ValueError(f"non-finite JSON token {token!r}")


def check_numbers(node, path):
    """Yields error strings for every non-finite number under `node`."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            yield f"{path}: non-finite value {node!r}"
    elif isinstance(node, dict):
        for key, value in node.items():
            yield from check_numbers(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from check_numbers(value, f"{path}[{i}]")


def _is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_file(path):
    """Returns a list of error strings for one lint JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh, parse_constant=_reject_constant)
    except (OSError, ValueError) as err:
        return [f"{path}: {err}"]

    errors = [f"{path}{e}" for e in check_numbers(doc, "")]
    if not isinstance(doc, dict):
        return errors + [f"{path}: top level is not an object"]

    if doc.get("tool") != "sqlog-lint":
        errors.append(f"{path}: .tool is not \"sqlog-lint\"")
    if doc.get("schema_version") != 1:
        errors.append(f"{path}: .schema_version is not 1")
    for key in ("files_scanned", "finding_count"):
        if not _is_count(doc.get(key)):
            errors.append(f"{path}: .{key} is not a non-negative integer")
    elapsed = doc.get("elapsed_seconds")
    if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool) or elapsed < 0:
        errors.append(f"{path}: .elapsed_seconds is not a non-negative number")

    cache = doc.get("cache")
    if not isinstance(cache, dict) or not isinstance(cache.get("enabled"), bool) \
            or not _is_count(cache.get("hits")) or not _is_count(cache.get("misses")):
        errors.append(f"{path}: .cache is not {{enabled: bool, hits: int, misses: int}}")

    findings = doc.get("findings")
    if not isinstance(findings, list):
        errors.append(f"{path}: .findings is not a list")
        return errors
    for i, finding in enumerate(findings):
        where = f"{path}: .findings[{i}]"
        if not isinstance(finding, dict):
            errors.append(f"{where} is not an object")
            continue
        for key in ("file", "rule", "message"):
            if not isinstance(finding.get(key), str) or not finding[key]:
                errors.append(f"{where}.{key} is not a non-empty string")
        line = finding.get("line")
        if not _is_count(line) or line == 0:
            errors.append(f"{where}.line is not a positive integer")
    if _is_count(doc.get("finding_count")) and doc["finding_count"] != len(findings):
        errors.append(
            f"{path}: .finding_count={doc['finding_count']} but "
            f"len(.findings)={len(findings)}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        return 1
    print(f"check_lint_json: {len(argv) - 1} file(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
