# Empty dependencies file for custom_rules_lint.
# This may be replaced when dependencies are built.
