file(REMOVE_RECURSE
  "CMakeFiles/custom_rules_lint.dir/custom_rules_lint.cpp.o"
  "CMakeFiles/custom_rules_lint.dir/custom_rules_lint.cpp.o.d"
  "custom_rules_lint"
  "custom_rules_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_rules_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
