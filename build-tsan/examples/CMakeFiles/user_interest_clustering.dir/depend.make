# Empty dependencies file for user_interest_clustering.
# This may be replaced when dependencies are built.
