file(REMOVE_RECURSE
  "CMakeFiles/user_interest_clustering.dir/user_interest_clustering.cpp.o"
  "CMakeFiles/user_interest_clustering.dir/user_interest_clustering.cpp.o.d"
  "user_interest_clustering"
  "user_interest_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_interest_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
