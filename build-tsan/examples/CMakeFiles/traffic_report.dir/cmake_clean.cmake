file(REMOVE_RECURSE
  "CMakeFiles/traffic_report.dir/traffic_report.cpp.o"
  "CMakeFiles/traffic_report.dir/traffic_report.cpp.o.d"
  "traffic_report"
  "traffic_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
