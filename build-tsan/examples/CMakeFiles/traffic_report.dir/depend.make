# Empty dependencies file for traffic_report.
# This may be replaced when dependencies are built.
