# Empty compiler generated dependencies file for clean_log_file.
# This may be replaced when dependencies are built.
