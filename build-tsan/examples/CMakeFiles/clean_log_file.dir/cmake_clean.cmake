file(REMOVE_RECURSE
  "CMakeFiles/clean_log_file.dir/clean_log_file.cpp.o"
  "CMakeFiles/clean_log_file.dir/clean_log_file.cpp.o.d"
  "clean_log_file"
  "clean_log_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_log_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
