file(REMOVE_RECURSE
  "CMakeFiles/skyserver_study.dir/skyserver_study.cpp.o"
  "CMakeFiles/skyserver_study.dir/skyserver_study.cpp.o.d"
  "skyserver_study"
  "skyserver_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyserver_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
