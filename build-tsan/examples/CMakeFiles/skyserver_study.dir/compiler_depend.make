# Empty compiler generated dependencies file for skyserver_study.
# This may be replaced when dependencies are built.
