# Empty dependencies file for query_replay.
# This may be replaced when dependencies are built.
