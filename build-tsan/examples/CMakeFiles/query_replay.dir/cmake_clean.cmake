file(REMOVE_RECURSE
  "CMakeFiles/query_replay.dir/query_replay.cpp.o"
  "CMakeFiles/query_replay.dir/query_replay.cpp.o.d"
  "query_replay"
  "query_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
