# Empty dependencies file for sqlog_cli.
# This may be replaced when dependencies are built.
