file(REMOVE_RECURSE
  "CMakeFiles/sqlog_cli.dir/sqlog.cc.o"
  "CMakeFiles/sqlog_cli.dir/sqlog.cc.o.d"
  "sqlog"
  "sqlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlog_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
