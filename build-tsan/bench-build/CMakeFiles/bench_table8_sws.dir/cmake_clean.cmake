file(REMOVE_RECURSE
  "../bench/bench_table8_sws"
  "../bench/bench_table8_sws.pdb"
  "CMakeFiles/bench_table8_sws.dir/bench_table8_sws.cc.o"
  "CMakeFiles/bench_table8_sws.dir/bench_table8_sws.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_sws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
