# Empty dependencies file for bench_table8_sws.
# This may be replaced when dependencies are built.
