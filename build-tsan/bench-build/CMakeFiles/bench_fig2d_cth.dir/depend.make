# Empty dependencies file for bench_fig2d_cth.
# This may be replaced when dependencies are built.
