file(REMOVE_RECURSE
  "../bench/bench_fig2d_cth"
  "../bench/bench_fig2d_cth.pdb"
  "CMakeFiles/bench_fig2d_cth.dir/bench_fig2d_cth.cc.o"
  "CMakeFiles/bench_fig2d_cth.dir/bench_fig2d_cth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2d_cth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
