# Empty dependencies file for bench_fig2c_metadata.
# This may be replaced when dependencies are built.
