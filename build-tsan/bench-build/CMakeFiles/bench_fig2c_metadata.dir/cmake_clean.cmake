file(REMOVE_RECURSE
  "../bench/bench_fig2c_metadata"
  "../bench/bench_fig2c_metadata.pdb"
  "CMakeFiles/bench_fig2c_metadata.dir/bench_fig2c_metadata.cc.o"
  "CMakeFiles/bench_fig2c_metadata.dir/bench_fig2c_metadata.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
