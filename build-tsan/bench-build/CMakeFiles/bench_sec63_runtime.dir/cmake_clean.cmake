file(REMOVE_RECURSE
  "../bench/bench_sec63_runtime"
  "../bench/bench_sec63_runtime.pdb"
  "CMakeFiles/bench_sec63_runtime.dir/bench_sec63_runtime.cc.o"
  "CMakeFiles/bench_sec63_runtime.dir/bench_sec63_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
