# Empty dependencies file for bench_sec63_runtime.
# This may be replaced when dependencies are built.
