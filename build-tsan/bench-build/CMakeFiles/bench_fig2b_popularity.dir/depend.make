# Empty dependencies file for bench_fig2b_popularity.
# This may be replaced when dependencies are built.
