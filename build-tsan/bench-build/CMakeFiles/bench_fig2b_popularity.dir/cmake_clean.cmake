file(REMOVE_RECURSE
  "../bench/bench_fig2b_popularity"
  "../bench/bench_fig2b_popularity.pdb"
  "CMakeFiles/bench_fig2b_popularity.dir/bench_fig2b_popularity.cc.o"
  "CMakeFiles/bench_fig2b_popularity.dir/bench_fig2b_popularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
