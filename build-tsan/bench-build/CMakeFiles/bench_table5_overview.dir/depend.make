# Empty dependencies file for bench_table5_overview.
# This may be replaced when dependencies are built.
