# Empty compiler generated dependencies file for bench_fig4_cluster_sizes.
# This may be replaced when dependencies are built.
