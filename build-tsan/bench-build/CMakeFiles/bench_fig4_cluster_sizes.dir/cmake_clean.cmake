file(REMOVE_RECURSE
  "../bench/bench_fig4_cluster_sizes"
  "../bench/bench_fig4_cluster_sizes.pdb"
  "CMakeFiles/bench_fig4_cluster_sizes.dir/bench_fig4_cluster_sizes.cc.o"
  "CMakeFiles/bench_fig4_cluster_sizes.dir/bench_fig4_cluster_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cluster_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
