file(REMOVE_RECURSE
  "../bench/bench_table7_patterns"
  "../bench/bench_table7_patterns.pdb"
  "CMakeFiles/bench_table7_patterns.dir/bench_table7_patterns.cc.o"
  "CMakeFiles/bench_table7_patterns.dir/bench_table7_patterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
