file(REMOVE_RECURSE
  "../bench/bench_table6_antipatterns"
  "../bench/bench_table6_antipatterns.pdb"
  "CMakeFiles/bench_table6_antipatterns.dir/bench_table6_antipatterns.cc.o"
  "CMakeFiles/bench_table6_antipatterns.dir/bench_table6_antipatterns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_antipatterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
