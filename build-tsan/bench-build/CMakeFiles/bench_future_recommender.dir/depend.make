# Empty dependencies file for bench_future_recommender.
# This may be replaced when dependencies are built.
