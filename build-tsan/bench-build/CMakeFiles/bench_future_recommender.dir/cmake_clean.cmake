file(REMOVE_RECURSE
  "../bench/bench_future_recommender"
  "../bench/bench_future_recommender.pdb"
  "CMakeFiles/bench_future_recommender.dir/bench_future_recommender.cc.o"
  "CMakeFiles/bench_future_recommender.dir/bench_future_recommender.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
