file(REMOVE_RECURSE
  "../bench/bench_sec55_recleaning"
  "../bench/bench_sec55_recleaning.pdb"
  "CMakeFiles/bench_sec55_recleaning.dir/bench_sec55_recleaning.cc.o"
  "CMakeFiles/bench_sec55_recleaning.dir/bench_sec55_recleaning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec55_recleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
