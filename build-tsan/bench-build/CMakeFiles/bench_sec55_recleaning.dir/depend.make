# Empty dependencies file for bench_sec55_recleaning.
# This may be replaced when dependencies are built.
