file(REMOVE_RECURSE
  "../bench/bench_fig2a_topk"
  "../bench/bench_fig2a_topk.pdb"
  "CMakeFiles/bench_fig2a_topk.dir/bench_fig2a_topk.cc.o"
  "CMakeFiles/bench_fig2a_topk.dir/bench_fig2a_topk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
