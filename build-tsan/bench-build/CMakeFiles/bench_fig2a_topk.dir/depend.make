# Empty dependencies file for bench_fig2a_topk.
# This may be replaced when dependencies are built.
