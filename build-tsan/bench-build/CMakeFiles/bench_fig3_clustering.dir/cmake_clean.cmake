file(REMOVE_RECURSE
  "../bench/bench_fig3_clustering"
  "../bench/bench_fig3_clustering.pdb"
  "CMakeFiles/bench_fig3_clustering.dir/bench_fig3_clustering.cc.o"
  "CMakeFiles/bench_fig3_clustering.dir/bench_fig3_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
