# Empty dependencies file for bench_fig3_clustering.
# This may be replaced when dependencies are built.
