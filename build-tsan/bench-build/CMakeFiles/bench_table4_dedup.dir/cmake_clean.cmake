file(REMOVE_RECURSE
  "../bench/bench_table4_dedup"
  "../bench/bench_table4_dedup.pdb"
  "CMakeFiles/bench_table4_dedup.dir/bench_table4_dedup.cc.o"
  "CMakeFiles/bench_table4_dedup.dir/bench_table4_dedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
