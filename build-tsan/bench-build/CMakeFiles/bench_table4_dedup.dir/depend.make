# Empty dependencies file for bench_table4_dedup.
# This may be replaced when dependencies are built.
