file(REMOVE_RECURSE
  "libsqlog.a"
)
