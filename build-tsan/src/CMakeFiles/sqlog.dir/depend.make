# Empty dependencies file for sqlog.
# This may be replaced when dependencies are built.
