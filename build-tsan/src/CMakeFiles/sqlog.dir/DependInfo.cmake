
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cc" "src/CMakeFiles/sqlog.dir/analysis/clustering.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/analysis/clustering.cc.o.d"
  "/root/repo/src/analysis/dataspace.cc" "src/CMakeFiles/sqlog.dir/analysis/dataspace.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/analysis/dataspace.cc.o.d"
  "/root/repo/src/analysis/describe.cc" "src/CMakeFiles/sqlog.dir/analysis/describe.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/analysis/describe.cc.o.d"
  "/root/repo/src/analysis/recommender.cc" "src/CMakeFiles/sqlog.dir/analysis/recommender.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/analysis/recommender.cc.o.d"
  "/root/repo/src/analysis/sessions.cc" "src/CMakeFiles/sqlog.dir/analysis/sessions.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/analysis/sessions.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/sqlog.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/catalog/schema.cc.o.d"
  "/root/repo/src/core/antipattern.cc" "src/CMakeFiles/sqlog.dir/core/antipattern.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/antipattern.cc.o.d"
  "/root/repo/src/core/dedup.cc" "src/CMakeFiles/sqlog.dir/core/dedup.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/dedup.cc.o.d"
  "/root/repo/src/core/pattern_miner.cc" "src/CMakeFiles/sqlog.dir/core/pattern_miner.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/pattern_miner.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/sqlog.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/CMakeFiles/sqlog.dir/core/rules.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/rules.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/CMakeFiles/sqlog.dir/core/solver.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/solver.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/CMakeFiles/sqlog.dir/core/statistics.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/statistics.cc.o.d"
  "/root/repo/src/core/sws.cc" "src/CMakeFiles/sqlog.dir/core/sws.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/sws.cc.o.d"
  "/root/repo/src/core/template_store.cc" "src/CMakeFiles/sqlog.dir/core/template_store.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/core/template_store.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/sqlog.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/sqlog.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/sqlog.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/CMakeFiles/sqlog.dir/engine/value.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/engine/value.cc.o.d"
  "/root/repo/src/log/generator.cc" "src/CMakeFiles/sqlog.dir/log/generator.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/log/generator.cc.o.d"
  "/root/repo/src/log/log_io.cc" "src/CMakeFiles/sqlog.dir/log/log_io.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/log/log_io.cc.o.d"
  "/root/repo/src/log/record.cc" "src/CMakeFiles/sqlog.dir/log/record.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/log/record.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/sqlog.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/sqlog.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/sqlog.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/printer.cc" "src/CMakeFiles/sqlog.dir/sql/printer.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/sql/printer.cc.o.d"
  "/root/repo/src/sql/skeleton.cc" "src/CMakeFiles/sqlog.dir/sql/skeleton.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/sql/skeleton.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/sqlog.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/util/csv.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sqlog.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/sqlog.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/sqlog.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/sqlog.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
