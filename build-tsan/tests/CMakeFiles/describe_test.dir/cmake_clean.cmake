file(REMOVE_RECURSE
  "CMakeFiles/describe_test.dir/describe_test.cc.o"
  "CMakeFiles/describe_test.dir/describe_test.cc.o.d"
  "describe_test"
  "describe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
