file(REMOVE_RECURSE
  "CMakeFiles/dataspace_test.dir/dataspace_test.cc.o"
  "CMakeFiles/dataspace_test.dir/dataspace_test.cc.o.d"
  "dataspace_test"
  "dataspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
