# Empty dependencies file for dataspace_test.
# This may be replaced when dependencies are built.
