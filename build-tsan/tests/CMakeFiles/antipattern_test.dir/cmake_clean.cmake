file(REMOVE_RECURSE
  "CMakeFiles/antipattern_test.dir/antipattern_test.cc.o"
  "CMakeFiles/antipattern_test.dir/antipattern_test.cc.o.d"
  "antipattern_test"
  "antipattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
