# Empty compiler generated dependencies file for antipattern_test.
# This may be replaced when dependencies are built.
