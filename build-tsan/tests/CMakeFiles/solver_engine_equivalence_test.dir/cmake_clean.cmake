file(REMOVE_RECURSE
  "CMakeFiles/solver_engine_equivalence_test.dir/solver_engine_equivalence_test.cc.o"
  "CMakeFiles/solver_engine_equivalence_test.dir/solver_engine_equivalence_test.cc.o.d"
  "solver_engine_equivalence_test"
  "solver_engine_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_engine_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
