# Empty dependencies file for pattern_miner_test.
# This may be replaced when dependencies are built.
