file(REMOVE_RECURSE
  "CMakeFiles/pattern_miner_test.dir/pattern_miner_test.cc.o"
  "CMakeFiles/pattern_miner_test.dir/pattern_miner_test.cc.o.d"
  "pattern_miner_test"
  "pattern_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
