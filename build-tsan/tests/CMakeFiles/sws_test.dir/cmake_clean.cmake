file(REMOVE_RECURSE
  "CMakeFiles/sws_test.dir/sws_test.cc.o"
  "CMakeFiles/sws_test.dir/sws_test.cc.o.d"
  "sws_test"
  "sws_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
