# Empty dependencies file for sws_test.
# This may be replaced when dependencies are built.
