file(REMOVE_RECURSE
  "CMakeFiles/pipeline_parallel_test.dir/pipeline_parallel_test.cc.o"
  "CMakeFiles/pipeline_parallel_test.dir/pipeline_parallel_test.cc.o.d"
  "pipeline_parallel_test"
  "pipeline_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
