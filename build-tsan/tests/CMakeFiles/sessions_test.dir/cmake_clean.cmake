file(REMOVE_RECURSE
  "CMakeFiles/sessions_test.dir/sessions_test.cc.o"
  "CMakeFiles/sessions_test.dir/sessions_test.cc.o.d"
  "sessions_test"
  "sessions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
