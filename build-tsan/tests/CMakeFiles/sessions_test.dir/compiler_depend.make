# Empty compiler generated dependencies file for sessions_test.
# This may be replaced when dependencies are built.
