file(REMOVE_RECURSE
  "CMakeFiles/template_store_test.dir/template_store_test.cc.o"
  "CMakeFiles/template_store_test.dir/template_store_test.cc.o.d"
  "template_store_test"
  "template_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
