# Empty dependencies file for template_store_test.
# This may be replaced when dependencies are built.
