#ifndef SQLOG_SQLOG_H_
#define SQLOG_SQLOG_H_

/// Umbrella header for the public surface of the library. Applications
/// (examples, tools, downstream users) include this one header instead
/// of reaching into the library's subdirectories:
///
///   - the end-to-end cleaning pipeline and its builder
///     (sqlog::core::Pipeline, PipelineBuilder, PipelineOptions),
///   - the custom-rule registry — the Sec. 5.4 extension point
///     (sqlog::core::CustomRule and the ready-made rules),
///   - the log model and CSV I/O (sqlog::log::QueryLog, LogIo),
///   - the synthetic SkyServer-style workload generator
///     (sqlog::log::GenerateLog),
///   - the schema catalog consulted by Def. 11's key-attribute axiom
///     (sqlog::catalog::Schema, MakeSkyServerSchema),
///   - the error model every fallible API returns
///     (sqlog::Status, sqlog::Result<T>),
///   - the thread pool behind PipelineOptions::num_threads
///     (sqlog::util::ThreadPool).
///
/// Internal headers (sql/, engine/, analysis/ internals) are not
/// re-exported; include them directly when extending the library
/// itself.

#include "catalog/schema.h"
#include "core/pipeline.h"
#include "core/rules.h"
#include "log/generator.h"
#include "log/log_io.h"
#include "log/record.h"
#include "util/status.h"
#include "util/thread_pool.h"

#endif  // SQLOG_SQLOG_H_
