#include "core/sws.h"

#include <cmath>

namespace sqlog::core {

SwsReport DetectSws(const std::vector<Pattern>& patterns, size_t parsed_query_count,
                    const SwsOptions& options) {
  SwsReport report;
  if (parsed_query_count == 0) return report;
  double min_frequency = options.frequency_fraction * static_cast<double>(parsed_query_count);

  // Only length-1 patterns contribute coverage: longer windows over the
  // same templates would double-count the same statements.
  for (size_t i = 0; i < patterns.size(); ++i) {
    const Pattern& pattern = patterns[i];
    if (pattern.length() != 1) continue;
    if (static_cast<double>(pattern.frequency) < min_frequency) continue;
    if (pattern.user_popularity() > options.max_user_popularity) continue;
    SwsPattern hit;
    hit.pattern_index = i;
    hit.covered_queries = pattern.covered_statements();
    report.covered_queries += hit.covered_queries;
    report.patterns.push_back(hit);
  }
  report.coverage =
      static_cast<double>(report.covered_queries) / static_cast<double>(parsed_query_count);
  return report;
}

}  // namespace sqlog::core
