#ifndef SQLOG_CORE_ANTIPATTERN_H_
#define SQLOG_CORE_ANTIPATTERN_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "core/rules.h"
#include "core/template_store.h"

namespace sqlog::core {

/// Antipattern classes implemented per Sec. 4.2 (Defs. 11-16).
enum class AntipatternType {
  kDwStifle,      // Def. 12: same SELECT/FROM, different WHERE constants
  kDsStifle,      // Def. 13: same FROM/WHERE, different SELECT
  kDfStifle,      // Def. 14: different FROM, same WHERE
  kCthCandidate,  // Def. 15: dependent follow-up chain (candidate only)
  kSnc,           // Def. 16: searching nullable columns with = / <> NULL
  kCustom,        // a registered CustomRule hit (Sec. 5.4 extension point)
};

/// Returns a stable display name ("DW-Stifle", ...).
const char* AntipatternTypeName(AntipatternType type);

/// True for types with an automatic solving rule (CTH has none).
bool IsSolvable(AntipatternType type);

/// One concrete occurrence: the member queries in log order.
struct AntipatternInstance {
  AntipatternType type = AntipatternType::kDwStifle;
  std::vector<size_t> query_indices;  // indices into ParsedLog.queries
  int custom_rule = -1;               // index into DetectorOptions::custom_rules
};

/// Aggregation of instances sharing a template signature — the unit the
/// paper's "count of distinct DW-Stifle" statistics and Table 6 use.
struct DistinctAntipattern {
  AntipatternType type = AntipatternType::kDwStifle;
  std::vector<uint64_t> template_ids;  // distinct templates, first-seen order
  uint64_t instance_count = 0;
  uint64_t query_count = 0;
  std::unordered_set<uint32_t> users;
  size_t sample_query = 0;  // a ParsedQuery index from some instance
  int custom_rule = -1;     // for kCustom aggregations

  size_t user_popularity() const { return users.size(); }
};

/// Detector tuning.
struct DetectorOptions {
  /// Enforce Def. 11 axiom 3 (the filter column must be a key attribute,
  /// looked up in the schema catalog). Disabling it measures the
  /// false-positive cost the paper discusses.
  bool require_key_attribute = true;
  /// Queries of one instance must follow each other within this gap.
  int64_t max_gap_ms = 10 * 60 * 1000;
  /// Distinct CTH candidates below this instance count are dropped
  /// (one-off organic coincidences).
  uint64_t cth_min_support = 3;
  /// Additional single-query rules evaluated on every parsed query
  /// (Sec. 5.4: the framework accommodates new antipatterns).
  std::vector<CustomRule> custom_rules;
};

/// Full detector output.
struct AntipatternReport {
  std::vector<AntipatternInstance> instances;
  std::vector<DistinctAntipattern> distinct;

  /// query index → index+1 of the instance containing it (0 = none).
  /// A query belongs to at most one instance (first-wins, Sec. 5.5).
  std::vector<uint32_t> instance_of_query;

  /// Convenience counters.
  uint64_t CountInstances(AntipatternType type) const;
  uint64_t CountQueries(AntipatternType type) const;
  uint64_t CountDistinct(AntipatternType type) const;
};

/// Runs all detectors over per-user gap-bounded segments. `schema` may
/// be null — the key-attribute axiom is then skipped (as if
/// require_key_attribute were false).
///
/// With a non-null `pool`, scanning is sharded over contiguous user-id
/// ranges (every instance lives within one user's stream, Defs. 11-16)
/// and per-shard instance lists are concatenated in ascending shard
/// order — reproducing the serial emission order exactly, so the report
/// is byte-identical to the serial path.
AntipatternReport DetectAntipatterns(const ParsedLog& parsed, const TemplateStore& store,
                                     const catalog::Schema* schema,
                                     const DetectorOptions& options,
                                     util::ThreadPool* pool = nullptr);

/// True when an instance has a solving rule: built-in types consult
/// IsSolvable; kCustom consults its rule's rewrite hook.
bool InstanceSolvable(const AntipatternInstance& instance,
                      const std::vector<CustomRule>& rules);

/// True when `query` can be a Stifle member (Def. 11 per-query axioms):
/// exactly one predicate, equality against a constant, conjunctive
/// WHERE, and (when enforced) a key filter column.
bool StifleEligible(const ParsedQuery& query, const catalog::Schema* schema,
                    bool require_key_attribute);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_ANTIPATTERN_H_
