#ifndef SQLOG_CORE_ANTIPATTERN_H_
#define SQLOG_CORE_ANTIPATTERN_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "catalog/schema.h"
#include "core/detector.h"
#include "core/rules.h"
#include "core/template_store.h"

namespace sqlog::core {

// AntipatternType, AntipatternInstance, and DetectorOptions live in
// core/detector.h together with the plugin interface; this header keeps
// the detection driver and the report types.

/// Returns the display name of the built-in detector behind a legacy
/// type ("DW-Stifle", ...), looked up from the registry metadata.
/// Deprecated: prefer DetectorSet::info(instance.detector).display_name,
/// which also covers detectors beyond the paper's set.
const char* AntipatternTypeName(AntipatternType type);

/// True for legacy types whose built-in detector declares a solving
/// rule (CTH has none). Deprecated: prefer DetectorSet::Solvable.
bool IsSolvable(AntipatternType type);

/// Aggregation of instances sharing a template signature — the unit the
/// paper's "count of distinct DW-Stifle" statistics and Table 6 use.
struct DistinctAntipattern {
  /// Index into the DetectorSet the report was produced with.
  uint32_t detector = 0;
  /// Legacy class of the producing detector. Deprecated: prefer
  /// `detector`.
  AntipatternType type = AntipatternType::kDwStifle;
  std::vector<uint64_t> template_ids;  // distinct templates, first-seen order
  uint64_t instance_count = 0;
  uint64_t query_count = 0;
  std::unordered_set<uint32_t> users;
  size_t sample_query = 0;  // a ParsedQuery index from some instance
  /// Deprecated compat field for kCustom aggregations.
  int custom_rule = -1;

  size_t user_popularity() const { return users.size(); }
};

/// Full detector output.
struct AntipatternReport {
  std::vector<AntipatternInstance> instances;
  std::vector<DistinctAntipattern> distinct;

  /// query index → index+1 of the instance containing it (0 = none).
  /// A query belongs to at most one instance (first-wins, Sec. 5.5).
  std::vector<uint32_t> instance_of_query;

  /// The detector set the report was produced with; null only for
  /// hand-built reports (legacy tests). Kept on the report so
  /// per-instance metadata lookups never dangle.
  std::shared_ptr<const DetectorSet> detectors;

  /// Legacy-type counters (deprecated: prefer the per-detector
  /// overloads below, which distinguish detectors sharing kCustom).
  uint64_t CountInstances(AntipatternType type) const;
  uint64_t CountQueries(AntipatternType type) const;
  uint64_t CountDistinct(AntipatternType type) const;

  /// Per-detector counters over the set index.
  uint64_t InstancesOf(uint32_t detector) const;
  uint64_t QueriesOf(uint32_t detector) const;
  uint64_t DistinctOf(uint32_t detector) const;
};

/// Runs the resolved detector set over per-user gap-bounded segments.
/// `schema` may be null — schema-aware axioms are then skipped (as if
/// require_key_attribute were false; schema-aware detectors match
/// nothing).
///
/// With a non-null `pool`, scanning is sharded over contiguous user-id
/// ranges (every instance lives within one user's stream, Defs. 11-16)
/// and per-shard instance lists are concatenated in ascending shard
/// order — reproducing the serial emission order exactly, so the report
/// is byte-identical to the serial path.
AntipatternReport DetectAntipatterns(const ParsedLog& parsed, const TemplateStore& store,
                                     const catalog::Schema* schema,
                                     const DetectorOptions& options,
                                     std::shared_ptr<const DetectorSet> detectors,
                                     util::ThreadPool* pool = nullptr);

/// Deprecated compat overload: resolves the detector set from `options`
/// itself (options.detector_ids must be valid — the default empty list
/// always is).
AntipatternReport DetectAntipatterns(const ParsedLog& parsed, const TemplateStore& store,
                                     const catalog::Schema* schema,
                                     const DetectorOptions& options,
                                     util::ThreadPool* pool = nullptr);

/// True when an instance has a solving rule: built-in types consult
/// IsSolvable; kCustom consults its rule's rewrite hook. Deprecated:
/// prefer AntipatternReport::detectors->Solvable(instance).
bool InstanceSolvable(const AntipatternInstance& instance,
                      const std::vector<CustomRule>& rules);

/// True when `query` can be a Stifle member (Def. 11 per-query axioms):
/// exactly one predicate, equality against a constant, conjunctive
/// WHERE, and (when enforced) a key filter column.
bool StifleEligible(const ParsedQuery& query, const catalog::Schema* schema,
                    bool require_key_attribute);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_ANTIPATTERN_H_
