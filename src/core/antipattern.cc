#include "core/antipattern.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/hash.h"

namespace sqlog::core {

namespace {

/// Registry id of the built-in detector behind a legacy type; null for
/// kCustom (many detectors share it — the legacy name stays "Custom").
const char* LegacyDetectorId(AntipatternType type) {
  switch (type) {
    case AntipatternType::kDwStifle: return "dw-stifle";
    case AntipatternType::kDsStifle: return "ds-stifle";
    case AntipatternType::kDfStifle: return "df-stifle";
    case AntipatternType::kCthCandidate: return "cth";
    case AntipatternType::kSnc: return "snc";
    case AntipatternType::kCustom: return nullptr;
  }
  return nullptr;
}

}  // namespace

const char* AntipatternTypeName(AntipatternType type) {
  const char* id = LegacyDetectorId(type);
  if (id == nullptr) return "Custom";
  std::shared_ptr<const Detector> detector = DetectorRegistry::Global().Find(id);
  assert(detector != nullptr && "built-in detector missing from registry");
  // The registry retains every registered detector for the process
  // lifetime, so the returned pointer is stable.
  return detector->info().display_name.c_str();
}

bool IsSolvable(AntipatternType type) {
  const char* id = LegacyDetectorId(type);
  if (id == nullptr) return false;  // custom solvability is per-rule
  std::shared_ptr<const Detector> detector = DetectorRegistry::Global().Find(id);
  assert(detector != nullptr && "built-in detector missing from registry");
  return detector->info().solvable;
}

bool InstanceSolvable(const AntipatternInstance& instance,
                      const std::vector<CustomRule>& rules) {
  if (instance.type == AntipatternType::kCustom) {
    return instance.custom_rule >= 0 &&
           static_cast<size_t>(instance.custom_rule) < rules.size() &&
           rules[static_cast<size_t>(instance.custom_rule)].solvable();
  }
  return IsSolvable(instance.type);
}

uint64_t AntipatternReport::CountInstances(AntipatternType type) const {
  uint64_t n = 0;
  for (const auto& instance : instances) {
    if (instance.type == type) ++n;
  }
  return n;
}

uint64_t AntipatternReport::CountQueries(AntipatternType type) const {
  uint64_t n = 0;
  for (const auto& instance : instances) {
    if (instance.type == type) n += instance.query_indices.size();
  }
  return n;
}

uint64_t AntipatternReport::CountDistinct(AntipatternType type) const {
  uint64_t n = 0;
  for (const auto& d : distinct) {
    if (d.type == type) ++n;
  }
  return n;
}

uint64_t AntipatternReport::InstancesOf(uint32_t detector) const {
  uint64_t n = 0;
  for (const auto& instance : instances) {
    if (instance.detector == detector) ++n;
  }
  return n;
}

uint64_t AntipatternReport::QueriesOf(uint32_t detector) const {
  uint64_t n = 0;
  for (const auto& instance : instances) {
    if (instance.detector == detector) n += instance.query_indices.size();
  }
  return n;
}

uint64_t AntipatternReport::DistinctOf(uint32_t detector) const {
  uint64_t n = 0;
  for (const auto& d : distinct) {
    if (d.detector == detector) ++n;
  }
  return n;
}

bool StifleEligible(const ParsedQuery& query, const catalog::Schema* schema,
                    bool require_key_attribute) {
  const sql::QueryFacts& facts = query.facts;
  if (!facts.where_conjunctive) return false;
  if (facts.predicate_count() != 1) return false;
  const sql::Predicate& pred = facts.predicates[0];
  if (pred.op != sql::PredicateOp::kEq) return false;
  if (!pred.constant_comparison) return false;
  if (pred.compares_to_null_literal) return false;  // that is the SNC case
  if (require_key_attribute && schema != nullptr) {
    if (!schema->IsKeyColumn(pred.column, facts.tables)) return false;
  }
  return true;
}

namespace {

/// Builds the distinct-template signature of an instance.
std::vector<uint64_t> SignatureOf(const ParsedLog& parsed,
                                  const AntipatternInstance& instance) {
  std::vector<uint64_t> signature;
  for (size_t idx : instance.query_indices) {
    uint64_t id = parsed.queries[idx].template_id;
    if (std::find(signature.begin(), signature.end(), id) == signature.end()) {
      signature.push_back(id);
    }
  }
  return signature;
}

uint64_t SignatureKey(uint32_t detector, const std::vector<uint64_t>& signature) {
  uint64_t h = 0x517cc1b727220a95ULL + static_cast<uint64_t>(detector);
  for (uint64_t id : signature) h = HashCombine(h, id + 1);
  return h;
}

/// Evaluation order of one resolved detector set: sequence detectors
/// grouped into passes (shared scan_group = one pass, tried in set order
/// at every position with first-match-wins; empty group = a pass of its
/// own), then per-query detectors in set order. The default set yields
/// passes [dw, ds, df] and [cth] followed by per-query snc — exactly the
/// pre-registry scanner's stifle pass, CTH pass, and per-query loop.
struct ScanPlan {
  std::vector<std::vector<uint32_t>> sequence_passes;  // detector set indices
  std::vector<uint32_t> per_query;                     // detector set indices
};

ScanPlan BuildScanPlan(const DetectorSet& set) {
  ScanPlan plan;
  std::unordered_map<std::string, size_t> group_pass;
  for (uint32_t d = 0; d < set.size(); ++d) {
    const DetectorInfo& info = set.info(d);
    if (info.scope == DetectorScope::kPerQuery) {
      plan.per_query.push_back(d);
      continue;
    }
    if (info.scan_group.empty()) {
      plan.sequence_passes.push_back({d});
      continue;
    }
    auto [it, inserted] = group_pass.try_emplace(info.scan_group, plan.sequence_passes.size());
    if (inserted) plan.sequence_passes.push_back({});
    plan.sequence_passes[it->second].push_back(d);
  }
  return plan;
}

/// Runs the scan plan over one gap-bounded segment of one user's stream.
void ScanSegment(const std::vector<size_t>& segment, const DetectorSet& set,
                 const ScanPlan& plan, const DetectorContext& ctx,
                 std::vector<AntipatternInstance>& out) {
  SegmentView view(ctx.parsed, segment);
  // Independent passes: a query may belong to both a CTH candidate and
  // a Stifle (paper Table 2) — the solver later prefers the solvable
  // instance, which reproduces Table 3.
  for (const auto& pass : plan.sequence_passes) {
    size_t i = 0;
    while (i < segment.size()) {
      size_t advanced = 0;
      for (uint32_t d : pass) {
        AntipatternInstance instance;
        instance.detector = d;
        instance.type = set.info(d).legacy_type;
        instance.custom_rule = set.info(d).custom_rule;
        advanced = set.at(d).ScanAt(view, i, ctx, &instance);
        if (advanced != 0) {
          out.push_back(std::move(instance));
          break;
        }
      }
      i += advanced == 0 ? 1 : advanced;
    }
  }
  for (size_t pos = 0; pos < segment.size(); ++pos) {
    for (uint32_t d : plan.per_query) {
      AntipatternInstance instance;
      instance.detector = d;
      instance.type = set.info(d).legacy_type;
      instance.custom_rule = set.info(d).custom_rule;
      instance.query_indices = {segment[pos]};
      if (set.at(d).MatchQuery(view.at(pos), ctx, &instance)) {
        out.push_back(std::move(instance));
      }
    }
  }
}

/// Scans the streams of users [user_begin, user_end) into `out`,
/// emitting instances in the serial order (users ascending, per-user
/// segment order).
void ScanUserRange(const ParsedLog& parsed, const DetectorSet& set, const ScanPlan& plan,
                   const DetectorContext& ctx, uint32_t user_begin, uint32_t user_end,
                   std::vector<AntipatternInstance>& out) {
  for (uint32_t user_id = user_begin; user_id < user_end; ++user_id) {
    const auto& stream = parsed.user_streams[user_id];
    if (stream.empty()) continue;

    std::vector<size_t> segment;
    int64_t prev_time = 0;
    for (size_t idx : stream) {
      const ParsedQuery& query = parsed.queries[idx];
      if (!segment.empty() && query.timestamp_ms - prev_time > ctx.options.max_gap_ms) {
        ScanSegment(segment, set, plan, ctx, out);
        segment.clear();
      }
      segment.push_back(idx);
      prev_time = query.timestamp_ms;
    }
    ScanSegment(segment, set, plan, ctx, out);
  }
}

}  // namespace

AntipatternReport DetectAntipatterns(const ParsedLog& parsed, const TemplateStore& store,
                                     const catalog::Schema* schema,
                                     const DetectorOptions& options,
                                     std::shared_ptr<const DetectorSet> detectors,
                                     util::ThreadPool* pool) {
  (void)store;
  AntipatternReport report;
  report.detectors = std::move(detectors);
  const DetectorSet& set = *report.detectors;
  const ScanPlan plan = BuildScanPlan(set);
  const DetectorContext ctx{parsed, schema, options};

  const size_t user_count = parsed.user_streams.size();
  size_t num_shards = 1;
  if (pool != nullptr && pool->size() > 0) {
    num_shards = std::min(user_count, pool->size() + 1);
    if (num_shards == 0) num_shards = 1;
  }
  if (num_shards <= 1) {
    ScanUserRange(parsed, set, plan, ctx, 0, static_cast<uint32_t>(user_count),
                  report.instances);
  } else {
    // Map over contiguous user ranges, then concatenate in shard order:
    // instances come out in exactly the order the serial loop emits.
    using InstanceList = std::vector<AntipatternInstance>;
    std::vector<InstanceList> shards = util::MapShards<InstanceList>(
        pool, user_count, num_shards, [&](size_t, size_t begin, size_t end) {
          InstanceList local;
          ScanUserRange(parsed, set, plan, ctx, static_cast<uint32_t>(begin),
                        static_cast<uint32_t>(end), local);
          return local;
        });
    for (InstanceList& shard : shards) {
      report.instances.insert(report.instances.end(),
                              std::make_move_iterator(shard.begin()),
                              std::make_move_iterator(shard.end()));
    }
  }

  // Deterministic log order: by first member query's record index.
  std::stable_sort(report.instances.begin(), report.instances.end(),
                   [&](const AntipatternInstance& a, const AntipatternInstance& b) {
                     return parsed.queries[a.query_indices.front()].record_index <
                            parsed.queries[b.query_indices.front()].record_index;
                   });

  // Drop weakly-supported candidates of min-support-filtered detectors
  // (CTH: one-off organic coincidences).
  std::unordered_map<uint64_t, uint64_t> support;
  for (const auto& instance : report.instances) {
    if (!set.info(instance.detector).min_support_filtered) continue;
    ++support[SignatureKey(instance.detector, SignatureOf(parsed, instance))];
  }

  std::unordered_map<uint64_t, size_t> distinct_index;
  std::vector<AntipatternInstance> kept;
  kept.reserve(report.instances.size());
  for (auto& instance : report.instances) {
    std::vector<uint64_t> signature = SignatureOf(parsed, instance);
    uint64_t key = SignatureKey(instance.detector, signature);
    if (set.info(instance.detector).min_support_filtered &&
        support[key] < options.cth_min_support) {
      continue;
    }
    auto [it, inserted] = distinct_index.try_emplace(key, report.distinct.size());
    if (inserted) {
      DistinctAntipattern d;
      d.detector = instance.detector;
      d.type = instance.type;
      d.custom_rule = instance.custom_rule;
      d.template_ids = std::move(signature);
      d.sample_query = instance.query_indices.front();
      report.distinct.push_back(std::move(d));
    }
    DistinctAntipattern& d = report.distinct[it->second];
    ++d.instance_count;
    d.query_count += instance.query_indices.size();
    for (size_t idx : instance.query_indices) {
      d.users.insert(parsed.queries[idx].user_id);
    }
    kept.push_back(std::move(instance));
  }
  report.instances = std::move(kept);

  // query → instance map. Solvable instances claim their queries first
  // (Sec. 5.5: when types overlap, the solvable rewrite proceeds);
  // detect-only instances annotate queries nothing else claimed.
  report.instance_of_query.assign(parsed.queries.size(), 0);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t k = 0; k < report.instances.size(); ++k) {
      const AntipatternInstance& instance = report.instances[k];
      bool solvable = set.Solvable(instance);
      if ((pass == 0) != solvable) continue;
      for (size_t idx : instance.query_indices) {
        if (report.instance_of_query[idx] == 0) {
          report.instance_of_query[idx] = static_cast<uint32_t>(k + 1);
        }
      }
    }
  }
  return report;
}

AntipatternReport DetectAntipatterns(const ParsedLog& parsed, const TemplateStore& store,
                                     const catalog::Schema* schema,
                                     const DetectorOptions& options,
                                     util::ThreadPool* pool) {
  Result<std::shared_ptr<const DetectorSet>> set = DetectorSet::Resolve(options);
  // The ids in options.detector_ids must resolve (the default empty
  // list always does). Callers with user-supplied ids validate them via
  // ValidatePipelineOptions and use the explicit-set overload.
  assert(set.ok() && "DetectAntipatterns with unresolvable detector ids");
  return DetectAntipatterns(parsed, store, schema, options, std::move(set.value()), pool);
}

}  // namespace sqlog::core
