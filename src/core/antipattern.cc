#include "core/antipattern.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"

namespace sqlog::core {

const char* AntipatternTypeName(AntipatternType type) {
  switch (type) {
    case AntipatternType::kDwStifle: return "DW-Stifle";
    case AntipatternType::kDsStifle: return "DS-Stifle";
    case AntipatternType::kDfStifle: return "DF-Stifle";
    case AntipatternType::kCthCandidate: return "CTH";
    case AntipatternType::kSnc: return "SNC";
    case AntipatternType::kCustom: return "Custom";
  }
  return "?";
}

bool IsSolvable(AntipatternType type) {
  switch (type) {
    case AntipatternType::kDwStifle:
    case AntipatternType::kDsStifle:
    case AntipatternType::kDfStifle:
    case AntipatternType::kSnc:
      return true;
    case AntipatternType::kCthCandidate:
    case AntipatternType::kCustom:
      return false;  // custom solvability is per-rule; see InstanceSolvable
  }
  return false;
}

bool InstanceSolvable(const AntipatternInstance& instance,
                      const std::vector<CustomRule>& rules) {
  if (instance.type == AntipatternType::kCustom) {
    return instance.custom_rule >= 0 &&
           static_cast<size_t>(instance.custom_rule) < rules.size() &&
           rules[static_cast<size_t>(instance.custom_rule)].solvable();
  }
  return IsSolvable(instance.type);
}

uint64_t AntipatternReport::CountInstances(AntipatternType type) const {
  uint64_t n = 0;
  for (const auto& instance : instances) {
    if (instance.type == type) ++n;
  }
  return n;
}

uint64_t AntipatternReport::CountQueries(AntipatternType type) const {
  uint64_t n = 0;
  for (const auto& instance : instances) {
    if (instance.type == type) n += instance.query_indices.size();
  }
  return n;
}

uint64_t AntipatternReport::CountDistinct(AntipatternType type) const {
  uint64_t n = 0;
  for (const auto& d : distinct) {
    if (d.type == type) ++n;
  }
  return n;
}

bool StifleEligible(const ParsedQuery& query, const catalog::Schema* schema,
                    bool require_key_attribute) {
  const sql::QueryFacts& facts = query.facts;
  if (!facts.where_conjunctive) return false;
  if (facts.predicate_count() != 1) return false;
  const sql::Predicate& pred = facts.predicates[0];
  if (pred.op != sql::PredicateOp::kEq) return false;
  if (!pred.constant_comparison) return false;
  if (pred.compares_to_null_literal) return false;  // that is the SNC case
  if (require_key_attribute && schema != nullptr) {
    if (!schema->IsKeyColumn(pred.column, facts.tables)) return false;
  }
  return true;
}

namespace {

/// True when a query can appear at position ≥ 2 of a CTH candidate:
/// exactly one equality predicate against a constant (Def. 15).
bool CthFollowupEligible(const ParsedQuery& query) {
  const sql::QueryFacts& facts = query.facts;
  if (!facts.where_conjunctive) return false;
  if (facts.predicate_count() != 1) return false;
  const sql::Predicate& pred = facts.predicates[0];
  return pred.op == sql::PredicateOp::kEq && pred.constant_comparison &&
         !pred.compares_to_null_literal;
}

/// The "information flows forward" heuristic: the follow-up filters on
/// an attribute the head query exposed (or the head exposed everything).
bool CthLinked(const ParsedQuery& head, const ParsedQuery& followup) {
  if (head.facts.selects_star) return true;
  const std::string& col = followup.facts.predicates[0].column;
  if (col.empty()) return false;
  for (const auto& selected : head.facts.selected_columns) {
    if (selected == col) return true;
  }
  return false;
}

/// Builds the distinct-template signature of an instance.
std::vector<uint64_t> SignatureOf(const ParsedLog& parsed,
                                  const AntipatternInstance& instance) {
  std::vector<uint64_t> signature;
  for (size_t idx : instance.query_indices) {
    uint64_t id = parsed.queries[idx].template_id;
    if (std::find(signature.begin(), signature.end(), id) == signature.end()) {
      signature.push_back(id);
    }
  }
  return signature;
}

uint64_t SignatureKey(AntipatternType type, int custom_rule,
                      const std::vector<uint64_t>& signature) {
  uint64_t h = 0x517cc1b727220a95ULL + static_cast<uint64_t>(type);
  h = HashCombine(h, static_cast<uint64_t>(custom_rule + 1));
  for (uint64_t id : signature) h = HashCombine(h, id + 1);
  return h;
}

/// Detector working over one gap-bounded segment of one user's stream.
class SegmentScanner {
 public:
  SegmentScanner(const ParsedLog& parsed, const catalog::Schema* schema,
                 const DetectorOptions& options, uint32_t user_id,
                 std::vector<AntipatternInstance>& out)
      : parsed_(parsed), schema_(schema), options_(options), user_id_(user_id), out_(out) {}

  void Scan(const std::vector<size_t>& segment) {
    (void)user_id_;
    // Independent passes: a query may belong to both a CTH candidate and
    // a Stifle (paper Table 2) — the solver later prefers the solvable
    // instance, which reproduces Table 3.
    size_t i = 0;
    while (i < segment.size()) {
      size_t advanced = TryStifle(segment, i);
      i += advanced == 0 ? 1 : advanced;
    }
    i = 0;
    while (i < segment.size()) {
      size_t advanced = TryCth(segment, i);
      i += advanced == 0 ? 1 : advanced;
    }
    for (size_t idx : segment) {
      TrySnc(idx);
      TryCustomRules(idx);
    }
  }

 private:
  const ParsedQuery& Q(size_t idx) const { return parsed_.queries[idx]; }

  /// Attempts to start a Stifle instance at segment position `i`;
  /// returns how many positions were consumed (0 = no instance).
  size_t TryStifle(const std::vector<size_t>& segment, size_t i) {
    if (i + 1 >= segment.size()) return 0;
    const ParsedQuery& first = Q(segment[i]);
    if (!StifleEligible(first, schema_, options_.require_key_attribute)) return 0;
    const ParsedQuery& second = Q(segment[i + 1]);
    if (!StifleEligible(second, schema_, options_.require_key_attribute)) return 0;

    const sql::QueryFacts& f1 = first.facts;
    const sql::QueryFacts& f2 = second.facts;

    // Classify the adjacent pair, then extend greedily.
    AntipatternType type;
    if (f1.sc == f2.sc && f1.fc == f2.fc && f1.tmpl.swc == f2.tmpl.swc && f1.wc != f2.wc) {
      type = AntipatternType::kDwStifle;
    } else if (f1.fc == f2.fc && f1.wc == f2.wc && f1.tmpl.ssc != f2.tmpl.ssc) {
      type = AntipatternType::kDsStifle;
    } else if (f1.wc == f2.wc && f1.fc != f2.fc) {
      type = AntipatternType::kDfStifle;
    } else {
      return 0;
    }

    AntipatternInstance instance;
    instance.type = type;
    instance.query_indices = {segment[i], segment[i + 1]};
    std::unordered_set<std::string> seen_ssc = {f1.tmpl.ssc, f2.tmpl.ssc};
    std::unordered_set<std::string> seen_fc = {f1.fc, f2.fc};
    std::unordered_set<std::string> seen_wc = {f1.wc, f2.wc};

    size_t j = i + 2;
    while (j < segment.size()) {
      const ParsedQuery& next = Q(segment[j]);
      if (!StifleEligible(next, schema_, options_.require_key_attribute)) break;
      const sql::QueryFacts& fn = next.facts;
      bool extends = false;
      switch (type) {
        case AntipatternType::kDwStifle:
          extends = fn.sc == f1.sc && fn.fc == f1.fc && fn.tmpl.swc == f1.tmpl.swc &&
                    seen_wc.insert(fn.wc).second;
          break;
        case AntipatternType::kDsStifle:
          extends = fn.fc == f1.fc && fn.wc == f1.wc && seen_ssc.insert(fn.tmpl.ssc).second;
          break;
        case AntipatternType::kDfStifle:
          extends = fn.wc == f1.wc && seen_fc.insert(fn.fc).second;
          break;
        default:
          break;
      }
      if (!extends) break;
      instance.query_indices.push_back(segment[j]);
      ++j;
    }

    size_t consumed = instance.query_indices.size();
    out_.push_back(std::move(instance));
    return consumed;
  }

  /// Attempts a CTH candidate chain headed at segment position `i`. The
  /// chain extends over follow-ups satisfying Def. 15 (CP = 1, equality,
  /// SQ ≠ SQ1); the information-flow heuristic only demands that *some*
  /// follow-up filters on an attribute the head exposed — in the paper's
  /// Table 1, only the last query references the selected empId.
  size_t TryCth(const std::vector<size_t>& segment, size_t i) {
    if (i + 1 >= segment.size()) return 0;
    const ParsedQuery& head = Q(segment[i]);
    AntipatternInstance instance;
    instance.type = AntipatternType::kCthCandidate;
    instance.query_indices = {segment[i]};
    bool linked = false;
    size_t j = i + 1;
    while (j < segment.size()) {
      const ParsedQuery& followup = Q(segment[j]);
      if (followup.template_id == head.template_id) break;  // Def. 15: SQ1 ≠ SQ2
      if (!CthFollowupEligible(followup)) break;
      linked = linked || CthLinked(head, followup);
      instance.query_indices.push_back(segment[j]);
      ++j;
    }
    if (instance.query_indices.size() < 2 || !linked) return 0;
    size_t consumed = instance.query_indices.size();
    out_.push_back(std::move(instance));
    return consumed;
  }

  void TryCustomRules(size_t query_index) {
    const ParsedQuery& query = Q(query_index);
    for (size_t r = 0; r < options_.custom_rules.size(); ++r) {
      if (!options_.custom_rules[r].detect) continue;
      if (!options_.custom_rules[r].detect(query)) continue;
      AntipatternInstance instance;
      instance.type = AntipatternType::kCustom;
      instance.custom_rule = static_cast<int>(r);
      instance.query_indices = {query_index};
      out_.push_back(std::move(instance));
    }
  }

  void TrySnc(size_t query_index) {
    const ParsedQuery& query = Q(query_index);
    for (const auto& pred : query.facts.predicates) {
      if (pred.compares_to_null_literal) {
        AntipatternInstance instance;
        instance.type = AntipatternType::kSnc;
        instance.query_indices = {query_index};
        out_.push_back(std::move(instance));
        return;
      }
    }
  }

  const ParsedLog& parsed_;
  const catalog::Schema* schema_;
  const DetectorOptions& options_;
  uint32_t user_id_;
  std::vector<AntipatternInstance>& out_;
};

}  // namespace

namespace {

/// Scans the streams of users [user_begin, user_end) into `out`,
/// emitting instances in the serial order (users ascending, per-user
/// scanner order).
void ScanUserRange(const ParsedLog& parsed, const catalog::Schema* schema,
                   const DetectorOptions& options, uint32_t user_begin,
                   uint32_t user_end, std::vector<AntipatternInstance>& out) {
  for (uint32_t user_id = user_begin; user_id < user_end; ++user_id) {
    const auto& stream = parsed.user_streams[user_id];
    if (stream.empty()) continue;
    SegmentScanner scanner(parsed, schema, options, user_id, out);

    std::vector<size_t> segment;
    int64_t prev_time = 0;
    for (size_t idx : stream) {
      const ParsedQuery& query = parsed.queries[idx];
      if (!segment.empty() && query.timestamp_ms - prev_time > options.max_gap_ms) {
        scanner.Scan(segment);
        segment.clear();
      }
      segment.push_back(idx);
      prev_time = query.timestamp_ms;
    }
    scanner.Scan(segment);
  }
}

}  // namespace

AntipatternReport DetectAntipatterns(const ParsedLog& parsed, const TemplateStore& store,
                                     const catalog::Schema* schema,
                                     const DetectorOptions& options,
                                     util::ThreadPool* pool) {
  (void)store;
  AntipatternReport report;

  const size_t user_count = parsed.user_streams.size();
  size_t num_shards = 1;
  if (pool != nullptr && pool->size() > 0) {
    num_shards = std::min(user_count, pool->size() + 1);
    if (num_shards == 0) num_shards = 1;
  }
  if (num_shards <= 1) {
    ScanUserRange(parsed, schema, options, 0, static_cast<uint32_t>(user_count),
                  report.instances);
  } else {
    // Map over contiguous user ranges, then concatenate in shard order:
    // instances come out in exactly the order the serial loop emits.
    using InstanceList = std::vector<AntipatternInstance>;
    std::vector<InstanceList> shards = util::MapShards<InstanceList>(
        pool, user_count, num_shards, [&](size_t, size_t begin, size_t end) {
          InstanceList local;
          ScanUserRange(parsed, schema, options, static_cast<uint32_t>(begin),
                        static_cast<uint32_t>(end), local);
          return local;
        });
    for (InstanceList& shard : shards) {
      report.instances.insert(report.instances.end(),
                              std::make_move_iterator(shard.begin()),
                              std::make_move_iterator(shard.end()));
    }
  }

  // Deterministic log order: by first member query's record index.
  std::stable_sort(report.instances.begin(), report.instances.end(),
                   [&](const AntipatternInstance& a, const AntipatternInstance& b) {
                     return parsed.queries[a.query_indices.front()].record_index <
                            parsed.queries[b.query_indices.front()].record_index;
                   });

  // Drop weakly-supported CTH candidates (one-off organic coincidences).
  std::unordered_map<uint64_t, uint64_t> cth_support;
  for (const auto& instance : report.instances) {
    if (instance.type != AntipatternType::kCthCandidate) continue;
    uint64_t key =
        SignatureKey(instance.type, instance.custom_rule, SignatureOf(parsed, instance));
    ++cth_support[key];
  }

  std::unordered_map<uint64_t, size_t> distinct_index;
  std::vector<AntipatternInstance> kept;
  kept.reserve(report.instances.size());
  for (auto& instance : report.instances) {
    std::vector<uint64_t> signature = SignatureOf(parsed, instance);
    uint64_t key = SignatureKey(instance.type, instance.custom_rule, signature);
    if (instance.type == AntipatternType::kCthCandidate &&
        cth_support[key] < options.cth_min_support) {
      continue;
    }
    auto [it, inserted] = distinct_index.try_emplace(key, report.distinct.size());
    if (inserted) {
      DistinctAntipattern d;
      d.type = instance.type;
      d.custom_rule = instance.custom_rule;
      d.template_ids = std::move(signature);
      d.sample_query = instance.query_indices.front();
      report.distinct.push_back(std::move(d));
    }
    DistinctAntipattern& d = report.distinct[it->second];
    ++d.instance_count;
    d.query_count += instance.query_indices.size();
    for (size_t idx : instance.query_indices) {
      d.users.insert(parsed.queries[idx].user_id);
    }
    kept.push_back(std::move(instance));
  }
  report.instances = std::move(kept);

  // query → instance map. Solvable instances claim their queries first
  // (Sec. 5.5: when types overlap, the solvable rewrite proceeds); CTH
  // candidates only annotate queries nothing else claimed.
  report.instance_of_query.assign(parsed.queries.size(), 0);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t k = 0; k < report.instances.size(); ++k) {
      const AntipatternInstance& instance = report.instances[k];
      bool solvable = InstanceSolvable(instance, options.custom_rules);
      if ((pass == 0) != solvable) continue;
      for (size_t idx : instance.query_indices) {
        if (report.instance_of_query[idx] == 0) {
          report.instance_of_query[idx] = static_cast<uint32_t>(k + 1);
        }
      }
    }
  }
  return report;
}

}  // namespace sqlog::core
