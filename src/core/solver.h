#ifndef SQLOG_CORE_SOLVER_H_
#define SQLOG_CORE_SOLVER_H_

#include <string>
#include <vector>

#include "core/antipattern.h"
#include "core/template_store.h"
#include "log/record.h"
#include "util/status.h"

namespace sqlog::core {

/// Counters for the solving step.
struct SolveStats {
  uint64_t instances_solved = 0;
  uint64_t instances_unsolvable = 0;   // CTH candidates (annotated only)
  uint64_t queries_merged = 0;         // statements removed by rewriting
  uint64_t queries_rewritten_in_place = 0;  // SNC fixes
  uint64_t rewrite_failures = 0;       // instances kept verbatim on error
};

/// Solving output: the clean log (antipatterns rewritten) and the
/// removal log (antipattern member queries dropped entirely) that
/// Sec. 6.9 compares against.
struct SolveOutcome {
  log::QueryLog clean_log;
  log::QueryLog removal_log;
  SolveStats stats;
};

/// Rewrites one DW-Stifle instance (Example 10): one statement whose
/// WHERE is an IN-list over the member constants; the filter column is
/// added to the select list so results stay interpretable.
Result<std::string> RewriteDwStifle(const std::vector<const ParsedQuery*>& members);

/// Rewrites one DS-Stifle instance (Example 12): the union of the
/// member select lists over the shared FROM/WHERE.
Result<std::string> RewriteDsStifle(const std::vector<const ParsedQuery*>& members);

/// Rewrites one DF-Stifle instance (Example 14): an INNER JOIN of the
/// member tables on the shared filter column.
Result<std::string> RewriteDfStifle(const std::vector<const ParsedQuery*>& members);

/// Rewrites one SNC statement (Sec. 5.4): `= NULL` → `IS NULL`,
/// `<> NULL` → `IS NOT NULL`.
Result<std::string> RewriteSnc(const ParsedQuery& query);

/// Applies all solving rules over the pre-clean log: member queries of
/// each solvable instance collapse into one rewritten statement at the
/// position of the instance's first query; SNC statements (and solvable
/// custom-rule hits) are fixed in place; everything else passes through.
/// Also produces the removal variant. Rewritten/removed records keep
/// their original metadata. `custom_rules` must be the rule vector the
/// report was detected with.
SolveOutcome SolveAntipatterns(const log::QueryLog& pre_clean, const ParsedLog& parsed,
                               const AntipatternReport& report,
                               const std::vector<CustomRule>& custom_rules = {});

}  // namespace sqlog::core

#endif  // SQLOG_CORE_SOLVER_H_
