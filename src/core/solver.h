#ifndef SQLOG_CORE_SOLVER_H_
#define SQLOG_CORE_SOLVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/antipattern.h"
#include "core/template_store.h"
#include "log/log_stream.h"
#include "log/record.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlog::core {

/// Counters for the solving step.
struct SolveStats {
  uint64_t instances_solved = 0;
  uint64_t instances_unsolvable = 0;   // detect-only hits (CTH, ...; annotated only)
  uint64_t queries_merged = 0;         // statements removed by rewriting
  uint64_t queries_rewritten_in_place = 0;  // single-query fixes (SNC, ...)
  uint64_t rewrite_failures = 0;       // instances kept verbatim on error
};

/// Solving output: the clean log (antipatterns rewritten) and the
/// removal log (antipattern member queries dropped entirely) that
/// Sec. 6.9 compares against.
struct SolveOutcome {
  log::QueryLog clean_log;
  log::QueryLog removal_log;
  SolveStats stats;
};

/// Rewrites one DW-Stifle instance (Example 10): one statement whose
/// WHERE is an IN-list over the member constants; the filter column is
/// added to the select list so results stay interpretable.
Result<std::string> RewriteDwStifle(const std::vector<const ParsedQuery*>& members);

/// Rewrites one DS-Stifle instance (Example 12): the union of the
/// member select lists over the shared FROM/WHERE.
Result<std::string> RewriteDsStifle(const std::vector<const ParsedQuery*>& members);

/// Rewrites one DF-Stifle instance (Example 14): an INNER JOIN of the
/// member tables on the shared filter column.
Result<std::string> RewriteDfStifle(const std::vector<const ParsedQuery*>& members);

/// Rewrites one SNC statement (Sec. 5.4): `= NULL` → `IS NULL`,
/// `<> NULL` → `IS NOT NULL`.
Result<std::string> RewriteSnc(const ParsedQuery& query);

/// Applies all solving rules over the pre-clean log: member queries of
/// each solvable instance collapse into one rewritten statement at the
/// position of the instance's first query; SNC statements (and solvable
/// custom-rule hits) are fixed in place; everything else passes through.
/// Also produces the removal variant. Rewritten/removed records keep
/// their original metadata.
///
/// Rewrites dispatch through the report's detector set
/// (AntipatternReport::detectors); `custom_rules` is the deprecated
/// fallback consulted only for hand-built reports without a set, and
/// must then be the rule vector the report was detected with.
SolveOutcome SolveAntipatterns(const log::QueryLog& pre_clean, const ParsedLog& parsed,
                               const AntipatternReport& report,
                               const std::vector<CustomRule>& custom_rules = {});

/// Incremental flavour of SolveAntipatterns for the streaming ingestion
/// path: pre-clean records are fed one at a time in pre-clean order and
/// the clean/removal rows are emitted straight to the two RecordWriters (either format) —
/// byte-identical (rows, order, renumbered seqs, SolveStats) to what
/// SolveAntipatterns would produce over the whole log.
///
/// Rewriting needs member ASTs, which the streaming parser released to
/// bound memory; the solver re-parses just the member statements of
/// solvable instances as they stream past (the parser is deterministic,
/// so the ASTs — and therefore the rewrites — are identical), restores
/// them into `parsed` temporarily, and clears them once the instance
/// resolves. Records are buffered only while an instance that contains
/// them is still unresolved, so the buffer is bounded by the detector's
/// gap-bounded segment span, not the log length.
///
/// Custom rules are not supported (streaming mode rejects them — their
/// detect hooks read the released ASTs).
class StreamingSolver {
 public:
  /// Both writers must be open; they must be configured with
  /// renumber=true to reproduce SolveAntipatterns's Renumber().
  StreamingSolver(ParsedLog& parsed, const AntipatternReport& report,
                  log::RecordWriter& clean_writer, log::RecordWriter& removal_writer);

  /// Feeds the next pre-clean record (call in pre-clean order, starting
  /// at position 0).
  Status Feed(const log::LogRecord& record);

  /// Flushes remaining output. Every instance must have resolved (all
  /// members fed); call after the last record.
  Status Finish();

  const SolveStats& stats() const { return stats_; }

 private:
  /// One output slot, queued until every earlier slot is resolved.
  struct Slot {
    log::LogRecord record;
    uint32_t instance_id = 0;  // pending claiming instance; 0 once resolved
    bool is_first = false;     // first member of the claiming instance
    bool resolved = false;
    bool to_clean = false;
    bool to_removal = false;
  };

  /// AST bookkeeping for one query listed by ≥1 solvable instance.
  /// Instances overlap (claiming is first-wins), so a query's re-parsed
  /// AST stays restored until every instance listing it has resolved.
  struct AstNeed {
    std::vector<uint32_t> instances;  // solvable instances listing the query
    uint32_t unresolved = 0;
  };

  void ResolveInstance(uint32_t instance_id);
  Status Drain();

  ParsedLog& parsed_ SQLOG_SHARD_LOCAL;
  const AntipatternReport& report_ SQLOG_CONST_AFTER_INIT;
  log::RecordWriter& clean_writer_ SQLOG_SHARD_LOCAL;
  log::RecordWriter& removal_writer_ SQLOG_SHARD_LOCAL;
  SolveStats stats_ SQLOG_SHARD_LOCAL;

  /// pre-clean record index → ParsedLog query index.
  std::unordered_map<size_t, size_t> query_at_record_ SQLOG_SHARD_LOCAL;
  /// query index → AST bookkeeping (solvable-instance members only).
  std::unordered_map<size_t, AstNeed> ast_needs_ SQLOG_SHARD_LOCAL;
  /// instance id (1-based, solvable only) → members not yet fed.
  std::unordered_map<uint32_t, size_t> members_pending_ SQLOG_SHARD_LOCAL;
  std::deque<Slot> slots_ SQLOG_SHARD_LOCAL;
  size_t next_record_ SQLOG_SHARD_LOCAL = 0;  // position assigned to the next Feed
};

}  // namespace sqlog::core

#endif  // SQLOG_CORE_SOLVER_H_
