#include "core/dedup.h"

#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace sqlog::core {

namespace {

/// Key: (user, statement) → timestamp of the last kept-or-suppressed
/// occurrence. Chaining on the last occurrence (not the last *kept*
/// one) means a burst of reloads with sub-threshold gaps collapses
/// entirely, which matches the web-form-reload interpretation.
struct LastSeen {
  int64_t timestamp_ms;
};

/// Walks the records at `positions` (ascending sorted-log positions) and
/// flags duplicates. Factored out so the parallel path can run it once
/// per user shard over disjoint position sets.
void MarkDuplicates(const std::vector<log::LogRecord>& records,
                    const std::vector<size_t>& positions, const DedupOptions& options,
                    std::vector<uint8_t>& duplicate) {
  std::unordered_map<uint64_t, LastSeen> last_seen;
  last_seen.reserve(positions.size() * 2);
  for (size_t pos : positions) {
    const log::LogRecord& record = records[pos];
    uint64_t key = Fnv1a64(record.user);
    key = HashCombine(key, Fnv1a64(record.statement));
    auto it = last_seen.find(key);
    bool is_duplicate = false;
    if (it != last_seen.end()) {
      if (options.unrestricted) {
        is_duplicate = true;
      } else {
        is_duplicate =
            record.timestamp_ms - it->second.timestamp_ms <= options.threshold_ms;
      }
    }
    if (it == last_seen.end()) {
      last_seen.emplace(key, LastSeen{record.timestamp_ms});
    } else {
      it->second.timestamp_ms = record.timestamp_ms;
    }
    duplicate[pos] = is_duplicate ? 1 : 0;
  }
}

}  // namespace

log::QueryLog RemoveDuplicates(const log::QueryLog& input, const DedupOptions& options,
                               DedupStats* stats, util::ThreadPool* pool) {
  log::QueryLog sorted = input;
  sorted.SortByTime();
  const auto& records = sorted.records();

  std::vector<uint8_t> duplicate(records.size(), 0);
  const size_t num_shards = pool == nullptr ? 1 : pool->size() + 1;
  if (num_shards <= 1) {
    std::vector<size_t> all(records.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    MarkDuplicates(records, all, options, duplicate);
  } else {
    // Shard by user so every (user, statement) chain stays within one
    // shard; each shard writes disjoint entries of `duplicate`.
    std::vector<std::vector<size_t>> shard_positions(num_shards);
    for (size_t i = 0; i < records.size(); ++i) {
      shard_positions[Fnv1a64(records[i].user) % num_shards].push_back(i);
    }
    pool->ParallelFor(0, num_shards, 1, [&](size_t begin, size_t end) {
      for (size_t shard = begin; shard < end; ++shard) {
        MarkDuplicates(records, shard_positions[shard], options, duplicate);
      }
    });
  }

  log::QueryLog output;
  size_t removed = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (duplicate[i] != 0) {
      ++removed;
      continue;
    }
    output.Append(records[i]);
  }
  output.Renumber();

  if (stats != nullptr) {
    stats->input_count = input.size();
    stats->removed_count = removed;
    stats->output_count = output.size();
  }
  return output;
}

}  // namespace sqlog::core
