#include "core/dedup.h"

#include <unordered_map>

#include "util/hash.h"

namespace sqlog::core {

log::QueryLog RemoveDuplicates(const log::QueryLog& input, const DedupOptions& options,
                               DedupStats* stats) {
  log::QueryLog sorted = input;
  sorted.SortByTime();

  // Key: (user, statement) → timestamp of the last kept-or-suppressed
  // occurrence. Chaining on the last occurrence (not the last *kept*
  // one) means a burst of reloads with sub-threshold gaps collapses
  // entirely, which matches the web-form-reload interpretation.
  struct LastSeen {
    int64_t timestamp_ms;
  };
  std::unordered_map<uint64_t, LastSeen> last_seen;
  last_seen.reserve(sorted.size() * 2);

  log::QueryLog output;
  size_t removed = 0;
  for (const auto& record : sorted.records()) {
    uint64_t key = Fnv1a64(record.user);
    key = HashCombine(key, Fnv1a64(record.statement));
    auto it = last_seen.find(key);
    bool duplicate = false;
    if (it != last_seen.end()) {
      if (options.unrestricted) {
        duplicate = true;
      } else {
        duplicate = record.timestamp_ms - it->second.timestamp_ms <= options.threshold_ms;
      }
    }
    if (it == last_seen.end()) {
      last_seen.emplace(key, LastSeen{record.timestamp_ms});
    } else {
      it->second.timestamp_ms = record.timestamp_ms;
    }
    if (duplicate) {
      ++removed;
      continue;
    }
    output.Append(record);
  }
  output.Renumber();

  if (stats != nullptr) {
    stats->input_count = input.size();
    stats->removed_count = removed;
    stats->output_count = output.size();
  }
  return output;
}

}  // namespace sqlog::core
