#include "core/dedup.h"

#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace sqlog::core {

namespace {

uint64_t DedupKeyHash(const DedupOptions& options, std::string_view user,
                      std::string_view statement) {
  if (options.key_hash_for_test) return options.key_hash_for_test(user, statement);
  return HashCombine(Fnv1a64(user), Fnv1a64(statement));
}

/// Key: (user, statement) → timestamp of the last kept-or-suppressed
/// occurrence. Chaining on the last occurrence (not the last *kept*
/// one) means a burst of reloads with sub-threshold gaps collapses
/// entirely, which matches the web-form-reload interpretation.
///
/// The hash only buckets; `first_pos` points at the first occurrence so
/// the full (user, statement) strings verify every match — a 64-bit
/// collision between distinct keys lands in the same bucket but can
/// never flag a non-duplicate (it used to silently delete the colliding
/// query from the clean log).
struct LastSeen {
  size_t first_pos;      // sorted-log position of the first occurrence
  int64_t timestamp_ms;  // last occurrence in the chain
};

/// Walks the records at `positions` (ascending sorted-log positions) and
/// flags duplicates. Factored out so the parallel path can run it once
/// per user shard over disjoint position sets.
void MarkDuplicates(const std::vector<log::LogRecord>& records,
                    const std::vector<size_t>& positions, const DedupOptions& options,
                    std::vector<uint8_t>& duplicate) {
  std::unordered_map<uint64_t, std::vector<LastSeen>> last_seen;
  last_seen.reserve(positions.size() * 2);
  for (size_t pos : positions) {
    const log::LogRecord& record = records[pos];
    uint64_t key = DedupKeyHash(options, record.user, record.statement);
    std::vector<LastSeen>& bucket = last_seen[key];
    LastSeen* entry = nullptr;
    for (LastSeen& candidate : bucket) {
      const log::LogRecord& first = records[candidate.first_pos];
      if (first.user == record.user && first.statement == record.statement) {
        entry = &candidate;
        break;
      }
    }
    bool is_duplicate = false;
    if (entry != nullptr) {
      if (options.unrestricted) {
        is_duplicate = true;
      } else {
        is_duplicate = record.timestamp_ms - entry->timestamp_ms <= options.threshold_ms;
      }
      entry->timestamp_ms = record.timestamp_ms;
    } else {
      bucket.push_back(LastSeen{pos, record.timestamp_ms});
    }
    duplicate[pos] = is_duplicate ? 1 : 0;
  }
}

}  // namespace

log::QueryLog RemoveDuplicates(const log::QueryLog& input, const DedupOptions& options,
                               DedupStats* stats, util::ThreadPool* pool) {
  log::QueryLog sorted = input;
  sorted.SortByTime();
  const auto& records = sorted.records();

  std::vector<uint8_t> duplicate(records.size(), 0);
  const size_t num_shards = pool == nullptr ? 1 : pool->size() + 1;
  if (num_shards <= 1) {
    std::vector<size_t> all(records.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    MarkDuplicates(records, all, options, duplicate);
  } else {
    // Shard by user so every (user, statement) chain stays within one
    // shard; each shard writes disjoint entries of `duplicate`.
    std::vector<std::vector<size_t>> shard_positions(num_shards);
    for (size_t i = 0; i < records.size(); ++i) {
      shard_positions[Fnv1a64(records[i].user) % num_shards].push_back(i);
    }
    pool->ParallelFor(0, num_shards, 1, [&](size_t begin, size_t end) {
      for (size_t shard = begin; shard < end; ++shard) {
        MarkDuplicates(records, shard_positions[shard], options, duplicate);
      }
    });
  }

  log::QueryLog output;
  size_t removed = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (duplicate[i] != 0) {
      ++removed;
      continue;
    }
    output.Append(records[i]);
  }
  output.Renumber();

  if (stats != nullptr) {
    stats->input_count = input.size();
    stats->removed_count = removed;
    stats->output_count = output.size();
  }
  return output;
}

StreamingDeduper::StreamingDeduper(const DedupOptions& options) : options_(options) {}

bool StreamingDeduper::IsDuplicate(const log::LogRecord& record) {
  ++records_seen_;
  uint64_t key = DedupKeyHash(options_, record.user, record.statement);
  std::vector<Entry>& bucket = last_seen_[key];
  Entry* entry = nullptr;
  for (Entry& candidate : bucket) {
    if (candidate.user == record.user && candidate.statement == record.statement) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    Entry fresh;
    fresh.user = arena_.Intern(record.user);
    fresh.statement = arena_.Intern(record.statement);
    fresh.timestamp_ms = record.timestamp_ms;
    bucket.push_back(fresh);
    ++distinct_keys_;
    return false;
  }
  bool is_duplicate =
      options_.unrestricted ||
      record.timestamp_ms - entry->timestamp_ms <= options_.threshold_ms;
  entry->timestamp_ms = record.timestamp_ms;
  if (is_duplicate) ++duplicates_seen_;
  return is_duplicate;
}

}  // namespace sqlog::core
