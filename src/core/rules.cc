#include "core/rules.h"

#include "core/solver.h"
#include "sql/ast.h"

namespace sqlog::core {

CustomRule MakeSelectStarRule() {
  CustomRule rule;
  rule.name = "select-star";
  rule.detect = [](const ParsedQuery& query) { return query.facts.selects_star; };
  return rule;
}

CustomRule MakeMissingWhereRule() {
  CustomRule rule;
  rule.name = "missing-where";
  rule.detect = [](const ParsedQuery& query) {
    const sql::SelectStatement& stmt = *query.facts.ast;
    if (stmt.where != nullptr) return false;
    if (stmt.top_count >= 0) return false;
    if (!stmt.group_by.empty()) return false;  // aggregation bounds output
    // Aggregates without GROUP BY return one row — bounded.
    for (const auto& item : stmt.select_items) {
      if (item.expr->kind() == sql::ExprKind::kFunctionCall) return false;
    }
    // Table functions bound their own output (spatial searches).
    if (!query.facts.table_functions.empty()) return false;
    return !query.facts.tables.empty();
  };
  return rule;
}

CustomRule MakeSncRule() {
  CustomRule rule;
  rule.name = "snc";
  rule.detect = [](const ParsedQuery& query) {
    for (const auto& pred : query.facts.predicates) {
      if (pred.compares_to_null_literal) return true;
    }
    return false;
  };
  rule.rewrite = [](const ParsedQuery& query) { return RewriteSnc(query); };
  return rule;
}

}  // namespace sqlog::core
