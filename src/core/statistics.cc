#include "core/statistics.h"

#include "util/string_util.h"

namespace sqlog::core {

namespace {

std::string Row(const char* label, uint64_t value, uint64_t base = 0) {
  std::string line = StrFormat("  %-42s %14s", label,
                               WithThousands(static_cast<long long>(value)).c_str());
  if (base > 0) {
    line += StrFormat("  (%.2f%%)",
                      100.0 * static_cast<double>(value) / static_cast<double>(base));
  }
  line += "\n";
  return line;
}

}  // namespace

std::string PipelineStats::ToTable() const {
  std::string out = "Results overview (cf. paper Table 5)\n";
  out += Row("Size of original query log", original_size);
  out += Row("Count of SELECT queries", select_count, original_size);
  out += Row("Non-SELECT statements", non_select_count, original_size);
  out += Row("Syntax errors", syntax_error_count, original_size);
  out += Row("Size after deleting duplicates", after_dedup_size, original_size);
  out += Row("Duplicates removed", duplicates_removed, original_size);
  out += Row("Final (clean) log size", final_size, original_size);
  out += Row("Removal log size", removal_size, original_size);
  out += Row("Count of patterns", pattern_count);
  out += Row("Maximal pattern frequency", max_pattern_frequency);
  out += Row("Count of distinct DW-Stifle", distinct_dw);
  out += Row("Count of queries in all DW-Stifle", queries_dw);
  out += Row("Count of distinct DS-Stifle", distinct_ds);
  out += Row("Count of queries in all DS-Stifle", queries_ds);
  out += Row("Count of distinct DF-Stifle", distinct_df);
  out += Row("Count of queries in all DF-Stifle", queries_df);
  out += Row("Count of distinct candidate CTH", distinct_cth);
  out += Row("Count of queries in all candidate CTH", queries_cth);
  out += Row("Count of distinct SNC", distinct_snc);
  out += Row("Count of queries in all SNC", queries_snc);
  for (const auto& extra : extra_detectors) {
    out += Row(StrFormat("Count of distinct %s", extra.label.c_str()).c_str(),
               extra.distinct_count);
    out += Row(StrFormat("Count of queries in all %s", extra.label.c_str()).c_str(),
               extra.query_count);
  }
  out += Row("Instances solved", solve.instances_solved);
  out += Row("Queries merged away by rewriting", solve.queries_merged);
  return out;
}

}  // namespace sqlog::core
