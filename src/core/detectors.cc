#include <cassert>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "core/antipattern.h"
#include "core/detector.h"
#include "core/solver.h"
#include "sql/ast.h"
#include "sql/printer.h"
#include "util/string_util.h"

// All Detector subclasses live in this TU so registration and
// implementation cannot drift apart (sqlog-lint R6 enforces this).

namespace sqlog::core {

namespace {

namespace sql = ::sqlog::sql;

std::string PrintCanonical(const sql::SelectStatement& stmt) {
  sql::PrintOptions opts;
  opts.canonical = true;
  return Print(stmt, opts);
}

// ---------------------------------------------------------------------------
// The paper's detectors (Sec. 4.2), registered as built-in plugins. Their
// hooks replicate the pre-registry SegmentScanner logic exactly: the
// three Stifles share the "stifle" scan group, so the driver tries them
// in registration order at every position with first-match-wins — the
// pair conditions of Defs. 12-14 are mutually exclusive, making this
// equivalent to the original coupled if-else classification.
// ---------------------------------------------------------------------------

/// DW/DS/DF-Stifle (Defs. 12-14), parameterized by class.
class StifleDetector final : public Detector {
 public:
  explicit StifleDetector(AntipatternType type) : type_(type) {
    switch (type) {
      case AntipatternType::kDwStifle:
        info_.id = "dw-stifle";
        info_.display_name = "DW-Stifle";
        info_.description = "same SELECT/FROM repeated with different WHERE constants";
        break;
      case AntipatternType::kDsStifle:
        info_.id = "ds-stifle";
        info_.display_name = "DS-Stifle";
        info_.description = "same FROM/WHERE repeated with different SELECT lists";
        break;
      default:
        info_.id = "df-stifle";
        info_.display_name = "DF-Stifle";
        info_.description = "same WHERE repeated against different tables";
        break;
    }
    info_.scope = DetectorScope::kSequence;
    info_.solvable = true;
    info_.scan_group = "stifle";
    info_.legacy_type = type;
  }

  const DetectorInfo& info() const override { return info_; }

  size_t ScanAt(const SegmentView& segment, size_t pos, const DetectorContext& ctx,
                AntipatternInstance* instance) const override {
    if (pos + 1 >= segment.size()) return 0;
    const ParsedQuery& first = segment.at(pos);
    if (!StifleEligible(first, ctx.schema, ctx.options.require_key_attribute)) return 0;
    const ParsedQuery& second = segment.at(pos + 1);
    if (!StifleEligible(second, ctx.schema, ctx.options.require_key_attribute)) return 0;

    const sql::QueryFacts& f1 = first.facts;
    const sql::QueryFacts& f2 = second.facts;
    bool matches = false;
    switch (type_) {
      case AntipatternType::kDwStifle:
        matches = f1.sc == f2.sc && f1.fc == f2.fc && f1.tmpl.swc == f2.tmpl.swc &&
                  f1.wc != f2.wc;
        break;
      case AntipatternType::kDsStifle:
        matches = f1.fc == f2.fc && f1.wc == f2.wc && f1.tmpl.ssc != f2.tmpl.ssc;
        break;
      default:
        matches = f1.wc == f2.wc && f1.fc != f2.fc;
        break;
    }
    if (!matches) return 0;

    instance->query_indices = {segment.query_index(pos), segment.query_index(pos + 1)};
    std::unordered_set<std::string> seen_ssc = {f1.tmpl.ssc, f2.tmpl.ssc};
    std::unordered_set<std::string> seen_fc = {f1.fc, f2.fc};
    std::unordered_set<std::string> seen_wc = {f1.wc, f2.wc};

    size_t j = pos + 2;
    while (j < segment.size()) {
      const ParsedQuery& next = segment.at(j);
      if (!StifleEligible(next, ctx.schema, ctx.options.require_key_attribute)) break;
      const sql::QueryFacts& fn = next.facts;
      bool extends = false;
      switch (type_) {
        case AntipatternType::kDwStifle:
          extends = fn.sc == f1.sc && fn.fc == f1.fc && fn.tmpl.swc == f1.tmpl.swc &&
                    seen_wc.insert(fn.wc).second;
          break;
        case AntipatternType::kDsStifle:
          extends = fn.fc == f1.fc && fn.wc == f1.wc && seen_ssc.insert(fn.tmpl.ssc).second;
          break;
        default:
          extends = fn.wc == f1.wc && seen_fc.insert(fn.fc).second;
          break;
      }
      if (!extends) break;
      instance->query_indices.push_back(segment.query_index(j));
      ++j;
    }
    return instance->query_indices.size();
  }

  Result<std::string> Rewrite(const AntipatternInstance& instance,
                              const std::vector<const ParsedQuery*>& members) const override {
    (void)instance;
    switch (type_) {
      case AntipatternType::kDwStifle: return RewriteDwStifle(members);
      case AntipatternType::kDsStifle: return RewriteDsStifle(members);
      default: return RewriteDfStifle(members);
    }
  }

 private:
  AntipatternType type_;
  DetectorInfo info_;
};

/// CTH candidate chains (Def. 15). Detect-only; distinct candidates
/// below cth_min_support are dropped by the driver.
class CthDetector final : public Detector {
 public:
  CthDetector() {
    info_.id = "cth";
    info_.display_name = "CTH";
    info_.description = "dependent follow-up chain re-filtering on exposed attributes";
    info_.scope = DetectorScope::kSequence;
    info_.solvable = false;
    info_.legacy_type = AntipatternType::kCthCandidate;
    info_.min_support_filtered = true;
  }

  const DetectorInfo& info() const override { return info_; }

  size_t ScanAt(const SegmentView& segment, size_t pos, const DetectorContext& ctx,
                AntipatternInstance* instance) const override {
    (void)ctx;
    if (pos + 1 >= segment.size()) return 0;
    const ParsedQuery& head = segment.at(pos);
    instance->query_indices = {segment.query_index(pos)};
    bool linked = false;
    size_t j = pos + 1;
    while (j < segment.size()) {
      const ParsedQuery& followup = segment.at(j);
      if (followup.template_id == head.template_id) break;  // Def. 15: SQ1 ≠ SQ2
      if (!FollowupEligible(followup)) break;
      linked = linked || Linked(head, followup);
      instance->query_indices.push_back(segment.query_index(j));
      ++j;
    }
    if (instance->query_indices.size() < 2 || !linked) {
      instance->query_indices.clear();
      return 0;
    }
    return instance->query_indices.size();
  }

 private:
  /// A query at position ≥ 2 of a candidate: exactly one equality
  /// predicate against a constant (Def. 15).
  static bool FollowupEligible(const ParsedQuery& query) {
    const sql::QueryFacts& facts = query.facts;
    if (!facts.where_conjunctive) return false;
    if (facts.predicate_count() != 1) return false;
    const sql::Predicate& pred = facts.predicates[0];
    return pred.op == sql::PredicateOp::kEq && pred.constant_comparison &&
           !pred.compares_to_null_literal;
  }

  /// The "information flows forward" heuristic: the follow-up filters on
  /// an attribute the head query exposed (or the head exposed everything).
  static bool Linked(const ParsedQuery& head, const ParsedQuery& followup) {
    if (head.facts.selects_star) return true;
    const std::string& col = followup.facts.predicates[0].column;
    if (col.empty()) return false;
    for (const auto& selected : head.facts.selected_columns) {
      if (selected == col) return true;
    }
    return false;
  }

  DetectorInfo info_;
};

/// SNC (Def. 16): `= NULL` / `<> NULL` comparisons.
class SncDetector final : public Detector {
 public:
  SncDetector() {
    info_.id = "snc";
    info_.display_name = "SNC";
    info_.description = "searching nullable columns with = NULL / <> NULL";
    info_.solvable = true;
    info_.legacy_type = AntipatternType::kSnc;
  }

  const DetectorInfo& info() const override { return info_; }

  bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                  AntipatternInstance* instance) const override {
    (void)ctx;
    (void)instance;
    for (const auto& pred : query.facts.predicates) {
      if (pred.compares_to_null_literal) return true;
    }
    return false;
  }

  Result<std::string> Rewrite(const AntipatternInstance& instance,
                              const std::vector<const ParsedQuery*>& members) const override {
    (void)instance;
    return RewriteSnc(*members[0]);
  }

 private:
  DetectorInfo info_;
};

// ---------------------------------------------------------------------------
// SQLCheck-derived additions (PAPERS.md): query-level antipatterns from
// Karwin's catalog, detectable over the same QueryFacts stream.
// ---------------------------------------------------------------------------

/// Implicit columns: `SELECT *` hides schema coupling and over-fetches.
/// Detect-only — trimming the list needs knowledge of consumer needs.
class SelectStarDetector final : public Detector {
 public:
  SelectStarDetector() {
    info_.id = "select-star";
    info_.display_name = "Implicit Columns";
    info_.description = "SELECT * over-fetches and couples clients to the schema";
  }

  const DetectorInfo& info() const override { return info_; }

  bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                  AntipatternInstance* instance) const override {
    (void)ctx;
    (void)instance;
    return query.facts.selects_star;
  }

 private:
  DetectorInfo info_;
};

/// Fear of the unknown: `col <> constant` on a nullable column silently
/// drops NULL rows. Solvable: each offending comparison gains an
/// `OR col IS NULL` guard.
class NullFearDetector final : public Detector {
 public:
  NullFearDetector() {
    info_.id = "null-fear";
    info_.display_name = "Fear of the Unknown";
    info_.description = "<> filters on nullable columns silently drop NULL rows";
    info_.solvable = true;
  }

  const DetectorInfo& info() const override { return info_; }

  bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                  AntipatternInstance* instance) const override {
    if (ctx.schema == nullptr) return false;  // schema-aware detector
    bool hit = false;
    for (const auto& pred : query.facts.predicates) {
      if (pred.op != sql::PredicateOp::kNotEq) continue;
      if (!pred.constant_comparison || pred.compares_to_null_literal) continue;
      if (pred.column.empty()) continue;
      if (!ctx.schema->IsNullableColumn(pred.column, query.facts.tables)) continue;
      hit = true;
      instance->detail.push_back(pred.column);
    }
    return hit;
  }

  Result<std::string> Rewrite(const AntipatternInstance& instance,
                              const std::vector<const ParsedQuery*>& members) const override {
    const ParsedQuery& query = *members[0];
    std::unordered_set<std::string> columns(instance.detail.begin(), instance.detail.end());
    auto stmt = query.facts.ast->Clone();
    if (!stmt->where) return Status::Internal("null-fear query without WHERE");
    bool changed = false;
    stmt->where = AddNullGuards(std::move(stmt->where), columns, changed);
    if (!changed) {
      return Status::Unsupported("no <> comparison on a flagged column to guard");
    }
    return PrintCanonical(*stmt);
  }

 private:
  /// Wraps every `col <> x` whose column was flagged at detection time in
  /// `(col <> x OR col IS NULL)`, recursing only through the boolean
  /// connectives (the printer restores precedence parentheses).
  static sql::ExprPtr AddNullGuards(sql::ExprPtr expr,
                                    const std::unordered_set<std::string>& columns,
                                    bool& changed) {
    if (expr->kind() != sql::ExprKind::kBinary) return expr;
    auto* bin = static_cast<sql::BinaryExpr*>(expr.get());
    if (bin->op == sql::BinaryOp::kAnd || bin->op == sql::BinaryOp::kOr) {
      bin->lhs = AddNullGuards(std::move(bin->lhs), columns, changed);
      bin->rhs = AddNullGuards(std::move(bin->rhs), columns, changed);
      return expr;
    }
    if (bin->op != sql::BinaryOp::kNotEq) return expr;
    const sql::Expr* side = bin->lhs->kind() == sql::ExprKind::kColumnRef
                                ? bin->lhs.get()
                                : (bin->rhs->kind() == sql::ExprKind::kColumnRef
                                       ? bin->rhs.get()
                                       : nullptr);
    if (side == nullptr) return expr;
    const auto& col = static_cast<const sql::ColumnRefExpr&>(*side);
    if (columns.count(ToLower(col.name)) == 0) return expr;
    auto guard = sql::MakeNode<sql::IsNullExpr>(
        sql::MakeNode<sql::ColumnRefExpr>(col.qualifier, col.name), /*negated=*/false);
    changed = true;
    return sql::MakeNode<sql::BinaryExpr>(sql::BinaryOp::kOr, std::move(expr),
                                          std::move(guard));
  }

  DetectorInfo info_;
};

/// Spaghetti query smell: a comma-separated multi-table FROM with no
/// column equi-join predicate — an (often accidental) cross product.
/// Detect-only.
class SpaghettiJoinDetector final : public Detector {
 public:
  SpaghettiJoinDetector() {
    info_.id = "spaghetti-join";
    info_.display_name = "Implicit Cross Join";
    info_.description = "comma-joined tables without a join predicate (cross product)";
  }

  const DetectorInfo& info() const override { return info_; }

  bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                  AntipatternInstance* instance) const override {
    (void)ctx;
    const sql::QueryFacts& facts = query.facts;
    if (facts.from_item_count < 2) return false;
    for (const auto& pred : facts.predicates) {
      if (pred.column_equijoin) return false;
    }
    instance->detail = facts.tables;
    return true;
  }

 private:
  DetectorInfo info_;
};

/// Non-sargable filter: a function or arithmetic expression wrapped
/// around an indexed (key) column defeats index use. Solvable for
/// additive arithmetic (`col + 7 > 9` folds to `col > 2`); function
/// wraps are detect-only and surface as rewrite failures.
class NonSargableDetector final : public Detector {
 public:
  NonSargableDetector() {
    info_.id = "non-sargable";
    info_.display_name = "Non-Sargable Filter";
    info_.description = "computed comparisons on key columns defeat index use";
    info_.solvable = true;
  }

  const DetectorInfo& info() const override { return info_; }

  bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                  AntipatternInstance* instance) const override {
    if (ctx.schema == nullptr) return false;  // schema-aware detector
    bool hit = false;
    for (const auto& pred : query.facts.predicates) {
      if (!pred.lhs_computed) continue;
      if (!IsComparison(pred.computed_op)) continue;
      if (pred.column.empty()) continue;
      if (!ctx.schema->IsKeyColumn(pred.column, query.facts.tables)) continue;
      hit = true;
      instance->detail.push_back(pred.column);
    }
    return hit;
  }

  Result<std::string> Rewrite(const AntipatternInstance& instance,
                              const std::vector<const ParsedQuery*>& members) const override {
    (void)instance;
    const ParsedQuery& query = *members[0];
    auto stmt = query.facts.ast->Clone();
    if (!stmt->where) return Status::Internal("non-sargable query without WHERE");
    bool changed = false;
    stmt->where = FoldArithmetic(std::move(stmt->where), changed);
    if (!changed) {
      return Status::Unsupported("only additive arithmetic on a column can be folded");
    }
    return PrintCanonical(*stmt);
  }

 private:
  static bool IsComparison(sql::PredicateOp op) {
    switch (op) {
      case sql::PredicateOp::kEq:
      case sql::PredicateOp::kNotEq:
      case sql::PredicateOp::kLess:
      case sql::PredicateOp::kLessEq:
      case sql::PredicateOp::kGreater:
      case sql::PredicateOp::kGreaterEq:
        return true;
      default:
        return false;
    }
  }

  static bool IsComparisonOp(sql::BinaryOp op) {
    switch (op) {
      case sql::BinaryOp::kEq:
      case sql::BinaryOp::kNotEq:
      case sql::BinaryOp::kLess:
      case sql::BinaryOp::kLessEq:
      case sql::BinaryOp::kGreater:
      case sql::BinaryOp::kGreaterEq:
        return true;
      default:
        return false;
    }
  }

  static const sql::LiteralExpr* AsNumber(const sql::Expr& expr) {
    if (expr.kind() != sql::ExprKind::kLiteral) return nullptr;
    const auto& lit = static_cast<const sql::LiteralExpr&>(expr);
    return lit.literal_kind == sql::LiteralKind::kNumber ? &lit : nullptr;
  }

  static sql::ExprPtr NumberNode(double value) {
    std::string text = StrFormat("%g", value);
    auto lit = sql::MakeNode<sql::LiteralExpr>(sql::LiteralKind::kNumber, text);
    lit->number_value = value;
    return lit;
  }

  /// `col ± c` with a numeric constant: returns the column node and the
  /// signed offset. `c - col` is not linear-foldable and is skipped.
  static sql::ExprPtr ExtractShiftedColumn(sql::ExprPtr& expr, double& offset) {
    if (expr->kind() != sql::ExprKind::kBinary) return nullptr;
    auto* bin = static_cast<sql::BinaryExpr*>(expr.get());
    if (bin->op != sql::BinaryOp::kAdd && bin->op != sql::BinaryOp::kSub) return nullptr;
    const double sign = bin->op == sql::BinaryOp::kSub ? -1.0 : 1.0;
    if (bin->lhs->kind() == sql::ExprKind::kColumnRef) {
      const sql::LiteralExpr* c = AsNumber(*bin->rhs);
      if (c == nullptr) return nullptr;
      offset = sign * c->number_value;
      return std::move(bin->lhs);
    }
    if (bin->op == sql::BinaryOp::kAdd && bin->rhs->kind() == sql::ExprKind::kColumnRef) {
      const sql::LiteralExpr* c = AsNumber(*bin->lhs);
      if (c == nullptr) return nullptr;
      offset = c->number_value;
      return std::move(bin->rhs);
    }
    return nullptr;
  }

  /// Folds `col ± c1 CMP c2` into `col CMP (c2 ∓ c1)` (either operand
  /// order), recursing through the boolean connectives.
  static sql::ExprPtr FoldArithmetic(sql::ExprPtr expr, bool& changed) {
    if (expr->kind() != sql::ExprKind::kBinary) return expr;
    auto* bin = static_cast<sql::BinaryExpr*>(expr.get());
    if (bin->op == sql::BinaryOp::kAnd || bin->op == sql::BinaryOp::kOr) {
      bin->lhs = FoldArithmetic(std::move(bin->lhs), changed);
      bin->rhs = FoldArithmetic(std::move(bin->rhs), changed);
      return expr;
    }
    if (!IsComparisonOp(bin->op)) return expr;
    double offset = 0.0;
    if (const sql::LiteralExpr* rhs = AsNumber(*bin->rhs)) {
      sql::ExprPtr column = ExtractShiftedColumn(bin->lhs, offset);
      if (column != nullptr) {
        bin->lhs = std::move(column);
        bin->rhs = NumberNode(rhs->number_value - offset);
        changed = true;
      }
      return expr;
    }
    if (const sql::LiteralExpr* lhs = AsNumber(*bin->lhs)) {
      sql::ExprPtr column = ExtractShiftedColumn(bin->rhs, offset);
      if (column != nullptr) {
        bin->rhs = std::move(column);
        bin->lhs = NumberNode(lhs->number_value - offset);
        changed = true;
      }
      return expr;
    }
    return expr;
  }

  DetectorInfo info_;
};

/// Deprecated compat adapter wrapping one legacy CustomRule.
class CustomRuleDetector final : public Detector {
 public:
  CustomRuleDetector(const CustomRule& rule, int index) : rule_(rule) {
    info_.id = StrFormat("custom-rule-%d", index);
    info_.display_name = rule.name.empty() ? info_.id : rule.name;
    info_.description = "legacy CustomRule adapter";
    info_.solvable = rule.solvable();
    info_.custom_rule = index;
    // Detect hooks receive the full ParsedQuery and may read facts.ast,
    // which the parse cache and the streaming parser do not provide.
    info_.needs_ast = true;
  }

  const DetectorInfo& info() const override { return info_; }

  bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                  AntipatternInstance* instance) const override {
    (void)ctx;
    (void)instance;
    return rule_.detect && rule_.detect(query);
  }

  Result<std::string> Rewrite(const AntipatternInstance& instance,
                              const std::vector<const ParsedQuery*>& members) const override {
    (void)instance;
    if (!rule_.rewrite) return Status::Unsupported("custom rule has no rewrite hook");
    return rule_.rewrite(*members[0]);
  }

 private:
  CustomRule rule_;
  DetectorInfo info_;
};

}  // namespace

void RegisterBuiltinDetectors(DetectorRegistry& registry) {
  auto must = [](Status status) {
    (void)status;
    assert(status.ok() && "built-in detector registration must not fail");
  };
  must(registry.Register(std::make_shared<StifleDetector>(AntipatternType::kDwStifle)));
  must(registry.Register(std::make_shared<StifleDetector>(AntipatternType::kDsStifle)));
  must(registry.Register(std::make_shared<StifleDetector>(AntipatternType::kDfStifle)));
  must(registry.Register(std::make_shared<CthDetector>()));
  must(registry.Register(std::make_shared<SncDetector>()));
  must(registry.Register(std::make_shared<SelectStarDetector>()));
  must(registry.Register(std::make_shared<NullFearDetector>()));
  must(registry.Register(std::make_shared<SpaghettiJoinDetector>()));
  must(registry.Register(std::make_shared<NonSargableDetector>()));
}

std::shared_ptr<const Detector> MakeCustomRuleDetector(const CustomRule& rule, int index) {
  return std::make_shared<CustomRuleDetector>(rule, index);
}

}  // namespace sqlog::core
