#include "core/solver.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "sql/ast.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace sqlog::core {

namespace {

namespace sql = ::sqlog::sql;

/// Parses the literal text recorded in a Predicate back into an AST
/// literal (values were canonically printed by the analyzer).
sql::ExprPtr LiteralFromText(const std::string& text) {
  if (text.size() >= 2 && text.front() == '\'' && text.back() == '\'') {
    std::string inner = text.substr(1, text.size() - 2);
    // Undo the doubled-quote escaping of the canonical printer.
    std::string unescaped;
    for (size_t i = 0; i < inner.size(); ++i) {
      unescaped.push_back(inner[i]);
      if (inner[i] == '\'' && i + 1 < inner.size() && inner[i + 1] == '\'') ++i;
    }
    return sql::MakeNode<sql::LiteralExpr>(sql::LiteralKind::kString, unescaped);
  }
  if (EqualsIgnoreCase(text, "null")) {
    return sql::MakeNode<sql::LiteralExpr>(sql::LiteralKind::kNull, "NULL");
  }
  auto lit = sql::MakeNode<sql::LiteralExpr>(sql::LiteralKind::kNumber, text);
  lit->number_value = std::strtod(text.c_str(), nullptr);
  return lit;
}

/// True when the select list already exposes `column` (unqualified
/// compare) or selects `*`.
bool SelectExposes(const sql::SelectStatement& stmt, const std::string& column) {
  for (const auto& item : stmt.select_items) {
    if (item.expr->kind() == sql::ExprKind::kStar) return true;
    if (item.expr->kind() == sql::ExprKind::kColumnRef &&
        EqualsIgnoreCase(static_cast<const sql::ColumnRefExpr&>(*item.expr).name, column)) {
      return true;
    }
  }
  return false;
}

std::string PrintRewritten(const sql::SelectStatement& stmt) {
  sql::PrintOptions opts;
  opts.canonical = true;
  return Print(stmt, opts);
}

/// Extracts the single TableRef of a DF-Stifle member query; null when
/// the FROM shape is unsupported for the join rewrite.
const sql::TableRef* SingleTable(const sql::SelectStatement& stmt) {
  if (stmt.from_items.size() != 1) return nullptr;
  if (stmt.from_items[0]->kind() != sql::FromKind::kTable) return nullptr;
  return static_cast<const sql::TableRef*>(stmt.from_items[0].get());
}

/// Solvability of an instance under `report`: the report's detector set
/// when present, the legacy type/rule path for hand-built reports.
bool ReportSolvable(const AntipatternReport& report, const AntipatternInstance& instance,
                    const std::vector<CustomRule>& custom_rules) {
  if (report.detectors != nullptr) return report.detectors->Solvable(instance);
  return InstanceSolvable(instance, custom_rules);
}

/// Dispatches the rewrite of one instance: through the report's
/// detector set when present, else through the legacy type switch.
Result<std::string> RewriteInstance(const AntipatternReport& report,
                                    const AntipatternInstance& instance,
                                    const std::vector<const ParsedQuery*>& members,
                                    const std::vector<CustomRule>& custom_rules) {
  if (report.detectors != nullptr) return report.detectors->Rewrite(instance, members);
  switch (instance.type) {
    case AntipatternType::kDwStifle: return RewriteDwStifle(members);
    case AntipatternType::kDsStifle: return RewriteDsStifle(members);
    case AntipatternType::kDfStifle: return RewriteDfStifle(members);
    case AntipatternType::kSnc: return RewriteSnc(*members[0]);
    case AntipatternType::kCustom:
      return custom_rules[static_cast<size_t>(instance.custom_rule)].rewrite(*members[0]);
    case AntipatternType::kCthCandidate: break;
  }
  return Status::Internal("unsolvable instance dispatched to RewriteInstance");
}

}  // namespace

Result<std::string> RewriteDwStifle(const std::vector<const ParsedQuery*>& members) {
  if (members.size() < 2) {
    return Status::InvalidArgument("DW-Stifle instance needs at least 2 queries");
  }
  const ParsedQuery& first = *members[0];
  if (first.facts.predicates.size() != 1) {
    return Status::Internal("DW-Stifle member without single predicate");
  }
  const sql::Predicate& pred = first.facts.predicates[0];

  auto stmt = first.facts.ast->Clone();

  // Collect the member constants in log order, deduplicated.
  std::vector<sql::ExprPtr> values;
  std::unordered_set<std::string> seen;
  for (const ParsedQuery* member : members) {
    if (member->facts.predicates.size() != 1 ||
        member->facts.predicates[0].values.size() != 1) {
      return Status::Internal("DW-Stifle member with unexpected predicate shape");
    }
    const std::string& text = member->facts.predicates[0].values[0];
    if (seen.insert(text).second) values.push_back(LiteralFromText(text));
  }

  auto column = sql::MakeNode<sql::ColumnRefExpr>(pred.qualifier, pred.column);
  // Expose the filter column so each result row stays attributable
  // (paper Example 10 adds empId to the select list).
  if (!SelectExposes(*stmt, pred.column)) {
    stmt->select_items.insert(
        stmt->select_items.begin(),
        sql::SelectItem(sql::MakeNode<sql::ColumnRefExpr>(pred.qualifier, pred.column),
                        ""));
  }
  stmt->where = sql::MakeNode<sql::InListExpr>(std::move(column), std::move(values),
                                               /*negated=*/false);
  return PrintRewritten(*stmt);
}

Result<std::string> RewriteDsStifle(const std::vector<const ParsedQuery*>& members) {
  if (members.size() < 2) {
    return Status::InvalidArgument("DS-Stifle instance needs at least 2 queries");
  }
  auto stmt = members[0]->facts.ast->Clone();
  std::unordered_set<std::string> seen;
  sql::PrintOptions opts;
  opts.canonical = true;
  for (auto& item : stmt->select_items) {
    seen.insert(Print(*item.expr, opts));
  }
  for (size_t i = 1; i < members.size(); ++i) {
    for (const auto& item : members[i]->facts.ast->select_items) {
      std::string key = Print(*item.expr, opts);
      if (seen.insert(key).second) {
        stmt->select_items.push_back(item.Copy());
      }
    }
  }
  return PrintRewritten(*stmt);
}

Result<std::string> RewriteDfStifle(const std::vector<const ParsedQuery*>& members) {
  if (members.size() < 2) {
    return Status::InvalidArgument("DF-Stifle instance needs at least 2 queries");
  }
  // All members share the WHERE (same filter column + constant) but read
  // from different tables. Build:
  //   SELECT t1.c…, t2.c… FROM T1 t1 INNER JOIN T2 t2 ON t1.col = t2.col
  //   WHERE t1.col = value
  const sql::Predicate& pred = members[0]->facts.predicates.at(0);

  // Resolve each member's base table and an alias for it.
  std::vector<const sql::TableRef*> tables;
  std::vector<std::string> aliases;
  std::unordered_set<std::string> used_aliases;
  for (const ParsedQuery* member : members) {
    const sql::TableRef* table = SingleTable(*member->facts.ast);
    if (table == nullptr) {
      return Status::Unsupported("DF-Stifle member with non-trivial FROM");
    }
    std::string alias = table->alias.empty() ? ToLower(table->table) : ToLower(table->alias);
    if (!used_aliases.insert(alias).second) {
      alias += StrFormat("_%zu", tables.size());
      used_aliases.insert(alias);
    }
    tables.push_back(table);
    aliases.push_back(alias);
  }

  auto stmt = sql::MakeNode<sql::SelectStatement>();

  // Qualified union of the member select lists, in log order.
  std::unordered_set<std::string> seen;
  sql::PrintOptions opts;
  opts.canonical = true;
  for (size_t i = 0; i < members.size(); ++i) {
    for (const auto& item : members[i]->facts.ast->select_items) {
      sql::SelectItem copy = item.Copy();
      if (copy.expr->kind() == sql::ExprKind::kColumnRef) {
        auto& col = static_cast<sql::ColumnRefExpr&>(*copy.expr);
        col.qualifier = aliases[i];
      } else if (copy.expr->kind() == sql::ExprKind::kStar) {
        static_cast<sql::StarExpr&>(*copy.expr).qualifier = aliases[i];
      }
      std::string key = Print(*copy.expr, opts);
      if (seen.insert(key).second) stmt->select_items.push_back(std::move(copy));
    }
  }

  // Left-deep join tree on the shared filter column.
  sql::FromItemPtr from = sql::MakeNode<sql::TableRef>(tables[0]->schema,
                                                       tables[0]->table, aliases[0]);
  for (size_t i = 1; i < tables.size(); ++i) {
    auto right = sql::MakeNode<sql::TableRef>(tables[i]->schema, tables[i]->table,
                                              aliases[i]);
    auto condition = sql::MakeNode<sql::BinaryExpr>(
        sql::BinaryOp::kEq,
        sql::MakeNode<sql::ColumnRefExpr>(aliases[0], pred.column),
        sql::MakeNode<sql::ColumnRefExpr>(aliases[i], pred.column));
    from = sql::MakeNode<sql::JoinRef>(sql::JoinType::kInner, std::move(from),
                                       std::move(right), std::move(condition));
  }
  stmt->from_items.push_back(std::move(from));

  stmt->where = sql::MakeNode<sql::BinaryExpr>(
      sql::BinaryOp::kEq, sql::MakeNode<sql::ColumnRefExpr>(aliases[0], pred.column),
      LiteralFromText(pred.values.at(0)));
  return PrintRewritten(*stmt);
}

namespace {

/// Recursively replaces `col = NULL` / `col <> NULL` with IS [NOT] NULL.
sql::ExprPtr FixNullComparisons(sql::ExprPtr expr) {
  switch (expr->kind()) {
    case sql::ExprKind::kBinary: {
      auto* bin = static_cast<sql::BinaryExpr*>(expr.get());
      bool is_eq = bin->op == sql::BinaryOp::kEq;
      bool is_neq = bin->op == sql::BinaryOp::kNotEq;
      auto is_null_literal = [](const sql::Expr& e) {
        return e.kind() == sql::ExprKind::kLiteral &&
               static_cast<const sql::LiteralExpr&>(e).literal_kind ==
                   sql::LiteralKind::kNull;
      };
      if ((is_eq || is_neq) && is_null_literal(*bin->rhs)) {
        return sql::MakeNode<sql::IsNullExpr>(std::move(bin->lhs), is_neq);
      }
      if ((is_eq || is_neq) && is_null_literal(*bin->lhs)) {
        return sql::MakeNode<sql::IsNullExpr>(std::move(bin->rhs), is_neq);
      }
      bin->lhs = FixNullComparisons(std::move(bin->lhs));
      bin->rhs = FixNullComparisons(std::move(bin->rhs));
      return expr;
    }
    case sql::ExprKind::kUnary: {
      auto* unary = static_cast<sql::UnaryExpr*>(expr.get());
      unary->operand = FixNullComparisons(std::move(unary->operand));
      return expr;
    }
    default:
      return expr;
  }
}

}  // namespace

Result<std::string> RewriteSnc(const ParsedQuery& query) {
  auto stmt = query.facts.ast->Clone();
  if (!stmt->where) return Status::Internal("SNC query without WHERE");
  stmt->where = FixNullComparisons(std::move(stmt->where));
  return PrintRewritten(*stmt);
}

SolveOutcome SolveAntipatterns(const log::QueryLog& pre_clean, const ParsedLog& parsed,
                               const AntipatternReport& report,
                               const std::vector<CustomRule>& custom_rules) {
  SolveOutcome outcome;

  // Only parsed SELECTs flow into the output logs (Sec. 5.3: syntax
  // errors and non-SELECTs "are not considered any further").
  std::vector<bool> was_parsed(pre_clean.size(), false);
  for (const auto& query : parsed.queries) was_parsed[query.record_index] = true;

  // record index → (instance id, member rank) for queries owned by an
  // instance via the solver-priority map.
  struct Membership {
    uint32_t instance_id = 0;  // 1-based; 0 = none
    bool is_first = false;
  };
  std::vector<Membership> membership(pre_clean.size());
  for (size_t q = 0; q < parsed.queries.size(); ++q) {
    uint32_t instance_id = report.instance_of_query[q];
    if (instance_id == 0) continue;
    const AntipatternInstance& instance = report.instances[instance_id - 1];
    size_t record = parsed.queries[q].record_index;
    membership[record].instance_id = instance_id;
    membership[record].is_first =
        parsed.queries[instance.query_indices.front()].record_index == record;
  }

  // Pre-compute rewrites per solvable instance. Members parsed through
  // the template cache carry no AST — restore them on demand by
  // re-parsing the statement (the parser is deterministic, so this is
  // the AST the uncached path would have rewritten from). Restored
  // copies live in a deque so member pointers stay stable.
  std::deque<ParsedQuery> restored;
  auto member_with_ast = [&](size_t idx) -> const ParsedQuery* {
    const ParsedQuery& query = parsed.queries[idx];
    if (query.facts.ast != nullptr) return &query;
    auto facts = sql::ParseAndAnalyze(pre_clean.records()[query.record_index].statement);
    if (!facts.ok()) return nullptr;
    restored.push_back(ParsedQuery{});
    ParsedQuery& copy = restored.back();
    copy.record_index = query.record_index;
    copy.timestamp_ms = query.timestamp_ms;
    copy.user_id = query.user_id;
    copy.row_count = query.row_count;
    copy.template_id = query.template_id;
    copy.facts = std::move(facts.value());
    return &copy;
  };

  std::unordered_map<uint32_t, std::string> rewritten;
  std::unordered_set<uint32_t> failed;
  for (size_t k = 0; k < report.instances.size(); ++k) {
    const AntipatternInstance& instance = report.instances[k];
    if (!ReportSolvable(report, instance, custom_rules)) {
      ++outcome.stats.instances_unsolvable;
      continue;
    }
    std::vector<const ParsedQuery*> members;
    members.reserve(instance.query_indices.size());
    bool members_ok = true;
    for (size_t idx : instance.query_indices) {
      const ParsedQuery* member = member_with_ast(idx);
      if (member == nullptr) {
        members_ok = false;
        break;
      }
      members.push_back(member);
    }
    Result<std::string> rewrite = Status::Internal("unset");
    if (!members_ok) {
      rewrite = Status::Internal("instance member no longer parses");
    } else {
      rewrite = RewriteInstance(report, instance, members, custom_rules);
    }
    uint32_t id = static_cast<uint32_t>(k + 1);
    if (rewrite.ok()) {
      rewritten[id] = std::move(rewrite.value());
      ++outcome.stats.instances_solved;
      // Single-query instances are fixed in place (SNC, per-query
      // rules); multi-query instances merge into their first member.
      if (instance.query_indices.size() == 1) {
        ++outcome.stats.queries_rewritten_in_place;
      } else {
        outcome.stats.queries_merged += instance.query_indices.size() - 1;
      }
    } else {
      failed.insert(id);
      ++outcome.stats.rewrite_failures;
    }
  }

  // Emit the clean and removal logs in one pass over the input.
  for (size_t r = 0; r < pre_clean.size(); ++r) {
    const log::LogRecord& record = pre_clean.records()[r];
    if (!was_parsed[r]) continue;
    const Membership& m = membership[r];
    if (m.instance_id == 0) {
      outcome.clean_log.Append(record);
      outcome.removal_log.Append(record);
      continue;
    }
    const AntipatternInstance& instance = report.instances[m.instance_id - 1];
    bool solvable =
        ReportSolvable(report, instance, custom_rules) && failed.count(m.instance_id) == 0;
    if (!solvable) {
      // CTH candidates (and failed rewrites) stay in the clean log but
      // leave the removal log.
      outcome.clean_log.Append(record);
      if (failed.count(m.instance_id) != 0) outcome.removal_log.Append(record);
      continue;
    }
    if (m.is_first) {
      log::LogRecord merged = record;
      merged.statement = rewritten[m.instance_id];
      outcome.clean_log.Append(std::move(merged));
    }
    // Members of solvable instances never reach the removal log.
  }
  outcome.clean_log.Renumber();
  outcome.removal_log.Renumber();
  return outcome;
}

StreamingSolver::StreamingSolver(ParsedLog& parsed, const AntipatternReport& report,
                                 log::RecordWriter& clean_writer,
                                 log::RecordWriter& removal_writer)
    : parsed_(parsed),
      report_(report),
      clean_writer_(clean_writer),
      removal_writer_(removal_writer) {
  query_at_record_.reserve(parsed_.queries.size());
  for (size_t q = 0; q < parsed_.queries.size(); ++q) {
    query_at_record_[parsed_.queries[q].record_index] = q;
  }
  // Mirror SolveAntipatterns's pre-compute loop: every unsolvable
  // instance counts once; every solvable instance gets a rewrite — here
  // deferred until its last listed member streams past.
  for (size_t k = 0; k < report_.instances.size(); ++k) {
    const AntipatternInstance& instance = report_.instances[k];
    if (!ReportSolvable(report_, instance, /*custom_rules=*/{})) {
      ++stats_.instances_unsolvable;
      continue;
    }
    uint32_t id = static_cast<uint32_t>(k + 1);
    members_pending_[id] = instance.query_indices.size();
    for (size_t idx : instance.query_indices) {
      AstNeed& need = ast_needs_[idx];
      need.instances.push_back(id);
      ++need.unresolved;
    }
  }
}

Status StreamingSolver::Feed(const log::LogRecord& record) {
  const size_t r = next_record_++;
  auto record_it = query_at_record_.find(r);
  // Non-SELECTs and syntax errors never reach the output logs.
  if (record_it == query_at_record_.end()) return Status::OK();
  const size_t q = record_it->second;

  // Restore the AST for solvable-instance members (released by the
  // streaming parser). The parser is deterministic, so this reproduces
  // the AST the in-memory path rewrote from.
  std::vector<uint32_t> completed;
  auto need_it = ast_needs_.find(q);
  if (need_it != ast_needs_.end()) {
    auto facts = sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) {
      return Status::Internal(
          StrFormat("record %zu no longer parses between passes: %s", r,
                    facts.status().message().c_str()));
    }
    parsed_.queries[q].facts.ast = std::move(facts.value().ast);
    for (uint32_t id : need_it->second.instances) {
      auto pending_it = members_pending_.find(id);
      if (pending_it != members_pending_.end() && --pending_it->second == 0) {
        members_pending_.erase(pending_it);
        completed.push_back(id);
      }
    }
  }

  Slot slot;
  slot.record = record;
  const uint32_t claiming = report_.instance_of_query[q];
  if (claiming == 0) {
    slot.resolved = true;
    slot.to_clean = true;
    slot.to_removal = true;
  } else {
    const AntipatternInstance& instance = report_.instances[claiming - 1];
    if (!ReportSolvable(report_, instance, /*custom_rules=*/{})) {
      // CTH candidates stay in the clean log but leave the removal log.
      slot.resolved = true;
      slot.to_clean = true;
      slot.to_removal = false;
    } else {
      slot.instance_id = claiming;
      slot.is_first =
          parsed_.queries[instance.query_indices.front()].record_index == r;
    }
  }
  slots_.push_back(std::move(slot));

  for (uint32_t id : completed) ResolveInstance(id);
  return Drain();
}

void StreamingSolver::ResolveInstance(uint32_t instance_id) {
  const AntipatternInstance& instance = report_.instances[instance_id - 1];
  std::vector<const ParsedQuery*> members;
  members.reserve(instance.query_indices.size());
  for (size_t idx : instance.query_indices) members.push_back(&parsed_.queries[idx]);

  // Streaming mode rejects custom rules, so the empty rule vector can
  // only be consulted by hand-built legacy reports without kCustom.
  Result<std::string> rewrite = RewriteInstance(report_, instance, members,
                                                /*custom_rules=*/{});
  if (rewrite.ok()) {
    ++stats_.instances_solved;
    // Mirror SolveAntipatterns: single-query instances are in-place
    // fixes, multi-query instances merge into their first member.
    if (instance.query_indices.size() == 1) {
      ++stats_.queries_rewritten_in_place;
    } else {
      stats_.queries_merged += instance.query_indices.size() - 1;
    }
  } else {
    ++stats_.rewrite_failures;
  }

  // All slots claimed by this instance are still queued (pending slots
  // never drain); mark their fate.
  for (Slot& slot : slots_) {
    if (slot.instance_id != instance_id || slot.resolved) continue;
    slot.resolved = true;
    if (rewrite.ok()) {
      if (slot.is_first) {
        slot.record.statement = rewrite.value();
        slot.to_clean = true;
      }
      // Non-first members of solved instances reach neither log.
    } else {
      // Failed rewrites keep the instance verbatim in both logs.
      slot.to_clean = true;
      slot.to_removal = true;
    }
  }

  // Release member ASTs once no unresolved instance still needs them.
  for (size_t idx : instance.query_indices) {
    auto it = ast_needs_.find(idx);
    if (it != ast_needs_.end() && --it->second.unresolved == 0) {
      parsed_.queries[idx].facts.ast.reset();
      ast_needs_.erase(it);
    }
  }
}

Status StreamingSolver::Drain() {
  while (!slots_.empty() && slots_.front().resolved) {
    Slot& slot = slots_.front();
    if (slot.to_clean) SQLOG_RETURN_IF_ERROR(clean_writer_.Append(slot.record));
    if (slot.to_removal) SQLOG_RETURN_IF_ERROR(removal_writer_.Append(slot.record));
    slots_.pop_front();
  }
  return Status::OK();
}

Status StreamingSolver::Finish() {
  if (!members_pending_.empty()) {
    return Status::Internal(StrFormat(
        "%zu antipattern instance(s) missing members at end of stream — the "
        "input changed between passes",
        members_pending_.size()));
  }
  SQLOG_RETURN_IF_ERROR(Drain());
  if (!slots_.empty()) {
    return Status::Internal("unresolved output slots at end of stream");
  }
  return Status::OK();
}

}  // namespace sqlog::core
