#ifndef SQLOG_CORE_PIPELINE_H_
#define SQLOG_CORE_PIPELINE_H_

#include <memory>

#include "catalog/schema.h"
#include "core/antipattern.h"
#include "core/dedup.h"
#include "core/pattern_miner.h"
#include "core/solver.h"
#include "core/statistics.h"
#include "core/sws.h"
#include "core/template_store.h"
#include "log/record.h"

namespace sqlog::core {

/// End-to-end configuration for the Fig. 1 workflow.
struct PipelineOptions {
  DedupOptions dedup;
  MinerOptions miner;
  DetectorOptions detector;
  SwsOptions sws;
  /// When false, the user/session columns are ignored (all queries are
  /// attributed to one anonymous user) — the Sec. 6.8 reduced-input
  /// mode.
  bool use_user_metadata = true;
  /// When false, pattern mining and SWS detection are skipped (cheaper
  /// when only cleaning is needed).
  bool mine_patterns = true;
  /// Additional clean→re-detect→re-solve passes after the first one
  /// (Sec. 5.5: one cleaning step can leave further solvable
  /// antipatterns, e.g. merged DS pairs lining up into fresh DW runs).
  /// 0 reproduces the paper's single-pass setting.
  size_t extra_clean_passes = 0;
};

/// Everything the Fig. 1 workflow produces.
struct PipelineResult {
  log::QueryLog pre_clean;   // after duplicate removal
  TemplateStore templates;
  ParsedLog parsed;
  std::vector<Pattern> patterns;       // sorted by frequency
  AntipatternReport antipatterns;
  SwsReport sws;
  log::QueryLog clean_log;
  log::QueryLog removal_log;
  PipelineStats stats;

  /// True when the mined pattern at `pattern_index` is (part of) a
  /// detected antipattern — drives the before/after views of Fig. 2(a).
  /// With `solvable_only`, unsolvable CTH candidates do not count.
  bool PatternIsAntipattern(size_t pattern_index, bool solvable_only = false) const;
};

/// Runs the full workflow of Fig. 1 over a raw log: delete duplicates →
/// parse statements → templates → patterns → detect antipatterns →
/// solve → clean log + statistics.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {}) : options_(std::move(options)) {}

  /// Attaches the schema catalog consulted by Def. 11's key-attribute
  /// axiom. Without one, the axiom is skipped.
  void SetSchema(const catalog::Schema* schema) { schema_ = schema; }

  const PipelineOptions& options() const { return options_; }

  /// Executes the workflow. The input log is not modified.
  PipelineResult Run(const log::QueryLog& raw_log) const;

 private:
  PipelineOptions options_;
  const catalog::Schema* schema_ = nullptr;
};

}  // namespace sqlog::core

#endif  // SQLOG_CORE_PIPELINE_H_
