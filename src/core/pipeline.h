#ifndef SQLOG_CORE_PIPELINE_H_
#define SQLOG_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "core/antipattern.h"
#include "core/dedup.h"
#include "core/pattern_miner.h"
#include "core/solver.h"
#include "core/statistics.h"
#include "core/sws.h"
#include "core/template_store.h"
#include "log/log_io.h"
#include "log/record.h"
#include "util/status.h"

namespace sqlog::core {

/// End-to-end configuration for the Fig. 1 workflow.
struct PipelineOptions {
  DedupOptions dedup;
  MinerOptions miner;
  DetectorOptions detector;
  SwsOptions sws;
  /// When false, the user/session columns are ignored (all queries are
  /// attributed to one anonymous user) — the Sec. 6.8 reduced-input
  /// mode.
  bool use_user_metadata = true;
  /// When false, pattern mining and SWS detection are skipped (cheaper
  /// when only cleaning is needed).
  bool mine_patterns = true;
  /// Additional clean→re-detect→re-solve passes after the first one
  /// (Sec. 5.5: one cleaning step can leave further solvable
  /// antipatterns, e.g. merged DS pairs lining up into fresh DW runs).
  /// 0 reproduces the paper's single-pass setting.
  size_t extra_clean_passes = 0;
  /// Worker threads for the parallel stages (dedup, parse+skeletonize,
  /// pattern mining, antipattern detection). 1 = the serial path; 0 =
  /// one thread per hardware thread. Results are byte-identical across
  /// every value — sharding keys (record ranges, user streams) and
  /// merge orders are deterministic, never wall-clock dependent.
  size_t num_threads = 1;
  /// Cap on per-record parse failures kept as diagnostics in
  /// PipelineStats (the failures are always *counted* in full).
  size_t max_parse_diagnostics = 32;
  /// Template fingerprint cache (parse avoidance): repeated statements
  /// skip the parser and have their facts rendered from cached template
  /// recipes. Outputs are byte-identical with the cache on or off — this
  /// is purely a performance escape hatch (`sqlog --no-parse-cache`).
  /// Ignored (treated as false) when the resolved detector set needs
  /// per-query ASTs (DetectorSet::AnyNeedsAst — legacy custom rules),
  /// because cache hits never build them.
  bool parse_cache = true;
  /// Streaming ingestion (Pipeline::RunStreaming): the raw log is never
  /// held in memory — records are read, deduplicated, and parsed in
  /// batches of `batch_size`, and the clean/removal logs are written
  /// incrementally. Peak memory is bounded by the batch plus the
  /// template/pattern state, not the log size. Output is byte-identical
  /// to the in-memory path at any batch size and thread count, but the
  /// input must already be (timestamp, seq)-ordered and the mode
  /// supports neither extra_clean_passes nor custom rules (their detect
  /// hooks read ASTs the streaming parser releases).
  bool streaming = false;
  /// Records per streaming batch; larger batches parallelize better,
  /// smaller ones bound memory tighter.
  size_t batch_size = 4096;
  /// Format of RunStreaming's input (kAuto probes the file magic, so a
  /// renamed file still opens correctly). A binary `.sqb` input seeds
  /// the parse cache from its template dictionary before the first
  /// record: with stored recipes, ingestion runs with zero full parses.
  log::LogFormat input_format = log::LogFormat::kAuto;
  /// Format of RunStreaming's clean/removal outputs, resolved per path
  /// (kAuto: a ".sqb" extension means binary, anything else CSV).
  log::LogFormat output_format = log::LogFormat::kAuto;
};

/// Validates a PipelineOptions bundle; returns the first violation.
Status ValidatePipelineOptions(const PipelineOptions& options);

/// Everything the Fig. 1 workflow produces.
struct PipelineResult {
  log::QueryLog pre_clean;   // after duplicate removal
  TemplateStore templates;
  ParsedLog parsed;
  std::vector<Pattern> patterns;       // sorted by frequency
  AntipatternReport antipatterns;
  SwsReport sws;
  log::QueryLog clean_log;
  log::QueryLog removal_log;
  PipelineStats stats;

  /// True when the mined pattern at `pattern_index` is (part of) a
  /// detected antipattern — drives the before/after views of Fig. 2(a).
  /// With `solvable_only`, unsolvable CTH candidates do not count.
  bool PatternIsAntipattern(size_t pattern_index, bool solvable_only = false) const;
};

/// What Pipeline::RunStreaming returns: the analysis state (templates,
/// parsed log with ASTs released, patterns, reports) plus the overview
/// statistics. The clean and removal logs live on disk — the streaming
/// path never materializes them; stats.final_size / stats.removal_size
/// carry their record counts.
struct StreamingRunResult {
  TemplateStore templates;
  ParsedLog parsed;
  std::vector<Pattern> patterns;  // sorted by frequency
  AntipatternReport antipatterns;
  SwsReport sws;
  PipelineStats stats;
};

/// Runs the full workflow of Fig. 1 over a raw log: delete duplicates →
/// parse statements → templates → patterns → detect antipatterns →
/// solve → clean log + statistics. Prefer constructing through
/// PipelineBuilder, which validates options up front.
class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {}) : options_(std::move(options)) {}

  /// Attaches the schema catalog consulted by Def. 11's key-attribute
  /// axiom. Without one, the axiom is skipped.
  void SetSchema(const catalog::Schema* schema) { schema_ = schema; }

  const PipelineOptions& options() const { return options_; }

  /// Executes the workflow. The input log is not modified. Fails (never
  /// throws — the repo's Status/Result design rule) on invalid options;
  /// per-record parse failures do not fail the run, they are counted
  /// and sampled into PipelineStats::parse_diagnostics.
  Result<PipelineResult> Run(const log::QueryLog& raw_log) const;

  /// Executes the workflow with bounded memory: reads the raw log from
  /// `input_path` twice (pass 1 dedups + parses in batches of
  /// options().batch_size; pass 2 re-reads to solve + write), and emits
  /// the clean and removal logs straight to `clean_path`/`removal_path`.
  /// The output files and the returned statistics are byte-identical to
  /// Run() + LogIo::WriteFile of the same input at any batch size and
  /// thread count. The input file must be (timestamp, seq)-ordered and
  /// must not change between the passes. Streaming-mode restrictions
  /// (no extra_clean_passes, no custom rules) are validated up front.
  Result<StreamingRunResult> RunStreaming(const std::string& input_path,
                                          const std::string& clean_path,
                                          const std::string& removal_path) const;

 private:
  PipelineOptions options_;
  const catalog::Schema* schema_ = nullptr;
};

/// Fluent, validating construction of a Pipeline:
///
///   auto pipeline = core::PipelineBuilder()
///                       .WithSchema(&schema)
///                       .NumThreads(0)          // all hardware threads
///                       .ExtraCleanPasses(1)
///                       .Build();               // Result<Pipeline>
///   if (!pipeline.ok()) { ... }
///   auto result = pipeline->Run(raw);
class PipelineBuilder {
 public:
  PipelineBuilder() = default;

  PipelineBuilder& WithSchema(const catalog::Schema* schema) {
    schema_ = schema;
    return *this;
  }
  PipelineBuilder& WithDedup(DedupOptions dedup) {
    options_.dedup = dedup;
    return *this;
  }
  PipelineBuilder& WithMiner(MinerOptions miner) {
    options_.miner = miner;
    return *this;
  }
  PipelineBuilder& WithDetector(DetectorOptions detector) {
    options_.detector = std::move(detector);
    return *this;
  }
  /// Selects the detectors to run by registry id, in evaluation order
  /// (empty = the paper's default set). Ids are validated by Build().
  PipelineBuilder& Detectors(std::vector<std::string> ids) {
    options_.detector.detector_ids = std::move(ids);
    return *this;
  }
  PipelineBuilder& WithSws(SwsOptions sws) {
    options_.sws = sws;
    return *this;
  }
  PipelineBuilder& NumThreads(size_t num_threads) {
    options_.num_threads = num_threads;
    return *this;
  }
  PipelineBuilder& ExtraCleanPasses(size_t passes) {
    options_.extra_clean_passes = passes;
    return *this;
  }
  PipelineBuilder& UseUserMetadata(bool use) {
    options_.use_user_metadata = use;
    return *this;
  }
  PipelineBuilder& MinePatterns(bool mine) {
    options_.mine_patterns = mine;
    return *this;
  }
  PipelineBuilder& MaxParseDiagnostics(size_t max) {
    options_.max_parse_diagnostics = max;
    return *this;
  }
  PipelineBuilder& ParseCache(bool enabled) {
    options_.parse_cache = enabled;
    return *this;
  }
  PipelineBuilder& Streaming(bool streaming) {
    options_.streaming = streaming;
    return *this;
  }
  PipelineBuilder& BatchSize(size_t batch_size) {
    options_.batch_size = batch_size;
    return *this;
  }
  PipelineBuilder& InputFormat(log::LogFormat format) {
    options_.input_format = format;
    return *this;
  }
  PipelineBuilder& OutputFormat(log::LogFormat format) {
    options_.output_format = format;
    return *this;
  }

  /// Validates the accumulated options and returns the configured
  /// Pipeline, or the first validation error.
  Result<Pipeline> Build() const;

 private:
  PipelineOptions options_;
  const catalog::Schema* schema_ = nullptr;
};

}  // namespace sqlog::core

#endif  // SQLOG_CORE_PIPELINE_H_
