#ifndef SQLOG_CORE_DEDUP_H_
#define SQLOG_CORE_DEDUP_H_

#include <cstdint>

#include "log/record.h"
#include "util/thread_pool.h"

namespace sqlog::core {

/// Options for the duplicate-removal step (paper Sec. 5.2).
struct DedupOptions {
  /// Two identical statements from the same user count as one when the
  /// later one arrives within this window of the previous occurrence.
  int64_t threshold_ms = 1000;
  /// When true, the window is unlimited ("non restricted" row of
  /// Table 4): every repeat of an identical statement is a duplicate.
  bool unrestricted = false;
};

/// Outcome counters for the dedup step.
struct DedupStats {
  size_t input_count = 0;
  size_t removed_count = 0;
  size_t output_count = 0;
};

/// Removes duplicate statements: identical text, same user, within the
/// time threshold of the previous occurrence (chained — a burst of
/// reloads collapses to its first statement). The input is sorted by
/// time internally; the output preserves time order and is renumbered.
///
/// With a non-null `pool`, duplicate marking is sharded by user (every
/// (user, statement) chain lives wholly inside one user's record set, so
/// user partitioning cannot change which records are duplicates) and the
/// kept records are appended in a serial pass — the output is
/// byte-identical to the serial path.
log::QueryLog RemoveDuplicates(const log::QueryLog& input, const DedupOptions& options,
                               DedupStats* stats = nullptr,
                               util::ThreadPool* pool = nullptr);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_DEDUP_H_
