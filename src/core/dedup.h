#ifndef SQLOG_CORE_DEDUP_H_
#define SQLOG_CORE_DEDUP_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "log/arena.h"
#include "log/record.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace sqlog::core {

/// Options for the duplicate-removal step (paper Sec. 5.2).
struct DedupOptions {
  /// Two identical statements from the same user count as one when the
  /// later one arrives within this window of the previous occurrence.
  int64_t threshold_ms = 1000;
  /// When true, the window is unlimited ("non restricted" row of
  /// Table 4): every repeat of an identical statement is a duplicate.
  bool unrestricted = false;
  /// Test seam: overrides the (user, statement) key hash so collision
  /// handling can be exercised without crafting real 64-bit FNV
  /// collisions. Duplicate decisions must not change under any override
  /// — keys are always verified against the full stored strings.
  std::function<uint64_t(std::string_view user, std::string_view statement)>
      key_hash_for_test;
};

/// Outcome counters for the dedup step.
struct DedupStats {
  size_t input_count = 0;
  size_t removed_count = 0;
  size_t output_count = 0;
};

/// Removes duplicate statements: identical text, same user, within the
/// time threshold of the previous occurrence (chained — a burst of
/// reloads collapses to its first statement). The input is sorted by
/// time internally; the output preserves time order and is renumbered.
///
/// With a non-null `pool`, duplicate marking is sharded by user (every
/// (user, statement) chain lives wholly inside one user's record set, so
/// user partitioning cannot change which records are duplicates) and the
/// kept records are appended in a serial pass — the output is
/// byte-identical to the serial path.
log::QueryLog RemoveDuplicates(const log::QueryLog& input, const DedupOptions& options,
                               DedupStats* stats = nullptr,
                               util::ThreadPool* pool = nullptr);

/// Incremental duplicate detection for the streaming ingestion path:
/// records are offered one at a time in (timestamp, seq) order and
/// classified against a per-(user, statement) last-seen map that stores
/// the *full* key strings (interned once into an arena), so a 64-bit
/// hash collision can never flag a non-duplicate. Fed the time-sorted
/// record sequence, the decisions are exactly RemoveDuplicates's.
///
/// Memory is O(distinct (user, statement) pairs) — independent of log
/// length for the duplicate-heavy workloads the paper targets.
class StreamingDeduper {
 public:
  explicit StreamingDeduper(const DedupOptions& options);

  /// Classifies `record` and updates the chain state (the duplicate
  /// window chains on the last occurrence, duplicate or not).
  bool IsDuplicate(const log::LogRecord& record);

  /// Distinct (user, statement) keys seen.
  size_t distinct_keys() const { return distinct_keys_; }

  /// Records offered / flagged so far.
  uint64_t records_seen() const { return records_seen_; }
  uint64_t duplicates_seen() const { return duplicates_seen_; }

 private:
  struct Entry {
    std::string_view user;       // arena-owned
    std::string_view statement;  // arena-owned
    int64_t timestamp_ms = 0;
  };

  DedupOptions options_ SQLOG_CONST_AFTER_INIT;
  log::StringArena arena_ SQLOG_SHARD_LOCAL;
  /// key hash → entries (usually one; more only on a 64-bit collision).
  std::unordered_map<uint64_t, std::vector<Entry>> last_seen_ SQLOG_SHARD_LOCAL;
  size_t distinct_keys_ SQLOG_SHARD_LOCAL = 0;
  uint64_t records_seen_ SQLOG_SHARD_LOCAL = 0;
  uint64_t duplicates_seen_ SQLOG_SHARD_LOCAL = 0;
};

}  // namespace sqlog::core

#endif  // SQLOG_CORE_DEDUP_H_
