#ifndef SQLOG_CORE_DEDUP_H_
#define SQLOG_CORE_DEDUP_H_

#include <cstdint>

#include "log/record.h"

namespace sqlog::core {

/// Options for the duplicate-removal step (paper Sec. 5.2).
struct DedupOptions {
  /// Two identical statements from the same user count as one when the
  /// later one arrives within this window of the previous occurrence.
  int64_t threshold_ms = 1000;
  /// When true, the window is unlimited ("non restricted" row of
  /// Table 4): every repeat of an identical statement is a duplicate.
  bool unrestricted = false;
};

/// Outcome counters for the dedup step.
struct DedupStats {
  size_t input_count = 0;
  size_t removed_count = 0;
  size_t output_count = 0;
};

/// Removes duplicate statements: identical text, same user, within the
/// time threshold of the previous occurrence (chained — a burst of
/// reloads collapses to its first statement). The input is sorted by
/// time internally; the output preserves time order and is renumbered.
log::QueryLog RemoveDuplicates(const log::QueryLog& input, const DedupOptions& options,
                               DedupStats* stats = nullptr);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_DEDUP_H_
