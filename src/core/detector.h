#ifndef SQLOG_CORE_DETECTOR_H_
#define SQLOG_CORE_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rules.h"
#include "core/template_store.h"
#include "util/status.h"

namespace sqlog::catalog {
class Schema;
}  // namespace sqlog::catalog

namespace sqlog::core {

/// Antipattern classes implemented per Sec. 4.2 (Defs. 11-16).
///
/// Deprecated as a primary discriminator: instances now carry a detector
/// index into the DetectorSet that produced them, and new detectors all
/// share kCustom here. Use AntipatternInstance::detector plus
/// DetectorSet::info() for anything beyond the paper's six classes.
enum class AntipatternType {
  kDwStifle,      // Def. 12: same SELECT/FROM, different WHERE constants
  kDsStifle,      // Def. 13: same FROM/WHERE, different SELECT
  kDfStifle,      // Def. 14: different FROM, same WHERE
  kCthCandidate,  // Def. 15: dependent follow-up chain (candidate only)
  kSnc,           // Def. 16: searching nullable columns with = / <> NULL
  kCustom,        // any detector beyond the paper's five built-ins
};

/// One concrete occurrence: the member queries in log order.
struct AntipatternInstance {
  /// Index into the DetectorSet the report was produced with.
  uint32_t detector = 0;
  /// Legacy class of the producing detector (kCustom for everything
  /// outside the paper's five). Deprecated: prefer `detector`.
  AntipatternType type = AntipatternType::kDwStifle;
  std::vector<size_t> query_indices;  // indices into ParsedLog.queries
  /// Deprecated compat field: index into DetectorOptions::custom_rules
  /// when the producing detector is a custom-rule adapter, else -1.
  int custom_rule = -1;
  /// Optional per-instance annotations a detector may attach (e.g. the
  /// offending column names). Not part of any golden output.
  std::vector<std::string> detail;
};

/// Detector tuning.
struct DetectorOptions {
  /// Enforce Def. 11 axiom 3 (the filter column must be a key attribute,
  /// looked up in the schema catalog). Disabling it measures the
  /// false-positive cost the paper discusses.
  bool require_key_attribute = true;
  /// Queries of one instance must follow each other within this gap.
  int64_t max_gap_ms = 10 * 60 * 1000;
  /// Distinct candidates of min-support-filtered detectors (CTH) below
  /// this instance count are dropped (one-off organic coincidences).
  uint64_t cth_min_support = 3;
  /// Registry ids of the detectors to run, in evaluation order. Empty
  /// selects the paper's default set (DefaultDetectorIds()).
  std::vector<std::string> detector_ids;
  /// Deprecated compat path (Sec. 5.4 single-query rules). Each rule is
  /// wrapped in an adapter detector appended after `detector_ids`; new
  /// code should register a Detector subclass instead.
  std::vector<CustomRule> custom_rules;
};

/// Whether a detector evaluates queries one at a time or scans ordered
/// per-user segments for multi-query sequences.
enum class DetectorScope {
  kPerQuery,   // MatchQuery on every parsed query
  kSequence,   // ScanAt over gap-bounded per-user segments
};

/// Static metadata every registered detector must declare. A detector
/// cannot exist without a display name and a solvability declaration —
/// the registry rejects empty ids/names at registration time, which
/// replaces the old silently-incomplete AntipatternTypeName/IsSolvable
/// switches.
struct DetectorInfo {
  /// Stable registry id ("dw-stifle", "select-star", ...).
  std::string id;
  /// Human-readable name used in statistics and reports ("DW-Stifle").
  std::string display_name;
  /// One-line description for `sqlog report` and docs.
  std::string description;
  DetectorScope scope = DetectorScope::kPerQuery;
  /// True when the detector ships a deterministic rewrite.
  bool solvable = false;
  /// Sequence detectors sharing a scan_group run in one pass over each
  /// segment, tried in set order at every position with first-match-wins
  /// — the DW/DS/DF stifles share "stifle" to reproduce the paper's
  /// coupled classification. Empty = a pass of its own.
  std::string scan_group;
  /// Legacy AntipatternType stamped on instances (kCustom for new
  /// detectors); keeps type-based statistics and callers working.
  AntipatternType legacy_type = AntipatternType::kCustom;
  /// Deprecated compat: custom_rules index for adapter detectors.
  int custom_rule = -1;
  /// True when detection reads `facts.ast` (custom-rule adapters).
  /// Such detectors disable the parse cache and cannot run streaming.
  bool needs_ast = false;
  /// True when distinct groups below DetectorOptions::cth_min_support
  /// are dropped (the CTH support filter).
  bool min_support_filtered = false;
};

/// Read-only context handed to detector hooks.
struct DetectorContext {
  const ParsedLog& parsed;
  const catalog::Schema* schema = nullptr;  // may be null
  const DetectorOptions& options;
};

/// One gap-bounded slice of one user's time-ordered stream.
class SegmentView {
 public:
  SegmentView(const ParsedLog& parsed, const std::vector<size_t>& indices)
      : parsed_(parsed), indices_(indices) {}

  size_t size() const { return indices_.size(); }
  /// The parsed query at segment position `pos`.
  const ParsedQuery& at(size_t pos) const { return parsed_.queries[indices_[pos]]; }
  /// The ParsedLog.queries index at segment position `pos`.
  size_t query_index(size_t pos) const { return indices_[pos]; }

 private:
  const ParsedLog& parsed_;
  const std::vector<size_t>& indices_;
};

/// The plugin interface of the detection layer. Implementations declare
/// their metadata via info() and override the hook matching their scope;
/// solvable detectors also override Rewrite(). Register subclasses from
/// RegisterBuiltinDetectors (sqlog-lint R6 flags Detector subclasses
/// defined elsewhere under src/).
class Detector {
 public:
  virtual ~Detector() = default;

  virtual const DetectorInfo& info() const = 0;

  /// Per-query hook: returns true when `query` is a hit. The driver has
  /// pre-filled `instance` (detector index, legacy type, the single
  /// query index); the hook may attach detail entries.
  virtual bool MatchQuery(const ParsedQuery& query, const DetectorContext& ctx,
                          AntipatternInstance* instance) const {
    (void)query;
    (void)ctx;
    (void)instance;
    return false;
  }

  /// Sequence hook: attempts to start an instance at segment position
  /// `pos`; fills `instance->query_indices` and returns the number of
  /// positions consumed (0 = no instance, scan advances by one).
  virtual size_t ScanAt(const SegmentView& segment, size_t pos, const DetectorContext& ctx,
                        AntipatternInstance* instance) const {
    (void)segment;
    (void)pos;
    (void)ctx;
    (void)instance;
    return 0;
  }

  /// Produces the replacement statement for a solvable instance.
  /// `members` lists the member queries in instance order with ASTs
  /// restored. Default: Unsupported (detect-only).
  virtual Result<std::string> Rewrite(const AntipatternInstance& instance,
                                      const std::vector<const ParsedQuery*>& members) const {
    (void)instance;
    (void)members;
    return Status::Unsupported("detector has no solving rule");
  }
};

/// Process-wide id → detector table. Registration validates the metadata
/// contract (non-empty id and display_name, unique id).
class DetectorRegistry {
 public:
  /// The global registry, with the built-in detectors registered on
  /// first use (lazily — safe with static-archive linking, which drops
  /// TUs that are only reachable through static initializers).
  static DetectorRegistry& Global();

  /// Registers a detector. Must have a non-empty id and display_name and
  /// an id not already taken.
  Status Register(std::shared_ptr<const Detector> detector);

  /// Looks up a detector by id; nullptr when absent.
  std::shared_ptr<const Detector> Find(const std::string& id) const;

  /// All registered ids, in registration order.
  std::vector<std::string> Ids() const;

 private:
  std::vector<std::shared_ptr<const Detector>> order_;
  std::unordered_map<std::string, size_t> by_id_;
};

/// The paper's default detector set, in evaluation order.
const std::vector<std::string>& DefaultDetectorIds();

/// The resolved detector set of one pipeline run. Instances reference
/// detectors by index into this set; the report keeps the set alive so
/// metadata lookups never dangle.
class DetectorSet {
 public:
  /// Resolves `options.detector_ids` (empty → DefaultDetectorIds())
  /// against the global registry and appends one adapter per
  /// `options.custom_rules` entry. Unknown or duplicate ids are
  /// InvalidArgument.
  static Result<std::shared_ptr<const DetectorSet>> Resolve(const DetectorOptions& options);

  size_t size() const { return detectors_.size(); }
  const Detector& at(size_t index) const { return *detectors_[index]; }
  const DetectorInfo& info(size_t index) const { return detectors_[index]->info(); }

  /// Set index of the detector with this id, or -1.
  int IndexOf(const std::string& id) const;

  /// True when any member reads ASTs during detection — the parse cache
  /// must stay off and streaming mode refuses the set.
  bool AnyNeedsAst() const;

  /// Solvability of the instance's producing detector.
  bool Solvable(const AntipatternInstance& instance) const {
    return info(instance.detector).solvable;
  }

  /// Dispatches Rewrite to the instance's producing detector.
  Result<std::string> Rewrite(const AntipatternInstance& instance,
                              const std::vector<const ParsedQuery*>& members) const {
    return at(instance.detector).Rewrite(instance, members);
  }

 private:
  std::vector<std::shared_ptr<const Detector>> detectors_;
};

/// Registers the built-in detectors (the paper's five plus the
/// SQLCheck-derived additions) into `registry`. Called by
/// DetectorRegistry::Global(); exposed for tests building private
/// registries.
void RegisterBuiltinDetectors(DetectorRegistry& registry);

/// Wraps one legacy CustomRule as a per-query adapter detector with
/// id "custom-rule-<index>" (deprecated compat path).
std::shared_ptr<const Detector> MakeCustomRuleDetector(const CustomRule& rule, int index);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_DETECTOR_H_
