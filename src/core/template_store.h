#ifndef SQLOG_CORE_TEMPLATE_STORE_H_
#define SQLOG_CORE_TEMPLATE_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/parse_cache.h"
#include "log/record.h"
#include "sql/skeleton.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace sqlog::core {

/// Interned query template with usage statistics (Defs. 9-10).
struct TemplateInfo {
  uint64_t id = 0;
  sql::QueryTemplate tmpl;
  uint64_t frequency = 0;                 // occurrences in the parsed log
  std::unordered_set<uint32_t> users;     // interned user ids
  size_t first_query = 0;                 // index of first ParsedQuery

  size_t user_popularity() const { return users.size(); }
};

/// One successfully parsed SELECT of the log.
struct ParsedQuery {
  size_t record_index = 0;   // index into the pre-clean log
  int64_t timestamp_ms = 0;
  uint32_t user_id = 0;      // interned; 0 is the anonymous user
  int64_t row_count = -1;
  sql::QueryFacts facts;
  uint64_t template_id = 0;
};

/// One per-record parse failure, kept as a diagnostic instead of being
/// silently dropped. `record_index`/`record_seq` locate the offending
/// statement in the (deduplicated) input log.
struct ParseDiagnostic {
  size_t record_index = 0;
  uint64_t record_seq = 0;
  std::string message;  // the parser's Status message
};

/// Parse-step outcome (paper Sec. 5.3): parsed SELECTs with assigned
/// templates, plus counts of what was dropped.
struct ParsedLog {
  std::vector<ParsedQuery> queries;
  size_t non_select_count = 0;
  size_t syntax_error_count = 0;

  /// The first `max_diagnostics` parse failures in record order
  /// (`syntax_error_count` still counts them all).
  std::vector<ParseDiagnostic> diagnostics;

  /// Per-user streams: indices into `queries`, time-ordered. Stream 0 is
  /// the anonymous user (empty user field).
  std::vector<std::vector<size_t>> user_streams;
  std::vector<std::string> user_names;  // user_names[user_id]

  /// Parse-avoidance counters. Hit/miss splits depend on sharding, so
  /// these are reported separately and never enter the golden-compared
  /// statistics table; the queries/diagnostics above are byte-identical
  /// with the cache on, off, or absent.
  ParseStats parse_stats;
};

/// Configures the template fingerprint cache used by ParseLog /
/// StreamingParser. Results are byte-identical with the cache on or off;
/// only the work done per statement changes.
struct ParseCacheOptions {
  bool enabled = true;
  /// Test seam forwarded to every cache this parse creates (forces
  /// fingerprint collisions; see ParseCache::set_fingerprint_for_test).
  ParseCache::FingerprintFn fingerprint_for_test;
};

/// Interns templates and users and tracks per-template statistics.
class TemplateStore {
 public:
  TemplateStore();

  /// Interns a template, returning its id (stable for equal templates).
  uint64_t Intern(const sql::QueryTemplate& tmpl, size_t query_index);

  /// Records one occurrence by `user_id` for template `id`.
  void RecordUse(uint64_t id, uint32_t user_id);

  /// Merge hook for the sharded parse: folds `frequency` occurrences and
  /// a shard's local user-id set (translated through `user_map`) into
  /// template `id` — the same aggregate per-query RecordUse calls would
  /// have built serially.
  void MergeUses(uint64_t id, uint64_t frequency,
                 const std::unordered_set<uint32_t>& local_users,
                 const std::vector<uint32_t>& user_map);

  const TemplateInfo& Get(uint64_t id) const { return templates_[id]; }
  size_t size() const { return templates_.size(); }
  const std::vector<TemplateInfo>& templates() const { return templates_; }

  /// Interns a user name; empty names map to user id 0.
  uint32_t InternUser(const std::string& user);
  const std::vector<std::string>& user_names() const { return user_names_; }

 private:
  std::vector<TemplateInfo> templates_ SQLOG_SHARD_LOCAL;
  std::unordered_map<uint64_t, std::vector<uint64_t>> by_fingerprint_ SQLOG_SHARD_LOCAL;
  std::vector<std::string> user_names_ SQLOG_SHARD_LOCAL;
  std::unordered_map<std::string, uint32_t> user_ids_ SQLOG_SHARD_LOCAL;
};

/// Runs the parse step over a (deduplicated) log: classifies statements,
/// drops non-SELECTs (counting syntax errors as diagnostics, capped at
/// `max_diagnostics`), analyzes the rest, interns templates, and builds
/// per-user time-ordered streams.
///
/// With a non-null `pool`, parse + skeletonize is sharded over
/// contiguous record ranges into per-shard TemplateStores, then merged
/// into `store` by canonical skeleton key in shard order — which visits
/// queries in exactly the serial order, so template ids, user ids, and
/// every statistic are byte-identical to the serial path.
/// With `cache_options.enabled`, each shard carries a template
/// fingerprint cache: statements whose normalized token stream was seen
/// before skip the parser entirely and have their facts rendered from
/// the cached template's recipes. The output is byte-identical either
/// way; only `parse_stats` differs.
ParsedLog ParseLog(const log::QueryLog& log, TemplateStore& store,
                   util::ThreadPool* pool = nullptr, size_t max_diagnostics = 0,
                   const ParseCacheOptions& cache_options = {});

/// Batch-incremental flavour of ParseLog for the streaming ingestion
/// path: feed the deduplicated records batch by batch (in pre-clean
/// order), then Finish(). Produces the identical ParsedLog/TemplateStore
/// a single ParseLog call over the concatenated records would — template
/// ids, user ids, first_query indices, diagnostics, and user streams are
/// all byte-stable against the in-memory path at any batch size.
///
/// To keep peak memory bounded by batch size, each query's `facts.ast`
/// is released once its template is interned — the detector and miner
/// never touch ASTs, and the streaming solver re-parses the few
/// statements it must rewrite. Everything else in QueryFacts (clause
/// texts, predicates) is retained, so detection is unaffected.
class StreamingParser {
 public:
  /// Diagnostics are capped at `max_diagnostics` like ParseLog. With a
  /// non-null `pool`, each batch is parsed with the same sharded
  /// map-reduce as ParseLog. The parse cache persists across batches:
  /// shards read it concurrently (it is frozen while they run) and the
  /// templates they discover are merged back in deterministic shard
  /// order after each batch.
  StreamingParser(TemplateStore& store, size_t max_diagnostics = 0,
                  util::ThreadPool* pool = nullptr,
                  const ParseCacheOptions& cache_options = {});

  /// Seeds the persistent cache with pre-built entries (deserialized
  /// from a `.sqb` dictionary) before the first batch. Entries whose key
  /// is already cached are dropped; each kept entry is stamped with this
  /// cache's fingerprint function. No-op when the cache is disabled.
  /// Records whose templates are all seeded then parse with zero full
  /// parses — hits and failure short-circuits only.
  ///
  /// The list's order is remembered as the dictionary-ordinal table for
  /// the zero-lex fast path: position i (null entries included) answers
  /// for RecordShape::template_ordinal == i in shaped FeedBatch calls.
  void SeedCache(std::vector<std::unique_ptr<ParseCacheEntry>> entries);

  /// Parses one batch of records appended at the current pre-clean
  /// position (records_fed() before the call).
  ///
  /// `shapes` (optional) holds one log::RecordShape per record (a longer
  /// pooled vector is fine; the tail is ignored), as produced by
  /// BinLogReader::last_shape(). A record whose shape names
  /// a seeded, cacheable dictionary ordinal skips lexing and
  /// fingerprinting entirely — its facts render straight from the
  /// constant spans (DeriveSlotTexts), and a seeded parse *failure*
  /// short-circuits to a syntax-error count once the diagnostics quota
  /// is exhausted. Everything else (verbatim records, unseeded or
  /// uncacheable templates, open diagnostics quota) falls through to the
  /// regular cached path, so results are byte-identical with or without
  /// shapes at any thread count.
  void FeedBatch(const std::vector<log::LogRecord>& records,
                 const std::vector<log::RecordShape>* shapes = nullptr);

  /// Capacity hint: reserve for `n` total queries up front. Readers that
  /// know the record count (`.sqb` carries it in the footer) use this to
  /// spare the accumulated-query vector its geometric realloc moves —
  /// ParsedQuery is a fat object, so those moves are measurable.
  void ReserveQueries(size_t n);

  /// Builds the per-user streams and returns the accumulated log. The
  /// parser must not be fed afterwards.
  ParsedLog Finish();

  /// Pre-clean records fed so far (= the record_index of the next one).
  size_t records_fed() const { return records_fed_; }

 private:
  TemplateStore& store_ SQLOG_SHARD_LOCAL;
  size_t max_diagnostics_ SQLOG_CONST_AFTER_INIT;
  util::ThreadPool* pool_ SQLOG_CONST_AFTER_INIT;
  ParseCacheOptions cache_options_ SQLOG_CONST_AFTER_INIT;
  /// Persistent across batches: frozen (const reads only) while shards
  /// are in flight, mutated between batches on the feeding thread.
  ParseCache cache_ SQLOG_SHARD_LOCAL;
  /// Dictionary ordinal → seeded cache entry (null: parse that one).
  /// Built by SeedCache, read concurrently by shards like cache_.
  std::vector<const ParseCacheEntry*> seed_by_ordinal_ SQLOG_SHARD_LOCAL;
  ParsedLog parsed_ SQLOG_SHARD_LOCAL;
  size_t records_fed_ SQLOG_SHARD_LOCAL = 0;
};

}  // namespace sqlog::core

#endif  // SQLOG_CORE_TEMPLATE_STORE_H_
