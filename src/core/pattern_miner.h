#ifndef SQLOG_CORE_PATTERN_MINER_H_
#define SQLOG_CORE_PATTERN_MINER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/template_store.h"

namespace sqlog::core {

/// Options for the pattern-mining step.
struct MinerOptions {
  /// Longest template sequence mined (Def. 7 patterns are sequences;
  /// the case study's interesting ones are short).
  size_t max_length = 4;
  /// Patterns below this instance count are dropped from the report.
  uint64_t min_support = 2;
  /// Two consecutive queries belong to the same pattern instance only
  /// when issued within this gap ("short time between them").
  int64_t max_gap_ms = 10 * 60 * 1000;
};

/// A mined pattern: a sequence of template ids plus statistics.
struct Pattern {
  std::vector<uint64_t> template_ids;
  uint64_t frequency = 0;                  // instance count (Def. 9)
  std::unordered_set<uint32_t> users;      // for userPopularity (Def. 10)
  size_t sample_query = 0;                 // a ParsedQuery index starting one instance

  size_t user_popularity() const { return users.size(); }
  size_t length() const { return template_ids.size(); }
  /// Total statements covered: frequency × length.
  uint64_t covered_statements() const { return frequency * template_ids.size(); }
};

/// Mines patterns from per-user streams. Length-1 pattern frequency is
/// the plain occurrence count of the template. Longer patterns are
/// counted over non-overlapping instances, and a longer pattern is
/// reported only when it is not a trivial self-repetition (e.g. (A,A) is
/// subsumed by (A)) — keeping the report aligned with the paper's
/// pattern tables while CTH detection still sees all pairs.
///
/// With a non-null `pool`, mining is sharded over contiguous user-id
/// ranges (Defs. 7-10 are per-user, so user partitioning is lossless)
/// and the per-shard accumulators are merged in ascending shard order.
/// The returned set of patterns — frequencies, user sets, sample
/// queries — is identical to the serial path; only the order of the
/// returned vector is unspecified until SortByFrequency (a strict total
/// order) is applied, as the pipeline always does.
std::vector<Pattern> MinePatterns(const ParsedLog& parsed, const MinerOptions& options,
                                  util::ThreadPool* pool = nullptr);

/// Sorts patterns by frequency (descending), tie-broken by length then
/// template ids, and returns the result (ranks of Sec. 6.5).
void SortByFrequency(std::vector<Pattern>& patterns);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_PATTERN_MINER_H_
