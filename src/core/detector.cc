#include "core/detector.h"

#include <utility>

#include "util/string_util.h"

namespace sqlog::core {

DetectorRegistry& DetectorRegistry::Global() {
  // Lazy function-local instance: the built-ins are registered on first
  // use instead of via static initializers, which a static-archive link
  // would silently drop together with their TU.
  static DetectorRegistry* registry = [] {
    auto* r = new DetectorRegistry();
    RegisterBuiltinDetectors(*r);
    return r;
  }();
  return *registry;
}

Status DetectorRegistry::Register(std::shared_ptr<const Detector> detector) {
  if (detector == nullptr) return Status::InvalidArgument("null detector");
  const DetectorInfo& info = detector->info();
  if (info.id.empty()) return Status::InvalidArgument("detector id must not be empty");
  if (info.display_name.empty()) {
    return Status::InvalidArgument(
        StrFormat("detector '%s' must declare a display name", info.id.c_str()));
  }
  if (by_id_.count(info.id) != 0) {
    return Status::AlreadyExists(
        StrFormat("detector id '%s' is already registered", info.id.c_str()));
  }
  by_id_.emplace(info.id, order_.size());
  order_.push_back(std::move(detector));
  return Status::OK();
}

std::shared_ptr<const Detector> DetectorRegistry::Find(const std::string& id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  return order_[it->second];
}

std::vector<std::string> DetectorRegistry::Ids() const {
  std::vector<std::string> ids;
  ids.reserve(order_.size());
  for (const auto& detector : order_) ids.push_back(detector->info().id);
  return ids;
}

const std::vector<std::string>& DefaultDetectorIds() {
  static const std::vector<std::string>* ids = new std::vector<std::string>{
      "dw-stifle", "ds-stifle", "df-stifle", "cth", "snc"};
  return *ids;
}

Result<std::shared_ptr<const DetectorSet>> DetectorSet::Resolve(
    const DetectorOptions& options) {
  const std::vector<std::string>& ids =
      options.detector_ids.empty() ? DefaultDetectorIds() : options.detector_ids;
  auto set = std::make_shared<DetectorSet>();
  std::unordered_map<std::string, size_t> seen;
  DetectorRegistry& registry = DetectorRegistry::Global();
  for (const auto& id : ids) {
    if (!seen.emplace(id, set->detectors_.size()).second) {
      return Status::InvalidArgument(
          StrFormat("detector id '%s' listed twice", id.c_str()));
    }
    std::shared_ptr<const Detector> detector = registry.Find(id);
    if (detector == nullptr) {
      return Status::InvalidArgument(StrFormat("unknown detector id '%s'", id.c_str()));
    }
    set->detectors_.push_back(std::move(detector));
  }
  for (size_t r = 0; r < options.custom_rules.size(); ++r) {
    set->detectors_.push_back(
        MakeCustomRuleDetector(options.custom_rules[r], static_cast<int>(r)));
  }
  return std::shared_ptr<const DetectorSet>(std::move(set));
}

int DetectorSet::IndexOf(const std::string& id) const {
  for (size_t i = 0; i < detectors_.size(); ++i) {
    if (detectors_[i]->info().id == id) return static_cast<int>(i);
  }
  return -1;
}

bool DetectorSet::AnyNeedsAst() const {
  for (const auto& detector : detectors_) {
    if (detector->info().needs_ast) return true;
  }
  return false;
}

}  // namespace sqlog::core
