#include "core/pattern_miner.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"

namespace sqlog::core {

namespace {

uint64_t KeyOf(const std::vector<uint64_t>& ids, size_t begin, size_t len) {
  uint64_t h = 0x9ae16a3b2f90404fULL + len;
  for (size_t i = 0; i < len; ++i) {
    h = HashCombine(h, ids[begin + i] + 0x9e3779b97f4a7c15ULL);
  }
  return h;
}

/// True when the window [begin, begin+len) is a repetition of a shorter
/// prefix period (e.g. A A, or A B A B). Such windows are subsumed by
/// the shorter pattern and excluded from the report.
bool IsSelfRepetition(const std::vector<uint64_t>& ids, size_t begin, size_t len) {
  for (size_t period = 1; period <= len / 2; ++period) {
    if (len % period != 0) continue;
    bool repeats = true;
    for (size_t i = period; i < len && repeats; ++i) {
      repeats = ids[begin + i] == ids[begin + i - period];
    }
    if (repeats) return true;
  }
  return false;
}

/// Accumulator per distinct sequence.
struct Acc {
  std::vector<uint64_t> template_ids;
  uint64_t frequency = 0;
  std::unordered_set<uint32_t> users;
  size_t sample_query = 0;
  size_t last_end = 0;        // non-overlap bookkeeping within one segment
  uint64_t last_segment = 0;  // segment the last_end belongs to
  bool has_last = false;
};

using AccMap = std::unordered_map<uint64_t, Acc>;

/// Mines the streams of users [user_begin, user_end) into `accs`.
/// Segment serials only disambiguate segments *within* one AccMap, so a
/// per-call counter is enough.
void MineUserRange(const ParsedLog& parsed, const MinerOptions& options,
                   uint32_t user_begin, uint32_t user_end, AccMap& accs) {
  uint64_t segment_serial = 0;

  for (uint32_t user_id = user_begin; user_id < user_end; ++user_id) {
    const auto& stream = parsed.user_streams[user_id];
    if (stream.empty()) continue;

    // Split the stream into gap-bounded segments, then mine windows.
    std::vector<uint64_t> segment_ids;
    std::vector<size_t> segment_queries;
    auto flush = [&]() {
      const size_t n = segment_ids.size();
      for (size_t len = 1; len <= options.max_length && len <= n; ++len) {
        for (size_t begin = 0; begin + len <= n; ++begin) {
          if (len > 1 && IsSelfRepetition(segment_ids, begin, len)) continue;
          uint64_t key = KeyOf(segment_ids, begin, len);
          auto [it, inserted] = accs.try_emplace(key);
          Acc& acc = it->second;
          if (inserted) {
            acc.template_ids.assign(segment_ids.begin() + begin,
                                    segment_ids.begin() + begin + len);
            acc.sample_query = segment_queries[begin];
          }
          // Non-overlapping instance counting within one segment.
          if (len > 1 && acc.has_last && acc.last_segment == segment_serial &&
              begin < acc.last_end) {
            continue;
          }
          ++acc.frequency;
          acc.users.insert(user_id);
          acc.last_end = begin + len;
          acc.last_segment = segment_serial;
          acc.has_last = true;
        }
      }
      segment_ids.clear();
      segment_queries.clear();
      ++segment_serial;
    };

    int64_t prev_time = 0;
    for (size_t idx : stream) {
      const ParsedQuery& query = parsed.queries[idx];
      if (!segment_ids.empty() && query.timestamp_ms - prev_time > options.max_gap_ms) {
        flush();
      }
      segment_ids.push_back(query.template_id);
      segment_queries.push_back(idx);
      prev_time = query.timestamp_ms;
    }
    flush();
  }
}

}  // namespace

std::vector<Pattern> MinePatterns(const ParsedLog& parsed, const MinerOptions& options,
                                  util::ThreadPool* pool) {
  const size_t user_count = parsed.user_streams.size();
  size_t num_shards = 1;
  if (pool != nullptr && pool->size() > 0) {
    num_shards = std::min(user_count, pool->size() + 1);
    if (num_shards == 0) num_shards = 1;
  }

  AccMap accs;
  if (num_shards <= 1) {
    MineUserRange(parsed, options, 0, static_cast<uint32_t>(user_count), accs);
  } else {
    // Map: mine each contiguous user-id range into its own accumulator.
    std::vector<AccMap> shard_accs = util::MapShards<AccMap>(
        pool, user_count, num_shards, [&](size_t, size_t begin, size_t end) {
          AccMap local;
          MineUserRange(parsed, options, static_cast<uint32_t>(begin),
                        static_cast<uint32_t>(end), local);
          return local;
        });
    // Reduce in ascending shard order: frequencies add, user sets union,
    // and the first (lowest-user) shard holding a key provides its
    // template_ids/sample_query — exactly what the serial pass, which
    // visits users in ascending order, would have recorded.
    accs = std::move(shard_accs[0]);
    for (size_t shard = 1; shard < shard_accs.size(); ++shard) {
      for (auto& [key, acc] : shard_accs[shard]) {
        auto [it, inserted] = accs.try_emplace(key);
        if (inserted) {
          it->second = std::move(acc);
          continue;
        }
        it->second.frequency += acc.frequency;
        it->second.users.insert(acc.users.begin(), acc.users.end());
      }
    }
  }

  std::vector<Pattern> patterns;
  patterns.reserve(accs.size());
  for (auto& [key, acc] : accs) {
    (void)key;
    if (acc.frequency < options.min_support) continue;
    Pattern pattern;
    pattern.template_ids = std::move(acc.template_ids);
    pattern.frequency = acc.frequency;
    pattern.users = std::move(acc.users);
    pattern.sample_query = acc.sample_query;
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

void SortByFrequency(std::vector<Pattern>& patterns) {
  std::sort(patterns.begin(), patterns.end(), [](const Pattern& a, const Pattern& b) {
    if (a.frequency != b.frequency) return a.frequency > b.frequency;
    if (a.template_ids.size() != b.template_ids.size()) {
      return a.template_ids.size() < b.template_ids.size();
    }
    return a.template_ids < b.template_ids;
  });
}

}  // namespace sqlog::core
