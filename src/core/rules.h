#ifndef SQLOG_CORE_RULES_H_
#define SQLOG_CORE_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "core/template_store.h"
#include "util/status.h"

namespace sqlog::core {

/// A pluggable single-query antipattern rule — the Sec. 5.4 extension
/// point ("one first comes up with a formal definition, … provides a
/// detection rule and, if possible, a solving solution").
///
/// `detect` is evaluated on every parsed query; a hit becomes an
/// antipattern instance of type kCustom tagged with the rule's index.
/// When `rewrite` is set, the solver replaces the statement with the
/// rewrite (like SNC); otherwise the rule is detect-only (annotated in
/// the clean log, dropped from the removal log, like CTH).
struct CustomRule {
  std::string name;
  std::function<bool(const ParsedQuery&)> detect;
  std::function<Result<std::string>(const ParsedQuery&)> rewrite;  // may be empty

  bool solvable() const { return static_cast<bool>(rewrite); }
};

/// Karwin-style "implicit columns": `SELECT *` hides schema coupling and
/// retrieves unneeded data. Detect-only.
CustomRule MakeSelectStarRule();

/// Unbounded full-table reads: no WHERE and no TOP. Detect-only — the
/// machine-download smell an operator may want to follow up on.
CustomRule MakeMissingWhereRule();

/// The SNC rule of Def. 16 re-expressed through the extension point;
/// behaviourally equivalent to the built-in detector+solver (used by
/// tests to validate the extension machinery).
CustomRule MakeSncRule();

}  // namespace sqlog::core

#endif  // SQLOG_CORE_RULES_H_
