#ifndef SQLOG_CORE_PARSE_CACHE_H_
#define SQLOG_CORE_PARSE_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sql/fingerprint.h"
#include "sql/skeleton.h"
#include "sql/token.h"
#include "util/thread_annotations.h"

namespace sqlog::core {

/// Counters for the parse-avoidance path. Hit/miss splits depend on how
/// records were sharded across threads, so these never enter the
/// golden-compared statistics table — they are reported in their own
/// CLI section.
struct ParseStats {
  /// Statements that ran the full parser (cache off, cache misses,
  /// uncacheable templates, and failure-diagnostic re-parses).
  uint64_t full_parses = 0;
  /// Statements whose facts were rendered from a cached template.
  uint64_t cache_hits = 0;
  /// Fingerprint lookups that missed (an entry was built).
  uint64_t cache_misses = 0;
  /// Hits on templates whose recipe could not be validated — correct
  /// results, but the statement still pays a full parse.
  uint64_t uncacheable_hits = 0;
  /// Statements short-circuited by a cached parse failure (no re-parse
  /// was needed for a diagnostic message).
  uint64_t failure_hits = 0;
  /// Cache entries retained at the end of the run, and their
  /// approximate footprint (the memory bound on cached facts).
  uint64_t templates_cached = 0;
  uint64_t cache_bytes = 0;

  /// Sums the per-statement counters (not the end-of-run cache gauges).
  void Merge(const ParseStats& other) {
    full_parses += other.full_parses;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    uncacheable_hits += other.uncacheable_hits;
    failure_hits += other.failure_hits;
  }

  uint64_t parses_avoided() const { return cache_hits + failure_hits; }
};

/// One cached template: everything needed to reproduce the QueryFacts of
/// any statement whose normalized token key matches, without parsing.
///
/// Per-record facts are rebuilt from *recipes*: each concrete clause is
/// stored as constant text pieces with literal slots between them, and
/// each predicate as its template-constant base plus slot references for
/// its values. Slot texts come from the statement's own tokens, so a
/// rendered QueryFacts is byte-identical to what a full parse would
/// produce — validated once, when the entry is built, against the full
/// parse that built it.
struct ParseCacheEntry {
  sql::TokenFingerprint fingerprint;
  /// The full normalized key. Looked up entries are verified against it
  /// byte-for-byte, so a 128-bit collision degrades to a comparison
  /// instead of merging distinct templates.
  std::string key;

  /// False for cached parse *failures*: same key ⇒ the parser fails the
  /// same way (it never branches on placeholdered literal text), so the
  /// statement can be counted as a syntax error without re-parsing.
  bool parse_ok = false;
  /// True once the recipes below were built and validated. When false on
  /// a successful parse, every hit falls back to a full parse (correct,
  /// just not accelerated) — e.g. multi-branch simple-form CASE, whose
  /// normalization duplicates literals.
  bool cacheable = false;

  // --- template-constant facts (valid when cacheable) ---
  sql::QueryTemplate tmpl;
  bool where_conjunctive = true;
  bool selects_star = false;
  int from_item_count = 0;
  std::vector<std::string> selected_columns;
  std::vector<std::string> tables;
  std::vector<std::string> table_functions;

  /// One slot per placeholdered source token (see
  /// sql::PlaceholderedTokenIndices); slot j renders from token j.
  struct Slot {
    bool is_string = false;  // render quoted with '' escaping
    bool negated = false;    // parser folded a structural '-' into the literal
  };
  std::vector<Slot> slots;

  /// Clause recipe: pieces.size() == slot_refs.size() + 1 and the clause
  /// renders as pieces[0] slot[refs[0]] pieces[1] ... pieces[n].
  struct Clause {
    std::vector<std::string> pieces;
    std::vector<uint32_t> slot_refs;
  };
  Clause sc;
  Clause fc;
  Clause wc;

  /// One predicate value: either a slot reference or fixed text
  /// (variables and NULL literals do not vary per record).
  struct ValueRef {
    bool is_slot = false;
    uint32_t slot = 0;
    std::string fixed;
  };
  struct PredTemplate {
    sql::Predicate base;  // values left empty; filled per record
    std::vector<ValueRef> values;
  };
  std::vector<PredTemplate> predicates;

  /// Approximate heap footprint, for the cache memory gauge.
  size_t bytes() const;
};

/// Fingerprint-keyed template cache. NOT thread-safe: each parse shard
/// owns a private cache; the streaming parser's persistent cache is only
/// read (const Find) while shards are in flight and mutated after they
/// join. Entries are kept in insertion order so merging shard caches
/// into a persistent one is deterministic.
class ParseCache {
 public:
  using FingerprintFn = std::function<sql::TokenFingerprint(std::string_view)>;

  ParseCache() = default;
  ParseCache(const ParseCache&) = delete;
  ParseCache& operator=(const ParseCache&) = delete;
  ParseCache(ParseCache&&) = default;
  ParseCache& operator=(ParseCache&&) = default;

  /// Test seam (same pattern as dedup's key hash): replaces the
  /// fingerprint function so collisions can be forced. Cache *decisions*
  /// — which statements share a template — must not change under any
  /// override, because entries are verified by full key comparison.
  void set_fingerprint_for_test(FingerprintFn fn) { fingerprint_fn_ = std::move(fn); }
  const FingerprintFn& fingerprint_for_test() const { return fingerprint_fn_; }

  sql::TokenFingerprint Fingerprint(std::string_view key) const {
    return fingerprint_fn_ ? fingerprint_fn_(key) : sql::FingerprintKey(key);
  }

  /// Returns the entry with this exact key, or null. Entries whose
  /// fingerprint matches but whose key differs (a hash collision) are
  /// skipped — they live side by side in the same bucket.
  const ParseCacheEntry* Find(const sql::TokenFingerprint& fp, std::string_view key) const;

  /// Inserts an entry (the key must not already be present) and returns
  /// a stable pointer to it.
  const ParseCacheEntry* Insert(std::unique_ptr<ParseCacheEntry> entry);

  /// Drains the cache, returning the entries in insertion order (used to
  /// promote shard caches into the streaming parser's persistent cache
  /// in deterministic shard order).
  std::vector<std::unique_ptr<ParseCacheEntry>> TakeEntries();

  size_t size() const { return order_.size(); }
  size_t bytes() const { return bytes_; }

 private:
  std::unordered_map<uint64_t, std::vector<std::unique_ptr<ParseCacheEntry>>> buckets_
      SQLOG_SHARD_LOCAL;
  std::vector<ParseCacheEntry*> order_ SQLOG_SHARD_LOCAL;
  size_t bytes_ SQLOG_SHARD_LOCAL = 0;
  FingerprintFn fingerprint_fn_ SQLOG_SHARD_LOCAL;
};

/// Builds and validates the recipes of `entry` from a successful full
/// parse: `facts` (with its AST), the statement's token stream, and the
/// predicate value expressions recorded by Analyze. Sets
/// `entry.cacheable` on success. On any validation mismatch the entry is
/// left uncacheable — hits then take the full parse path, so an
/// unanticipated printer/parser corner can cost performance but never
/// correctness.
void BuildRecipes(const sql::TokenStream& tokens, const sql::QueryFacts& facts,
                  const std::vector<const sql::Expr*>& predicate_value_exprs,
                  ParseCacheEntry& entry);

/// Renders the QueryFacts of a statement from a cacheable entry and the
/// statement's own tokens. The result carries no AST (facts.ast is
/// null); consumers that need one re-parse on demand. Requires
/// entry.cacheable and a token stream whose normalized key equals
/// entry.key.
sql::QueryFacts RenderFacts(const ParseCacheEntry& entry, const sql::TokenStream& tokens);

/// RenderFacts flavour taking pre-rendered slot texts (one per entry
/// slot, each already in canonical printer form — quoted strings, '-'
/// folded back into negated numbers). The zero-lex `.sqb` ingest path
/// derives these from a record's constant spans via DeriveSlotTexts.
sql::QueryFacts RenderFactsFromSlotTexts(const ParseCacheEntry& entry,
                                         const std::vector<std::string>& slot_texts);

/// Derives a record's slot texts straight from its `.sqb` constant spans
/// (log::RecordShape) — no lexing. `constants` holds one (offset, size)
/// range into `statement` per entry slot, in order. BinLogWriter only
/// emits a template reference when every span is the canonical rendering
/// of its literal, so for writer-produced files the result is
/// byte-identical to RenderFacts over the lexed tokens. Returns false
/// (contents of *slot_texts unspecified) when a span is out of bounds or
/// a string span is not a well-formed quoted literal — a hand-crafted
/// file; callers then fall back to the lexing path.
bool DeriveSlotTexts(const ParseCacheEntry& entry, const std::string& statement,
                     const std::vector<std::pair<uint32_t, uint32_t>>& constants,
                     std::vector<std::string>* slot_texts);

/// Serializes `entry` into the opaque recipe blob stored in `.sqb`
/// dictionary sections (log/binlog.h). The encoding is versioned and
/// self-contained; DeserializeStatementRecipe rejects anything it cannot
/// fully validate, so a stale or corrupt recipe degrades to parsing,
/// never to wrong facts.
std::string SerializeParseCacheEntry(const ParseCacheEntry& entry);

/// Lexes, classifies and parses `statement`, builds its cache entry the
/// same way the parse shards do, and returns the serialized recipe.
/// Returns "" for statements that carry no useful recipe (non-SELECTs
/// and statements that do not lex) — BinLogWriter stores the empty blob
/// and readers simply parse those templates. This is the
/// BinLogWriterOptions::recipe_builder implementation.
std::string BuildStatementRecipe(const std::string& statement);

/// Deserializes one dictionary recipe and validates it against the
/// template text it rode in with: the text must lex, its normalized key
/// must equal the recipe's key, and (for cacheable recipes) its
/// placeholdered-token count must equal the slot count. Returns null on
/// empty, malformed, version-mismatched or non-validating input —
/// callers skip the entry and fall back to parsing. The entry's
/// fingerprint is left zero; the seeding cache stamps it with its own
/// fingerprint function (so the test seam keeps working).
std::unique_ptr<ParseCacheEntry> DeserializeStatementRecipe(std::string_view template_text,
                                                            std::string_view recipe);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_PARSE_CACHE_H_
