#ifndef SQLOG_CORE_SWS_H_
#define SQLOG_CORE_SWS_H_

#include <cstdint>
#include <vector>

#include "core/pattern_miner.h"

namespace sqlog::core {

/// Thresholds for sliding-window-search detection (Sec. 6.5): a pattern
/// is SWS when it is frequent (relative to the parsed log size) yet
/// comes from very few users — the signature of a machine download.
struct SwsOptions {
  /// Minimum frequency as a fraction of the parsed log (Table 8 columns
  /// use 10%, 1%, 0.1%, 0.01%).
  double frequency_fraction = 0.001;
  /// Maximum userPopularity (Table 8 rows use 1, 2, 4, 8, 16).
  size_t max_user_popularity = 1;
};

/// One detected SWS pattern.
struct SwsPattern {
  size_t pattern_index = 0;   // into the mined pattern vector
  uint64_t covered_queries = 0;
};

/// SWS detection result.
struct SwsReport {
  std::vector<SwsPattern> patterns;
  uint64_t covered_queries = 0;
  /// covered_queries / parsed-log size — one cell of Table 8.
  double coverage = 0.0;
};

/// Applies the thresholds to mined patterns. `parsed_query_count` is the
/// number of parsed SELECTs the frequencies were counted over.
SwsReport DetectSws(const std::vector<Pattern>& patterns, size_t parsed_query_count,
                    const SwsOptions& options);

}  // namespace sqlog::core

#endif  // SQLOG_CORE_SWS_H_
