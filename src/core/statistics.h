#ifndef SQLOG_CORE_STATISTICS_H_
#define SQLOG_CORE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/antipattern.h"
#include "core/dedup.h"
#include "core/solver.h"

namespace sqlog::core {

/// The pipeline's results-overview statistics — the direct analogue of
/// the paper's Table 5.
struct PipelineStats {
  uint64_t original_size = 0;        // raw statements in
  uint64_t select_count = 0;         // SELECTs surviving classification+parse
  uint64_t non_select_count = 0;
  uint64_t syntax_error_count = 0;
  uint64_t after_dedup_size = 0;     // statements after duplicate removal
  uint64_t duplicates_removed = 0;
  uint64_t final_size = 0;           // clean-log size
  uint64_t removal_size = 0;         // removal-log size

  uint64_t pattern_count = 0;        // distinct mined patterns
  uint64_t max_pattern_frequency = 0;

  uint64_t distinct_dw = 0;
  uint64_t queries_dw = 0;
  uint64_t distinct_ds = 0;
  uint64_t queries_ds = 0;
  uint64_t distinct_df = 0;
  uint64_t queries_df = 0;
  uint64_t distinct_cth = 0;
  uint64_t queries_cth = 0;
  uint64_t distinct_snc = 0;
  uint64_t queries_snc = 0;

  /// One row pair per enabled detector beyond the paper's set (registry
  /// additions like select-star). Empty for the default detector set, so
  /// the golden-compared table is unchanged there.
  struct DetectorStatsRow {
    std::string label;  // the detector's display name
    uint64_t distinct_count = 0;
    uint64_t query_count = 0;
  };
  std::vector<DetectorStatsRow> extra_detectors;

  SolveStats solve;

  /// The first PipelineOptions::max_parse_diagnostics per-record parse
  /// failures, in record order — dropped statements are counted above
  /// (syntax_error_count) and sampled here instead of vanishing
  /// silently.
  std::vector<ParseDiagnostic> parse_diagnostics;

  /// Renders the Table 5-style overview.
  std::string ToTable() const;
};

}  // namespace sqlog::core

#endif  // SQLOG_CORE_STATISTICS_H_
