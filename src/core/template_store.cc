#include "core/template_store.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sql/ast.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace sqlog::core {

TemplateStore::TemplateStore() {
  // User id 0 is the anonymous user (records without user metadata).
  user_names_.push_back("");
  user_ids_[""] = 0;
}

uint64_t TemplateStore::Intern(const sql::QueryTemplate& tmpl, size_t query_index) {
  auto& bucket = by_fingerprint_[tmpl.fingerprint];
  for (uint64_t id : bucket) {
    if (templates_[id].tmpl == tmpl) return id;
  }
  uint64_t id = templates_.size();
  TemplateInfo info;
  info.id = id;
  info.tmpl = tmpl;
  info.first_query = query_index;
  templates_.push_back(std::move(info));
  bucket.push_back(id);
  return id;
}

void TemplateStore::RecordUse(uint64_t id, uint32_t user_id) {
  TemplateInfo& info = templates_[id];
  ++info.frequency;
  info.users.insert(user_id);
}

uint32_t TemplateStore::InternUser(const std::string& user) {
  auto it = user_ids_.find(user);
  if (it != user_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(user_names_.size());
  user_names_.push_back(user);
  user_ids_[user] = id;
  return id;
}

void TemplateStore::MergeUses(uint64_t id, uint64_t frequency,
                              const std::unordered_set<uint32_t>& local_users,
                              const std::vector<uint32_t>& user_map) {
  TemplateInfo& info = templates_[id];
  info.frequency += frequency;
  // sqlog-lint: deterministic-merge(set-into-set union; the result is the same for any visit order)
  for (uint32_t local : local_users) info.users.insert(user_map[local]);
}

namespace {

/// Parse output of one contiguous record shard, with template ids and
/// user ids local to the shard's store; MergeShards translates both to
/// global ids in shard order, which reproduces the serial assignment.
struct ParseShard {
  TemplateStore store;
  std::vector<ParsedQuery> queries;
  size_t non_select_count = 0;
  size_t syntax_error_count = 0;
  std::vector<ParseDiagnostic> diagnostics;
  ParseCache cache;  // templates discovered by this shard
  ParseStats stats;
};

constexpr uint64_t kUnmapped = ~uint64_t{0};

/// Classifies + parses the records at [begin, end) of `records` into a
/// shard; record_index values are shard-relative — MergeShards rebases
/// them by its `index_base` (the records' position in the whole
/// pre-clean log, used by the batch path).
///
/// With `cache_options.enabled`, statements are lexed and fingerprinted
/// first; repeats of a known template skip the parser and have their
/// facts rendered from the cached recipes. `shared_cache` (nullable) is
/// the streaming parser's persistent cache — read-only here, it is
/// frozen while shards run. Every outcome (queries, counts, diagnostics)
/// is byte-identical to the uncached path.
///
/// `shapes`/`seed_table` (both nullable, always together) enable the
/// `.sqb` zero-lex path: shapes[i] is records[i]'s on-disk encoding and
/// seed_table maps its dictionary ordinal to the seeded cache entry. A
/// shaped record with a cacheable seeded entry renders its facts from
/// the constant spans — no lex, no key, no fingerprint. The writer-side
/// canonical-span contract (binlog.cc RawSpanIsCanonical) makes the
/// derived slot texts byte-equal to the lexed ones, so every observable
/// outcome still matches the unshaped path; anything the contract does
/// not cover falls through to it.
ParseShard ParseShardRange(const log::LogRecord* records, size_t begin, size_t end,
                           size_t max_diagnostics,
                           const ParseCacheOptions& cache_options,
                           const ParseCache* shared_cache,
                           const log::RecordShape* shapes,
                           const std::vector<const ParseCacheEntry*>* seed_table) {
  ParseShard shard;
  shard.queries.reserve(end - begin);
  if (cache_options.fingerprint_for_test) {
    shard.cache.set_fingerprint_for_test(cache_options.fingerprint_for_test);
  }
  // Local template ids already assigned to hit entries, so repeated hits
  // skip the store's skeleton-equality probe too.
  std::unordered_map<const ParseCacheEntry*, uint64_t> entry_template_id;
  std::string key;                      // reused normalized-key buffer
  std::vector<std::string> slot_texts;  // reused fast-path slot buffer
  // Fast-path memo: dictionary ordinal → local template id. An indexed
  // vector, not a hash probe — this runs once per record.
  std::vector<uint64_t> ordinal_template_id(
      seed_table != nullptr ? seed_table->size() : 0, kUnmapped);

  auto record_failure = [&](size_t i, const log::LogRecord& record, std::string message) {
    ++shard.syntax_error_count;
    if (shard.diagnostics.size() < max_diagnostics) {
      ParseDiagnostic diagnostic;
      diagnostic.record_index = i;
      diagnostic.record_seq = record.seq;
      diagnostic.message = std::move(message);
      shard.diagnostics.push_back(std::move(diagnostic));
    }
  };
  auto push_query = [&](size_t i, const log::LogRecord& record, sql::QueryFacts facts) {
    ParsedQuery query;
    query.record_index = i;
    query.timestamp_ms = record.timestamp_ms;
    query.row_count = record.row_count;
    query.facts = std::move(facts);
    size_t local_index = shard.queries.size();
    query.template_id = shard.store.Intern(query.facts.tmpl, local_index);
    query.user_id = shard.store.InternUser(record.user);
    shard.store.RecordUse(query.template_id, query.user_id);
    shard.queries.push_back(std::move(query));
  };

  for (size_t i = begin; i < end; ++i) {
    const log::LogRecord& record = records[i];

    // Zero-lex fast path: the record's `.sqb` shape hands us the seeded
    // template entry and the literal spans directly. The entry's key is
    // the statement's normalized key by construction (the writer interns
    // by key and splice-verifies), so classification and lexing are
    // already answered.
    if (shapes != nullptr && seed_table != nullptr &&
        shapes[i].template_ordinal != log::RecordShape::kVerbatim &&
        shapes[i].template_ordinal < seed_table->size()) {
      const log::RecordShape& shape = shapes[i];
      const ParseCacheEntry* entry = (*seed_table)[shape.template_ordinal];
      if (entry != nullptr) {
        if (!entry->parse_ok) {
          // Seeded failure: short-circuit exactly like a failure hit —
          // unless the diagnostics quota is open, where the slow path
          // re-parses for the record-specific message.
          if (shard.diagnostics.size() >= max_diagnostics) {
            ++shard.syntax_error_count;
            ++shard.stats.failure_hits;
            continue;
          }
        } else if (entry->cacheable && entry->slots.size() == shape.constants.size() &&
                   DeriveSlotTexts(*entry, record.statement, shape.constants,
                                   &slot_texts)) {
          ++shard.stats.cache_hits;
          ParsedQuery query;
          query.record_index = i;
          query.timestamp_ms = record.timestamp_ms;
          query.row_count = record.row_count;
          query.facts = RenderFactsFromSlotTexts(*entry, slot_texts);
          size_t local_index = shard.queries.size();
          uint64_t& memo_id = ordinal_template_id[shape.template_ordinal];
          if (memo_id == kUnmapped) {
            memo_id = shard.store.Intern(query.facts.tmpl, local_index);
          }
          query.template_id = memo_id;
          query.user_id = shard.store.InternUser(record.user);
          shard.store.RecordUse(query.template_id, query.user_id);
          shard.queries.push_back(std::move(query));
          continue;
        }
        // Uncacheable entry, slot-count mismatch, non-canonical span, or
        // an open diagnostics quota: the regular path below handles it.
      }
    }

    if (sql::ClassifyStatement(record.statement) != sql::StatementKind::kSelect) {
      ++shard.non_select_count;
      continue;
    }

    if (!cache_options.enabled) {
      ++shard.stats.full_parses;
      auto facts = sql::ParseAndAnalyze(record.statement);
      if (!facts.ok()) {
        record_failure(i, record, facts.status().message());
        continue;
      }
      push_query(i, record, std::move(facts.value()));
      continue;
    }

    // Cached path: lex once, fingerprint the normalized token stream,
    // and only parse when the template has not been seen before.
    auto lexed = sql::Lex(record.statement);
    if (!lexed.ok()) {
      // ParseAndAnalyze == Lex + parse, so a lex error carries exactly
      // the message the uncached path would report.
      ++shard.stats.full_parses;
      record_failure(i, record, lexed.status().message());
      continue;
    }
    const sql::TokenStream& tokens = lexed.value();
    key.clear();
    sql::AppendNormalizedKey(tokens, &key);
    const sql::TokenFingerprint fp = shard.cache.Fingerprint(key);
    const ParseCacheEntry* entry =
        shared_cache != nullptr ? shared_cache->Find(fp, key) : nullptr;
    if (entry == nullptr) entry = shard.cache.Find(fp, key);

    if (entry == nullptr) {
      // Miss: full parse, then cache what it taught us for the next
      // statement with this key.
      ++shard.stats.cache_misses;
      ++shard.stats.full_parses;
      std::vector<const sql::Expr*> value_exprs;
      auto facts = sql::ParseAndAnalyzeTokens(tokens, &value_exprs);
      auto fresh = std::make_unique<ParseCacheEntry>();
      fresh->fingerprint = fp;
      fresh->key = key;
      if (!facts.ok()) {
        record_failure(i, record, facts.status().message());
        shard.cache.Insert(std::move(fresh));  // parse_ok stays false
        continue;
      }
      fresh->parse_ok = true;
      BuildRecipes(tokens, facts.value(), value_exprs, *fresh);
      shard.cache.Insert(std::move(fresh));
      push_query(i, record, std::move(facts.value()));
      continue;
    }

    if (!entry->parse_ok) {
      // Cached failure. Equal keys ⇒ the parse fails the same way (the
      // parser never branches on placeholdered literal text); only the
      // diagnostic message is record-specific (it embeds offsets and
      // nearby text), so re-parse solely while the quota is open.
      if (shard.diagnostics.size() >= max_diagnostics) {
        ++shard.syntax_error_count;
        ++shard.stats.failure_hits;
        continue;
      }
      ++shard.stats.full_parses;
      auto facts = sql::ParseAndAnalyzeTokens(tokens);
      if (!facts.ok()) {
        record_failure(i, record, facts.status().message());
        continue;
      }
      // Unreachable if the key invariant holds; keep the parse rather
      // than miscount it.
      push_query(i, record, std::move(facts.value()));
      continue;
    }

    if (!entry->cacheable) {
      // Known template whose recipes did not validate: pay the parse.
      ++shard.stats.uncacheable_hits;
      ++shard.stats.full_parses;
      auto facts = sql::ParseAndAnalyzeTokens(tokens);
      if (!facts.ok()) {
        record_failure(i, record, facts.status().message());
        continue;
      }
      push_query(i, record, std::move(facts.value()));
      continue;
    }

    // Hit: facts come from the entry's recipes plus this statement's own
    // tokens — no AST is built (consumers re-parse on demand).
    ++shard.stats.cache_hits;
    ParsedQuery query;
    query.record_index = i;
    query.timestamp_ms = record.timestamp_ms;
    query.row_count = record.row_count;
    query.facts = RenderFacts(*entry, tokens);
    size_t local_index = shard.queries.size();
    auto memo = entry_template_id.find(entry);
    if (memo == entry_template_id.end()) {
      memo = entry_template_id
                 .emplace(entry, shard.store.Intern(query.facts.tmpl, local_index))
                 .first;
    }
    query.template_id = memo->second;
    query.user_id = shard.store.InternUser(record.user);
    shard.store.RecordUse(query.template_id, query.user_id);
    shard.queries.push_back(std::move(query));
  }
  return shard;
}

/// Merges parse shards into `store`/`parsed` in shard order. Shards are
/// contiguous record ranges, so shard order visits queries in exactly
/// the serial order — global template ids, user ids, first_query
/// indices, and per-template statistics come out byte-identical to the
/// serial path.
///
/// The join runs in two phases so the per-query work scales with the
/// pool (the serial merge was the sublinear stage BENCH_scaling.json
/// exposed):
///  1. Serial id assignment over each shard's *distinct* templates and
///     users only. Within a shard, local ids are dense in first-use
///     order, so walking local ids ascending inside an in-order shard
///     walk replays the exact serial intern sequence — template ids,
///     user ids, and first_query indices match the serial path. The
///     per-template frequency/user aggregates fold in here too
///     (order-independent).
///  2. Parallel remap + placement: every query's template_id/user_id is
///     translated through its shard's id maps and the query is moved
///     into its precomputed slot in `parsed.queries`. Shards own
///     disjoint slot ranges, so the phase is data-race-free.
void MergeShards(std::vector<ParseShard>& shards, TemplateStore& store,
                 size_t max_diagnostics, ParsedLog& parsed,
                 util::ThreadPool* pool) {
  const size_t base = parsed.queries.size();
  std::vector<size_t> offsets(shards.size(), 0);
  std::vector<std::vector<uint64_t>> template_maps(shards.size());
  std::vector<std::vector<uint32_t>> user_maps(shards.size());

  // Phase 1: counters, diagnostics, and id assignment (serial; touches
  // only distinct templates/users, not every query).
  size_t total = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    ParseShard& shard = shards[s];
    offsets[s] = base + total;
    total += shard.queries.size();
    parsed.non_select_count += shard.non_select_count;
    parsed.syntax_error_count += shard.syntax_error_count;
    parsed.parse_stats.Merge(shard.stats);
    for (ParseDiagnostic& diagnostic : shard.diagnostics) {
      if (parsed.diagnostics.size() < max_diagnostics) {
        parsed.diagnostics.push_back(std::move(diagnostic));
      }
    }

    // Users: local ids are dense in first-appearance order (id 0 is the
    // anonymous user, pre-interned in both stores).
    std::vector<uint32_t>& user_map = user_maps[s];
    const std::vector<std::string>& local_users = shard.store.user_names();
    user_map.resize(local_users.size());
    for (size_t u = 0; u < local_users.size(); ++u) {
      user_map[u] = store.InternUser(local_users[u]);
    }

    // Templates: local ids are dense in first-use order; a local
    // first_query is shard-relative, so rebasing by the shard's slot
    // offset yields the global index of the template's first use.
    std::vector<uint64_t>& template_map = template_maps[s];
    const std::vector<TemplateInfo>& locals = shard.store.templates();
    template_map.resize(locals.size());
    for (uint64_t local_id = 0; local_id < locals.size(); ++local_id) {
      const TemplateInfo& local = locals[local_id];
      uint64_t global_id = store.Intern(local.tmpl, offsets[s] + local.first_query);
      template_map[local_id] = global_id;
      store.MergeUses(global_id, local.frequency, local.users, user_map);
    }
  }

  // Phase 2: remap + place every query (parallel; shards write disjoint
  // slot ranges of the preallocated tail).
  parsed.queries.resize(base + total);
  auto place_shard = [&](size_t s) {
    ParseShard& shard = shards[s];
    const std::vector<uint64_t>& template_map = template_maps[s];
    const std::vector<uint32_t>& user_map = user_maps[s];
    for (size_t k = 0; k < shard.queries.size(); ++k) {
      ParsedQuery& query = shard.queries[k];
      query.template_id = template_map[query.template_id];
      query.user_id = user_map[query.user_id];
      parsed.queries[offsets[s] + k] = std::move(query);
    }
  };
  if (pool != nullptr && shards.size() > 1) {
    pool->ParallelFor(0, shards.size(), 1, [&](size_t first, size_t last) {
      for (size_t s = first; s < last; ++s) place_shard(s);
    });
  } else {
    for (size_t s = 0; s < shards.size(); ++s) place_shard(s);
  }
}

/// Builds the per-user time-ordered streams from the merged queries.
/// The bucketing pass is serial (stream membership follows query order);
/// the per-stream sorts are independent and run on the pool. The
/// comparator is a strict total order (record_index is unique), so the
/// sorted streams are identical regardless of scheduling.
void BuildUserStreams(const TemplateStore& store, ParsedLog& parsed,
                      util::ThreadPool* pool) {
  parsed.user_names = store.user_names();
  parsed.user_streams.assign(store.user_names().size(), {});
  for (size_t i = 0; i < parsed.queries.size(); ++i) {
    parsed.user_streams[parsed.queries[i].user_id].push_back(i);
  }
  auto sort_streams = [&](size_t first, size_t last) {
    for (size_t s = first; s < last; ++s) {
      std::vector<size_t>& stream = parsed.user_streams[s];
      std::stable_sort(stream.begin(), stream.end(), [&](size_t a, size_t b) {
        const ParsedQuery& qa = parsed.queries[a];
        const ParsedQuery& qb = parsed.queries[b];
        if (qa.timestamp_ms != qb.timestamp_ms) return qa.timestamp_ms < qb.timestamp_ms;
        return qa.record_index < qb.record_index;
      });
    }
  };
  if (pool != nullptr && parsed.user_streams.size() > 1) {
    pool->ParallelFor(0, parsed.user_streams.size(), 1, sort_streams);
  } else {
    sort_streams(0, parsed.user_streams.size());
  }
}

/// Shard count for parsing `count` records on `pool` (ParseLog's
/// historical formula — reused by the batch path for byte-stability).
size_t ParseShardCount(util::ThreadPool* pool, size_t count) {
  size_t num_shards = 1;
  if (pool != nullptr && pool->size() > 0) {
    num_shards = std::min(count, 4 * (pool->size() + 1));
    if (num_shards == 0) num_shards = 1;
  }
  return num_shards;
}

}  // namespace

ParsedLog ParseLog(const log::QueryLog& log, TemplateStore& store,
                   util::ThreadPool* pool, size_t max_diagnostics,
                   const ParseCacheOptions& cache_options) {
  ParsedLog parsed;
  parsed.queries.reserve(log.size());

  const log::LogRecord* records = log.records().data();
  size_t num_shards = ParseShardCount(pool, log.size());

  // Map: parse + skeletonize each contiguous record shard into a local
  // TemplateStore (the expensive part — runs in parallel).
  std::vector<ParseShard> shards = util::MapShards<ParseShard>(
      num_shards > 1 ? pool : nullptr, log.size(), num_shards,
      [&](size_t, size_t begin, size_t end) {
        return ParseShardRange(records, begin, end, max_diagnostics,
                               cache_options, /*shared_cache=*/nullptr,
                               /*shapes=*/nullptr, /*seed_table=*/nullptr);
      });

  // Reduce: merge shards in order, then build the per-user streams.
  MergeShards(shards, store, max_diagnostics, parsed, pool);
  for (const ParseShard& shard : shards) {
    parsed.parse_stats.templates_cached += shard.cache.size();
    parsed.parse_stats.cache_bytes += shard.cache.bytes();
  }
  BuildUserStreams(store, parsed, pool);
  return parsed;
}

StreamingParser::StreamingParser(TemplateStore& store, size_t max_diagnostics,
                                 util::ThreadPool* pool,
                                 const ParseCacheOptions& cache_options)
    : store_(store),
      max_diagnostics_(max_diagnostics),
      pool_(pool),
      cache_options_(cache_options) {
  if (cache_options_.fingerprint_for_test) {
    cache_.set_fingerprint_for_test(cache_options_.fingerprint_for_test);
  }
}

void StreamingParser::SeedCache(std::vector<std::unique_ptr<ParseCacheEntry>> entries) {
  if (!cache_options_.enabled) return;
  seed_by_ordinal_.reserve(seed_by_ordinal_.size() + entries.size());
  for (std::unique_ptr<ParseCacheEntry>& entry : entries) {
    if (entry == nullptr) {
      seed_by_ordinal_.push_back(nullptr);
      continue;
    }
    // Stamp with this cache's fingerprint function (the serialized form
    // carries none, so the collision-forcing test seam keeps working).
    entry->fingerprint = cache_.Fingerprint(entry->key);
    const ParseCacheEntry* existing = cache_.Find(entry->fingerprint, entry->key);
    if (existing == nullptr) existing = cache_.Insert(std::move(entry));
    seed_by_ordinal_.push_back(existing);
  }
}

void StreamingParser::ReserveQueries(size_t n) { parsed_.queries.reserve(n); }

void StreamingParser::FeedBatch(const std::vector<log::LogRecord>& records,
                                const std::vector<log::RecordShape>* shapes) {
  // Callers keep a reusable pool, so the vector may run longer than the
  // batch; only the first records.size() shapes are consulted.
  assert(shapes == nullptr || shapes->size() >= records.size());
  if (records.empty()) return;
  const size_t index_base = records_fed_;
  const log::LogRecord* data = records.data();
  size_t num_shards = ParseShardCount(pool_, records.size());

  // The persistent cache is frozen (read-only) while shards are in
  // flight; templates discovered this batch land in the shard-local
  // caches and are promoted below, after the shards join.
  const ParseCache* shared_cache = cache_options_.enabled ? &cache_ : nullptr;
  // Shapes ride only with an enabled cache and a seeded dictionary (the
  // ordinal table is frozen alongside the cache while shards run).
  const log::RecordShape* shape_data =
      shared_cache != nullptr && shapes != nullptr && !seed_by_ordinal_.empty()
          ? shapes->data()
          : nullptr;
  const std::vector<const ParseCacheEntry*>* seed_table =
      shape_data != nullptr ? &seed_by_ordinal_ : nullptr;
  std::vector<ParseShard> shards = util::MapShards<ParseShard>(
      num_shards > 1 ? pool_ : nullptr, records.size(), num_shards,
      [&](size_t, size_t begin, size_t end) {
        ParseShard shard = ParseShardRange(data, begin, end, max_diagnostics_,
                                           cache_options_, shared_cache,
                                           shape_data, seed_table);
        // Shard-local record indices → global pre-clean positions.
        for (ParsedQuery& query : shard.queries) query.record_index += index_base;
        for (ParseDiagnostic& diagnostic : shard.diagnostics) {
          diagnostic.record_index += index_base;
        }
        return shard;
      });

  size_t first_new = parsed_.queries.size();
  MergeShards(shards, store_, max_diagnostics_, parsed_, pool_);

  // Promote shard-discovered templates into the persistent cache in
  // shard order (insertion order within a shard), skipping keys an
  // earlier shard of this batch already promoted. Entry contents are a
  // pure function of the key, so which shard wins does not matter.
  if (cache_options_.enabled) {
    for (ParseShard& shard : shards) {
      for (auto& entry : shard.cache.TakeEntries()) {
        if (cache_.Find(entry->fingerprint, entry->key) == nullptr) {
          cache_.Insert(std::move(entry));
        }
      }
    }
  }

  // Bound memory: the AST is only needed until the template is interned
  // (detection works off the retained clause facts). The streaming
  // solver re-parses the statements it rewrites.
  for (size_t i = first_new; i < parsed_.queries.size(); ++i) {
    parsed_.queries[i].facts.ast.reset();
  }
  records_fed_ += records.size();
}

ParsedLog StreamingParser::Finish() {
  parsed_.parse_stats.templates_cached = cache_.size();
  parsed_.parse_stats.cache_bytes = cache_.bytes();
  BuildUserStreams(store_, parsed_, pool_);
  return std::move(parsed_);
}

}  // namespace sqlog::core
