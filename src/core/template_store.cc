#include "core/template_store.h"

#include <algorithm>

#include "sql/ast.h"
#include "sql/parser.h"

namespace sqlog::core {

TemplateStore::TemplateStore() {
  // User id 0 is the anonymous user (records without user metadata).
  user_names_.push_back("");
  user_ids_[""] = 0;
}

uint64_t TemplateStore::Intern(const sql::QueryTemplate& tmpl, size_t query_index) {
  auto& bucket = by_fingerprint_[tmpl.fingerprint];
  for (uint64_t id : bucket) {
    if (templates_[id].tmpl == tmpl) return id;
  }
  uint64_t id = templates_.size();
  TemplateInfo info;
  info.id = id;
  info.tmpl = tmpl;
  info.first_query = query_index;
  templates_.push_back(std::move(info));
  bucket.push_back(id);
  return id;
}

void TemplateStore::RecordUse(uint64_t id, uint32_t user_id) {
  TemplateInfo& info = templates_[id];
  ++info.frequency;
  info.users.insert(user_id);
}

uint32_t TemplateStore::InternUser(const std::string& user) {
  auto it = user_ids_.find(user);
  if (it != user_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(user_names_.size());
  user_names_.push_back(user);
  user_ids_[user] = id;
  return id;
}

ParsedLog ParseLog(const log::QueryLog& log, TemplateStore& store) {
  ParsedLog parsed;
  parsed.queries.reserve(log.size());

  for (size_t i = 0; i < log.size(); ++i) {
    const log::LogRecord& record = log.records()[i];
    if (sql::ClassifyStatement(record.statement) != sql::StatementKind::kSelect) {
      ++parsed.non_select_count;
      continue;
    }
    auto facts = sql::ParseAndAnalyze(record.statement);
    if (!facts.ok()) {
      ++parsed.syntax_error_count;
      continue;
    }
    ParsedQuery query;
    query.record_index = i;
    query.timestamp_ms = record.timestamp_ms;
    query.user_id = store.InternUser(record.user);
    query.row_count = record.row_count;
    query.facts = std::move(facts.value());
    size_t query_index = parsed.queries.size();
    query.template_id = store.Intern(query.facts.tmpl, query_index);
    store.RecordUse(query.template_id, query.user_id);
    parsed.queries.push_back(std::move(query));
  }

  // Per-user time-ordered streams.
  parsed.user_names = store.user_names();
  parsed.user_streams.resize(store.user_names().size());
  for (size_t i = 0; i < parsed.queries.size(); ++i) {
    parsed.user_streams[parsed.queries[i].user_id].push_back(i);
  }
  for (auto& stream : parsed.user_streams) {
    std::stable_sort(stream.begin(), stream.end(), [&](size_t a, size_t b) {
      const ParsedQuery& qa = parsed.queries[a];
      const ParsedQuery& qb = parsed.queries[b];
      if (qa.timestamp_ms != qb.timestamp_ms) return qa.timestamp_ms < qb.timestamp_ms;
      return qa.record_index < qb.record_index;
    });
  }
  return parsed;
}

}  // namespace sqlog::core
