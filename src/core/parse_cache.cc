#include "core/parse_cache.h"

#include <cassert>

#include "sql/printer.h"

namespace sqlog::core {

namespace {

/// Renders slot `slot` from the raw token text: numbers get the folded
/// '-' prefix back, strings are re-quoted with '' escaping — exactly the
/// bytes the canonical printer would emit for the literal.
std::string RenderSlotText(const ParseCacheEntry::Slot& slot, std::string_view token_text) {
  std::string out;
  if (slot.is_string) {
    out.reserve(token_text.size() + 2);
    out.push_back('\'');
    for (char c : token_text) {
      if (c == '\'') out.push_back('\'');
      out.push_back(c);
    }
    out.push_back('\'');
    return out;
  }
  out.reserve(token_text.size() + 1);
  if (slot.negated) out.push_back('-');
  out.append(token_text);
  return out;
}

size_t StringBytes(const std::string& s) { return s.capacity(); }

size_t ClauseBytes(const ParseCacheEntry::Clause& clause) {
  size_t total = clause.slot_refs.capacity() * sizeof(uint32_t);
  for (const auto& piece : clause.pieces) total += sizeof(piece) + StringBytes(piece);
  return total;
}

}  // namespace

size_t ParseCacheEntry::bytes() const {
  size_t total = sizeof(*this) + StringBytes(key);
  total += StringBytes(tmpl.ssc) + StringBytes(tmpl.sfc) + StringBytes(tmpl.swc) +
           StringBytes(tmpl.tail);
  for (const auto& s : selected_columns) total += sizeof(s) + StringBytes(s);
  for (const auto& s : tables) total += sizeof(s) + StringBytes(s);
  for (const auto& s : table_functions) total += sizeof(s) + StringBytes(s);
  total += slots.capacity() * sizeof(Slot);
  total += ClauseBytes(sc) + ClauseBytes(fc) + ClauseBytes(wc);
  for (const auto& pred : predicates) {
    total += sizeof(pred);
    total += StringBytes(pred.base.qualifier) + StringBytes(pred.base.column);
    for (const auto& value : pred.values) total += sizeof(value) + StringBytes(value.fixed);
  }
  return total;
}

const ParseCacheEntry* ParseCache::Find(const sql::TokenFingerprint& fp,
                                        std::string_view key) const {
  auto it = buckets_.find(fp.lo);
  if (it == buckets_.end()) return nullptr;
  for (const auto& entry : it->second) {
    if (entry->fingerprint.hi == fp.hi && entry->key == key) return entry.get();
  }
  return nullptr;
}

const ParseCacheEntry* ParseCache::Insert(std::unique_ptr<ParseCacheEntry> entry) {
  bytes_ += entry->bytes();
  ParseCacheEntry* raw = entry.get();
  buckets_[entry->fingerprint.lo].push_back(std::move(entry));
  order_.push_back(raw);
  return raw;
}

std::vector<std::unique_ptr<ParseCacheEntry>> ParseCache::TakeEntries() {
  std::vector<std::unique_ptr<ParseCacheEntry>> drained;
  drained.reserve(order_.size());
  for (ParseCacheEntry* raw : order_) {
    auto& bucket = buckets_[raw->fingerprint.lo];
    for (auto& owned : bucket) {
      if (owned.get() == raw) {
        drained.push_back(std::move(owned));
        break;
      }
    }
  }
  buckets_.clear();
  order_.clear();
  bytes_ = 0;
  return drained;
}

void BuildRecipes(const sql::TokenStream& tokens, const sql::QueryFacts& facts,
                  const std::vector<const sql::Expr*>& predicate_value_exprs,
                  ParseCacheEntry& entry) {
  entry.cacheable = false;
  entry.tmpl = facts.tmpl;
  entry.where_conjunctive = facts.where_conjunctive;
  entry.selects_star = facts.selects_star;
  entry.from_item_count = facts.from_item_count;
  entry.selected_columns = facts.selected_columns;
  entry.tables = facts.tables;
  entry.table_functions = facts.table_functions;

  const std::vector<size_t> lit_idx = sql::PlaceholderedTokenIndices(tokens);

  // Re-print the clauses recording literal positions. The prints must
  // reproduce the analyzed clause texts byte-for-byte (same options), or
  // the recipe would disagree with the facts it claims to reproduce.
  std::vector<sql::LiteralSlot> print_slots;
  sql::PrintOptions opts;
  opts.canonical = true;
  opts.placeholders = false;
  opts.literal_sink = &print_slots;
  const sql::SelectStatement& ast = *facts.ast;
  std::string sc = PrintSelectClause(ast, opts);
  const size_t sc_end = print_slots.size();
  std::string fc = PrintFromClause(ast, opts);
  const size_t fc_end = print_slots.size();
  std::string wc = PrintWhereClause(ast, opts);
  const size_t wc_end = print_slots.size();
  std::string tail = PrintTailClauses(ast, opts);
  if (sc != facts.sc || fc != facts.fc || wc != facts.wc) return;

  // Strict 1:1 in-order alignment: print order of literals (sc, fc, wc,
  // tail) must equal source order of placeholdered tokens. The parser
  // preserves clause order and literal order within clauses; anything
  // that breaks the alignment (e.g. simple-form CASE normalization
  // cloning its subject into every branch) makes the template
  // uncacheable rather than wrong.
  if (print_slots.size() != lit_idx.size()) return;
  entry.slots.assign(lit_idx.size(), {});
  for (size_t j = 0; j < lit_idx.size(); ++j) {
    const sql::Token& token = tokens[lit_idx[j]];
    const auto& lit = static_cast<const sql::LiteralExpr&>(*print_slots[j].expr);
    if (lit.literal_kind == sql::LiteralKind::kString) {
      if (!token.Is(sql::TokenType::kString) || lit.text != token.text) return;
      entry.slots[j].is_string = true;
    } else if (lit.literal_kind == sql::LiteralKind::kNumber) {
      if (!token.Is(sql::TokenType::kNumber)) return;
      if (lit.text == token.text) {
        entry.slots[j].negated = false;
      } else if (lit.text.size() == token.text.size() + 1 && lit.text[0] == '-' &&
                 std::string_view(lit.text).substr(1) == token.text) {
        // The parser folded a structural minus sign into the literal;
        // structural tokens are part of the key, so the fold is
        // template-constant and the prefix can live in the slot.
        entry.slots[j].negated = true;
      } else {
        return;
      }
    } else {
      return;  // the sink never records NULL literals
    }
  }

  // Cut each clause into pieces at the slot positions, verifying that
  // re-rendering the slot from the token reproduces the printed bytes.
  auto build_clause = [&](const std::string& text, size_t begin_slot, size_t end_slot,
                          ParseCacheEntry::Clause& out) -> bool {
    size_t pos = 0;
    for (size_t j = begin_slot; j < end_slot; ++j) {
      const sql::LiteralSlot& ps = print_slots[j];
      if (ps.begin < pos || ps.end < ps.begin || ps.end > text.size()) return false;
      std::string rendered = RenderSlotText(entry.slots[j], tokens[lit_idx[j]].text);
      if (text.compare(ps.begin, ps.end - ps.begin, rendered) != 0) return false;
      out.pieces.push_back(text.substr(pos, ps.begin - pos));
      out.slot_refs.push_back(static_cast<uint32_t>(j));
      pos = ps.end;
    }
    out.pieces.push_back(text.substr(pos));
    return true;
  };
  if (!build_clause(sc, 0, sc_end, entry.sc)) return;
  if (!build_clause(fc, sc_end, fc_end, entry.fc)) return;
  if (!build_clause(wc, fc_end, wc_end, entry.wc)) return;
  // The tail is not persisted (QueryFacts keeps no concrete tail), but
  // its slots still validate so the alignment proof covers every literal.
  ParseCacheEntry::Clause tail_scratch;
  if (!build_clause(tail, wc_end, print_slots.size(), tail_scratch)) return;

  // Predicate templates: map each recorded value expression to its print
  // slot by node identity; values with no slot (variables, NULLs) are
  // template-constant text.
  std::unordered_map<const sql::Expr*, uint32_t> slot_of;
  slot_of.reserve(print_slots.size());
  for (size_t j = 0; j < print_slots.size(); ++j) {
    slot_of.emplace(print_slots[j].expr, static_cast<uint32_t>(j));
  }
  size_t flat = 0;
  entry.predicates.clear();
  entry.predicates.reserve(facts.predicates.size());
  for (const auto& pred : facts.predicates) {
    ParseCacheEntry::PredTemplate pt;
    pt.base = pred;
    pt.base.values.clear();
    pt.values.reserve(pred.values.size());
    for (const std::string& value : pred.values) {
      if (flat >= predicate_value_exprs.size()) return;
      const sql::Expr* value_expr = predicate_value_exprs[flat++];
      ParseCacheEntry::ValueRef ref;
      auto it = slot_of.find(value_expr);
      if (it != slot_of.end()) {
        // Cross-check: the analyzed value text must equal the slot
        // render, or reproducing it from the slot would drift.
        uint32_t j = it->second;
        if (value != RenderSlotText(entry.slots[j], tokens[lit_idx[j]].text)) return;
        ref.is_slot = true;
        ref.slot = j;
      } else {
        ref.fixed = value;
      }
      pt.values.push_back(std::move(ref));
    }
    entry.predicates.push_back(std::move(pt));
  }
  if (flat != predicate_value_exprs.size()) return;

  entry.cacheable = true;
}

sql::QueryFacts RenderFacts(const ParseCacheEntry& entry, const sql::TokenStream& tokens) {
  assert(entry.parse_ok && entry.cacheable);
  sql::QueryFacts facts;
  facts.tmpl = entry.tmpl;
  facts.where_conjunctive = entry.where_conjunctive;
  facts.selects_star = entry.selects_star;
  facts.from_item_count = entry.from_item_count;
  facts.selected_columns = entry.selected_columns;
  facts.tables = entry.tables;
  facts.table_functions = entry.table_functions;

  const std::vector<size_t> lit_idx = sql::PlaceholderedTokenIndices(tokens);
  assert(lit_idx.size() == entry.slots.size() && "key equality fixes the slot count");
  std::vector<std::string> slot_texts(entry.slots.size());
  for (size_t j = 0; j < entry.slots.size(); ++j) {
    slot_texts[j] = RenderSlotText(entry.slots[j], tokens[lit_idx[j]].text);
  }

  auto render_clause = [&](const ParseCacheEntry::Clause& clause) {
    size_t total = 0;
    for (const auto& piece : clause.pieces) total += piece.size();
    for (uint32_t j : clause.slot_refs) total += slot_texts[j].size();
    std::string out;
    out.reserve(total);
    out += clause.pieces[0];
    for (size_t k = 0; k < clause.slot_refs.size(); ++k) {
      out += slot_texts[clause.slot_refs[k]];
      out += clause.pieces[k + 1];
    }
    return out;
  };
  facts.sc = render_clause(entry.sc);
  facts.fc = render_clause(entry.fc);
  facts.wc = render_clause(entry.wc);

  facts.predicates.reserve(entry.predicates.size());
  for (const auto& pt : entry.predicates) {
    sql::Predicate pred = pt.base;
    pred.values.reserve(pt.values.size());
    for (const auto& ref : pt.values) {
      pred.values.push_back(ref.is_slot ? slot_texts[ref.slot] : ref.fixed);
    }
    facts.predicates.push_back(std::move(pred));
  }
  return facts;
}

}  // namespace sqlog::core
