#include "core/parse_cache.h"

#include <cassert>

#include "log/binlog_format.h"
#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/printer.h"

namespace sqlog::core {

namespace {

/// Renders slot `slot` from the raw token text: numbers get the folded
/// '-' prefix back, strings are re-quoted with '' escaping — exactly the
/// bytes the canonical printer would emit for the literal.
std::string RenderSlotText(const ParseCacheEntry::Slot& slot, std::string_view token_text) {
  std::string out;
  if (slot.is_string) {
    out.reserve(token_text.size() + 2);
    out.push_back('\'');
    for (char c : token_text) {
      if (c == '\'') out.push_back('\'');
      out.push_back(c);
    }
    out.push_back('\'');
    return out;
  }
  out.reserve(token_text.size() + 1);
  if (slot.negated) out.push_back('-');
  out.append(token_text);
  return out;
}

size_t StringBytes(const std::string& s) { return s.capacity(); }

size_t ClauseBytes(const ParseCacheEntry::Clause& clause) {
  size_t total = clause.slot_refs.capacity() * sizeof(uint32_t);
  for (const auto& piece : clause.pieces) total += sizeof(piece) + StringBytes(piece);
  return total;
}

}  // namespace

size_t ParseCacheEntry::bytes() const {
  size_t total = sizeof(*this) + StringBytes(key);
  total += StringBytes(tmpl.ssc) + StringBytes(tmpl.sfc) + StringBytes(tmpl.swc) +
           StringBytes(tmpl.tail);
  for (const auto& s : selected_columns) total += sizeof(s) + StringBytes(s);
  for (const auto& s : tables) total += sizeof(s) + StringBytes(s);
  for (const auto& s : table_functions) total += sizeof(s) + StringBytes(s);
  total += slots.capacity() * sizeof(Slot);
  total += ClauseBytes(sc) + ClauseBytes(fc) + ClauseBytes(wc);
  for (const auto& pred : predicates) {
    total += sizeof(pred);
    total += StringBytes(pred.base.qualifier) + StringBytes(pred.base.column);
    for (const auto& value : pred.values) total += sizeof(value) + StringBytes(value.fixed);
  }
  return total;
}

const ParseCacheEntry* ParseCache::Find(const sql::TokenFingerprint& fp,
                                        std::string_view key) const {
  auto it = buckets_.find(fp.lo);
  if (it == buckets_.end()) return nullptr;
  for (const auto& entry : it->second) {
    if (entry->fingerprint.hi == fp.hi && entry->key == key) return entry.get();
  }
  return nullptr;
}

const ParseCacheEntry* ParseCache::Insert(std::unique_ptr<ParseCacheEntry> entry) {
  bytes_ += entry->bytes();
  ParseCacheEntry* raw = entry.get();
  buckets_[entry->fingerprint.lo].push_back(std::move(entry));
  order_.push_back(raw);
  return raw;
}

std::vector<std::unique_ptr<ParseCacheEntry>> ParseCache::TakeEntries() {
  std::vector<std::unique_ptr<ParseCacheEntry>> drained;
  drained.reserve(order_.size());
  for (ParseCacheEntry* raw : order_) {
    auto& bucket = buckets_[raw->fingerprint.lo];
    for (auto& owned : bucket) {
      if (owned.get() == raw) {
        drained.push_back(std::move(owned));
        break;
      }
    }
  }
  buckets_.clear();
  order_.clear();
  bytes_ = 0;
  return drained;
}

void BuildRecipes(const sql::TokenStream& tokens, const sql::QueryFacts& facts,
                  const std::vector<const sql::Expr*>& predicate_value_exprs,
                  ParseCacheEntry& entry) {
  entry.cacheable = false;
  entry.tmpl = facts.tmpl;
  entry.where_conjunctive = facts.where_conjunctive;
  entry.selects_star = facts.selects_star;
  entry.from_item_count = facts.from_item_count;
  entry.selected_columns = facts.selected_columns;
  entry.tables = facts.tables;
  entry.table_functions = facts.table_functions;

  const std::vector<size_t> lit_idx = sql::PlaceholderedTokenIndices(tokens);

  // Re-print the clauses recording literal positions. The prints must
  // reproduce the analyzed clause texts byte-for-byte (same options), or
  // the recipe would disagree with the facts it claims to reproduce.
  std::vector<sql::LiteralSlot> print_slots;
  sql::PrintOptions opts;
  opts.canonical = true;
  opts.placeholders = false;
  opts.literal_sink = &print_slots;
  const sql::SelectStatement& ast = *facts.ast;
  std::string sc = PrintSelectClause(ast, opts);
  const size_t sc_end = print_slots.size();
  std::string fc = PrintFromClause(ast, opts);
  const size_t fc_end = print_slots.size();
  std::string wc = PrintWhereClause(ast, opts);
  const size_t wc_end = print_slots.size();
  std::string tail = PrintTailClauses(ast, opts);
  if (sc != facts.sc || fc != facts.fc || wc != facts.wc) return;

  // Strict 1:1 in-order alignment: print order of literals (sc, fc, wc,
  // tail) must equal source order of placeholdered tokens. The parser
  // preserves clause order and literal order within clauses; anything
  // that breaks the alignment (e.g. simple-form CASE normalization
  // cloning its subject into every branch) makes the template
  // uncacheable rather than wrong.
  if (print_slots.size() != lit_idx.size()) return;
  entry.slots.assign(lit_idx.size(), {});
  for (size_t j = 0; j < lit_idx.size(); ++j) {
    const sql::Token& token = tokens[lit_idx[j]];
    const auto& lit = static_cast<const sql::LiteralExpr&>(*print_slots[j].expr);
    if (lit.literal_kind == sql::LiteralKind::kString) {
      if (!token.Is(sql::TokenType::kString) || lit.text != token.text) return;
      entry.slots[j].is_string = true;
    } else if (lit.literal_kind == sql::LiteralKind::kNumber) {
      if (!token.Is(sql::TokenType::kNumber)) return;
      if (lit.text == token.text) {
        entry.slots[j].negated = false;
      } else if (lit.text.size() == token.text.size() + 1 && lit.text[0] == '-' &&
                 std::string_view(lit.text).substr(1) == token.text) {
        // The parser folded a structural minus sign into the literal;
        // structural tokens are part of the key, so the fold is
        // template-constant and the prefix can live in the slot.
        entry.slots[j].negated = true;
      } else {
        return;
      }
    } else {
      return;  // the sink never records NULL literals
    }
  }

  // Cut each clause into pieces at the slot positions, verifying that
  // re-rendering the slot from the token reproduces the printed bytes.
  auto build_clause = [&](const std::string& text, size_t begin_slot, size_t end_slot,
                          ParseCacheEntry::Clause& out) -> bool {
    size_t pos = 0;
    for (size_t j = begin_slot; j < end_slot; ++j) {
      const sql::LiteralSlot& ps = print_slots[j];
      if (ps.begin < pos || ps.end < ps.begin || ps.end > text.size()) return false;
      std::string rendered = RenderSlotText(entry.slots[j], tokens[lit_idx[j]].text);
      if (text.compare(ps.begin, ps.end - ps.begin, rendered) != 0) return false;
      out.pieces.push_back(text.substr(pos, ps.begin - pos));
      out.slot_refs.push_back(static_cast<uint32_t>(j));
      pos = ps.end;
    }
    out.pieces.push_back(text.substr(pos));
    return true;
  };
  if (!build_clause(sc, 0, sc_end, entry.sc)) return;
  if (!build_clause(fc, sc_end, fc_end, entry.fc)) return;
  if (!build_clause(wc, fc_end, wc_end, entry.wc)) return;
  // The tail is not persisted (QueryFacts keeps no concrete tail), but
  // its slots still validate so the alignment proof covers every literal.
  ParseCacheEntry::Clause tail_scratch;
  if (!build_clause(tail, wc_end, print_slots.size(), tail_scratch)) return;

  // Predicate templates: map each recorded value expression to its print
  // slot by node identity; values with no slot (variables, NULLs) are
  // template-constant text.
  std::unordered_map<const sql::Expr*, uint32_t> slot_of;
  slot_of.reserve(print_slots.size());
  for (size_t j = 0; j < print_slots.size(); ++j) {
    slot_of.emplace(print_slots[j].expr, static_cast<uint32_t>(j));
  }
  size_t flat = 0;
  entry.predicates.clear();
  entry.predicates.reserve(facts.predicates.size());
  for (const auto& pred : facts.predicates) {
    ParseCacheEntry::PredTemplate pt;
    pt.base = pred;
    pt.base.values.clear();
    pt.values.reserve(pred.values.size());
    for (const std::string& value : pred.values) {
      if (flat >= predicate_value_exprs.size()) return;
      const sql::Expr* value_expr = predicate_value_exprs[flat++];
      ParseCacheEntry::ValueRef ref;
      auto it = slot_of.find(value_expr);
      if (it != slot_of.end()) {
        // Cross-check: the analyzed value text must equal the slot
        // render, or reproducing it from the slot would drift.
        uint32_t j = it->second;
        if (value != RenderSlotText(entry.slots[j], tokens[lit_idx[j]].text)) return;
        ref.is_slot = true;
        ref.slot = j;
      } else {
        ref.fixed = value;
      }
      pt.values.push_back(std::move(ref));
    }
    entry.predicates.push_back(std::move(pt));
  }
  if (flat != predicate_value_exprs.size()) return;

  entry.cacheable = true;
}

sql::QueryFacts RenderFacts(const ParseCacheEntry& entry, const sql::TokenStream& tokens) {
  const std::vector<size_t> lit_idx = sql::PlaceholderedTokenIndices(tokens);
  assert(lit_idx.size() == entry.slots.size() && "key equality fixes the slot count");
  std::vector<std::string> slot_texts(entry.slots.size());
  for (size_t j = 0; j < entry.slots.size(); ++j) {
    slot_texts[j] = RenderSlotText(entry.slots[j], tokens[lit_idx[j]].text);
  }
  return RenderFactsFromSlotTexts(entry, slot_texts);
}

sql::QueryFacts RenderFactsFromSlotTexts(const ParseCacheEntry& entry,
                                         const std::vector<std::string>& slot_texts) {
  assert(entry.parse_ok && entry.cacheable);
  assert(slot_texts.size() == entry.slots.size());
  sql::QueryFacts facts;
  facts.tmpl = entry.tmpl;
  facts.where_conjunctive = entry.where_conjunctive;
  facts.selects_star = entry.selects_star;
  facts.from_item_count = entry.from_item_count;
  facts.selected_columns = entry.selected_columns;
  facts.tables = entry.tables;
  facts.table_functions = entry.table_functions;

  auto render_clause = [&](const ParseCacheEntry::Clause& clause) {
    size_t total = 0;
    for (const auto& piece : clause.pieces) total += piece.size();
    for (uint32_t j : clause.slot_refs) total += slot_texts[j].size();
    std::string out;
    out.reserve(total);
    out += clause.pieces[0];
    for (size_t k = 0; k < clause.slot_refs.size(); ++k) {
      out += slot_texts[clause.slot_refs[k]];
      out += clause.pieces[k + 1];
    }
    return out;
  };
  facts.sc = render_clause(entry.sc);
  facts.fc = render_clause(entry.fc);
  facts.wc = render_clause(entry.wc);

  facts.predicates.reserve(entry.predicates.size());
  for (const auto& pt : entry.predicates) {
    sql::Predicate pred = pt.base;
    pred.values.reserve(pt.values.size());
    for (const auto& ref : pt.values) {
      pred.values.push_back(ref.is_slot ? slot_texts[ref.slot] : ref.fixed);
    }
    facts.predicates.push_back(std::move(pred));
  }
  return facts;
}

bool DeriveSlotTexts(const ParseCacheEntry& entry, const std::string& statement,
                     const std::vector<std::pair<uint32_t, uint32_t>>& constants,
                     std::vector<std::string>* slot_texts) {
  assert(constants.size() == entry.slots.size());
  slot_texts->resize(entry.slots.size());
  for (size_t j = 0; j < entry.slots.size(); ++j) {
    const size_t offset = constants[j].first;
    const size_t size = constants[j].second;
    if (offset > statement.size() || size > statement.size() - offset) return false;
    const std::string_view raw(statement.data() + offset, size);
    const ParseCacheEntry::Slot& slot = entry.slots[j];
    std::string& out = (*slot_texts)[j];
    if (slot.is_string) {
      // A canonical quoted literal's raw bytes ARE its rendered slot
      // text (RenderSlotText re-quotes with '' escaping — the identity
      // on well-formed input). Validate the form; reject otherwise.
      if (raw.size() < 2 || raw.front() != '\'' || raw.back() != '\'') return false;
      const std::string_view body = raw.substr(1, raw.size() - 2);
      for (size_t k = 0; k < body.size(); ++k) {
        if (body[k] == '\'') {
          if (k + 1 >= body.size() || body[k + 1] != '\'') return false;
          ++k;
        }
      }
      out.assign(raw);
    } else {
      out.clear();
      if (slot.negated) out.push_back('-');
      out.append(raw);
    }
  }
  return true;
}

// ----------------------------------------------------------- recipe serde
//
// The recipe blob is the `.sqb` dictionary's payload for seeding a parse
// cache (log/binlog.h stores it opaquely). Encoding reuses the binlog
// varint/cursor helpers; the version byte lets the format evolve without
// invalidating readers — an unknown version simply deserializes to null
// and the template is parsed instead.

namespace {

constexpr uint8_t kRecipeVersion = 1;
constexpr uint8_t kRecipeParseOk = 1u << 0;
constexpr uint8_t kRecipeCacheable = 1u << 1;
constexpr uint8_t kFactsConjunctive = 1u << 0;
constexpr uint8_t kFactsSelectsStar = 1u << 1;
constexpr uint8_t kSlotIsString = 1u << 0;
constexpr uint8_t kSlotNegated = 1u << 1;
constexpr uint8_t kPredConstantComparison = 1u << 0;
constexpr uint8_t kPredComparesToNull = 1u << 1;
constexpr uint8_t kPredLhsComputed = 1u << 2;
constexpr uint8_t kPredColumnEquijoin = 1u << 3;
constexpr uint8_t kMaxPredicateOp = static_cast<uint8_t>(sql::PredicateOp::kOther);

using log::binfmt::AppendVarint;
using log::binfmt::ByteReader;

void AppendString(std::string_view s, std::string* out) {
  AppendVarint(s.size(), out);
  out->append(s);
}

void AppendStringVector(const std::vector<std::string>& v, std::string* out) {
  AppendVarint(v.size(), out);
  for (const std::string& s : v) AppendString(s, out);
}

void AppendClause(const ParseCacheEntry::Clause& clause, std::string* out) {
  AppendStringVector(clause.pieces, out);
  AppendVarint(clause.slot_refs.size(), out);
  for (uint32_t ref : clause.slot_refs) AppendVarint(ref, out);
}

Status ReadString(ByteReader& reader, std::string* out) {
  std::string_view view;
  SQLOG_RETURN_IF_ERROR(reader.ReadLengthDelimited(&view));
  out->assign(view);
  return Status::OK();
}

Status ReadCount(ByteReader& reader, uint64_t* out) {
  SQLOG_RETURN_IF_ERROR(reader.ReadVarint(out));
  // Every counted element costs at least one byte, so any honest count
  // is bounded by what is left — reject before reserving.
  if (*out > reader.remaining()) return reader.Error("count exceeds remaining bytes");
  return Status::OK();
}

Status ReadStringVector(ByteReader& reader, std::vector<std::string>* out) {
  uint64_t count = 0;
  SQLOG_RETURN_IF_ERROR(ReadCount(reader, &count));
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string s;
    SQLOG_RETURN_IF_ERROR(ReadString(reader, &s));
    out->push_back(std::move(s));
  }
  return Status::OK();
}

Status ReadClause(ByteReader& reader, size_t slot_count,
                  ParseCacheEntry::Clause* clause) {
  SQLOG_RETURN_IF_ERROR(ReadStringVector(reader, &clause->pieces));
  uint64_t ref_count = 0;
  SQLOG_RETURN_IF_ERROR(ReadCount(reader, &ref_count));
  if (clause->pieces.size() != ref_count + 1) {
    return reader.Error("clause piece/slot counts disagree");
  }
  clause->slot_refs.reserve(static_cast<size_t>(ref_count));
  for (uint64_t i = 0; i < ref_count; ++i) {
    uint64_t ref = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&ref));
    if (ref >= slot_count) return reader.Error("slot reference out of range");
    clause->slot_refs.push_back(static_cast<uint32_t>(ref));
  }
  return Status::OK();
}

Status ReadByte(ByteReader& reader, uint8_t* out) {
  std::string_view view;
  SQLOG_RETURN_IF_ERROR(reader.ReadBytes(1, &view));
  *out = static_cast<uint8_t>(view[0]);
  return Status::OK();
}

/// The fallible core of DeserializeStatementRecipe; the public wrapper
/// collapses any error to null.
Status DeserializeRecipeImpl(std::string_view recipe, ParseCacheEntry* entry) {
  ByteReader reader(recipe, 0, "recipe");
  uint8_t version = 0;
  uint8_t flags = 0;
  SQLOG_RETURN_IF_ERROR(ReadByte(reader, &version));
  if (version != kRecipeVersion) return reader.Error("unknown recipe version");
  SQLOG_RETURN_IF_ERROR(ReadByte(reader, &flags));
  if ((flags & ~(kRecipeParseOk | kRecipeCacheable)) != 0) {
    return reader.Error("unknown recipe flags");
  }
  entry->parse_ok = (flags & kRecipeParseOk) != 0;
  entry->cacheable = (flags & kRecipeCacheable) != 0;
  if (entry->cacheable && !entry->parse_ok) {
    return reader.Error("cacheable recipe without a successful parse");
  }
  SQLOG_RETURN_IF_ERROR(ReadString(reader, &entry->key));
  if (!entry->cacheable) {
    if (!reader.exhausted()) return reader.Error("trailing bytes");
    return Status::OK();
  }

  SQLOG_RETURN_IF_ERROR(ReadString(reader, &entry->tmpl.ssc));
  SQLOG_RETURN_IF_ERROR(ReadString(reader, &entry->tmpl.sfc));
  SQLOG_RETURN_IF_ERROR(ReadString(reader, &entry->tmpl.swc));
  SQLOG_RETURN_IF_ERROR(ReadString(reader, &entry->tmpl.tail));
  SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&entry->tmpl.fingerprint));

  uint8_t fact_flags = 0;
  SQLOG_RETURN_IF_ERROR(ReadByte(reader, &fact_flags));
  if ((fact_flags & ~(kFactsConjunctive | kFactsSelectsStar)) != 0) {
    return reader.Error("unknown facts flags");
  }
  entry->where_conjunctive = (fact_flags & kFactsConjunctive) != 0;
  entry->selects_star = (fact_flags & kFactsSelectsStar) != 0;
  uint64_t from_items = 0;
  SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&from_items));
  if (from_items > INT32_MAX) return reader.Error("from-item count out of range");
  entry->from_item_count = static_cast<int>(from_items);

  SQLOG_RETURN_IF_ERROR(ReadStringVector(reader, &entry->selected_columns));
  SQLOG_RETURN_IF_ERROR(ReadStringVector(reader, &entry->tables));
  SQLOG_RETURN_IF_ERROR(ReadStringVector(reader, &entry->table_functions));

  uint64_t slot_count = 0;
  SQLOG_RETURN_IF_ERROR(ReadCount(reader, &slot_count));
  entry->slots.reserve(static_cast<size_t>(slot_count));
  for (uint64_t i = 0; i < slot_count; ++i) {
    uint8_t slot_flags = 0;
    SQLOG_RETURN_IF_ERROR(ReadByte(reader, &slot_flags));
    if ((slot_flags & ~(kSlotIsString | kSlotNegated)) != 0) {
      return reader.Error("unknown slot flags");
    }
    ParseCacheEntry::Slot slot;
    slot.is_string = (slot_flags & kSlotIsString) != 0;
    slot.negated = (slot_flags & kSlotNegated) != 0;
    entry->slots.push_back(slot);
  }

  SQLOG_RETURN_IF_ERROR(ReadClause(reader, entry->slots.size(), &entry->sc));
  SQLOG_RETURN_IF_ERROR(ReadClause(reader, entry->slots.size(), &entry->fc));
  SQLOG_RETURN_IF_ERROR(ReadClause(reader, entry->slots.size(), &entry->wc));

  uint64_t pred_count = 0;
  SQLOG_RETURN_IF_ERROR(ReadCount(reader, &pred_count));
  entry->predicates.reserve(static_cast<size_t>(pred_count));
  for (uint64_t i = 0; i < pred_count; ++i) {
    ParseCacheEntry::PredTemplate pt;
    uint8_t op = 0;
    SQLOG_RETURN_IF_ERROR(ReadByte(reader, &op));
    if (op > kMaxPredicateOp) return reader.Error("unknown predicate operator");
    pt.base.op = static_cast<sql::PredicateOp>(op);
    SQLOG_RETURN_IF_ERROR(ReadString(reader, &pt.base.qualifier));
    SQLOG_RETURN_IF_ERROR(ReadString(reader, &pt.base.column));
    uint8_t pred_flags = 0;
    SQLOG_RETURN_IF_ERROR(ReadByte(reader, &pred_flags));
    if ((pred_flags & ~(kPredConstantComparison | kPredComparesToNull |
                        kPredLhsComputed | kPredColumnEquijoin)) != 0) {
      return reader.Error("unknown predicate flags");
    }
    pt.base.constant_comparison = (pred_flags & kPredConstantComparison) != 0;
    pt.base.compares_to_null_literal = (pred_flags & kPredComparesToNull) != 0;
    pt.base.lhs_computed = (pred_flags & kPredLhsComputed) != 0;
    pt.base.column_equijoin = (pred_flags & kPredColumnEquijoin) != 0;
    uint8_t computed_op = 0;
    SQLOG_RETURN_IF_ERROR(ReadByte(reader, &computed_op));
    if (computed_op > kMaxPredicateOp) {
      return reader.Error("unknown predicate operator");
    }
    pt.base.computed_op = static_cast<sql::PredicateOp>(computed_op);
    SQLOG_RETURN_IF_ERROR(ReadString(reader, &pt.base.computed_fn));
    uint64_t value_count = 0;
    SQLOG_RETURN_IF_ERROR(ReadCount(reader, &value_count));
    pt.values.reserve(static_cast<size_t>(value_count));
    for (uint64_t j = 0; j < value_count; ++j) {
      ParseCacheEntry::ValueRef ref;
      uint8_t is_slot = 0;
      SQLOG_RETURN_IF_ERROR(ReadByte(reader, &is_slot));
      if (is_slot > 1) return reader.Error("unknown value-ref kind");
      ref.is_slot = is_slot != 0;
      if (ref.is_slot) {
        uint64_t slot = 0;
        SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&slot));
        if (slot >= entry->slots.size()) {
          return reader.Error("slot reference out of range");
        }
        ref.slot = static_cast<uint32_t>(slot);
      } else {
        SQLOG_RETURN_IF_ERROR(ReadString(reader, &ref.fixed));
      }
      pt.values.push_back(std::move(ref));
    }
    entry->predicates.push_back(std::move(pt));
  }
  if (!reader.exhausted()) return reader.Error("trailing bytes");
  return Status::OK();
}

}  // namespace

std::string SerializeParseCacheEntry(const ParseCacheEntry& entry) {
  std::string out;
  out.push_back(static_cast<char>(kRecipeVersion));
  uint8_t flags = 0;
  if (entry.parse_ok) flags |= kRecipeParseOk;
  if (entry.cacheable) flags |= kRecipeCacheable;
  out.push_back(static_cast<char>(flags));
  AppendString(entry.key, &out);
  if (!entry.cacheable) return out;

  AppendString(entry.tmpl.ssc, &out);
  AppendString(entry.tmpl.sfc, &out);
  AppendString(entry.tmpl.swc, &out);
  AppendString(entry.tmpl.tail, &out);
  AppendVarint(entry.tmpl.fingerprint, &out);

  uint8_t fact_flags = 0;
  if (entry.where_conjunctive) fact_flags |= kFactsConjunctive;
  if (entry.selects_star) fact_flags |= kFactsSelectsStar;
  out.push_back(static_cast<char>(fact_flags));
  AppendVarint(static_cast<uint64_t>(entry.from_item_count), &out);

  AppendStringVector(entry.selected_columns, &out);
  AppendStringVector(entry.tables, &out);
  AppendStringVector(entry.table_functions, &out);

  AppendVarint(entry.slots.size(), &out);
  for (const ParseCacheEntry::Slot& slot : entry.slots) {
    uint8_t slot_flags = 0;
    if (slot.is_string) slot_flags |= kSlotIsString;
    if (slot.negated) slot_flags |= kSlotNegated;
    out.push_back(static_cast<char>(slot_flags));
  }

  AppendClause(entry.sc, &out);
  AppendClause(entry.fc, &out);
  AppendClause(entry.wc, &out);

  AppendVarint(entry.predicates.size(), &out);
  for (const ParseCacheEntry::PredTemplate& pt : entry.predicates) {
    out.push_back(static_cast<char>(pt.base.op));
    AppendString(pt.base.qualifier, &out);
    AppendString(pt.base.column, &out);
    uint8_t pred_flags = 0;
    if (pt.base.constant_comparison) pred_flags |= kPredConstantComparison;
    if (pt.base.compares_to_null_literal) pred_flags |= kPredComparesToNull;
    if (pt.base.lhs_computed) pred_flags |= kPredLhsComputed;
    if (pt.base.column_equijoin) pred_flags |= kPredColumnEquijoin;
    out.push_back(static_cast<char>(pred_flags));
    out.push_back(static_cast<char>(pt.base.computed_op));
    AppendString(pt.base.computed_fn, &out);
    AppendVarint(pt.values.size(), &out);
    for (const ParseCacheEntry::ValueRef& ref : pt.values) {
      out.push_back(ref.is_slot ? '\x01' : '\x00');
      if (ref.is_slot) {
        AppendVarint(ref.slot, &out);
      } else {
        AppendString(ref.fixed, &out);
      }
    }
  }
  return out;
}

std::string BuildStatementRecipe(const std::string& statement) {
  if (sql::ClassifyStatement(statement) != sql::StatementKind::kSelect) return {};
  auto lexed = sql::Lex(statement);
  if (!lexed.ok()) return {};
  const sql::TokenStream& tokens = lexed.value();

  ParseCacheEntry entry;
  sql::AppendNormalizedKey(tokens, &entry.key);
  std::vector<const sql::Expr*> value_exprs;
  auto facts = sql::ParseAndAnalyzeTokens(tokens, &value_exprs);
  if (facts.ok()) {
    entry.parse_ok = true;
    BuildRecipes(tokens, facts.value(), value_exprs, entry);
  }
  // parse_ok stays false for syntax errors: the recipe still short-
  // circuits every later statement with this key (failure_hits).
  return SerializeParseCacheEntry(entry);
}

std::unique_ptr<ParseCacheEntry> DeserializeStatementRecipe(std::string_view template_text,
                                                            std::string_view recipe) {
  if (recipe.empty()) return nullptr;
  auto entry = std::make_unique<ParseCacheEntry>();
  Status status = DeserializeRecipeImpl(recipe, entry.get());
  if (!status.ok()) return nullptr;

  // Validate against the template text the recipe claims to describe: it
  // must produce exactly the recipe's key (so cache lookups agree) and,
  // when cacheable, the same number of placeholdered tokens as slots (so
  // RenderFacts never indexes out of a statement's literal list).
  auto lexed = sql::Lex(template_text);
  if (!lexed.ok()) return nullptr;
  std::string key;
  sql::AppendNormalizedKey(lexed.value(), &key);
  if (key != entry->key) return nullptr;
  if (entry->cacheable &&
      sql::PlaceholderedTokenIndices(lexed.value()).size() != entry->slots.size()) {
    return nullptr;
  }
  return entry;
}

}  // namespace sqlog::core
