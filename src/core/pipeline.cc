#include "core/pipeline.h"

#include <memory>
#include <unordered_set>

#include "core/parse_cache.h"
#include "log/binlog.h"
#include "log/log_io.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sqlog::core {

bool PipelineResult::PatternIsAntipattern(size_t pattern_index, bool solvable_only) const {
  const Pattern& pattern = patterns[pattern_index];
  // A mined pattern is flagged when its template sequence equals the
  // signature of some distinct antipattern. Mere membership of one
  // template in a longer signature does not flag the pattern: a CTH
  // head also used organically stays a pattern.
  for (const auto& d : antipatterns.distinct) {
    if (solvable_only) {
      bool solvable = antipatterns.detectors != nullptr
                          ? antipatterns.detectors->info(d.detector).solvable
                          : IsSolvable(d.type);
      if (!solvable) continue;
    }
    if (pattern.template_ids == d.template_ids) return true;
  }
  return false;
}

Status ValidatePipelineOptions(const PipelineOptions& options) {
  if (options.dedup.threshold_ms < 0 && !options.dedup.unrestricted) {
    return Status::InvalidArgument("dedup threshold_ms must be >= 0");
  }
  if (options.miner.max_length == 0) {
    return Status::InvalidArgument("miner max_length must be >= 1 (n-gram length)");
  }
  if (options.miner.max_gap_ms < 0) {
    return Status::InvalidArgument("miner max_gap_ms must be >= 0");
  }
  if (options.detector.max_gap_ms < 0) {
    return Status::InvalidArgument("detector max_gap_ms must be >= 0");
  }
  if (options.detector.cth_min_support == 0) {
    return Status::InvalidArgument("detector cth_min_support must be >= 1");
  }
  if (options.sws.frequency_fraction < 0.0 || options.sws.frequency_fraction > 1.0) {
    return Status::InvalidArgument("sws frequency_fraction must be within [0, 1]");
  }
  if (options.sws.max_user_popularity == 0) {
    return Status::InvalidArgument("sws max_user_popularity must be >= 1");
  }
  for (size_t r = 0; r < options.detector.custom_rules.size(); ++r) {
    if (!options.detector.custom_rules[r].detect) {
      return Status::InvalidArgument(
          StrFormat("custom rule #%zu has no detect hook", r));
    }
  }
  // Resolve the detector selection so unknown/duplicate ids surface at
  // validation time rather than mid-run.
  Result<std::shared_ptr<const DetectorSet>> detectors = DetectorSet::Resolve(options.detector);
  if (!detectors.ok()) return detectors.status();
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (options.streaming) {
    if (options.extra_clean_passes > 0) {
      return Status::InvalidArgument(
          "streaming mode does not support extra_clean_passes (re-cleaning "
          "needs the clean log in memory)");
    }
    if (!options.detector.custom_rules.empty()) {
      return Status::InvalidArgument(
          "streaming mode does not support custom rules (their hooks read "
          "ASTs the streaming parser releases)");
    }
    if (detectors.value()->AnyNeedsAst()) {
      return Status::InvalidArgument(
          "streaming mode does not support detectors that read per-query "
          "ASTs (the streaming parser releases them)");
    }
  }
  return Status::OK();
}

Result<Pipeline> PipelineBuilder::Build() const {
  SQLOG_RETURN_IF_ERROR_R(ValidatePipelineOptions(options_));
  Pipeline pipeline(options_);
  pipeline.SetSchema(schema_);
  return pipeline;
}

namespace {

/// Builds the thread pool for `num_threads` (see PipelineOptions): with
/// one thread no pool exists and every stage takes its serial path;
/// otherwise the pool holds one worker less than the requested count
/// because ParallelFor callers execute chunks themselves.
std::unique_ptr<util::ThreadPool> MakePool(size_t num_threads) {
  size_t threads = util::ResolveThreadCount(num_threads);
  if (threads <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(threads - 1);
}

/// Steps 3-4 + SWS, shared verbatim by the in-memory and streaming
/// paths: mine patterns, detect antipatterns, detect SWS, and fill the
/// overview statistics.
void AnalyzeParsed(const PipelineOptions& options, const catalog::Schema* schema,
                   util::ThreadPool* pool, const ParsedLog& parsed,
                   const TemplateStore& templates,
                   std::shared_ptr<const DetectorSet> detectors,
                   std::vector<Pattern>& patterns, AntipatternReport& antipatterns,
                   SwsReport& sws, PipelineStats& stats) {
  // Step 3 (Sec. 5.4): mine patterns.
  if (options.mine_patterns) {
    patterns = MinePatterns(parsed, options.miner, pool);
    SortByFrequency(patterns);
    stats.pattern_count = patterns.size();
    if (!patterns.empty()) {
      stats.max_pattern_frequency = patterns.front().frequency;
    }
  }

  // Step 4: detect antipatterns.
  antipatterns = DetectAntipatterns(parsed, templates, schema, options.detector,
                                    std::move(detectors), pool);
  stats.distinct_dw = antipatterns.CountDistinct(AntipatternType::kDwStifle);
  stats.queries_dw = antipatterns.CountQueries(AntipatternType::kDwStifle);
  stats.distinct_ds = antipatterns.CountDistinct(AntipatternType::kDsStifle);
  stats.queries_ds = antipatterns.CountQueries(AntipatternType::kDsStifle);
  stats.distinct_df = antipatterns.CountDistinct(AntipatternType::kDfStifle);
  stats.queries_df = antipatterns.CountQueries(AntipatternType::kDfStifle);
  stats.distinct_cth = antipatterns.CountDistinct(AntipatternType::kCthCandidate);
  stats.queries_cth = antipatterns.CountQueries(AntipatternType::kCthCandidate);
  stats.distinct_snc = antipatterns.CountDistinct(AntipatternType::kSnc);
  stats.queries_snc = antipatterns.CountQueries(AntipatternType::kSnc);

  // Registry additions (legacy_type kCustom, not a custom-rule adapter)
  // get their own row pair; empty for the default set, so the
  // golden-compared table is unchanged there.
  const DetectorSet& set = *antipatterns.detectors;
  for (uint32_t d = 0; d < set.size(); ++d) {
    const DetectorInfo& info = set.info(d);
    if (info.legacy_type != AntipatternType::kCustom || info.custom_rule >= 0) continue;
    PipelineStats::DetectorStatsRow row;
    row.label = info.display_name;
    row.distinct_count = antipatterns.DistinctOf(d);
    row.query_count = antipatterns.QueriesOf(d);
    stats.extra_detectors.push_back(std::move(row));
  }

  // SWS detection (Sec. 6.5) over the mined patterns.
  if (options.mine_patterns) {
    sws = DetectSws(patterns, parsed.queries.size(), options.sws);
  }
}

}  // namespace

Result<PipelineResult> Pipeline::Run(const log::QueryLog& raw_log) const {
  SQLOG_RETURN_IF_ERROR_R(ValidatePipelineOptions(options_));
  Result<std::shared_ptr<const DetectorSet>> detectors =
      DetectorSet::Resolve(options_.detector);
  if (!detectors.ok()) return detectors.status();  // unreachable post-validation

  std::unique_ptr<util::ThreadPool> owned_pool = MakePool(options_.num_threads);
  util::ThreadPool* pool = owned_pool.get();

  PipelineResult result;
  result.stats.original_size = raw_log.size();

  // Step 1 (Sec. 5.2): delete duplicates.
  log::QueryLog working = raw_log;
  if (!options_.use_user_metadata) {
    for (auto& record : working.records()) {
      record.user.clear();
      record.session.clear();
    }
  }
  DedupStats dedup_stats;
  result.pre_clean = RemoveDuplicates(working, options_.dedup, &dedup_stats, pool);
  result.stats.after_dedup_size = dedup_stats.output_count;
  result.stats.duplicates_removed = dedup_stats.removed_count;

  // Step 2 (Sec. 5.3): parse statements, build templates. AST-reading
  // detectors (legacy custom rules) force the cache off: their hooks
  // read per-query ASTs, which cache hits never build.
  ParseCacheOptions cache_options;
  cache_options.enabled = options_.parse_cache && !detectors.value()->AnyNeedsAst();
  result.parsed = ParseLog(result.pre_clean, result.templates, pool,
                           options_.max_parse_diagnostics, cache_options);
  result.stats.select_count = result.parsed.queries.size();
  result.stats.non_select_count = result.parsed.non_select_count;
  result.stats.syntax_error_count = result.parsed.syntax_error_count;
  result.stats.parse_diagnostics = result.parsed.diagnostics;

  // Steps 3-4 + SWS (shared with the streaming path).
  AnalyzeParsed(options_, schema_, pool, result.parsed, result.templates,
                detectors.value(), result.patterns, result.antipatterns, result.sws,
                result.stats);

  // Step 5 (Sec. 5.5): solve antipatterns.
  SolveOutcome outcome = SolveAntipatterns(result.pre_clean, result.parsed,
                                           result.antipatterns,
                                           options_.detector.custom_rules);
  result.clean_log = std::move(outcome.clean_log);
  result.removal_log = std::move(outcome.removal_log);
  result.stats.solve = outcome.stats;

  // Optional re-clean passes (Sec. 5.5). Statistics keep describing the
  // first pass — only the clean log is refined further.
  for (size_t pass = 0; pass < options_.extra_clean_passes; ++pass) {
    TemplateStore pass_templates;
    ParsedLog pass_parsed =
        ParseLog(result.clean_log, pass_templates, pool, /*max_diagnostics=*/0, cache_options);
    AntipatternReport pass_report = DetectAntipatterns(
        pass_parsed, pass_templates, schema_, options_.detector, detectors.value(), pool);
    uint64_t solvable = 0;
    for (const auto& instance : pass_report.instances) {
      if (pass_report.detectors->Solvable(instance)) ++solvable;
    }
    if (solvable == 0) break;
    SolveOutcome pass_outcome = SolveAntipatterns(result.clean_log, pass_parsed,
                                                  pass_report,
                                                  options_.detector.custom_rules);
    result.clean_log = std::move(pass_outcome.clean_log);
  }

  result.stats.final_size = result.clean_log.size();
  result.stats.removal_size = result.removal_log.size();

  return result;
}

Result<StreamingRunResult> Pipeline::RunStreaming(const std::string& input_path,
                                                  const std::string& clean_path,
                                                  const std::string& removal_path) const {
  PipelineOptions options = options_;
  options.streaming = true;  // enforce the streaming-mode restrictions
  SQLOG_RETURN_IF_ERROR_R(ValidatePipelineOptions(options));
  Result<std::shared_ptr<const DetectorSet>> detectors =
      DetectorSet::Resolve(options.detector);
  if (!detectors.ok()) return detectors.status();  // unreachable post-validation

  std::unique_ptr<util::ThreadPool> owned_pool = MakePool(options.num_threads);
  util::ThreadPool* pool = owned_pool.get();

  StreamingRunResult result;

  // Pass 1: read + dedup + parse, one batch at a time. The in-memory
  // path sorts by (timestamp, seq) before dedup; streaming replays that
  // scan in file order, so the file must already be sorted — generated
  // and exported logs are, arbitrary inputs are checked.
  auto input_format = log::ResolveReadFormat(options.input_format, input_path);
  SQLOG_RETURN_IF_ERROR_R(input_format.status());
  StreamingDeduper deduper(options.dedup);
  ParseCacheOptions cache_options;
  // Validation rejected AST-reading detectors in streaming mode, so the
  // cache can always be honoured here.
  cache_options.enabled = options.parse_cache;
  StreamingParser parser(result.templates, options.max_parse_diagnostics, pool,
                         cache_options);
  std::unique_ptr<log::RecordReader> reader_owned;
  log::BinLogReader* bin_reader = nullptr;  // non-null: shaped fast ingest
  if (*input_format == log::LogFormat::kSqb) {
    // A binary input carries its template dictionary up front: seed the
    // parser's persistent cache from the stored recipes, so every
    // record whose template validated ingests without a full parse.
    // Record shapes then let the parser skip lexing too (zero-lex path).
    auto bin = std::make_unique<log::BinLogReader>();
    SQLOG_RETURN_IF_ERROR_R(bin->Open(input_path));
    std::vector<std::unique_ptr<ParseCacheEntry>> seeds;
    seeds.reserve(bin->dictionary().size());
    for (const auto& entry : bin->dictionary()) {
      seeds.push_back(DeserializeStatementRecipe(entry.text, entry.recipe));
    }
    parser.SeedCache(std::move(seeds));
    // Upper bound (dedup may drop records), so the query vector never
    // realloc-moves during ingest.
    parser.ReserveQueries(bin->record_count());
    bin_reader = bin.get();
    reader_owned = std::move(bin);
  } else {
    reader_owned = std::make_unique<log::LogReader>();
    SQLOG_RETURN_IF_ERROR_R(reader_owned->Open(input_path));
  }
  log::RecordReader& reader = *reader_owned;
  std::vector<uint8_t> kept;  // per raw record, consulted by pass 2
  std::vector<log::LogRecord> batch;
  // Shape pool parallel to batch (`.sqb` only): the live prefix is
  // overwritten in place so span vectors keep capacity across batches.
  std::vector<log::RecordShape> batch_shapes;
  size_t batch_shape_count = 0;
  batch.reserve(options.batch_size);
  log::LogRecord record;
  bool eof = false;
  bool have_previous = false;
  int64_t previous_ts = 0;
  uint64_t previous_seq = 0;
  uint64_t raw_count = 0;
  uint64_t pre_clean_count = 0;
  while (true) {
    SQLOG_RETURN_IF_ERROR_R(reader.ReadRecord(&record, &eof));
    if (eof) break;
    ++raw_count;
    if (!options.use_user_metadata) {
      record.user.clear();
      record.session.clear();
    }
    if (have_previous &&
        (record.timestamp_ms < previous_ts ||
         (record.timestamp_ms == previous_ts && record.seq < previous_seq))) {
      return Status::InvalidArgument(StrFormat(
          "streaming mode requires a (timestamp, seq)-ordered input; record "
          "%llu (seq %llu) is out of order — run the in-memory pipeline instead",
          (unsigned long long)raw_count, (unsigned long long)record.seq));
    }
    previous_ts = record.timestamp_ms;
    previous_seq = record.seq;
    have_previous = true;
    bool duplicate = deduper.IsDuplicate(record);
    kept.push_back(duplicate ? 0 : 1);
    if (duplicate) continue;
    // Replicate RemoveDuplicates's Renumber(): pre-clean seqs are
    // positional (parse diagnostics echo them).
    record.seq = pre_clean_count++;
    if (bin_reader != nullptr) {
      if (batch_shape_count == batch_shapes.size()) batch_shapes.emplace_back();
      batch_shapes[batch_shape_count++].CopyFrom(bin_reader->last_shape());
    }
    batch.push_back(std::move(record));
    if (batch.size() >= options.batch_size) {
      parser.FeedBatch(batch, bin_reader != nullptr ? &batch_shapes : nullptr);
      batch.clear();
      batch_shape_count = 0;
    }
  }
  parser.FeedBatch(batch, bin_reader != nullptr ? &batch_shapes : nullptr);
  batch.clear();
  batch.shrink_to_fit();
  result.parsed = parser.Finish();

  result.stats.original_size = raw_count;
  result.stats.after_dedup_size = pre_clean_count;
  result.stats.duplicates_removed = deduper.duplicates_seen();
  result.stats.select_count = result.parsed.queries.size();
  result.stats.non_select_count = result.parsed.non_select_count;
  result.stats.syntax_error_count = result.parsed.syntax_error_count;
  result.stats.parse_diagnostics = result.parsed.diagnostics;

  // Steps 3-4 + SWS run on the compact AST-free state, unchanged.
  AnalyzeParsed(options, schema_, pool, result.parsed, result.templates,
                detectors.value(), result.patterns, result.antipatterns, result.sws,
                result.stats);

  // Pass 2: re-read the input, skip the duplicates found in pass 1, and
  // solve + emit the clean/removal logs incrementally. Output format
  // resolves per path (kAuto: by extension), so `clean.sqb` +
  // `removal.csv` is a valid combination; `.sqb` outputs store recipes
  // so they re-ingest parse-free.
  std::unique_ptr<log::RecordWriter> clean_writer = log::LogIo::MakeLogWriter(
      log::ResolveWriteFormat(options.output_format, clean_path),
      /*renumber=*/true, BuildStatementRecipe);  // SolveAntipatterns Renumber()s
  std::unique_ptr<log::RecordWriter> removal_writer = log::LogIo::MakeLogWriter(
      log::ResolveWriteFormat(options.output_format, removal_path),
      /*renumber=*/true, BuildStatementRecipe);
  SQLOG_RETURN_IF_ERROR_R(clean_writer->Open(clean_path));
  SQLOG_RETURN_IF_ERROR_R(removal_writer->Open(removal_path));
  StreamingSolver solver(result.parsed, result.antipatterns, *clean_writer,
                         *removal_writer);
  auto second_reader_owned = log::LogIo::OpenLogReader(input_path, *input_format);
  SQLOG_RETURN_IF_ERROR_R(second_reader_owned.status());
  log::RecordReader& second_reader = **second_reader_owned;
  uint64_t second_count = 0;
  while (true) {
    SQLOG_RETURN_IF_ERROR_R(second_reader.ReadRecord(&record, &eof));
    if (eof) break;
    if (second_count >= raw_count) {
      return Status::Internal("input grew between streaming passes");
    }
    if (!options.use_user_metadata) {
      record.user.clear();
      record.session.clear();
    }
    if (kept[second_count] != 0) {
      SQLOG_RETURN_IF_ERROR_R(solver.Feed(record));
    }
    ++second_count;
  }
  if (second_count != raw_count) {
    return Status::Internal("input shrank between streaming passes");
  }
  SQLOG_RETURN_IF_ERROR_R(solver.Finish());
  SQLOG_RETURN_IF_ERROR_R(clean_writer->Close());
  SQLOG_RETURN_IF_ERROR_R(removal_writer->Close());

  result.stats.solve = solver.stats();
  result.stats.final_size = clean_writer->records_written();
  result.stats.removal_size = removal_writer->records_written();
  return result;
}

}  // namespace sqlog::core
