#include "core/pipeline.h"

#include <unordered_set>

namespace sqlog::core {

bool PipelineResult::PatternIsAntipattern(size_t pattern_index, bool solvable_only) const {
  const Pattern& pattern = patterns[pattern_index];
  // A mined pattern is flagged when its template sequence equals the
  // signature of some distinct antipattern. Mere membership of one
  // template in a longer signature does not flag the pattern: a CTH
  // head also used organically stays a pattern.
  for (const auto& d : antipatterns.distinct) {
    if (solvable_only && !IsSolvable(d.type)) continue;
    if (pattern.template_ids == d.template_ids) return true;
  }
  return false;
}

PipelineResult Pipeline::Run(const log::QueryLog& raw_log) const {
  PipelineResult result;
  result.stats.original_size = raw_log.size();

  // Step 1 (Sec. 5.2): delete duplicates.
  log::QueryLog working = raw_log;
  if (!options_.use_user_metadata) {
    for (auto& record : working.records()) {
      record.user.clear();
      record.session.clear();
    }
  }
  DedupStats dedup_stats;
  result.pre_clean = RemoveDuplicates(working, options_.dedup, &dedup_stats);
  result.stats.after_dedup_size = dedup_stats.output_count;
  result.stats.duplicates_removed = dedup_stats.removed_count;

  // Step 2 (Sec. 5.3): parse statements, build templates.
  result.parsed = ParseLog(result.pre_clean, result.templates);
  result.stats.select_count = result.parsed.queries.size();
  result.stats.non_select_count = result.parsed.non_select_count;
  result.stats.syntax_error_count = result.parsed.syntax_error_count;

  // Step 3 (Sec. 5.4): mine patterns.
  if (options_.mine_patterns) {
    result.patterns = MinePatterns(result.parsed, options_.miner);
    SortByFrequency(result.patterns);
    result.stats.pattern_count = result.patterns.size();
    if (!result.patterns.empty()) {
      result.stats.max_pattern_frequency = result.patterns.front().frequency;
    }
  }

  // Step 4: detect antipatterns.
  result.antipatterns =
      DetectAntipatterns(result.parsed, result.templates, schema_, options_.detector);
  result.stats.distinct_dw = result.antipatterns.CountDistinct(AntipatternType::kDwStifle);
  result.stats.queries_dw = result.antipatterns.CountQueries(AntipatternType::kDwStifle);
  result.stats.distinct_ds = result.antipatterns.CountDistinct(AntipatternType::kDsStifle);
  result.stats.queries_ds = result.antipatterns.CountQueries(AntipatternType::kDsStifle);
  result.stats.distinct_df = result.antipatterns.CountDistinct(AntipatternType::kDfStifle);
  result.stats.queries_df = result.antipatterns.CountQueries(AntipatternType::kDfStifle);
  result.stats.distinct_cth =
      result.antipatterns.CountDistinct(AntipatternType::kCthCandidate);
  result.stats.queries_cth =
      result.antipatterns.CountQueries(AntipatternType::kCthCandidate);
  result.stats.distinct_snc = result.antipatterns.CountDistinct(AntipatternType::kSnc);
  result.stats.queries_snc = result.antipatterns.CountQueries(AntipatternType::kSnc);

  // SWS detection (Sec. 6.5) over the mined patterns.
  if (options_.mine_patterns) {
    result.sws = DetectSws(result.patterns, result.parsed.queries.size(), options_.sws);
  }

  // Step 5 (Sec. 5.5): solve antipatterns.
  SolveOutcome outcome = SolveAntipatterns(result.pre_clean, result.parsed,
                                           result.antipatterns,
                                           options_.detector.custom_rules);
  result.clean_log = std::move(outcome.clean_log);
  result.removal_log = std::move(outcome.removal_log);
  result.stats.solve = outcome.stats;

  // Optional re-clean passes (Sec. 5.5). Statistics keep describing the
  // first pass — only the clean log is refined further.
  for (size_t pass = 0; pass < options_.extra_clean_passes; ++pass) {
    TemplateStore pass_templates;
    ParsedLog pass_parsed = ParseLog(result.clean_log, pass_templates);
    AntipatternReport pass_report =
        DetectAntipatterns(pass_parsed, pass_templates, schema_, options_.detector);
    uint64_t solvable = 0;
    for (const auto& instance : pass_report.instances) {
      if (InstanceSolvable(instance, options_.detector.custom_rules)) ++solvable;
    }
    if (solvable == 0) break;
    SolveOutcome pass_outcome = SolveAntipatterns(result.clean_log, pass_parsed,
                                                  pass_report,
                                                  options_.detector.custom_rules);
    result.clean_log = std::move(pass_outcome.clean_log);
  }

  result.stats.final_size = result.clean_log.size();
  result.stats.removal_size = result.removal_log.size();

  return result;
}

}  // namespace sqlog::core
