#include "core/pipeline.h"

#include <memory>
#include <unordered_set>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace sqlog::core {

bool PipelineResult::PatternIsAntipattern(size_t pattern_index, bool solvable_only) const {
  const Pattern& pattern = patterns[pattern_index];
  // A mined pattern is flagged when its template sequence equals the
  // signature of some distinct antipattern. Mere membership of one
  // template in a longer signature does not flag the pattern: a CTH
  // head also used organically stays a pattern.
  for (const auto& d : antipatterns.distinct) {
    if (solvable_only && !IsSolvable(d.type)) continue;
    if (pattern.template_ids == d.template_ids) return true;
  }
  return false;
}

Status ValidatePipelineOptions(const PipelineOptions& options) {
  if (options.dedup.threshold_ms < 0 && !options.dedup.unrestricted) {
    return Status::InvalidArgument("dedup threshold_ms must be >= 0");
  }
  if (options.miner.max_length == 0) {
    return Status::InvalidArgument("miner max_length must be >= 1 (n-gram length)");
  }
  if (options.miner.max_gap_ms < 0) {
    return Status::InvalidArgument("miner max_gap_ms must be >= 0");
  }
  if (options.detector.max_gap_ms < 0) {
    return Status::InvalidArgument("detector max_gap_ms must be >= 0");
  }
  if (options.detector.cth_min_support == 0) {
    return Status::InvalidArgument("detector cth_min_support must be >= 1");
  }
  if (options.sws.frequency_fraction < 0.0 || options.sws.frequency_fraction > 1.0) {
    return Status::InvalidArgument("sws frequency_fraction must be within [0, 1]");
  }
  if (options.sws.max_user_popularity == 0) {
    return Status::InvalidArgument("sws max_user_popularity must be >= 1");
  }
  for (size_t r = 0; r < options.detector.custom_rules.size(); ++r) {
    if (!options.detector.custom_rules[r].detect) {
      return Status::InvalidArgument(
          StrFormat("custom rule #%zu has no detect hook", r));
    }
  }
  return Status::OK();
}

Result<Pipeline> PipelineBuilder::Build() const {
  SQLOG_RETURN_IF_ERROR_R(ValidatePipelineOptions(options_));
  Pipeline pipeline(options_);
  pipeline.SetSchema(schema_);
  return pipeline;
}

Result<PipelineResult> Pipeline::Run(const log::QueryLog& raw_log) const {
  SQLOG_RETURN_IF_ERROR_R(ValidatePipelineOptions(options_));

  // The parallel engine: with num_threads == 1 no pool exists and every
  // stage takes its serial path; otherwise the pool holds one worker
  // less than the requested thread count because ParallelFor callers
  // execute chunks themselves.
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = nullptr;
  size_t threads = util::ResolveThreadCount(options_.num_threads);
  if (threads > 1) {
    owned_pool = std::make_unique<util::ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }

  PipelineResult result;
  result.stats.original_size = raw_log.size();

  // Step 1 (Sec. 5.2): delete duplicates.
  log::QueryLog working = raw_log;
  if (!options_.use_user_metadata) {
    for (auto& record : working.records()) {
      record.user.clear();
      record.session.clear();
    }
  }
  DedupStats dedup_stats;
  result.pre_clean = RemoveDuplicates(working, options_.dedup, &dedup_stats, pool);
  result.stats.after_dedup_size = dedup_stats.output_count;
  result.stats.duplicates_removed = dedup_stats.removed_count;

  // Step 2 (Sec. 5.3): parse statements, build templates.
  result.parsed =
      ParseLog(result.pre_clean, result.templates, pool, options_.max_parse_diagnostics);
  result.stats.select_count = result.parsed.queries.size();
  result.stats.non_select_count = result.parsed.non_select_count;
  result.stats.syntax_error_count = result.parsed.syntax_error_count;
  result.stats.parse_diagnostics = result.parsed.diagnostics;

  // Step 3 (Sec. 5.4): mine patterns.
  if (options_.mine_patterns) {
    result.patterns = MinePatterns(result.parsed, options_.miner, pool);
    SortByFrequency(result.patterns);
    result.stats.pattern_count = result.patterns.size();
    if (!result.patterns.empty()) {
      result.stats.max_pattern_frequency = result.patterns.front().frequency;
    }
  }

  // Step 4: detect antipatterns.
  result.antipatterns =
      DetectAntipatterns(result.parsed, result.templates, schema_, options_.detector, pool);
  result.stats.distinct_dw = result.antipatterns.CountDistinct(AntipatternType::kDwStifle);
  result.stats.queries_dw = result.antipatterns.CountQueries(AntipatternType::kDwStifle);
  result.stats.distinct_ds = result.antipatterns.CountDistinct(AntipatternType::kDsStifle);
  result.stats.queries_ds = result.antipatterns.CountQueries(AntipatternType::kDsStifle);
  result.stats.distinct_df = result.antipatterns.CountDistinct(AntipatternType::kDfStifle);
  result.stats.queries_df = result.antipatterns.CountQueries(AntipatternType::kDfStifle);
  result.stats.distinct_cth =
      result.antipatterns.CountDistinct(AntipatternType::kCthCandidate);
  result.stats.queries_cth =
      result.antipatterns.CountQueries(AntipatternType::kCthCandidate);
  result.stats.distinct_snc = result.antipatterns.CountDistinct(AntipatternType::kSnc);
  result.stats.queries_snc = result.antipatterns.CountQueries(AntipatternType::kSnc);

  // SWS detection (Sec. 6.5) over the mined patterns.
  if (options_.mine_patterns) {
    result.sws = DetectSws(result.patterns, result.parsed.queries.size(), options_.sws);
  }

  // Step 5 (Sec. 5.5): solve antipatterns.
  SolveOutcome outcome = SolveAntipatterns(result.pre_clean, result.parsed,
                                           result.antipatterns,
                                           options_.detector.custom_rules);
  result.clean_log = std::move(outcome.clean_log);
  result.removal_log = std::move(outcome.removal_log);
  result.stats.solve = outcome.stats;

  // Optional re-clean passes (Sec. 5.5). Statistics keep describing the
  // first pass — only the clean log is refined further.
  for (size_t pass = 0; pass < options_.extra_clean_passes; ++pass) {
    TemplateStore pass_templates;
    ParsedLog pass_parsed = ParseLog(result.clean_log, pass_templates, pool);
    AntipatternReport pass_report =
        DetectAntipatterns(pass_parsed, pass_templates, schema_, options_.detector, pool);
    uint64_t solvable = 0;
    for (const auto& instance : pass_report.instances) {
      if (InstanceSolvable(instance, options_.detector.custom_rules)) ++solvable;
    }
    if (solvable == 0) break;
    SolveOutcome pass_outcome = SolveAntipatterns(result.clean_log, pass_parsed,
                                                  pass_report,
                                                  options_.detector.custom_rules);
    result.clean_log = std::move(pass_outcome.clean_log);
  }

  result.stats.final_size = result.clean_log.size();
  result.stats.removal_size = result.removal_log.size();

  return result;
}

}  // namespace sqlog::core
