#include "catalog/schema.h"

#include "util/string_util.h"

namespace sqlog::catalog {

TableDef& TableDef::AddColumn(const std::string& name, ColumnType type, bool is_key,
                              bool nullable) {
  ColumnDef col;
  col.name = ToLower(name);
  col.type = type;
  col.is_key = is_key;
  col.nullable = nullable;
  index_[col.name] = columns_.size();
  columns_.push_back(std::move(col));
  return *this;
}

const ColumnDef* TableDef::FindColumn(const std::string& name) const {
  auto it = index_.find(ToLower(name));
  if (it == index_.end()) return nullptr;
  return &columns_[it->second];
}

void Schema::AddTable(TableDef table) {
  std::string key = ToLower(table.name());
  tables_.insert_or_assign(std::move(key), std::move(table));
}

const TableDef* Schema::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return nullptr;
  return &it->second;
}

bool Schema::IsKeyColumn(const std::string& column,
                         const std::vector<std::string>& tables) const {
  std::string col = ToLower(column);
  if (tables.empty()) {
    for (const auto& [name, table] : tables_) {
      (void)name;
      const ColumnDef* def = table.FindColumn(col);
      if (def != nullptr && def->is_key) return true;
    }
    return false;
  }
  for (const auto& table_name : tables) {
    const TableDef* table = FindTable(table_name);
    if (table == nullptr) continue;
    const ColumnDef* def = table->FindColumn(col);
    if (def != nullptr && def->is_key) return true;
  }
  return false;
}

bool Schema::IsNullableColumn(const std::string& column,
                              const std::vector<std::string>& tables) const {
  std::string col = ToLower(column);
  if (tables.empty()) {
    for (const auto& [name, table] : tables_) {
      (void)name;
      const ColumnDef* def = table.FindColumn(col);
      if (def != nullptr && def->nullable) return true;
    }
    return false;
  }
  for (const auto& table_name : tables) {
    const TableDef* table = FindTable(table_name);
    if (table == nullptr) continue;
    const ColumnDef* def = table->FindColumn(col);
    if (def != nullptr && def->nullable) return true;
  }
  return false;
}

Schema MakeSkyServerSchema() {
  Schema schema;

  // Photometric catalogs. objid is the object key the paper's Stifle
  // antipatterns filter on; rowc_X / colc_X are the per-band centroid
  // columns of Table 6.
  for (const char* name : {"photoprimary", "photoobjall", "photoobj"}) {
    TableDef table(name);
    table.AddColumn("objid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("ra", ColumnType::kDouble)
        .AddColumn("dec", ColumnType::kDouble)
        .AddColumn("htmid", ColumnType::kInt64)
        .AddColumn("type", ColumnType::kInt64)
        .AddColumn("rowc_u", ColumnType::kDouble)
        .AddColumn("colc_u", ColumnType::kDouble)
        .AddColumn("rowc_g", ColumnType::kDouble)
        .AddColumn("colc_g", ColumnType::kDouble)
        .AddColumn("rowc_r", ColumnType::kDouble)
        .AddColumn("colc_r", ColumnType::kDouble)
        .AddColumn("rowc_i", ColumnType::kDouble)
        .AddColumn("colc_i", ColumnType::kDouble)
        .AddColumn("rowc_z", ColumnType::kDouble)
        .AddColumn("colc_z", ColumnType::kDouble)
        .AddColumn("u", ColumnType::kDouble)
        .AddColumn("g", ColumnType::kDouble)
        .AddColumn("r", ColumnType::kDouble)
        .AddColumn("i", ColumnType::kDouble)
        .AddColumn("z", ColumnType::kDouble)
        .AddColumn("run", ColumnType::kInt64)
        .AddColumn("rerun", ColumnType::kInt64)
        .AddColumn("camcol", ColumnType::kInt64)
        .AddColumn("field", ColumnType::kInt64)
        .AddColumn("status", ColumnType::kInt64)
        .AddColumn("flags", ColumnType::kInt64);
    schema.AddTable(std::move(table));
  }

  // Spectroscopic catalogs.
  for (const char* name : {"specobj", "specobjall"}) {
    TableDef table(name);
    table.AddColumn("specobjid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("bestobjid", ColumnType::kInt64)
        .AddColumn("plate", ColumnType::kInt64)
        .AddColumn("fiberid", ColumnType::kInt64)
        .AddColumn("mjd", ColumnType::kInt64)
        .AddColumn("ra", ColumnType::kDouble)
        .AddColumn("dec", ColumnType::kDouble)
        .AddColumn("z", ColumnType::kDouble)
        .AddColumn("zerr", ColumnType::kDouble)
        .AddColumn("specclass", ColumnType::kInt64);
    schema.AddTable(std::move(table));
  }

  // Metadata table queried by the SkyServer web UI (CTH candidate 1).
  {
    TableDef table("dbobjects");
    table.AddColumn("name", ColumnType::kString, /*is_key=*/true)
        .AddColumn("type", ColumnType::kString)
        .AddColumn("description", ColumnType::kString, /*is_key=*/false, /*nullable=*/true)
        .AddColumn("text", ColumnType::kString, /*is_key=*/false, /*nullable=*/true)
        .AddColumn("access", ColumnType::kString)
        .AddColumn("rank", ColumnType::kInt64);
    schema.AddTable(std::move(table));
  }

  // Galaxy view (subset of photoprimary used by the web form).
  {
    TableDef table("galaxy");
    table.AddColumn("objid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("ra", ColumnType::kDouble)
        .AddColumn("dec", ColumnType::kDouble)
        .AddColumn("u", ColumnType::kDouble)
        .AddColumn("g", ColumnType::kDouble)
        .AddColumn("r", ColumnType::kDouble)
        .AddColumn("i", ColumnType::kDouble)
        .AddColumn("z", ColumnType::kDouble);
    schema.AddTable(std::move(table));
  }

  // The paper's running example (Table 1).
  {
    TableDef table("employees");
    table.AddColumn("id", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("empid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("name", ColumnType::kString)
        .AddColumn("surname", ColumnType::kString)
        .AddColumn("birthday", ColumnType::kString)
        .AddColumn("phone", ColumnType::kString, /*is_key=*/false, /*nullable=*/true)
        .AddColumn("department", ColumnType::kString)
        .AddColumn("address", ColumnType::kString, /*is_key=*/false, /*nullable=*/true);
    schema.AddTable(std::move(table));
  }
  {
    TableDef table("employee");
    table.AddColumn("empid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("name", ColumnType::kString)
        .AddColumn("address", ColumnType::kString, /*is_key=*/false, /*nullable=*/true)
        .AddColumn("phone", ColumnType::kString, /*is_key=*/false, /*nullable=*/true);
    schema.AddTable(std::move(table));
  }
  {
    TableDef table("employeeinfo");
    table.AddColumn("empid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("address", ColumnType::kString, /*is_key=*/false, /*nullable=*/true)
        .AddColumn("phone", ColumnType::kString, /*is_key=*/false, /*nullable=*/true);
    schema.AddTable(std::move(table));
  }
  {
    TableDef table("orders");
    table.AddColumn("orderid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("empid", ColumnType::kInt64)
        .AddColumn("orders", ColumnType::kInt64)
        .AddColumn("datetime", ColumnType::kString);
    schema.AddTable(std::move(table));
  }
  {
    TableDef table("bugs");
    table.AddColumn("bugid", ColumnType::kInt64, /*is_key=*/true)
        .AddColumn("assigned_to", ColumnType::kInt64, /*is_key=*/false, /*nullable=*/true)
        .AddColumn("status", ColumnType::kString);
    schema.AddTable(std::move(table));
  }

  return schema;
}

}  // namespace sqlog::catalog
