#ifndef SQLOG_CATALOG_SCHEMA_H_
#define SQLOG_CATALOG_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace sqlog::catalog {

/// Column value domains, shared with the execution engine.
enum class ColumnType {
  kInt64,
  kDouble,
  kString,
};

/// One column of a table. `is_key` marks primary-key or unique-key
/// attributes — Definition 11 (Stifle) requires the filter column of
/// every query in the pattern to be a key attribute.
struct ColumnDef {
  std::string name;  // stored lower-case
  ColumnType type = ColumnType::kString;
  bool is_key = false;
  bool nullable = false;
};

/// One table of the schema.
class TableDef {
 public:
  TableDef() = default;
  explicit TableDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Appends a column; name is lower-cased. Returns *this for chaining.
  TableDef& AddColumn(const std::string& name, ColumnType type, bool is_key = false,
                      bool nullable = false);

  /// Case-insensitive column lookup; nullptr when absent.
  const ColumnDef* FindColumn(const std::string& name) const;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_;
};

/// Case-insensitive schema catalog. The Stifle detector asks it whether
/// a filter column is a key attribute of any table mentioned in FROM.
class Schema {
 public:
  /// Registers a table (name lower-cased). Re-registering replaces.
  void AddTable(TableDef table);

  /// Case-insensitive table lookup; nullptr when absent.
  const TableDef* FindTable(const std::string& name) const;

  /// True iff `column` is a key attribute of at least one of `tables`
  /// (each looked up case-insensitively; unknown tables are skipped).
  /// With an empty table list, searches the whole catalog — this covers
  /// queries whose FROM could not be resolved.
  bool IsKeyColumn(const std::string& column, const std::vector<std::string>& tables) const;

  /// True iff `column` is declared nullable in at least one of `tables`
  /// (same lookup rules as IsKeyColumn). The fear-of-the-unknown
  /// detector uses this to restrict NULL-blind `<>` filters to columns
  /// that can actually hold NULL.
  bool IsNullableColumn(const std::string& column, const std::vector<std::string>& tables) const;

  size_t table_count() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, TableDef> tables_;
};

/// Builds the bundled SkyServer-style schema used by the case study:
/// photoprimary / photoobjall (objid key, per-band row/col centroids,
/// ra/dec, htmid, magnitudes), specobj / specobjall (specobjid key),
/// dbobjects (name key), plus the Employees/Orders examples from the
/// paper's running example.
Schema MakeSkyServerSchema();

}  // namespace sqlog::catalog

#endif  // SQLOG_CATALOG_SCHEMA_H_
