#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/byte_class.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sqlog {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar twins — the reference implementations every other level is
// differentially tested against. Byte-at-a-time over the class table.
// ---------------------------------------------------------------------------

size_t ScalarSkipSpace(std::string_view text, size_t pos) {
  while (pos < text.size() && IsSpaceByte(text[pos])) ++pos;
  return pos;
}

size_t ScalarSkipIdentRun(std::string_view text, size_t pos) {
  while (pos < text.size() && IsIdentCharByte(text[pos])) ++pos;
  return pos;
}

size_t ScalarFindByte(std::string_view text, size_t pos, char needle) {
  while (pos < text.size() && text[pos] != needle) ++pos;
  return pos;
}

size_t ScalarFindLineSpecial(std::string_view text, size_t pos) {
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '"' || c == '\r' || c == '\n') return pos;
    ++pos;
  }
  return pos;
}

// sqlog-lint: allow(R10 appends into the caller-owned output buffer, reused across statements; growth is amortized)
void ScalarAppendLowered(std::string_view text, std::string* out) {
  for (char c : text) out->push_back(ToLowerByte(c));
}

void ScalarBuildClassBitmaps(std::string_view text, uint64_t* space_bits,
                             uint64_t* ident_bits) {
  const char* data = text.data();
  size_t n = text.size();
  size_t words = (n + 63) >> 6;
  for (size_t w = 0; w < words; ++w) {
    size_t base = w << 6;
    size_t limit = n - base < 64 ? n - base : 64;
    uint64_t sp = 0;
    uint64_t id = 0;
    for (size_t k = 0; k < limit; ++k) {
      char c = data[base + k];
      sp |= static_cast<uint64_t>(IsSpaceByte(c)) << k;
      id |= static_cast<uint64_t>(IsIdentCharByte(c)) << k;
    }
    space_bits[w] = sp;
    ident_bits[w] = id;
  }
}

// ---------------------------------------------------------------------------
// Hash core. All levels run the same 16-bytes-per-round schedule; only
// the word loads differ, so results are identical by construction (and
// re-proven by the differential tests).
// ---------------------------------------------------------------------------

constexpr uint64_t kHashK0 = 0xc3a5c85c97cb3127ULL;
constexpr uint64_t kHashK1 = 0xb492b66fbe98f273ULL;
constexpr uint64_t kHashK2 = 0x9ae16a3b2f90404fULL;

inline uint64_t Rotl64(uint64_t v, int s) { return (v << s) | (v >> (64 - s)); }

inline uint64_t MixHash(uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 29;
  v *= 0xc4ceb9fe1a85ec53ULL;
  v ^= v >> 32;
  return v;
}

inline void HashRound(uint64_t w0, uint64_t w1, uint64_t* a, uint64_t* b) {
  *a = Rotl64(*a ^ (w0 * kHashK1), 29) * kHashK0;
  *b = Rotl64(*b ^ (w1 * kHashK0), 31) * kHashK1;
  *a ^= *b >> 17;
}

inline Hash128 HashFinish(uint64_t a, uint64_t b) {
  Hash128 h;
  h.lo = MixHash(a ^ Rotl64(b, 23));
  h.hi = MixHash(b + (a ^ kHashK2));
  return h;
}

// Little-endian word assembly: the canonical byte order of the hash is
// defined byte-by-byte, so the value is host-independent.
inline uint64_t AssembleLe64(const unsigned char* p) {
  return static_cast<uint64_t>(p[0]) | static_cast<uint64_t>(p[1]) << 8 |
         static_cast<uint64_t>(p[2]) << 16 | static_cast<uint64_t>(p[3]) << 24 |
         static_cast<uint64_t>(p[4]) << 32 | static_cast<uint64_t>(p[5]) << 40 |
         static_cast<uint64_t>(p[6]) << 48 | static_cast<uint64_t>(p[7]) << 56;
}

inline void HashTail(const unsigned char* p, size_t len, uint64_t* a, uint64_t* b) {
  if (len == 0) return;
  unsigned char buf[16] = {0};
  std::memcpy(buf, p, len);
  HashRound(AssembleLe64(buf), AssembleLe64(buf + 8), a, b);
}

Hash128 ScalarHashKey128(std::string_view data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t len = data.size();
  uint64_t a = kHashK0 ^ (len * kHashK2);
  uint64_t b = kHashK1 ^ Rotl64(len, 32);
  while (len >= 16) {
    HashRound(AssembleLe64(p), AssembleLe64(p + 8), &a, &b);
    p += 16;
    len -= 16;
  }
  HashTail(p, len, &a, &b);
  return HashFinish(a, b);
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define SQLOG_SIMD_LITTLE_ENDIAN 1
#else
#define SQLOG_SIMD_LITTLE_ENDIAN 0
#endif

#if SQLOG_SIMD_LITTLE_ENDIAN

// ---------------------------------------------------------------------------
// SWAR level: 8-byte words, classification via exact per-byte bit math.
//
// The classic bit-twiddling haszero/hasless formulas are only exact up
// to the first matching byte (borrows contaminate higher bytes), which
// is fine for find-first-match but wrong for find-first-NON-match: a
// false positive after a real match would make a skip loop overrun.
// These masks instead confine all carries inside each byte — add at
// most 0x7F to a 7-bit lane — so every lane is exact:
//   nonzero(t): ((t & ~H) + ~H) | t  has the high bit set iff t != 0.
// ---------------------------------------------------------------------------

constexpr uint64_t kLoBits = 0x0101010101010101ULL;
constexpr uint64_t kHiBits = 0x8080808080808080ULL;

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

/// 0x80 in each byte equal to n; exact in every lane.
inline uint64_t EqMask(uint64_t x, uint8_t n) {
  uint64_t t = x ^ (kLoBits * n);
  return ~((((t & ~kHiBits) + ~kHiBits) | t)) & kHiBits;
}

/// 0x80 in each byte within [lo, hi] (hi < 0x80); exact in every lane.
inline uint64_t RangeMask(uint64_t x, uint8_t lo, uint8_t hi) {
  uint64_t low7 = x & ~kHiBits;
  uint64_t ge = (low7 + kLoBits * static_cast<uint64_t>(0x80 - lo)) & kHiBits;
  uint64_t le = ~(low7 + kLoBits * static_cast<uint64_t>(0x7F - hi)) & kHiBits;
  return ge & le & ~(x & kHiBits);
}

inline uint64_t SpaceMask(uint64_t w) {
  return EqMask(w, ' ') | RangeMask(w, 0x09, 0x0D);
}

inline uint64_t IdentMask(uint64_t w) {
  return RangeMask(w, 'a', 'z') | RangeMask(w, 'A', 'Z') | RangeMask(w, '0', '9') |
         EqMask(w, '_') | EqMask(w, '$') | EqMask(w, '#');
}

/// Index of the first 0x80 flag (little-endian lane order).
inline size_t FirstFlag(uint64_t mask) {
  return static_cast<size_t>(__builtin_ctzll(mask)) >> 3;
}

/// Most skip calls from the lexer end within the first few bytes — a
/// single space between tokens, a 3-to-10-byte identifier tail. Both
/// vector levels classify a word-sized prefix through the class table
/// first, so the short-run common case never pays vector setup and the
/// wide loop only runs when there is a real run to eat.
constexpr size_t kSkipPrefix = 4;

template <uint64_t (*ClassMask)(uint64_t), uint8_t ClassBits,
          size_t (*ScalarTail)(std::string_view, size_t)>
size_t SwarSkipClass(std::string_view text, size_t pos) {
  const char* data = text.data();
  size_t n = text.size();
  const size_t stop = pos + kSkipPrefix < n ? pos + kSkipPrefix : n;
  for (; pos < stop; ++pos) {
    if (!HasByteClass(data[pos], ClassBits)) return pos;
  }
  while (pos + 8 <= n) {
    uint64_t miss = ~ClassMask(LoadWord(data + pos)) & kHiBits;
    if (miss != 0) return pos + FirstFlag(miss);
    pos += 8;
  }
  return ScalarTail(text, pos);
}

size_t SwarSkipSpace(std::string_view text, size_t pos) {
  return SwarSkipClass<SpaceMask, byte_class::kSpace, ScalarSkipSpace>(text, pos);
}

size_t SwarSkipIdentRun(std::string_view text, size_t pos) {
  return SwarSkipClass<IdentMask, byte_class::kIdentChar, ScalarSkipIdentRun>(text, pos);
}

size_t SwarFindByte(std::string_view text, size_t pos, char needle) {
  const char* data = text.data();
  size_t n = text.size();
  // Lexer spans (quoted literals) are usually a handful of bytes; scan a
  // short prefix before paying word setup. Long CSV spans lose 4 compares.
  const size_t stop = pos + kSkipPrefix < n ? pos + kSkipPrefix : n;
  for (; pos < stop; ++pos) {
    if (data[pos] == needle) return pos;
  }
  while (pos + 8 <= n) {
    uint64_t hit = EqMask(LoadWord(data + pos), static_cast<uint8_t>(needle));
    if (hit != 0) return pos + FirstFlag(hit);
    pos += 8;
  }
  return ScalarFindByte(text, pos, needle);
}

size_t SwarFindLineSpecial(std::string_view text, size_t pos) {
  const char* data = text.data();
  size_t n = text.size();
  while (pos + 8 <= n) {
    uint64_t w = LoadWord(data + pos);
    uint64_t hit = EqMask(w, '"') | EqMask(w, '\r') | EqMask(w, '\n');
    if (hit != 0) return pos + FirstFlag(hit);
    pos += 8;
  }
  return ScalarFindLineSpecial(text, pos);
}

// sqlog-lint: allow(R10 appends into the caller-owned output buffer; see ScalarAppendLowered)
void SwarAppendLowered(std::string_view text, std::string* out) {
  size_t pos = 0;
  size_t n = text.size();
  const char* data = text.data();
  char buf[8];
  while (pos + 8 <= n) {
    uint64_t w = LoadWord(data + pos);
    // 0x80 flags on upper-case lanes shift down to the 0x20 case bit.
    w |= RangeMask(w, 'A', 'Z') >> 2;
    std::memcpy(buf, &w, sizeof(buf));
    out->append(buf, sizeof(buf));
    pos += 8;
  }
  for (; pos < n; ++pos) out->push_back(ToLowerByte(data[pos]));
}

Hash128 SwarHashKey128(std::string_view data) {
  const char* p = data.data();
  size_t len = data.size();
  uint64_t a = kHashK0 ^ (data.size() * kHashK2);
  uint64_t b = kHashK1 ^ Rotl64(data.size(), 32);
  while (len >= 16) {
    HashRound(LoadWord(p), LoadWord(p + 8), &a, &b);
    p += 16;
    len -= 16;
  }
  HashTail(reinterpret_cast<const unsigned char*>(p), len, &a, &b);
  return HashFinish(a, b);
}

/// Gathers the 0x80 lane flags of a SWAR class mask into the low 8 bits
/// (lane 0 -> bit 0). The multiply shifts each flag into the top byte;
/// cross terms land strictly below bit 56, so no carry reaches it.
uint64_t SwarGatherFlags(uint64_t flags) {
  return (flags * 0x0002040810204081ULL) >> 56;
}

void SwarBuildClassBitmaps(std::string_view text, uint64_t* space_bits,
                           uint64_t* ident_bits) {
  const char* data = text.data();
  size_t n = text.size();
  size_t words = (n + 63) >> 6;
  for (size_t w = 0; w < words; ++w) {
    size_t base = w << 6;
    size_t limit = n - base < 64 ? n - base : 64;
    uint64_t sp = 0;
    uint64_t id = 0;
    size_t k = 0;
    for (; k + 8 <= limit; k += 8) {
      uint64_t x = LoadWord(data + base + k);
      sp |= SwarGatherFlags(SpaceMask(x)) << k;
      id |= SwarGatherFlags(IdentMask(x)) << k;
    }
    for (; k < limit; ++k) {
      char c = data[base + k];
      sp |= static_cast<uint64_t>(IsSpaceByte(c)) << k;
      id |= static_cast<uint64_t>(IsIdentCharByte(c)) << k;
    }
    space_bits[w] = sp;
    ident_bits[w] = id;
  }
}

#endif  // SQLOG_SIMD_LITTLE_ENDIAN

#if defined(__SSE2__) && SQLOG_SIMD_LITTLE_ENDIAN

// ---------------------------------------------------------------------------
// SSE2 level: 16-byte vectors. Range tests use the unsigned-min trick
// (min(x - lo, hi - lo) == x - lo), which is exact for all 256 byte
// values including >= 0x80.
// ---------------------------------------------------------------------------

inline __m128i EqV(__m128i x, char n) { return _mm_cmpeq_epi8(x, _mm_set1_epi8(n)); }

inline __m128i RangeV(__m128i x, char lo, char hi) {
  __m128i u = _mm_sub_epi8(x, _mm_set1_epi8(lo));
  __m128i k = _mm_set1_epi8(static_cast<char>(hi - lo));
  return _mm_cmpeq_epi8(_mm_min_epu8(u, k), u);
}

inline __m128i SpaceV(__m128i x) {
  return _mm_or_si128(EqV(x, ' '), RangeV(x, 0x09, 0x0D));
}

inline __m128i IdentV(__m128i x) {
  __m128i alpha = _mm_or_si128(RangeV(x, 'a', 'z'), RangeV(x, 'A', 'Z'));
  __m128i extra = _mm_or_si128(_mm_or_si128(EqV(x, '_'), EqV(x, '$')), EqV(x, '#'));
  return _mm_or_si128(_mm_or_si128(alpha, RangeV(x, '0', '9')), extra);
}

template <__m128i (*ClassV)(__m128i), uint8_t ClassBits,
          size_t (*ScalarTail)(std::string_view, size_t)>
size_t Sse2SkipClass(std::string_view text, size_t pos) {
  const char* data = text.data();
  size_t n = text.size();
  // Same short-run prefix as the SWAR level (see kSkipPrefix).
  const size_t stop = pos + kSkipPrefix < n ? pos + kSkipPrefix : n;
  for (; pos < stop; ++pos) {
    if (!HasByteClass(data[pos], ClassBits)) return pos;
  }
  while (pos + 16 <= n) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    int bits = _mm_movemask_epi8(ClassV(x));
    if (bits != 0xFFFF) {
      return pos + static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(bits) & 0xFFFFu));
    }
    pos += 16;
  }
  return ScalarTail(text, pos);
}

size_t Sse2SkipSpace(std::string_view text, size_t pos) {
  return Sse2SkipClass<SpaceV, byte_class::kSpace, ScalarSkipSpace>(text, pos);
}

size_t Sse2SkipIdentRun(std::string_view text, size_t pos) {
  return Sse2SkipClass<IdentV, byte_class::kIdentChar, ScalarSkipIdentRun>(text, pos);
}

size_t Sse2FindByte(std::string_view text, size_t pos, char needle) {
  const char* data = text.data();
  size_t n = text.size();
  // Same short-span prefix as SwarFindByte.
  const size_t stop = pos + kSkipPrefix < n ? pos + kSkipPrefix : n;
  for (; pos < stop; ++pos) {
    if (data[pos] == needle) return pos;
  }
  while (pos + 16 <= n) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    int bits = _mm_movemask_epi8(EqV(x, needle));
    if (bits != 0) return pos + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(bits)));
    pos += 16;
  }
  return ScalarFindByte(text, pos, needle);
}

size_t Sse2FindLineSpecial(std::string_view text, size_t pos) {
  const char* data = text.data();
  size_t n = text.size();
  while (pos + 16 <= n) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    __m128i hit = _mm_or_si128(_mm_or_si128(EqV(x, '"'), EqV(x, '\r')), EqV(x, '\n'));
    int bits = _mm_movemask_epi8(hit);
    if (bits != 0) return pos + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(bits)));
    pos += 16;
  }
  return ScalarFindLineSpecial(text, pos);
}

// sqlog-lint: allow(R10 appends into the caller-owned output buffer; see ScalarAppendLowered)
void Sse2AppendLowered(std::string_view text, std::string* out) {
  size_t pos = 0;
  size_t n = text.size();
  const char* data = text.data();
  char buf[16];
  while (pos + 16 <= n) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    __m128i upper = RangeV(x, 'A', 'Z');
    x = _mm_or_si128(x, _mm_and_si128(upper, _mm_set1_epi8(0x20)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(buf), x);
    out->append(buf, sizeof(buf));
    pos += 16;
  }
  for (; pos < n; ++pos) out->push_back(ToLowerByte(data[pos]));
}

void Sse2BuildClassBitmaps(std::string_view text, uint64_t* space_bits,
                           uint64_t* ident_bits) {
  const char* data = text.data();
  size_t n = text.size();
  size_t words = (n + 63) >> 6;
  for (size_t w = 0; w < words; ++w) {
    size_t base = w << 6;
    size_t limit = n - base < 64 ? n - base : 64;
    uint64_t sp = 0;
    uint64_t id = 0;
    size_t k = 0;
    for (; k + 16 <= limit; k += 16) {
      __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + base + k));
      sp |= static_cast<uint64_t>(
                static_cast<uint16_t>(_mm_movemask_epi8(SpaceV(x))))
            << k;
      id |= static_cast<uint64_t>(
                static_cast<uint16_t>(_mm_movemask_epi8(IdentV(x))))
            << k;
    }
    for (; k < limit; ++k) {
      char c = data[base + k];
      sp |= static_cast<uint64_t>(IsSpaceByte(c)) << k;
      id |= static_cast<uint64_t>(IsIdentCharByte(c)) << k;
    }
    space_bits[w] = sp;
    ident_bits[w] = id;
  }
}

#endif  // __SSE2__ && SQLOG_SIMD_LITTLE_ENDIAN

// ---------------------------------------------------------------------------
// Dispatch. One function-pointer table per level; the active table is
// an atomic pointer resolved on first use from SQLOG_FORCE_SCALAR and
// CPU support, and swappable from tests via ForceLevelForTest().
// ---------------------------------------------------------------------------

struct Kernels {
  Level level;
  size_t (*skip_space)(std::string_view, size_t);
  size_t (*skip_ident_run)(std::string_view, size_t);
  size_t (*find_byte)(std::string_view, size_t, char);
  size_t (*find_line_special)(std::string_view, size_t);
  void (*append_lowered)(std::string_view, std::string*);
  Hash128 (*hash_key_128)(std::string_view);
  void (*build_class_bitmaps)(std::string_view, uint64_t*, uint64_t*);
};

constexpr Kernels kScalarKernels = {
    Level::kScalar,       ScalarSkipSpace,     ScalarSkipIdentRun, ScalarFindByte,
    ScalarFindLineSpecial, ScalarAppendLowered, ScalarHashKey128,
    ScalarBuildClassBitmaps,
};

#if SQLOG_SIMD_LITTLE_ENDIAN
constexpr Kernels kSwarKernels = {
    Level::kSwar,        SwarSkipSpace,     SwarSkipIdentRun, SwarFindByte,
    SwarFindLineSpecial, SwarAppendLowered, SwarHashKey128,
    SwarBuildClassBitmaps,
};
#endif

#if defined(__SSE2__) && SQLOG_SIMD_LITTLE_ENDIAN
constexpr Kernels kSse2Kernels = {
    Level::kSse2,        Sse2SkipSpace,     Sse2SkipIdentRun, Sse2FindByte,
    Sse2FindLineSpecial, Sse2AppendLowered,
    // SSE2 has no 64-bit lane multiply, so the hash rides the SWAR
    // word loop; the vector win is in the scan kernels.
    SwarHashKey128,
    Sse2BuildClassBitmaps,
};
#endif

const Kernels* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarKernels;
    case Level::kSwar:
#if SQLOG_SIMD_LITTLE_ENDIAN
      return &kSwarKernels;
#else
      return &kScalarKernels;
#endif
    case Level::kSse2:
#if defined(__SSE2__) && SQLOG_SIMD_LITTLE_ENDIAN
      return &kSse2Kernels;
#elif SQLOG_SIMD_LITTLE_ENDIAN
      return &kSwarKernels;
#else
      return &kScalarKernels;
#endif
  }
  return &kScalarKernels;
}

bool ForceScalarFromEnv() {
  const char* v = std::getenv("SQLOG_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const Kernels* DefaultTable() {
  static const Kernels* table =
      ForceScalarFromEnv() ? &kScalarKernels : TableFor(BestSupportedLevel());
  return table;
}

std::atomic<const Kernels*>& ActiveSlot() {
  static std::atomic<const Kernels*> slot{DefaultTable()};
  return slot;
}

inline const Kernels& Active() {
  return *ActiveSlot().load(std::memory_order_acquire);
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSwar:
      return "swar";
    case Level::kSse2:
      return "sse2";
  }
  return "unknown";
}

Level BestSupportedLevel() {
#if defined(__SSE2__) && SQLOG_SIMD_LITTLE_ENDIAN
  return Level::kSse2;
#elif SQLOG_SIMD_LITTLE_ENDIAN
  return Level::kSwar;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() { return Active().level; }

void ForceLevelForTest(Level level) {
  ActiveSlot().store(TableFor(level), std::memory_order_release);
}

void ResetLevelForTest() {
  ActiveSlot().store(DefaultTable(), std::memory_order_release);
}

size_t SkipSpace(std::string_view text, size_t pos) {
  return Active().skip_space(text, pos);
}

size_t SkipIdentRun(std::string_view text, size_t pos) {
  return Active().skip_ident_run(text, pos);
}

size_t FindByte(std::string_view text, size_t pos, char needle) {
  return Active().find_byte(text, pos, needle);
}

size_t FindLineSpecial(std::string_view text, size_t pos) {
  return Active().find_line_special(text, pos);
}

void AppendLowered(std::string_view text, std::string* out) {
  Active().append_lowered(text, out);
}

Hash128 HashKey128(std::string_view data) { return Active().hash_key_128(data); }

void BuildClassBitmaps(std::string_view text, uint64_t* space_bits,
                       uint64_t* ident_bits) {
  Active().build_class_bitmaps(text, space_bits, ident_bits);
}

}  // namespace simd
}  // namespace sqlog
