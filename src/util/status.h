#ifndef SQLOG_UTIL_STATUS_H_
#define SQLOG_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sqlog {

/// Error categories used across the library. Library code never throws;
/// every fallible operation reports through Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Lightweight error-or-success value, modelled after absl::Status /
/// rocksdb::Status. Ok statuses carry no allocation.
///
/// [[nodiscard]] on the class makes silently dropping any returned
/// Status a compile error (-Werror=unused-result): a caller must check,
/// propagate, or explicitly log it. The same applies to Result<T>.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error, modelled after absl::StatusOr. Accessing the value of
/// a non-ok Result is a programming error (checked by assert).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: makes `return value;` work in functions
  /// returning Result<T>.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sqlog

/// Propagates a non-ok Status from an expression, RocksDB-style.
#define SQLOG_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::sqlog::Status _sqlog_status = (expr);        \
    if (!_sqlog_status.ok()) return _sqlog_status; \
  } while (0)

/// Same as SQLOG_RETURN_IF_ERROR, for functions returning Result<T>
/// (Result<T> converts implicitly from a non-ok Status).
#define SQLOG_RETURN_IF_ERROR_R(expr)              \
  do {                                             \
    ::sqlog::Status _sqlog_status = (expr);        \
    if (!_sqlog_status.ok()) return _sqlog_status; \
  } while (0)

#endif  // SQLOG_UTIL_STATUS_H_
