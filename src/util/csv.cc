#include "util/csv.h"

#include "util/simd.h"

namespace sqlog {

std::string Csv::EscapeField(std::string_view field, char sep) {
  bool needs_quoting = false;
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string Csv::JoinLine(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += EscapeField(fields[i], sep);
  }
  return out;
}

Result<std::vector<std::string>> Csv::ParseLine(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

// sqlog-hot — sqlog-lint: allow(R10 appends into splitter-owned buffers whose capacity amortizes across the stream; finished lines are moved out, not copied)
void Csv::LineSplitter::Feed(std::string_view chunk) {
  // Scans with the dispatched kernels instead of byte-at-a-time: out of
  // quotes, everything up to the next '"' / '\r' / '\n' is an inert span
  // appended wholesale; inside quotes, everything up to the next '"'.
  // Escaped quote pairs ("") need no special state — each quote toggles
  // in_quotes_ and is appended, so a chunk boundary between the two
  // quotes lands in a well-defined state (see the csv_test boundary
  // sweep). A lone '\r' at the end of a chunk stays deferred in
  // pending_cr_ exactly as before: the CR/CRLF decision needs the next
  // byte, which may be in the next chunk.
  size_t i = 0;
  const size_t n = chunk.size();
  while (i < n) {
    if (pending_cr_) {
      // The CR ended a line; a following LF belongs to the same break.
      pending_cr_ = false;
      ready_.push_back(std::move(current_));
      current_.clear();
      if (chunk[i] == '\n') ++i;
      continue;
    }
    if (in_quotes_) {
      size_t q = simd::FindByte(chunk, i, '"');
      current_.append(chunk.substr(i, q - i));
      if (q == n) return;
      current_.push_back('"');
      in_quotes_ = false;
      i = q + 1;
      continue;
    }
    size_t j = simd::FindLineSpecial(chunk, i);
    current_.append(chunk.substr(i, j - i));
    if (j == n) return;
    char c = chunk[j];
    i = j + 1;
    if (c == '"') {
      in_quotes_ = true;
      current_.push_back('"');
      continue;
    }
    if (c == '\r') {
      if (i == n) {
        // Hold the decision: an LF may follow in the next chunk.
        pending_cr_ = true;
        return;
      }
      ready_.push_back(std::move(current_));
      current_.clear();
      if (chunk[i] == '\n') ++i;
      continue;
    }
    // '\n'
    ready_.push_back(std::move(current_));
    current_.clear();
  }
}

// sqlog-hot
bool Csv::LineSplitter::Next(std::string* line) {
  if (next_ready_ == ready_.size()) {
    if (next_ready_ != 0) {
      ready_.clear();
      next_ready_ = 0;
    }
    return false;
  }
  *line = std::move(ready_[next_ready_]);
  ++next_ready_;
  return true;
}

void Csv::LineSplitter::Finish() {
  if (finished_) return;
  finished_ = true;
  // One unified flush: a deferred CR counts as a terminator for the line
  // accumulated so far (even an empty one), and any other pending bytes
  // form a final unterminated line. This holds regardless of where the
  // caller's chunk boundaries fell — a final record ending exactly at a
  // chunk boundary without a trailing newline is still emitted.
  if (pending_cr_ || !current_.empty()) {
    pending_cr_ = false;
    ready_.push_back(std::move(current_));
    current_.clear();
  }
}

std::vector<std::string> Csv::SplitLogicalLines(std::string_view content) {
  std::vector<std::string> lines;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '"') {
      in_quotes = !in_quotes;
      current.push_back(c);
      continue;
    }
    if (!in_quotes && (c == '\n' || c == '\r')) {
      if (c == '\r' && i + 1 < content.size() && content[i + 1] == '\n') ++i;
      lines.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

}  // namespace sqlog
