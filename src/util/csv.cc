#include "util/csv.h"

namespace sqlog {

std::string Csv::EscapeField(std::string_view field, char sep) {
  bool needs_quoting = false;
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string Csv::JoinLine(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += EscapeField(fields[i], sep);
  }
  return out;
}

Result<std::vector<std::string>> Csv::ParseLine(std::string_view line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::string> Csv::SplitLogicalLines(std::string_view content) {
  std::vector<std::string> lines;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '"') {
      in_quotes = !in_quotes;
      current.push_back(c);
      continue;
    }
    if (!in_quotes && (c == '\n' || c == '\r')) {
      if (c == '\r' && i + 1 < content.size() && content[i + 1] == '\n') ++i;
      lines.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

}  // namespace sqlog
