#ifndef SQLOG_UTIL_BYTE_CLASS_H_
#define SQLOG_UTIL_BYTE_CLASS_H_

#include <array>
#include <cstdint>

namespace sqlog {

/// Locale-independent byte classification over a 256-entry class table.
///
/// This header is the single place the repo answers "is this byte a
/// letter / digit / identifier character"; lint rule R7 forbids the
/// locale-dependent `<cctype>` classifiers (std::isalpha & friends)
/// everywhere else under src/. The table pins the "C"-locale ASCII
/// semantics the SQL dialect is defined over: under a non-"C" global
/// locale, std::isalpha and std::tolower reclassify bytes >= 0x80 (and
/// in some locales remap case), which would silently change
/// tokenization, normalized fingerprint keys, and case-insensitive
/// comparisons depending on the host environment.
///
/// The table doubles as the classification source for the SIMD/SWAR
/// kernels (util/simd.h): each class bit below has a vector-friendly
/// definition (unions of byte ranges and single bytes), and the scalar
/// helpers here are the reference the kernels are differentially tested
/// against.
namespace byte_class {

enum : uint8_t {
  kSpace = 1 << 0,       // ' ' \t \n \v \f \r
  kDigit = 1 << 1,       // 0-9
  kHexDigit = 1 << 2,    // 0-9 a-f A-F
  kAlpha = 1 << 3,       // A-Z a-z
  kUpper = 1 << 4,       // A-Z
  kIdentStart = 1 << 5,  // alpha _ #   (sql::Lexer identifier heads)
  kIdentChar = 1 << 6,   // alnum _ $ # (sql::Lexer identifier bodies)
};

struct Tables {
  std::array<uint8_t, 256> cls{};
  std::array<uint8_t, 256> lower{};
  std::array<uint8_t, 256> upper{};
};

constexpr Tables MakeTables() {
  Tables t;
  for (int b = 0; b < 256; ++b) {
    uint8_t c = 0;
    const bool digit = b >= '0' && b <= '9';
    const bool upper = b >= 'A' && b <= 'Z';
    const bool lower = b >= 'a' && b <= 'z';
    if (b == ' ' || b == '\t' || b == '\n' || b == '\v' || b == '\f' || b == '\r') {
      c |= kSpace;
    }
    if (digit) c |= kDigit;
    if (digit || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F')) c |= kHexDigit;
    if (upper || lower) c |= kAlpha;
    if (upper) c |= kUpper;
    if (upper || lower || b == '_' || b == '#') c |= kIdentStart;
    if (upper || lower || digit || b == '_' || b == '$' || b == '#') c |= kIdentChar;
    t.cls[static_cast<size_t>(b)] = c;
    t.lower[static_cast<size_t>(b)] = static_cast<uint8_t>(upper ? b + 0x20 : b);
    t.upper[static_cast<size_t>(b)] = static_cast<uint8_t>(lower ? b - 0x20 : b);
  }
  return t;
}

inline constexpr Tables kTables = MakeTables();

/// The raw class table, for table-driven scanners.
inline const std::array<uint8_t, 256>& ClassTable() { return kTables.cls; }

}  // namespace byte_class

inline bool HasByteClass(char c, uint8_t mask) {
  return (byte_class::kTables.cls[static_cast<uint8_t>(c)] & mask) != 0;
}

/// ' ' \t \n \v \f \r — the "C"-locale std::isspace set.
inline bool IsSpaceByte(char c) { return HasByteClass(c, byte_class::kSpace); }
inline bool IsDigitByte(char c) { return HasByteClass(c, byte_class::kDigit); }
inline bool IsHexDigitByte(char c) { return HasByteClass(c, byte_class::kHexDigit); }
inline bool IsAlphaByte(char c) { return HasByteClass(c, byte_class::kAlpha); }
inline bool IsAlnumByte(char c) {
  return HasByteClass(c, byte_class::kAlpha | byte_class::kDigit);
}
/// SQL identifier head: alpha, '_', '#' (T-SQL temp-table names).
inline bool IsIdentStartByte(char c) { return HasByteClass(c, byte_class::kIdentStart); }
/// SQL identifier body: alnum, '_', '$', '#'.
inline bool IsIdentCharByte(char c) { return HasByteClass(c, byte_class::kIdentChar); }

/// ASCII-only case mapping; bytes outside A-Z / a-z pass through.
inline char ToLowerByte(char c) {
  return static_cast<char>(byte_class::kTables.lower[static_cast<uint8_t>(c)]);
}
inline char ToUpperByte(char c) {
  return static_cast<char>(byte_class::kTables.upper[static_cast<uint8_t>(c)]);
}

}  // namespace sqlog

#endif  // SQLOG_UTIL_BYTE_CLASS_H_
