#ifndef SQLOG_UTIL_SIMD_H_
#define SQLOG_UTIL_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace sqlog {
namespace simd {

/// Runtime-dispatched byte-scanning kernels for the three hot inner
/// loops: lexer classification runs (util/byte_class.h classes),
/// fingerprint key hashing, and CSV quote/newline scanning.
///
/// Every kernel has three implementations selected once at startup:
///   kScalar — byte-at-a-time over the class table; the reference twin.
///   kSwar   — SIMD-within-a-register over 8-byte words (portable).
///   kSse2   — 16-byte vectors (x86-64 baseline).
/// All three are compiled unconditionally where the ISA allows, and the
/// differential tests assert byte-identical results across levels on
/// the fuzz corpus and generator logs. `SQLOG_FORCE_SCALAR=1` in the
/// environment pins kScalar at first use; tests and benches can switch
/// levels programmatically with ForceLevelForTest().
enum class Level : int {
  kScalar = 0,
  kSwar = 1,
  kSse2 = 2,
};

const char* LevelName(Level level);

/// Highest level this binary supports on this machine.
Level BestSupportedLevel();

/// The level the dispatched kernels currently run at. Defaults to
/// BestSupportedLevel(), or kScalar when SQLOG_FORCE_SCALAR is set to a
/// non-empty, non-"0" value.
Level ActiveLevel();

/// Overrides the dispatch level (clamped to BestSupportedLevel).
/// Test/bench seam; takes effect for subsequent kernel calls.
void ForceLevelForTest(Level level);

/// Restores the default env+CPU dispatch decision.
void ResetLevelForTest();

/// First index >= pos whose byte is not in the kSpace class, or
/// text.size() if the run extends to the end.
size_t SkipSpace(std::string_view text, size_t pos);

/// First index >= pos whose byte is not in the kIdentChar class
/// (alnum _ $ #), or text.size().
size_t SkipIdentRun(std::string_view text, size_t pos);

/// First index >= pos whose byte equals needle, or text.size().
size_t FindByte(std::string_view text, size_t pos, char needle);

/// First index >= pos holding '"', '\r', or '\n' — the CSV line
/// splitter's state-change set — or text.size().
size_t FindLineSpecial(std::string_view text, size_t pos);

/// Appends text to *out with A-Z mapped to a-z (ASCII-only fold,
/// byte_class::ToLowerByte semantics).
void AppendLowered(std::string_view text, std::string* out);

/// Fills ceil(text.size()/64) words in each output array: bit k of word
/// w is set iff byte w*64+k is in the kSpace (space_bits) / kIdentChar
/// (ident_bits) class. Bits at or past text.size() in the last word are
/// clear. The vector levels classify 8/16 bytes per step, so the whole
/// statement is classified in one pass instead of one dispatch per run.
void BuildClassBitmaps(std::string_view text, uint64_t* space_bits,
                       uint64_t* ident_bits);

/// Per-statement classification index for the lexer's skip loops.
///
/// The per-call Skip* kernels pay an atomic load + indirect call per
/// run, and SQL runs are short (a single space between tokens, a
/// 3-to-12-byte identifier) — measured on the study log that per-call
/// shape is at best break-even against the scalar table loop. Building
/// both class bitmaps once per statement amortizes the dispatch to one
/// call and lets the vector levels classify 16 bytes per step; the skip
/// queries then become inline bit scans with no dispatch at all.
class ClassIndex {
 public:
  /// Classifies every byte of text. The view must stay valid and
  /// unchanged for as long as the index is queried.
  void Build(std::string_view text) {
    size_t data_words = (text.size() + 63) >> 6;
    // One extra all-zero sentinel word per map so a run that reaches
    // text.size() terminates without a bounds check in Scan().
    size_t total = data_words + 1;
    uint64_t* space;
    uint64_t* ident;
    if (total <= kInlineWords) {
      space = inline_space_;
      ident = inline_ident_;
    } else {
      heap_ = std::make_unique<uint64_t[]>(2 * total);
      space = heap_.get();
      ident = heap_.get() + total;
    }
    space[data_words] = 0;
    ident[data_words] = 0;
    BuildClassBitmaps(text, space, ident);
    space_ = space;
    ident_ = ident;
  }

  /// First index >= pos whose byte is not in kSpace, or text.size().
  /// Requires pos <= text.size().
  size_t SkipSpace(size_t pos) const { return Scan(space_, pos); }

  /// First index >= pos whose byte is not in kIdentChar, or
  /// text.size(). Requires pos <= text.size().
  size_t SkipIdentRun(size_t pos) const { return Scan(ident_, pos); }

 private:
  // 17 words cover statements up to 1024 bytes (16 data + sentinel)
  // without touching the heap; longer statements take one allocation.
  static constexpr size_t kInlineWords = 17;

  static size_t Scan(const uint64_t* bits, size_t pos) {
    // Zero bits past the end of the text (tail + sentinel) guarantee the
    // scan stops at text.size() without comparing against it.
    uint64_t miss = ~bits[pos >> 6] >> (pos & 63);
    if (miss != 0) return pos + static_cast<size_t>(std::countr_zero(miss));
    size_t w = (pos >> 6) + 1;
    while (~bits[w] == 0) ++w;
    return (w << 6) + static_cast<size_t>(std::countr_zero(~bits[w]));
  }

  uint64_t inline_space_[kInlineWords];
  uint64_t inline_ident_[kInlineWords];
  std::unique_ptr<uint64_t[]> heap_;
  const uint64_t* space_ = nullptr;
  const uint64_t* ident_ = nullptr;
};

/// 128-bit block-wise hash of a normalized fingerprint key. Processes
/// 16 bytes per round with a multiply-mix finish; all dispatch levels
/// produce identical values (the kernel only changes how words are
/// loaded). In-memory use only — never serialized, so the function is
/// free to change between builds.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;
};
Hash128 HashKey128(std::string_view data);

}  // namespace simd
}  // namespace sqlog

#endif  // SQLOG_UTIL_SIMD_H_
