#ifndef SQLOG_UTIL_CSV_H_
#define SQLOG_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sqlog {

/// RFC-4180-style CSV handling: fields containing the separator, quotes
/// or newlines are quoted; embedded quotes are doubled. The query-log
/// file format (log_io) is built on this.
class Csv {
 public:
  /// Escapes one field for emission.
  static std::string EscapeField(std::string_view field, char sep = ',');

  /// Joins already-raw fields into one escaped CSV line (no newline).
  static std::string JoinLine(const std::vector<std::string>& fields, char sep = ',');

  /// Parses one logical CSV line into fields. The line must not contain
  /// an unterminated quoted field; on malformed input a ParseError is
  /// returned.
  static Result<std::vector<std::string>> ParseLine(std::string_view line, char sep = ',');

  /// Splits file content into logical CSV lines: newlines inside quoted
  /// fields do not terminate a line.
  static std::vector<std::string> SplitLogicalLines(std::string_view content);

  /// Incremental flavour of SplitLogicalLines for streaming readers:
  /// feed the file in arbitrary chunks, pull complete logical lines as
  /// they become available. Quote state and CRLF pairs survive chunk
  /// boundaries, so any chunking yields exactly the lines
  /// SplitLogicalLines produces on the concatenated input.
  ///
  ///   LineSplitter splitter;
  ///   while (read chunk) {
  ///     splitter.Feed(chunk);
  ///     while (splitter.Next(&line)) { ... }
  ///   }
  ///   splitter.Finish();
  ///   while (splitter.Next(&line)) { ... }   // the unterminated tail
  class LineSplitter {
   public:
    /// Appends a chunk of file content.
    void Feed(std::string_view chunk);

    /// Moves the next complete logical line into `*line`; false when no
    /// complete line is buffered yet.
    bool Next(std::string* line);

    /// Marks end of input: a non-empty unterminated final line becomes
    /// available to Next(). Feed() must not be called afterwards.
    void Finish();

    /// True when Finish() was called while inside a quoted field — the
    /// input was truncated mid-record.
    bool truncated_in_quotes() const { return finished_ && in_quotes_; }

   private:
    std::string current_;
    std::vector<std::string> ready_;
    size_t next_ready_ = 0;
    bool in_quotes_ = false;
    bool pending_cr_ = false;  // last fed byte was an unquoted CR
    bool finished_ = false;
  };
};

}  // namespace sqlog

#endif  // SQLOG_UTIL_CSV_H_
