#ifndef SQLOG_UTIL_CSV_H_
#define SQLOG_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sqlog {

/// RFC-4180-style CSV handling: fields containing the separator, quotes
/// or newlines are quoted; embedded quotes are doubled. The query-log
/// file format (log_io) is built on this.
class Csv {
 public:
  /// Escapes one field for emission.
  static std::string EscapeField(std::string_view field, char sep = ',');

  /// Joins already-raw fields into one escaped CSV line (no newline).
  static std::string JoinLine(const std::vector<std::string>& fields, char sep = ',');

  /// Parses one logical CSV line into fields. The line must not contain
  /// an unterminated quoted field; on malformed input a ParseError is
  /// returned.
  static Result<std::vector<std::string>> ParseLine(std::string_view line, char sep = ',');

  /// Splits file content into logical CSV lines: newlines inside quoted
  /// fields do not terminate a line.
  static std::vector<std::string> SplitLogicalLines(std::string_view content);
};

}  // namespace sqlog

#endif  // SQLOG_UTIL_CSV_H_
