#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

#include "util/byte_class.h"

namespace sqlog {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ToLowerByte(c));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ToUpperByte(c));
  return out;
}

namespace {
bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsSpaceChar(s[begin])) ++begin;
  while (end > begin && IsSpaceChar(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerByte(a[i]) != ToLowerByte(b[i])) {
      return false;
    }
  }
  return true;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = false;
  for (char c : s) {
    if (IsSpaceChar(c)) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

std::string WithThousands(long long value) {
  bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sqlog
