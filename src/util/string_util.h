#ifndef SQLOG_UTIL_STRING_UTIL_H_
#define SQLOG_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqlog {

/// ASCII-only lower-casing; SQL identifiers in this project are ASCII.
std::string ToLower(std::string_view s);

/// ASCII-only upper-casing.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` begins with `prefix`, comparing case-insensitively.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// Case-insensitive equality for ASCII strings.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Collapses every run of whitespace to a single space and trims the
/// result. Used when canonicalizing SQL text.
std::string CollapseWhitespace(std::string_view s);

/// Formats `value` with thousands separators ("1,234,567") for
/// human-readable experiment tables.
std::string WithThousands(long long value);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sqlog

#endif  // SQLOG_UTIL_STRING_UTIL_H_
