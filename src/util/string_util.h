#ifndef SQLOG_UTIL_STRING_UTIL_H_
#define SQLOG_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_class.h"

namespace sqlog {

/// ASCII-only lower-casing; SQL identifiers in this project are ASCII.
std::string ToLower(std::string_view s);

/// ASCII-only upper-casing.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` begins with `prefix`, comparing case-insensitively.
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// Case-insensitive equality for ASCII strings.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Collapses every run of whitespace to a single space and trims the
/// result. Used when canonicalizing SQL text.
std::string CollapseWhitespace(std::string_view s);

/// Formats `value` with thousands separators ("1,234,567") for
/// human-readable experiment tables.
std::string WithThousands(long long value);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Transparent hash/equality over ASCII-case-folded strings, built on
/// the byte-class case table (util/byte_class.h). Using these as the
/// hasher/key-equal of an unordered_map keyed by std::string enables
/// heterogeneous lookup: `map.find(string_view)` folds case during
/// probing, so case-insensitive name lookups (tables, columns) allocate
/// nothing. Keys may be stored in any case.
struct AsciiFoldHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    // FNV-1a over lower-cased bytes.
    uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
      h ^= static_cast<uint8_t>(ToLowerByte(c));
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

struct AsciiFoldEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return EqualsIgnoreCase(a, b);
  }
};

}  // namespace sqlog

#endif  // SQLOG_UTIL_STRING_UTIL_H_
