#ifndef SQLOG_UTIL_HASH_H_
#define SQLOG_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace sqlog {

/// 64-bit FNV-1a over a byte string. Deterministic across platforms so
/// fingerprints are stable in logs and golden tests.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Boost-style hash combiner for building compound fingerprints.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace sqlog

#endif  // SQLOG_UTIL_HASH_H_
