#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace sqlog::util {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = ResolveThreadCount(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      CondVarLock lock(mutex_);
      // The wait predicate runs with mutex_ held (condition_variable
      // re-acquires before evaluating it), which the analysis cannot see
      // through the type-erased std::function boundary.
      wake_.wait(lock.native(), [this]() SQLOG_NO_THREAD_SAFETY_ANALYSIS {
        return stopping_ || !queue_.empty();
      });
      // Drain the queue before honouring shutdown so submitted work is
      // never dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  if (min_grain == 0) min_grain = 1;
  const size_t n = end - begin;
  const size_t participants = size() + 1;  // workers plus the caller
  if (participants <= 1 || n <= min_grain) {
    body(begin, end);
    return;
  }

  // Oversplit a little beyond the participant count so uneven chunks
  // load-balance, but never below the grain size.
  size_t chunks = std::min(n / min_grain, 4 * participants);
  if (chunks == 0) chunks = 1;

  // Shared claim-and-count state. Helpers submitted to the pool may run
  // after this call returns (finding no chunks left), so the state is
  // reference-counted rather than stack-owned.
  struct ForState {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done_chunks{0};
    std::atomic<bool> cancelled{false};
    Mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr error SQLOG_GUARDED_BY(mutex);  // first body exception
    size_t begin = 0;
    size_t n = 0;
    size_t chunks = 0;
    const std::function<void(size_t, size_t)>* body = nullptr;
  };
  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->n = n;
  state->chunks = chunks;
  state->body = &body;

  auto run_chunks = [](const std::shared_ptr<ForState>& s) {
    for (;;) {
      size_t chunk = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= s->chunks) return;
      // A body that throws cancels the loop: remaining chunks are still
      // claimed and counted (so the completion wait below terminates)
      // but their bodies are skipped, and the first exception is
      // rethrown to the ParallelFor caller once every chunk is retired.
      if (!s->cancelled.load(std::memory_order_acquire)) {
        auto [lo, hi] = ShardRange(s->n, chunk, s->chunks);
        try {
          (*s->body)(s->begin + lo, s->begin + hi);
        } catch (...) {
          s->cancelled.store(true, std::memory_order_release);
          MutexLock lock(s->mutex);
          if (!s->error) s->error = std::current_exception();
        }
      }
      if (s->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 == s->chunks) {
        // Pair with the caller's wait below; the lock ensures the
        // notification cannot fire between its predicate check and its
        // wait.
        MutexLock lock(s->mutex);
        s->all_done.notify_all();
      }
    }
  };

  for (size_t i = 0; i < size(); ++i) {
    Submit([state, run_chunks] { run_chunks(state); });
  }
  // The caller participates: nested ParallelFor calls from inside tasks
  // therefore finish even when every worker is occupied.
  run_chunks(state);

  CondVarLock lock(state->mutex);
  state->all_done.wait(lock.native(), [&] {
    return state->done_chunks.load(std::memory_order_acquire) == state->chunks;
  });
  if (state->error) std::rethrow_exception(state->error);
}

std::pair<size_t, size_t> ShardRange(size_t n, size_t shard, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  size_t base = n / num_shards;
  size_t extra = n % num_shards;
  size_t begin = shard * base + std::min(shard, extra);
  size_t size = base + (shard < extra ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace sqlog::util
