#ifndef SQLOG_UTIL_THREAD_POOL_H_
#define SQLOG_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace sqlog::util {

/// Resolves a requested thread count: 0 means "one per hardware thread"
/// (with a floor of 1 when the runtime cannot tell), anything else is
/// taken literally.
size_t ResolveThreadCount(size_t requested);

/// A fixed-size worker pool. Workers are started in the constructor and
/// joined in the destructor; queued tasks submitted before destruction
/// are drained first, so shutdown never drops work. Library code is
/// exception-free by design rule, but user callbacks run through
/// `ParallelFor` may throw: the first exception cancels the remaining
/// chunks and is rethrown to the ParallelFor caller — it never kills a
/// worker thread and never deadlocks the completion wait. Tasks handed
/// directly to `Submit` must not throw (there is no caller to receive
/// the exception).
///
/// `ParallelFor` is cooperative: the calling thread executes chunks
/// alongside the workers, so a pool of N workers yields N+1 executing
/// threads during a ParallelFor, and nested ParallelFor calls from
/// inside a task make progress even when every worker is busy (the
/// nested caller chews through its own chunks instead of blocking).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 resolves via ResolveThreadCount).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding cooperative callers).
  size_t size() const { return workers_.size(); }

  /// Enqueues one task. Safe to call from worker threads.
  void Submit(std::function<void()> task);

  /// Runs `body(begin, end)` over [begin, end) split into chunks of at
  /// least `min_grain` indices. Chunks are claimed dynamically by the
  /// workers and by the calling thread; the call returns when every
  /// index has been processed. With an empty range it returns
  /// immediately. `body` must be safe to invoke concurrently on
  /// disjoint ranges. If `body` throws, unstarted chunks are skipped
  /// and the first exception is rethrown from this call.
  void ParallelFor(size_t begin, size_t end, size_t min_grain,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_ SQLOG_CONST_AFTER_INIT;
  Mutex mutex_;
  std::condition_variable wake_ SQLOG_SELF_SYNCHRONIZED;
  std::deque<std::function<void()>> queue_ SQLOG_GUARDED_BY(mutex_);
  bool stopping_ SQLOG_GUARDED_BY(mutex_) = false;
};

/// Returns the half-open index range of shard `shard` when [0, n) is cut
/// into `num_shards` contiguous, near-equal slices (first `n %
/// num_shards` shards get one extra element). Deterministic: merging
/// shard results in shard order visits every index in order.
std::pair<size_t, size_t> ShardRange(size_t n, size_t shard, size_t num_shards);

/// Map step of a sharded map-reduce: cuts [0, n) into `num_shards`
/// contiguous shards, runs `fn(shard, begin, end)` for each — in
/// parallel when `pool` is non-null, serially otherwise — and returns
/// the per-shard results indexed by shard, ready for a deterministic
/// in-order reduce. `fn` must not touch state shared across shards.
template <typename ResultT, typename Fn>
std::vector<ResultT> MapShards(ThreadPool* pool, size_t n, size_t num_shards, Fn fn) {
  if (num_shards == 0) num_shards = 1;
  std::vector<ResultT> results(num_shards);
  auto run_shard = [&](size_t shard) {
    auto [begin, end] = ShardRange(n, shard, num_shards);
    results[shard] = fn(shard, begin, end);
  };
  if (pool == nullptr || num_shards == 1) {
    for (size_t shard = 0; shard < num_shards; ++shard) run_shard(shard);
  } else {
    pool->ParallelFor(0, num_shards, 1, [&](size_t first, size_t last) {
      for (size_t shard = first; shard < last; ++shard) run_shard(shard);
    });
  }
  return results;
}

}  // namespace sqlog::util

#endif  // SQLOG_UTIL_THREAD_POOL_H_
