#ifndef SQLOG_UTIL_THREAD_ANNOTATIONS_H_
#define SQLOG_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety) plus the annotated
/// Mutex/MutexLock wrappers the repo uses instead of raw std::mutex.
///
/// Under clang the macros expand to the static-analysis attributes, so a
/// build with -DSQLOG_THREAD_SAFETY=ON (see the top-level CMakeLists)
/// turns "which members does this mutex guard" from a comment into a
/// compile error. Everywhere else they expand to nothing and the
/// wrappers behave exactly like std::mutex + std::lock_guard.
///
/// Two annotation vocabularies coexist here on purpose:
///  - SQLOG_GUARDED_BY(mu) — member is only touched with `mu` held;
///    machine-checked by clang and by sqlog-lint rule R5.
///  - SQLOG_SHARD_LOCAL — member belongs to state that is confined to
///    one shard/thread at a time and handed off only at a join point
///    (ParseCache, TemplateStore, the streaming parser/solver/deduper,
///    LogReader/LogWriter). Clang cannot check confinement, so this
///    expands to nothing under every compiler — but sqlog-lint rule R5
///    requires one of the two markers on every mutable member of the
///    types named in tools/lint/lint_config.txt, so confinement claims
///    are at least explicit and reviewed.

#if defined(__clang__) && (!defined(SWIG))
#define SQLOG_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SQLOG_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define SQLOG_CAPABILITY(x) SQLOG_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SQLOG_SCOPED_CAPABILITY SQLOG_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define SQLOG_GUARDED_BY(x) SQLOG_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define SQLOG_PT_GUARDED_BY(x) SQLOG_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define SQLOG_REQUIRES(...) \
  SQLOG_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define SQLOG_ACQUIRE(...) \
  SQLOG_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define SQLOG_RELEASE(...) \
  SQLOG_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define SQLOG_TRY_ACQUIRE(...) \
  SQLOG_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define SQLOG_EXCLUDES(...) SQLOG_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define SQLOG_ASSERT_CAPABILITY(x) SQLOG_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define SQLOG_RETURN_CAPABILITY(x) SQLOG_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define SQLOG_NO_THREAD_SAFETY_ANALYSIS \
  SQLOG_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Shard-confined state marker (see the header comment). Expands to
/// nothing; checked by sqlog-lint R5, not by clang.
#define SQLOG_SHARD_LOCAL

/// Written only during construction (before any other thread can hold a
/// reference), read-only afterwards. Expands to nothing; satisfies
/// sqlog-lint R5.
#define SQLOG_CONST_AFTER_INIT

/// The member's own operations are thread-safe (std::condition_variable,
/// std::atomic) — no external mutex needed. Expands to nothing;
/// satisfies sqlog-lint R5.
#define SQLOG_SELF_SYNCHRONIZED

namespace sqlog::util {

/// Annotated mutex. The one mutex type allowed in this repo (sqlog-lint
/// rule R4 flags raw std::mutex members): using it forces every guarded
/// member to name its mutex, which is what makes -Wthread-safety and
/// lint rule R5 meaningful.
class SQLOG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SQLOG_ACQUIRE() { mu_.lock(); }
  void Unlock() SQLOG_RELEASE() { mu_.unlock(); }
  bool TryLock() SQLOG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std::condition_variable
  /// (which insists on std::unique_lock<std::mutex>). Callers go through
  /// CondVarLock below so the analysis still sees the acquire/release.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex — the std::lock_guard equivalent. Scoped
/// capability: clang knows the mutex is held between construction and
/// destruction.
class SQLOG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SQLOG_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SQLOG_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock for Mutex with std::unique_lock semantics, for
/// condition-variable waits: `cv.wait(lock.native(), pred)` unlocks and
/// relocks the mutex internally, which the analysis cannot see — but the
/// capability is correctly reported held whenever the wait is not
/// blocked, which is the invariant the annotations are meant to check.
class SQLOG_SCOPED_CAPABILITY CondVarLock {
 public:
  explicit CondVarLock(Mutex& mu) SQLOG_ACQUIRE(mu) : lock_(mu.native()) {}
  ~CondVarLock() SQLOG_RELEASE() = default;

  CondVarLock(const CondVarLock&) = delete;
  CondVarLock& operator=(const CondVarLock&) = delete;

  /// The underlying unique_lock, to hand to condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace sqlog::util

#endif  // SQLOG_UTIL_THREAD_ANNOTATIONS_H_
