#ifndef SQLOG_UTIL_RANDOM_H_
#define SQLOG_UTIL_RANDOM_H_

#include <cassert>
#include <cstdint>

namespace sqlog {

/// Deterministic 64-bit PRNG (xorshift* family). Used instead of
/// std::mt19937 so that synthetic workloads are bit-identical across
/// standard-library implementations, which keeps experiment outputs and
/// golden tests stable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed ? seed : 1) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): rank r picked with probability
  /// proportional to 1/(r+1)^s, via inverse-CDF on a harmonic prefix
  /// (approximate, O(1) memory). Skew s in (0, 2] is typical.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t state_;
};

inline uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Rejection-free approximation: invert the continuous Zipf CDF
  // p(x) ~ x^{-s} on [1, n]. Accurate enough for workload skew shaping.
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;  // avoid the log-form special case
  double one_minus_s = 1.0 - s;
  double pow_n = __builtin_pow(static_cast<double>(n), one_minus_s);
  double x = __builtin_pow(u * (pow_n - 1.0) + 1.0, 1.0 / one_minus_s);
  uint64_t idx = static_cast<uint64_t>(x) - 1;
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace sqlog

#endif  // SQLOG_UTIL_RANDOM_H_
