#include "engine/value.h"

#include "util/byte_class.h"
#include <cstdlib>

#include "util/string_util.h"

namespace sqlog::engine {

int64_t Value::AsInt() const {
  switch (kind_) {
    case Kind::kInt64: return int_;
    case Kind::kDouble: return static_cast<int64_t>(double_);
    case Kind::kString: return std::strtoll(string_.c_str(), nullptr, 10);
    case Kind::kNull: return 0;
  }
  return 0;
}

double Value::AsDouble() const {
  switch (kind_) {
    case Kind::kInt64: return static_cast<double>(int_);
    case Kind::kDouble: return double_;
    case Kind::kString: return std::strtod(string_.c_str(), nullptr);
    case Kind::kNull: return 0.0;
  }
  return 0.0;
}

int Value::Compare(const Value& other) const {
  // NULLs order first; callers implement SQL semantics above this.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (kind_ == Kind::kString && other.kind_ == Kind::kString) {
    // Case-insensitive comparison, matching SQL Server's default
    // collation which the SkyServer logs assume.
    const std::string& a = string_;
    const std::string& b = other.string_;
    size_t n = a.size() < b.size() ? a.size() : b.size();
    for (size_t i = 0; i < n; ++i) {
      int ca = static_cast<unsigned char>(ToLowerByte(a[i]));
      int cb = static_cast<unsigned char>(ToLowerByte(b[i]));
      if (ca != cb) return ca < cb ? -1 : 1;
    }
    if (a.size() == b.size()) return 0;
    return a.size() < b.size() ? -1 : 1;
  }
  if (kind_ == Kind::kInt64 && other.kind_ == Kind::kInt64) {
    if (int_ == other.int_) return 0;
    return int_ < other.int_ ? -1 : 1;
  }
  // Mixed numeric (or string vs number): compare as doubles.
  double a = AsDouble();
  double b = other.AsDouble();
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull: return "NULL";
    case Kind::kInt64: return std::to_string(int_);
    case Kind::kDouble: return StrFormat("%g", double_);
    case Kind::kString: return string_;
  }
  return "NULL";
}

Value::Kind KindForColumnType(catalog::ColumnType type) {
  switch (type) {
    case catalog::ColumnType::kInt64: return Value::Kind::kInt64;
    case catalog::ColumnType::kDouble: return Value::Kind::kDouble;
    case catalog::ColumnType::kString: return Value::Kind::kString;
  }
  return Value::Kind::kString;
}

}  // namespace sqlog::engine
