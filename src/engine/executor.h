#ifndef SQLOG_ENGINE_EXECUTOR_H_
#define SQLOG_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "engine/database.h"
#include "engine/table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace sqlog::engine {

/// Execution knobs. `use_indexes` exists so the Sec 6.3 bench can run
/// the same query stream with and without index scans; production
/// callers keep the default.
struct ExecutorOptions {
  bool use_indexes = true;
};

/// Per-executor counters of which access path base-table scans took.
struct ExecutorStats {
  uint64_t index_scans = 0;  // base-table reads served via a B+-tree probe
  uint64_t full_scans = 0;   // base-table reads that walked every row
};

/// Executes parsed SELECT statements of the dialect against a Database
/// (in-memory or paged tables transparently). Supports:
///   - single-table scans with full WHERE evaluation (comparisons,
///     AND/OR/NOT, IN lists & subqueries, BETWEEN, LIKE, IS NULL,
///     arithmetic),
///   - index scans: an equality or IN-list conjunct on an indexed int64
///     column (e.g. photoprimary.objid) prefilters the scan through the
///     B+-tree; the full WHERE is still re-evaluated on candidates and
///     rows come back in table order, so results are byte-identical to
///     the full scan,
///   - INNER/LEFT OUTER joins (hash join on a single equi-condition,
///     nested-loop fallback) and comma-joins with equi-conditions pulled
///     from WHERE,
///   - derived tables, scalar subqueries, EXISTS,
///   - SkyServer table-valued functions fGetNearbyObjEq /
///     fGetNearestObjEq / fGetObjFromRect simulated over photoprimary,
///   - aggregates count/sum/min/max/avg with GROUP BY and HAVING,
///   - DISTINCT, TOP, ORDER BY.
///
/// This is the substrate for the Sec. 6.3 runtime experiment: running a
/// Stifle's many point queries versus the one rewritten query.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}
  Executor(const Database* db, ExecutorOptions options) : db_(db), options_(options) {}

  /// Executes a parsed statement.
  Result<ResultSet> Execute(const sql::SelectStatement& stmt) const;

  /// Parses and executes SQL text.
  Result<ResultSet> ExecuteSql(const std::string& statement_text) const;

  /// Access-path counters accumulated across Execute calls.
  const ExecutorStats& stats() const { return stats_; }
  void ResetStats() const { stats_ = ExecutorStats{}; }

 private:
  const Database* db_;
  ExecutorOptions options_;
  mutable ExecutorStats stats_;
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_EXECUTOR_H_
