#ifndef SQLOG_ENGINE_EXECUTOR_H_
#define SQLOG_ENGINE_EXECUTOR_H_

#include <string>

#include "engine/database.h"
#include "engine/table.h"
#include "sql/ast.h"
#include "util/status.h"

namespace sqlog::engine {

/// Executes parsed SELECT statements of the dialect against an
/// in-memory Database. Supports:
///   - single-table scans with full WHERE evaluation (comparisons,
///     AND/OR/NOT, IN lists & subqueries, BETWEEN, LIKE, IS NULL,
///     arithmetic),
///   - INNER/LEFT OUTER joins (hash join on a single equi-condition,
///     nested-loop fallback) and comma-joins with equi-conditions pulled
///     from WHERE,
///   - derived tables, scalar subqueries, EXISTS,
///   - SkyServer table-valued functions fGetNearbyObjEq /
///     fGetNearestObjEq / fGetObjFromRect simulated over photoprimary,
///   - aggregates count/sum/min/max/avg with GROUP BY and HAVING,
///   - DISTINCT, TOP, ORDER BY.
///
/// This is the substrate for the Sec. 6.3 runtime experiment: running a
/// Stifle's many point queries versus the one rewritten query.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Executes a parsed statement.
  Result<ResultSet> Execute(const sql::SelectStatement& stmt) const;

  /// Parses and executes SQL text.
  Result<ResultSet> ExecuteSql(const std::string& statement_text) const;

 private:
  const Database* db_;
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_EXECUTOR_H_
