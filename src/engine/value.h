#ifndef SQLOG_ENGINE_VALUE_H_
#define SQLOG_ENGINE_VALUE_H_

#include <cstdint>
#include <string>

#include "catalog/schema.h"

namespace sqlog::engine {

/// Runtime value of the mini execution engine: NULL, 64-bit integer,
/// double, or string. Small enough to copy freely.
class Value {
 public:
  enum class Kind { kNull, kInt64, kDouble, kString };

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt64;
    out.int_ = v;
    return out;
  }
  static Value Real(double v) {
    Value out;
    out.kind_ = Kind::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind_ = Kind::kString;
    out.string_ = std::move(v);
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_numeric() const { return kind_ == Kind::kInt64 || kind_ == Kind::kDouble; }

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const { return string_; }

  /// SQL-style three-valued comparison is handled by the executor; this
  /// is a plain total comparison for non-null values: returns <0, 0, >0.
  /// Numeric kinds compare numerically; strings compare
  /// case-insensitively (SQL Server default collation behaviour).
  int Compare(const Value& other) const;

  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Human-readable rendering for result printing.
  std::string ToString() const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

/// Maps a catalog column type to the value kind stored in it.
Value::Kind KindForColumnType(catalog::ColumnType type);

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_VALUE_H_
