#include "engine/btree.h"

#include <cstring>

#include "util/string_util.h"

namespace sqlog::engine {

namespace {

constexpr uint8_t kLeafKind = 1;
constexpr uint8_t kInternalKind = 2;

constexpr size_t kNodeHdr = 8;  // kind, pad, count, next/child0
constexpr size_t kLeafEntry = 16;
constexpr size_t kLeafCap = (kPageSize - kNodeHdr) / kLeafEntry;  // 511
constexpr size_t kInternalEntry = 12;
constexpr size_t kInternalCap = (kPageSize - kNodeHdr) / kInternalEntry;  // 682

uint8_t NodeKind(const char* p) { return static_cast<uint8_t>(p[0]); }
uint16_t NodeCount(const char* p) { return LoadU16(p + 2); }
void SetNodeCount(char* p, uint16_t n) { StoreU16(p + 2, n); }

void InitNode(char* p, uint8_t kind, PageId link) {
  std::memset(p, 0, kNodeHdr);
  p[0] = static_cast<char>(kind);
  StoreU32(p + 4, link);  // leaf: next; internal: child0
}

// Leaf accessors.
PageId LeafNext(const char* p) { return LoadU32(p + 4); }
void SetLeafNext(char* p, PageId next) { StoreU32(p + 4, next); }
int64_t LeafKey(const char* p, size_t i) { return LoadI64(p + kNodeHdr + i * kLeafEntry); }
uint64_t LeafRow(const char* p, size_t i) {
  return LoadU64(p + kNodeHdr + i * kLeafEntry + 8);
}
void SetLeafEntry(char* p, size_t i, int64_t key, uint64_t row) {
  StoreI64(p + kNodeHdr + i * kLeafEntry, key);
  StoreU64(p + kNodeHdr + i * kLeafEntry + 8, row);
}

// Internal accessors.
PageId Child0(const char* p) { return LoadU32(p + 4); }
int64_t IKey(const char* p, size_t i) { return LoadI64(p + kNodeHdr + i * kInternalEntry); }
PageId IChild(const char* p, size_t i) {
  return LoadU32(p + kNodeHdr + i * kInternalEntry + 8);
}
void SetIEntry(char* p, size_t i, int64_t key, PageId child) {
  StoreI64(p + kNodeHdr + i * kInternalEntry, key);
  StoreU32(p + kNodeHdr + i * kInternalEntry + 8, child);
}

/// First index i in [0, n) with key[i] > target (insert descent).
size_t UpperBoundLeaf(const char* p, size_t n, int64_t target) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid) <= target) lo = mid + 1; else hi = mid;
  }
  return lo;
}

/// First index i in [0, n) with key[i] >= target (lookup in a leaf).
size_t LowerBoundLeaf(const char* p, size_t n, int64_t target) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < target) lo = mid + 1; else hi = mid;
  }
  return lo;
}

size_t UpperBoundInternal(const char* p, size_t n, int64_t target) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (IKey(p, mid) <= target) lo = mid + 1; else hi = mid;
  }
  return lo;
}

size_t LowerBoundInternal(const char* p, size_t n, int64_t target) {
  size_t lo = 0, hi = n;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (IKey(p, mid) < target) lo = mid + 1; else hi = mid;
  }
  return lo;
}

}  // namespace

Result<PageId> BTreeIndex::DescendToLeaf(int64_t key) const {
  PageId cur = root_;
  for (uint32_t level = height_; level > 1; --level) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const char* p = ref.value().data();
    if (NodeKind(p) != kInternalKind) {
      return Status::Internal("B+-tree: expected internal node");
    }
    // Leftmost descent: keys equal to a separator may extend into the
    // subtree left of it, and the leaf chain carries lookups right.
    size_t pos = LowerBoundInternal(p, NodeCount(p), key);
    cur = pos == 0 ? Child0(p) : IChild(p, pos - 1);
  }
  return cur;
}

Status BTreeIndex::Lookup(int64_t key, std::vector<uint64_t>* rows) const {
  if (root_ == kInvalidPageId) return Status::OK();
  auto leaf = DescendToLeaf(key);
  if (!leaf.ok()) return leaf.status();
  PageId cur = leaf.value();
  while (cur != kInvalidPageId) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const char* p = ref.value().data();
    const size_t n = NodeCount(p);
    size_t i = LowerBoundLeaf(p, n, key);
    for (; i < n && LeafKey(p, i) == key; ++i) rows->push_back(LeafRow(p, i));
    if (i < n) break;  // reached a larger key: the run is over
    cur = LeafNext(p);  // duplicates may continue in the next leaf
  }
  return Status::OK();
}

Status BTreeIndex::LookupMany(const std::vector<int64_t>& keys,
                              std::vector<uint64_t>* rows) const {
  for (int64_t key : keys) SQLOG_RETURN_IF_ERROR(Lookup(key, rows));
  return Status::OK();
}

Status BTreeIndex::ForEach(
    const std::function<void(int64_t key, uint64_t row)>& fn) const {
  if (root_ == kInvalidPageId) return Status::OK();
  // Descend the leftmost spine to the first leaf.
  PageId cur = root_;
  for (uint32_t level = height_; level > 1; --level) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    cur = Child0(ref.value().data());
  }
  while (cur != kInvalidPageId) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const char* p = ref.value().data();
    const size_t n = NodeCount(p);
    for (size_t i = 0; i < n; ++i) fn(LeafKey(p, i), LeafRow(p, i));
    cur = LeafNext(p);
  }
  return Status::OK();
}

Status BTreeIndex::InsertIntoLeaf(BufferPool::PageRef leaf, int64_t key,
                                  uint64_t row, bool* split, Split* promoted) {
  char* p = leaf.data();
  size_t n = NodeCount(p);
  if (n < kLeafCap) {
    size_t pos = UpperBoundLeaf(p, n, key);
    std::memmove(p + kNodeHdr + (pos + 1) * kLeafEntry, p + kNodeHdr + pos * kLeafEntry,
                 (n - pos) * kLeafEntry);
    SetLeafEntry(p, pos, key, row);
    SetNodeCount(p, static_cast<uint16_t>(n + 1));
    leaf.MarkDirty();
    *split = false;
    return Status::OK();
  }

  // Split: upper half moves to a new right sibling in the leaf chain.
  PageId right_id = kInvalidPageId;
  auto right_or = pool_->New(&right_id);
  if (!right_or.ok()) return right_or.status();
  BufferPool::PageRef right = std::move(right_or.value());
  char* rp = right.data();
  InitNode(rp, kLeafKind, LeafNext(p));
  const size_t half = n / 2;
  std::memcpy(rp + kNodeHdr, p + kNodeHdr + half * kLeafEntry, (n - half) * kLeafEntry);
  SetNodeCount(rp, static_cast<uint16_t>(n - half));
  SetNodeCount(p, static_cast<uint16_t>(half));
  SetLeafNext(p, right_id);
  right.MarkDirty();
  leaf.MarkDirty();

  const int64_t sep = LeafKey(rp, 0);
  bool ignored = false;
  Split unused;
  // Both halves have room now; recurse once into the right side.
  SQLOG_RETURN_IF_ERROR(key >= sep
                            ? InsertIntoLeaf(std::move(right), key, row, &ignored, &unused)
                            : InsertIntoLeaf(std::move(leaf), key, row, &ignored, &unused));
  *split = true;
  promoted->key = sep;
  promoted->page = right_id;
  return Status::OK();
}

Status BTreeIndex::InsertIntoInternal(BufferPool::PageRef node, Split entry,
                                      bool* split, Split* promoted) {
  char* p = node.data();
  size_t n = NodeCount(p);
  if (n < kInternalCap) {
    size_t pos = UpperBoundInternal(p, n, entry.key);
    std::memmove(p + kNodeHdr + (pos + 1) * kInternalEntry,
                 p + kNodeHdr + pos * kInternalEntry, (n - pos) * kInternalEntry);
    SetIEntry(p, pos, entry.key, entry.page);
    SetNodeCount(p, static_cast<uint16_t>(n + 1));
    node.MarkDirty();
    *split = false;
    return Status::OK();
  }

  // Split around the middle separator, which is promoted (moved up, not
  // copied): left keeps entries [0, mid), the right sibling's child0 is
  // the promoted entry's child, and right gets entries (mid, n).
  const size_t mid = n / 2;
  const int64_t up_key = IKey(p, mid);
  PageId right_id = kInvalidPageId;
  auto right_or = pool_->New(&right_id);
  if (!right_or.ok()) return right_or.status();
  BufferPool::PageRef right = std::move(right_or.value());
  char* rp = right.data();
  InitNode(rp, kInternalKind, IChild(p, mid));
  std::memcpy(rp + kNodeHdr, p + kNodeHdr + (mid + 1) * kInternalEntry,
              (n - mid - 1) * kInternalEntry);
  SetNodeCount(rp, static_cast<uint16_t>(n - mid - 1));
  SetNodeCount(p, static_cast<uint16_t>(mid));
  right.MarkDirty();
  node.MarkDirty();

  bool ignored = false;
  Split unused;
  SQLOG_RETURN_IF_ERROR(
      entry.key >= up_key
          ? InsertIntoInternal(std::move(right), entry, &ignored, &unused)
          : InsertIntoInternal(std::move(node), entry, &ignored, &unused));
  *split = true;
  promoted->key = up_key;
  promoted->page = right_id;
  return Status::OK();
}

Status BTreeIndex::MakeRootOverSplit(PageId left, Split right) {
  PageId root_id = kInvalidPageId;
  auto root_or = pool_->New(&root_id);
  if (!root_or.ok()) return root_or.status();
  char* p = root_or.value().data();
  InitNode(p, kInternalKind, left);
  SetIEntry(p, 0, right.key, right.page);
  SetNodeCount(p, 1);
  root_or.value().MarkDirty();
  root_ = root_id;
  ++height_;
  return Status::OK();
}

Status BTreeIndex::Insert(int64_t key, uint64_t row) {
  if (bulk_active_) {
    return Status::Internal("B+-tree: Insert during an active bulk load");
  }
  if (root_ == kInvalidPageId) {
    PageId id = kInvalidPageId;
    auto ref = pool_->New(&id);
    if (!ref.ok()) return ref.status();
    InitNode(ref.value().data(), kLeafKind, kInvalidPageId);
    ref.value().MarkDirty();
    root_ = id;
    height_ = 1;
  }

  // Record the internal spine so splits can propagate upward; only one
  // node (plus a fresh sibling) is pinned at any moment.
  std::vector<PageId> path;
  PageId cur = root_;
  for (uint32_t level = height_; level > 1; --level) {
    auto ref = pool_->Fetch(cur);
    if (!ref.ok()) return ref.status();
    const char* p = ref.value().data();
    path.push_back(cur);
    size_t pos = UpperBoundInternal(p, NodeCount(p), key);
    cur = pos == 0 ? Child0(p) : IChild(p, pos - 1);
  }

  auto leaf = pool_->Fetch(cur);
  if (!leaf.ok()) return leaf.status();
  bool split = false;
  Split pending;
  SQLOG_RETURN_IF_ERROR(
      InsertIntoLeaf(std::move(leaf.value()), key, row, &split, &pending));
  while (split && !path.empty()) {
    PageId parent = path.back();
    path.pop_back();
    auto node = pool_->Fetch(parent);
    if (!node.ok()) return node.status();
    SQLOG_RETURN_IF_ERROR(
        InsertIntoInternal(std::move(node.value()), pending, &split, &pending));
  }
  if (split) SQLOG_RETURN_IF_ERROR(MakeRootOverSplit(root_, pending));
  ++entry_count_;
  return Status::OK();
}

Status BTreeIndex::StartBulk() {
  if (root_ != kInvalidPageId || bulk_active_) {
    return Status::Internal("B+-tree: bulk load requires an empty index");
  }
  bulk_active_ = true;
  bulk_any_ = false;
  bulk_leaf_ = kInvalidPageId;
  bulk_leaves_.clear();
  return Status::OK();
}

Status BTreeIndex::BulkAdd(int64_t key, uint64_t row) {
  if (!bulk_active_) return Status::Internal("B+-tree: BulkAdd without StartBulk");
  if (bulk_any_ && key < bulk_last_key_) {
    return Status::InvalidArgument(
        StrFormat("bulk load out of order: %lld after %lld", (long long)key,
                  (long long)bulk_last_key_));
  }
  bulk_last_key_ = key;
  bulk_any_ = true;

  if (bulk_leaf_ != kInvalidPageId) {
    auto ref = pool_->Fetch(bulk_leaf_);
    if (!ref.ok()) return ref.status();
    char* p = ref.value().data();
    size_t n = NodeCount(p);
    if (n < kLeafCap) {
      SetLeafEntry(p, n, key, row);
      SetNodeCount(p, static_cast<uint16_t>(n + 1));
      ref.value().MarkDirty();
      ++entry_count_;
      return Status::OK();
    }
  }

  // Start a new (packed-full predecessor) leaf and chain it.
  PageId id = kInvalidPageId;
  auto fresh = pool_->New(&id);
  if (!fresh.ok()) return fresh.status();
  InitNode(fresh.value().data(), kLeafKind, kInvalidPageId);
  SetLeafEntry(fresh.value().data(), 0, key, row);
  SetNodeCount(fresh.value().data(), 1);
  fresh.value().MarkDirty();
  if (bulk_leaf_ != kInvalidPageId) {
    auto prev = pool_->Fetch(bulk_leaf_);
    if (!prev.ok()) return prev.status();
    SetLeafNext(prev.value().data(), id);
    prev.value().MarkDirty();
  }
  bulk_leaf_ = id;
  bulk_leaves_.push_back(Split{key, id});
  ++entry_count_;
  return Status::OK();
}

Status BTreeIndex::FinishBulk() {
  if (!bulk_active_) return Status::Internal("B+-tree: FinishBulk without StartBulk");
  bulk_active_ = false;
  if (bulk_leaves_.empty()) return Status::OK();  // empty index

  // Build internal levels bottom-up from the (first key, page) lists.
  std::vector<Split> level = std::move(bulk_leaves_);
  bulk_leaves_.clear();
  height_ = 1;
  while (level.size() > 1) {
    std::vector<Split> parents;
    parents.reserve(level.size() / kInternalCap + 1);
    size_t i = 0;
    while (i < level.size()) {
      // A node takes child0 plus up to kInternalCap keyed children; if
      // that would strand a single child in the final node, leave one
      // more for it (every internal node must route >= 2 children).
      size_t take = std::min(kInternalCap + 1, level.size() - i);
      if (level.size() - i - take == 1) --take;
      PageId id = kInvalidPageId;
      auto ref = pool_->New(&id);
      if (!ref.ok()) return ref.status();
      char* p = ref.value().data();
      InitNode(p, kInternalKind, level[i].page);
      for (size_t j = 1; j < take; ++j) {
        SetIEntry(p, j - 1, level[i + j].key, level[i + j].page);
      }
      SetNodeCount(p, static_cast<uint16_t>(take - 1));
      ref.value().MarkDirty();
      parents.push_back(Split{level[i].key, id});
      i += take;
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level[0].page;
  return Status::OK();
}

}  // namespace sqlog::engine
