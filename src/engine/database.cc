#include "engine/database.h"

#include "util/string_util.h"

namespace sqlog::engine {

Result<Table*> Database::CreateTable(const std::string& name,
                                     const std::vector<Table::Column>& columns) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + key);
  }
  auto table = std::make_unique<Table>(key);
  for (const auto& col : columns) {
    SQLOG_RETURN_IF_ERROR_R(table->AddColumn(col.name, col.kind));
  }
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Result<Table*> Database::CreateTableFromCatalog(const catalog::TableDef& def) {
  std::vector<Table::Column> columns;
  columns.reserve(def.columns().size());
  for (const auto& col : def.columns()) {
    columns.push_back(Table::Column{col.name, KindForColumnType(col.type)});
  }
  return CreateTable(def.name(), columns);
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

namespace {

Status FillPhotoTable(Table* table, const std::vector<int64_t>& objids, Rng& rng) {
  for (int64_t objid : objids) {
    double ra = rng.NextDouble() * 360.0;
    double dec = rng.NextDouble() * 180.0 - 90.0;
    std::vector<Value> row;
    row.reserve(table->columns().size());
    for (const auto& col : table->columns()) {
      if (col.name == "objid") {
        row.push_back(Value::Int(objid));
      } else if (col.name == "ra") {
        row.push_back(Value::Real(ra));
      } else if (col.name == "dec") {
        row.push_back(Value::Real(dec));
      } else if (col.name == "htmid") {
        row.push_back(Value::Int(static_cast<int64_t>(rng.Uniform(1ULL << 40))));
      } else if (col.kind == Value::Kind::kInt64) {
        row.push_back(Value::Int(static_cast<int64_t>(rng.Uniform(10000))));
      } else if (col.kind == Value::Kind::kDouble) {
        row.push_back(Value::Real(rng.NextDouble() * 30.0));
      } else {
        row.push_back(Value::Str(StrFormat("s%llu", (unsigned long long)rng.Uniform(1000))));
      }
    }
    SQLOG_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
  }
  return Status::OK();
}

}  // namespace

Status PopulateSkyServerSample(Database& db, size_t rows, uint64_t seed) {
  Rng rng(seed);
  catalog::Schema schema = catalog::MakeSkyServerSchema();

  // Shared objid population so photoprimary/photoobjall point lookups hit.
  std::vector<int64_t> objids;
  objids.reserve(rows);
  int64_t base = 587722981740000000LL;
  for (size_t i = 0; i < rows; ++i) {
    objids.push_back(base + static_cast<int64_t>(i) * 131LL);
  }

  for (const char* name : {"photoprimary", "photoobjall"}) {
    const catalog::TableDef* def = schema.FindTable(name);
    if (def == nullptr) return Status::Internal("missing catalog table");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    SQLOG_RETURN_IF_ERROR(FillPhotoTable(table.value(), objids, rng));
  }

  // Spectroscopic subset: every 4th photo object has a spectrum.
  for (const char* name : {"specobj", "specobjall"}) {
    const catalog::TableDef* def = schema.FindTable(name);
    if (def == nullptr) return Status::Internal("missing catalog table");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    int64_t spec_base = 75094090000000000LL;
    for (size_t i = 0; i < objids.size(); i += 4) {
      std::vector<Value> row;
      for (const auto& col : table.value()->columns()) {
        if (col.name == "specobjid") {
          row.push_back(Value::Int(spec_base + static_cast<int64_t>(i) * 257LL));
        } else if (col.name == "bestobjid") {
          row.push_back(Value::Int(objids[i]));
        } else if (col.kind == Value::Kind::kInt64) {
          row.push_back(Value::Int(static_cast<int64_t>(rng.Uniform(100000))));
        } else if (col.kind == Value::Kind::kDouble) {
          row.push_back(Value::Real(rng.NextDouble()));
        } else {
          row.push_back(Value::Str("spec"));
        }
      }
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow(std::move(row)));
    }
  }

  // Metadata table.
  {
    const catalog::TableDef* def = schema.FindTable("dbobjects");
    if (def == nullptr) return Status::Internal("missing catalog table");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    static constexpr const char* kNames[] = {"Galaxy",       "Star",      "photoObjAll",
                                             "photoPrimary", "specObj",   "specObjAll",
                                             "DBObjects",    "fGetNearbyObjEq"};
    int rank = 0;
    for (const char* name : kNames) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Str(name),
          Value::Str(rank < 6 ? "U" : "F"),
          Value::Str(std::string("description of ") + name),
          Value::Str(std::string("long text for ") + name),
          Value::Str("public"),
          Value::Int(rank++),
      }));
    }
  }

  // Paper running-example tables.
  {
    const catalog::TableDef* def = schema.FindTable("employees");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    static constexpr const char* kDepartments[] = {"sales", "hr", "it"};
    for (int i = 1; i <= 60; ++i) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Int(i),
          Value::Int(i),
          Value::Str(StrFormat("Name%d", i)),
          Value::Str(StrFormat("Surname%d", i)),
          Value::Str(StrFormat("19%02d-03-12", 50 + i % 50)),
          Value::Str(StrFormat("0125986%04d", i)),
          Value::Str(kDepartments[i % 3]),
          Value::Str(StrFormat("%d Main Street", i)),
      }));
    }
  }
  {
    const catalog::TableDef* def = schema.FindTable("orders");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    for (int i = 1; i <= 400; ++i) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Int(i),
          Value::Int(1 + static_cast<int64_t>(rng.Uniform(60))),
          Value::Int(static_cast<int64_t>(rng.Uniform(50))),
          Value::Str(StrFormat("2007-0%llu-15",
                               static_cast<unsigned long long>(1 + rng.Uniform(9)))),
      }));
    }
  }
  {
    const catalog::TableDef* def = schema.FindTable("bugs");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    for (int i = 1; i <= 50; ++i) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Int(i),
          i % 5 == 0 ? Value::Null() : Value::Int(100 + i),
          Value::Str(i % 2 == 0 ? "open" : "closed"),
      }));
    }
  }

  return Status::OK();
}

std::vector<int64_t> PhotoObjIds(const Database& db) {
  std::vector<int64_t> out;
  const Table* table = db.FindTable("photoprimary");
  if (table == nullptr) return out;
  int col = table->ColumnIndex("objid");
  if (col < 0) return out;
  out.reserve(table->row_count());
  for (size_t row = 0; row < table->row_count(); ++row) {
    out.push_back(table->At(row, static_cast<size_t>(col)).AsInt());
  }
  return out;
}

}  // namespace sqlog::engine
