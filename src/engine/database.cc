#include "engine/database.h"

#include "engine/table_heap.h"
#include "util/string_util.h"

namespace sqlog::engine {

Status Database::EnsurePool() {
  if (pool_ != nullptr) return Status::OK();
  auto file = std::make_unique<PageFile>();
  SQLOG_RETURN_IF_ERROR(file->Open(options_.page_file_path));
  page_file_ = std::move(file);
  pool_ = std::make_unique<BufferPool>(page_file_.get(), options_.buffer_pool_pages);
  return Status::OK();
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     const std::vector<Table::Column>& columns) {
  return CreateTable(name, columns, options_.storage);
}

Result<Table*> Database::CreateTable(const std::string& name,
                                     const std::vector<Table::Column>& columns,
                                     StorageMode mode) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + key);
  }
  std::unique_ptr<Table> table;
  if (mode == StorageMode::kPaged) {
    SQLOG_RETURN_IF_ERROR_R(EnsurePool());
    table = std::make_unique<PagedTable>(key, pool_.get());
  } else {
    table = std::make_unique<MemoryTable>(key);
  }
  for (const auto& col : columns) {
    SQLOG_RETURN_IF_ERROR_R(table->AddColumn(col.name, col.kind));
  }
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Result<Table*> Database::CreateTableFromCatalog(const catalog::TableDef& def) {
  std::vector<Table::Column> columns;
  columns.reserve(def.columns().size());
  for (const auto& col : def.columns()) {
    columns.push_back(Table::Column{col.name, KindForColumnType(col.type)});
  }
  return CreateTable(def.name(), columns);
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::FindTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::CreateIndex(const std::string& table_name, const std::string& column) {
  const Table* table = FindTable(table_name);
  if (table == nullptr) return Status::NotFound("no such table: " + table_name);
  int col = table->ColumnIndex(column);
  if (col < 0) return Status::NotFound("no such column: " + column);
  if (table->columns()[static_cast<size_t>(col)].kind != Value::Kind::kInt64) {
    return Status::InvalidArgument("indexes require an int64 column: " + column);
  }
  std::string key = ToLower(table_name) + '\x1f' + ToLower(column);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + key);
  }
  SQLOG_RETURN_IF_ERROR(EnsurePool());

  // First pass: detect key-sortedness so creation over the (generated,
  // ascending) synthetic tables takes the packed bulk-load path.
  const size_t c = static_cast<size_t>(col);
  bool sorted = true;
  bool any = false;
  int64_t prev = 0;
  for (size_t row = 0; row < table->row_count() && sorted; ++row) {
    Value v = table->CellAt(row, c);
    if (v.is_null()) continue;
    int64_t k = v.AsInt();
    if (any && k < prev) sorted = false;
    prev = k;
    any = true;
  }

  auto index = std::make_unique<BTreeIndex>(pool_.get());
  if (sorted) {
    SQLOG_RETURN_IF_ERROR(index->StartBulk());
    for (size_t row = 0; row < table->row_count(); ++row) {
      Value v = table->CellAt(row, c);
      if (v.is_null()) continue;
      SQLOG_RETURN_IF_ERROR(index->BulkAdd(v.AsInt(), row));
    }
    SQLOG_RETURN_IF_ERROR(index->FinishBulk());
  } else {
    for (size_t row = 0; row < table->row_count(); ++row) {
      Value v = table->CellAt(row, c);
      if (v.is_null()) continue;
      SQLOG_RETURN_IF_ERROR(index->Insert(v.AsInt(), row));
    }
  }
  indexes_[key] = std::move(index);
  return Status::OK();
}

const BTreeIndex* Database::FindIndex(std::string_view table_name,
                                      std::string_view column) const {
  std::string key = ToLower(table_name) + '\x1f' + ToLower(column);
  auto it = indexes_.find(key);
  return it == indexes_.end() ? nullptr : it->second.get();
}

namespace {

Status FillPhotoTable(Table* table, size_t rows, Rng& rng) {
  for (size_t i = 0; i < rows; ++i) {
    const int64_t objid = SyntheticObjId(i);
    double ra = rng.NextDouble() * 360.0;
    double dec = rng.NextDouble() * 180.0 - 90.0;
    std::vector<Value> row;
    row.reserve(table->columns().size());
    for (const auto& col : table->columns()) {
      if (col.name == "objid") {
        row.push_back(Value::Int(objid));
      } else if (col.name == "ra") {
        row.push_back(Value::Real(ra));
      } else if (col.name == "dec") {
        row.push_back(Value::Real(dec));
      } else if (col.name == "htmid") {
        row.push_back(Value::Int(static_cast<int64_t>(rng.Uniform(1ULL << 40))));
      } else if (col.kind == Value::Kind::kInt64) {
        row.push_back(Value::Int(static_cast<int64_t>(rng.Uniform(10000))));
      } else if (col.kind == Value::Kind::kDouble) {
        row.push_back(Value::Real(rng.NextDouble() * 30.0));
      } else {
        row.push_back(Value::Str(StrFormat("s%llu", (unsigned long long)rng.Uniform(1000))));
      }
    }
    SQLOG_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
  }
  return Status::OK();
}

}  // namespace

Status PopulateSkyServerSample(Database& db, size_t rows, uint64_t seed) {
  Rng rng(seed);
  catalog::Schema schema = catalog::MakeSkyServerSchema();

  // Shared objid population so photoprimary/photoobjall point lookups
  // hit: both tables row i carries SyntheticObjId(i).
  for (const char* name : {"photoprimary", "photoobjall"}) {
    const catalog::TableDef* def = schema.FindTable(name);
    if (def == nullptr) return Status::Internal("missing catalog table");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    SQLOG_RETURN_IF_ERROR(FillPhotoTable(table.value(), rows, rng));
  }

  // Spectroscopic subset: every 4th photo object has a spectrum.
  for (const char* name : {"specobj", "specobjall"}) {
    const catalog::TableDef* def = schema.FindTable(name);
    if (def == nullptr) return Status::Internal("missing catalog table");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    int64_t spec_base = 75094090000000000LL;
    for (size_t i = 0; i < rows; i += 4) {
      std::vector<Value> row;
      for (const auto& col : table.value()->columns()) {
        if (col.name == "specobjid") {
          row.push_back(Value::Int(spec_base + static_cast<int64_t>(i) * 257LL));
        } else if (col.name == "bestobjid") {
          row.push_back(Value::Int(SyntheticObjId(i)));
        } else if (col.kind == Value::Kind::kInt64) {
          row.push_back(Value::Int(static_cast<int64_t>(rng.Uniform(100000))));
        } else if (col.kind == Value::Kind::kDouble) {
          row.push_back(Value::Real(rng.NextDouble()));
        } else {
          row.push_back(Value::Str("spec"));
        }
      }
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow(std::move(row)));
    }
  }

  // Metadata table.
  {
    const catalog::TableDef* def = schema.FindTable("dbobjects");
    if (def == nullptr) return Status::Internal("missing catalog table");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    static constexpr const char* kNames[] = {"Galaxy",       "Star",      "photoObjAll",
                                             "photoPrimary", "specObj",   "specObjAll",
                                             "DBObjects",    "fGetNearbyObjEq"};
    int rank = 0;
    for (const char* name : kNames) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Str(name),
          Value::Str(rank < 6 ? "U" : "F"),
          Value::Str(std::string("description of ") + name),
          Value::Str(std::string("long text for ") + name),
          Value::Str("public"),
          Value::Int(rank++),
      }));
    }
  }

  // Paper running-example tables.
  {
    const catalog::TableDef* def = schema.FindTable("employees");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    static constexpr const char* kDepartments[] = {"sales", "hr", "it"};
    for (int i = 1; i <= 60; ++i) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Int(i),
          Value::Int(i),
          Value::Str(StrFormat("Name%d", i)),
          Value::Str(StrFormat("Surname%d", i)),
          Value::Str(StrFormat("19%02d-03-12", 50 + i % 50)),
          Value::Str(StrFormat("0125986%04d", i)),
          Value::Str(kDepartments[i % 3]),
          Value::Str(StrFormat("%d Main Street", i)),
      }));
    }
  }
  {
    const catalog::TableDef* def = schema.FindTable("orders");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    for (int i = 1; i <= 400; ++i) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Int(i),
          Value::Int(1 + static_cast<int64_t>(rng.Uniform(60))),
          Value::Int(static_cast<int64_t>(rng.Uniform(50))),
          Value::Str(StrFormat("2007-0%llu-15",
                               static_cast<unsigned long long>(1 + rng.Uniform(9)))),
      }));
    }
  }
  {
    const catalog::TableDef* def = schema.FindTable("bugs");
    auto table = db.CreateTableFromCatalog(*def);
    if (!table.ok()) return table.status();
    for (int i = 1; i <= 50; ++i) {
      SQLOG_RETURN_IF_ERROR(table.value()->AppendRow({
          Value::Int(i),
          i % 5 == 0 ? Value::Null() : Value::Int(100 + i),
          Value::Str(i % 2 == 0 ? "open" : "closed"),
      }));
    }
  }

  return Status::OK();
}

Status PopulatePhotoPrimary(Database& db, size_t rows, uint64_t seed) {
  Rng rng(seed);
  catalog::Schema schema = catalog::MakeSkyServerSchema();
  const catalog::TableDef* def = schema.FindTable("photoprimary");
  if (def == nullptr) return Status::Internal("missing catalog table");
  auto table = db.CreateTableFromCatalog(*def);
  if (!table.ok()) return table.status();
  return FillPhotoTable(table.value(), rows, rng);
}

std::vector<int64_t> PhotoObjIds(const Database& db) {
  std::vector<int64_t> out;
  const Table* table = db.FindTable("photoprimary");
  if (table == nullptr) return out;
  int col = table->ColumnIndex("objid");
  if (col < 0) return out;
  out.reserve(table->row_count());
  for (size_t row = 0; row < table->row_count(); ++row) {
    out.push_back(table->CellAt(row, static_cast<size_t>(col)).AsInt());
  }
  return out;
}

}  // namespace sqlog::engine
