#ifndef SQLOG_ENGINE_PAGE_H_
#define SQLOG_ENGINE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace sqlog::engine {

/// Fixed page size of the out-of-core storage layer. Every on-disk
/// structure (table-heap pages, B+-tree nodes) is laid out inside one
/// such page; the buffer pool caches whole pages.
inline constexpr size_t kPageSize = 8192;

/// Pages are addressed by a dense 32-bit id: page N lives at byte
/// offset N * kPageSize of the page file. 32 bits x 8 KiB = 32 TiB,
/// far beyond anything this engine sweeps.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Little-endian load/store helpers for in-page fields. memcpy-based so
/// they are alignment-safe and compile to single moves on x86/ARM.
inline void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreI64(char* p, int64_t v) { std::memcpy(p, &v, sizeof(v)); }
inline void StoreF64(char* p, double v) { std::memcpy(p, &v, sizeof(v)); }

inline uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline int64_t LoadI64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline double LoadF64(const char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_PAGE_H_
