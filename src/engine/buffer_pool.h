#ifndef SQLOG_ENGINE_BUFFER_POOL_H_
#define SQLOG_ENGINE_BUFFER_POOL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/page.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlog::engine {

/// Append-only page file: the disk half of the out-of-core engine.
/// Pages are allocated by bumping a counter and addressed at
/// `id * kPageSize`; reads past the synced tail return zero bytes
/// (an allocated-but-never-flushed page reads back as all zeros).
///
/// Open("") creates an anonymous temp file (created under $TMPDIR and
/// unlinked immediately), which is what every in-process database uses:
/// the file disappears with the process, so crashed benchmarks never
/// leave multi-GiB page files behind.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating + truncating) the backing file. Empty path means
  /// an unlinked temp file.
  Status Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }

  /// Allocates the next page id. The page has no on-disk bytes until
  /// the buffer pool first writes it back.
  PageId Allocate() { return next_page_++; }

  /// Reads page `id` into `buf` (kPageSize bytes). Short reads past the
  /// written tail zero-fill, so freshly allocated pages read as zeros.
  Status Read(PageId id, char* buf);

  /// Writes page `id` from `buf` (kPageSize bytes).
  Status Write(PageId id, const char* buf);

  size_t page_count() const { return next_page_; }

 private:
  // PageFile is owned by a BufferPool and only touched with the pool's
  // mutex held; it has no locking of its own.
  int fd_ SQLOG_SHARD_LOCAL = -1;
  PageId next_page_ SQLOG_SHARD_LOCAL = 0;
};

/// Fixed-size page cache with LRU replacement, pin/unpin accounting and
/// dirty-page write-back — the only component that touches the PageFile
/// after setup. Table heaps and B+-trees never hold raw pages; they hold
/// PageRefs, whose lifetime is the pin.
///
/// Replacement policy: strict LRU over unpinned frames. A frame becomes
/// evictable when its pin count drops to zero and is reused in
/// least-recently-unpinned order. Fetching an already-resident page
/// removes it from the LRU list (it is pinned again). When every frame
/// is pinned, Fetch/New fail with kIoError rather than blocking — the
/// engine's access paths pin at most a handful of pages at a time, so
/// starvation indicates a leaked PageRef.
class BufferPool {
 public:
  /// Counters for tests and bench reporting. Snapshot via stats().
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    size_t pool_pages = 0;
  };

  /// RAII pin on one page frame. Holding a PageRef guarantees the frame
  /// is not evicted and `data()` stays valid. Call MarkDirty() after
  /// mutating the bytes; the dirty bit is applied to the frame when the
  /// ref unpins (destruction or Release()).
  class PageRef {
   public:
    PageRef() = default;
    ~PageRef() { Release(); }

    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        data_ = other.data_;
        id_ = other.id_;
        frame_ = other.frame_;
        dirty_ = other.dirty_;
        other.pool_ = nullptr;
        other.data_ = nullptr;
        other.id_ = kInvalidPageId;
        other.dirty_ = false;
      }
      return *this;
    }

    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    bool valid() const { return pool_ != nullptr; }
    PageId id() const { return id_; }
    char* data() const { return data_; }

    /// Records that the page bytes were modified; the buffer pool will
    /// write the page back before reusing its frame.
    void MarkDirty() { dirty_ = true; }

    /// Unpins early (idempotent). data() is invalid afterwards.
    void Release();

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, char* data, PageId id, size_t frame)
        : pool_(pool), data_(data), id_(id), frame_(frame) {}

    BufferPool* pool_ = nullptr;
    char* data_ = nullptr;
    PageId id_ = kInvalidPageId;
    size_t frame_ = 0;
    bool dirty_ = false;
  };

  /// The pool does not own `file`; it must outlive the pool.
  BufferPool(PageFile* file, size_t pool_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the file on a miss.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a fresh zeroed page and pins it. The new page is born
  /// dirty so it reaches the file even if the caller never writes.
  Result<PageRef> New(PageId* id);

  /// Writes every dirty resident page back to the file.
  Status FlushAll();

  size_t pool_pages() const { return pool_pages_; }
  size_t pool_bytes() const { return pool_pages_ * kPageSize; }

  Stats stats() const;

 private:
  /// Null link in the intrusive LRU list.
  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  struct Frame {
    PageId page = kInvalidPageId;
    uint32_t pins = 0;
    bool dirty = false;
    bool in_lru = false;
    // Intrusive doubly-linked LRU list threaded through the frame table
    // by index: no per-node allocation on the pin/unpin path, and links
    // live in the Frame they describe (one cache line with the pin
    // count). kNoFrame terminates both directions.
    size_t lru_prev = kNoFrame;
    size_t lru_next = kNoFrame;
  };

  /// Finds a frame for a new resident page: a never-used frame first,
  /// else the LRU unpinned frame (writing it back when dirty).
  Result<size_t> AcquireFrameLocked() SQLOG_REQUIRES(mu_);

  /// Appends `frame` at the recently-used tail. O(1), no allocation.
  void LruPushBack(size_t frame) SQLOG_REQUIRES(mu_);

  /// Unlinks `frame` from wherever it sits in the list. O(1).
  void LruRemove(size_t frame) SQLOG_REQUIRES(mu_);

  void Unpin(size_t frame, bool dirty);

  char* FrameData(size_t frame) { return memory_.get() + frame * kPageSize; }

  const size_t pool_pages_;
  // The pointer is const; the PageFile behind it is only touched with
  // mu_ held (see the PageFile comment).
  PageFile* const file_ SQLOG_CONST_AFTER_INIT;
  std::unique_ptr<char[]> memory_ SQLOG_CONST_AFTER_INIT;  // pool_pages_ * kPageSize

  mutable util::Mutex mu_ SQLOG_SELF_SYNCHRONIZED;
  std::vector<Frame> frames_ SQLOG_GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ SQLOG_GUARDED_BY(mu_);
  size_t lru_head_ SQLOG_GUARDED_BY(mu_) = kNoFrame;  // evict next
  size_t lru_tail_ SQLOG_GUARDED_BY(mu_) = kNoFrame;  // most recently unpinned
  std::unordered_map<PageId, size_t> page_table_ SQLOG_GUARDED_BY(mu_);
  Stats stats_ SQLOG_GUARDED_BY(mu_);
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_BUFFER_POOL_H_
