#ifndef SQLOG_ENGINE_TABLE_H_
#define SQLOG_ENGINE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/value.h"
#include "util/status.h"
#include "util/string_util.h"

namespace sqlog::engine {

/// Which backend a table's rows live in.
enum class StorageMode {
  kMemory,  // columnar std::vector<Value> per column (the default)
  kPaged,   // slotted pages behind the buffer pool (out-of-core)
};

/// Row-access interface shared by the in-memory columnar backend
/// (MemoryTable) and the out-of-core paged heap (PagedTable, see
/// table_heap.h). Schema handling — a flat (name, kind) list with
/// case-insensitive lookup — is common and lives here; row storage is
/// virtual. The executor goes through CellAt/GetRow/CellPtr only, so
/// query results are identical across backends.
class Table {
 public:
  struct Column {
    std::string name;  // stored lower-case
    Value::Kind kind = Value::Kind::kString;
  };

  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}
  virtual ~Table() = default;

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Appends a column definition. Must be called before any rows exist.
  Status AddColumn(const std::string& name, Value::Kind kind);

  /// Case-insensitive; returns -1 when absent. Heterogeneous fold
  /// lookup: no per-call lower-case allocation.
  int ColumnIndex(std::string_view name) const;

  virtual StorageMode storage_mode() const = 0;
  virtual size_t row_count() const = 0;

  /// Appends one row; the value count must match the column count.
  virtual Status AppendRow(std::vector<Value> values) = 0;

  /// Cell access by value; indices must be in range. The paged backend
  /// decodes the cell from its page, so this returns by value.
  virtual Value CellAt(size_t row, size_t col) const = 0;

  /// Reads one full row into `out` (cleared first).
  virtual Status GetRow(size_t row, std::vector<Value>* out) const = 0;

  /// Stable pointer to a cell when the backend materializes Values in
  /// memory; nullptr when cells must be decoded (paged backend). The
  /// executor uses this to keep the in-memory scan path zero-copy.
  virtual const Value* CellPtr(size_t row, size_t col) const {
    (void)row;
    (void)col;
    return nullptr;
  }

 protected:
  /// Arity check shared by AppendRow implementations.
  Status ValidateRow(const std::vector<Value>& values) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t, AsciiFoldHash, AsciiFoldEq> index_;
};

/// In-memory columnar table. Values are stored per column; rows are
/// addressed by index. This is the default backend and the substrate of
/// every golden test.
class MemoryTable final : public Table {
 public:
  MemoryTable() = default;
  explicit MemoryTable(std::string name) : Table(std::move(name)) {}

  StorageMode storage_mode() const override { return StorageMode::kMemory; }
  size_t row_count() const override { return row_count_; }

  Status AppendRow(std::vector<Value> values) override;

  Value CellAt(size_t row, size_t col) const override { return data_[col][row]; }
  Status GetRow(size_t row, std::vector<Value>* out) const override;
  const Value* CellPtr(size_t row, size_t col) const override {
    return &data_[col][row];
  }

  /// Reference cell access; indices must be in range.
  const Value& At(size_t row, size_t col) const { return data_[col][row]; }

  /// Full column access (for scans).
  const std::vector<Value>& ColumnData(size_t col) const { return data_[col]; }

 private:
  std::vector<std::vector<Value>> data_;  // data_[col][row]
  size_t row_count_ = 0;
};

/// Materialized query output: named columns plus row-major tuples.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;

  size_t row_count() const { return rows.size(); }

  /// Renders an ASCII table (examples and debugging).
  std::string ToText(size_t max_rows = 20) const;
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_TABLE_H_
