#ifndef SQLOG_ENGINE_TABLE_H_
#define SQLOG_ENGINE_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/value.h"
#include "util/status.h"

namespace sqlog::engine {

/// In-memory columnar table. Values are stored per column; rows are
/// addressed by index. Schema is a flat (name, kind) list with
/// case-insensitive lookup.
class Table {
 public:
  struct Column {
    std::string name;  // stored lower-case
    Value::Kind kind = Value::Kind::kString;
  };

  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Column>& columns() const { return columns_; }
  size_t row_count() const { return row_count_; }

  /// Appends a column definition. Must be called before any rows exist.
  Status AddColumn(const std::string& name, Value::Kind kind);

  /// Case-insensitive; returns -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Appends one row; the value count must match the column count.
  Status AppendRow(std::vector<Value> values);

  /// Cell access; indices must be in range.
  const Value& At(size_t row, size_t col) const { return data_[col][row]; }

  /// Full column access (for scans).
  const std::vector<Value>& ColumnData(size_t col) const { return data_[col]; }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<Value>> data_;  // data_[col][row]
  size_t row_count_ = 0;
};

/// Materialized query output: named columns plus row-major tuples.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;

  size_t row_count() const { return rows.size(); }

  /// Renders an ASCII table (examples and debugging).
  std::string ToText(size_t max_rows = 20) const;
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_TABLE_H_
