#ifndef SQLOG_ENGINE_TABLE_HEAP_H_
#define SQLOG_ENGINE_TABLE_HEAP_H_

#include <string>
#include <vector>

#include "engine/buffer_pool.h"
#include "engine/table.h"

namespace sqlog::engine {

/// Out-of-core table backend: rows serialized into slotted pages behind
/// the buffer pool. Append-only (the engine's workloads never update in
/// place), addressed by dense row number.
///
/// Page layout (all little-endian):
///   [0..2)  uint16 slot_count
///   [2..4)  uint16 data_start — lowest byte offset of row data
///   [4..)   uint16 slot[i] — byte offset of row i's data in this page
///   ...free space...
///   [data_start..kPageSize)  row payloads, appended high-to-low
///
/// Row payload: per column, 1 tag byte (0=NULL, 1=int64, 2=double,
/// 3=string) followed by the fixed 8-byte value or uint32 length +
/// bytes. A row must fit in one page (kPageSize - 6 payload bytes);
/// the log-cleaning schemas are far below that.
///
/// A small in-memory directory maps row number -> page (8 bytes per
/// ~30-80 rows), so random access is a binary search + one pool fetch.
class PagedTable final : public Table {
 public:
  /// The table does not own `pool`; the Database that created both
  /// keeps the pool alive for the table's lifetime.
  PagedTable(std::string name, BufferPool* pool)
      : Table(std::move(name)), pool_(pool) {}

  StorageMode storage_mode() const override { return StorageMode::kPaged; }
  size_t row_count() const override { return row_count_; }

  Status AppendRow(std::vector<Value> values) override;

  Value CellAt(size_t row, size_t col) const override;
  Status GetRow(size_t row, std::vector<Value>* out) const override;

  /// Total serialized row bytes — the on-disk footprint the pool pages
  /// over. Tests compare this against pool_bytes() to prove a table is
  /// much larger than its cache.
  uint64_t data_bytes() const { return data_bytes_; }
  size_t page_count() const { return dir_.size(); }

 private:
  struct DirEntry {
    PageId page = kInvalidPageId;
    uint64_t first_row = 0;  // row number of the page's slot 0
  };

  /// Locates the page holding `row` and returns a pinned ref plus the
  /// slot index within the page.
  Result<BufferPool::PageRef> FetchRowPage(size_t row, size_t* slot) const;

  // Single-writer, shared-reader: appends happen during population
  // before queries run; the mutable state below is never written
  // concurrently with reads. Page bytes themselves are synchronized by
  // the buffer pool.
  BufferPool* const pool_ SQLOG_CONST_AFTER_INIT;
  std::vector<DirEntry> dir_ SQLOG_SHARD_LOCAL;
  uint64_t row_count_ SQLOG_SHARD_LOCAL = 0;
  uint64_t data_bytes_ SQLOG_SHARD_LOCAL = 0;
  std::string scratch_ SQLOG_SHARD_LOCAL;  // AppendRow serialization buffer
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_TABLE_HEAP_H_
