#ifndef SQLOG_ENGINE_BTREE_H_
#define SQLOG_ENGINE_BTREE_H_

#include <functional>
#include <vector>

#include "engine/buffer_pool.h"

namespace sqlog::engine {

/// Paged B+-tree index mapping int64 keys to row numbers. Nodes are
/// buffer-pool pages, so an index over a table much larger than RAM
/// costs O(pool) memory like everything else in the engine. Duplicate
/// keys are allowed (Lookup returns every match in insertion order).
///
/// Node layout (little-endian; see page.h for the helpers):
///   common   [0] uint8 kind (1=leaf, 2=internal), [1] pad, [2..4) uint16 count
///   leaf     [4..8) uint32 next-leaf page (kInvalidPageId at the end),
///            then `count` entries of (int64 key, uint64 row) — 511/page
///   internal [4..8) uint32 child0, then `count` entries of
///            (int64 key, uint32 child) — 682/page. child0 routes keys
///            below key[0]; child[i] routes key[i] <= k < key[i+1].
///
/// Two build paths: StartBulk/BulkAdd/FinishBulk packs fully-loaded
/// leaves from key-sorted input (what index creation over the synthetic
/// SkyServer tables uses — objids are generated ascending), and
/// Insert() does a standard top-down descent with bottom-up splits for
/// unsorted input. Both produce identical iteration order (pinned by
/// btree_test).
class BTreeIndex {
 public:
  /// The index does not own `pool`; the owning Database keeps it alive.
  explicit BTreeIndex(BufferPool* pool) : pool_(pool) {}

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Inserts one (key, row) pair, splitting nodes as needed.
  Status Insert(int64_t key, uint64_t row);

  /// Bulk-load protocol: StartBulk on an empty index, BulkAdd in
  /// nondecreasing key order (rejected otherwise), FinishBulk to build
  /// the internal levels. Leaves are packed full.
  Status StartBulk();
  Status BulkAdd(int64_t key, uint64_t row);
  Status FinishBulk();

  /// Appends every row whose key equals `key`, in insertion order.
  Status Lookup(int64_t key, std::vector<uint64_t>* rows) const;

  /// Point-probes each key of a sorted unique list (the executor's
  /// IN-list path) and appends all matching rows.
  Status LookupMany(const std::vector<int64_t>& keys,
                    std::vector<uint64_t>* rows) const;

  /// Walks every entry in key order (leaf chain, left to right).
  Status ForEach(const std::function<void(int64_t key, uint64_t row)>& fn) const;

  uint64_t size() const { return entry_count_; }
  uint32_t height() const { return height_; }

 private:
  struct Split {
    int64_t key = 0;  // separator: first key reachable via `page`
    PageId page = kInvalidPageId;
  };

  /// Descends to the leaf that may hold the leftmost occurrence of
  /// `key`.
  Result<PageId> DescendToLeaf(int64_t key) const;

  Status InsertIntoLeaf(BufferPool::PageRef leaf, int64_t key, uint64_t row,
                        bool* split, Split* promoted);
  Status InsertIntoInternal(BufferPool::PageRef node, Split entry, bool* split,
                            Split* promoted);
  Status MakeRootOverSplit(PageId left, Split right);

  // Built by one thread, then shared read-only with queries; node bytes
  // are synchronized by the buffer pool.
  BufferPool* const pool_ SQLOG_CONST_AFTER_INIT;
  PageId root_ SQLOG_SHARD_LOCAL = kInvalidPageId;
  uint32_t height_ SQLOG_SHARD_LOCAL = 0;  // 0 = empty, 1 = root is a leaf
  uint64_t entry_count_ SQLOG_SHARD_LOCAL = 0;

  // Bulk-load state: the leaf under construction plus (first key, page)
  // of every finished leaf — 12 bytes per 511 rows, so the builder
  // itself stays tiny even at tens of millions of entries.
  bool bulk_active_ SQLOG_SHARD_LOCAL = false;
  bool bulk_any_ SQLOG_SHARD_LOCAL = false;
  int64_t bulk_last_key_ SQLOG_SHARD_LOCAL = 0;
  PageId bulk_leaf_ SQLOG_SHARD_LOCAL = kInvalidPageId;
  std::vector<Split> bulk_leaves_ SQLOG_SHARD_LOCAL;
};

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_BTREE_H_
