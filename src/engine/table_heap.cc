#include "engine/table_heap.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace sqlog::engine {

namespace {

// Row payload tags; see the layout comment in table_heap.h.
constexpr char kTagNull = 0;
constexpr char kTagInt = 1;
constexpr char kTagDouble = 2;
constexpr char kTagString = 3;

constexpr size_t kHeaderBytes = 4;  // uint16 slot_count + uint16 data_start

void SerializeRow(const std::vector<Value>& values, std::string* out) {
  out->clear();
  char buf[8];
  for (const Value& v : values) {
    switch (v.kind()) {
      case Value::Kind::kNull:
        out->push_back(kTagNull);
        break;
      case Value::Kind::kInt64:
        out->push_back(kTagInt);
        StoreI64(buf, v.AsInt());
        out->append(buf, 8);
        break;
      case Value::Kind::kDouble:
        out->push_back(kTagDouble);
        StoreF64(buf, v.AsDouble());
        out->append(buf, 8);
        break;
      case Value::Kind::kString: {
        out->push_back(kTagString);
        const std::string& s = v.AsString();
        StoreU32(buf, static_cast<uint32_t>(s.size()));
        out->append(buf, 4);
        out->append(s);
        break;
      }
    }
  }
}

/// Decodes one cell at `p`, advancing past it. Returns the decoded
/// value via `out` when non-null (skip mode passes nullptr).
const char* DecodeCell(const char* p, Value* out) {
  switch (*p++) {
    case kTagNull:
      if (out != nullptr) *out = Value::Null();
      return p;
    case kTagInt:
      if (out != nullptr) *out = Value::Int(LoadI64(p));
      return p + 8;
    case kTagDouble:
      if (out != nullptr) *out = Value::Real(LoadF64(p));
      return p + 8;
    case kTagString: {
      uint32_t len = LoadU32(p);
      p += 4;
      if (out != nullptr) *out = Value::Str(std::string(p, len));
      return p + len;
    }
    default:
      // Unreachable for pages this table wrote; treat as NULL so a
      // corrupted tag cannot walk out of the page.
      if (out != nullptr) *out = Value::Null();
      return p;
  }
}

}  // namespace

Status PagedTable::AppendRow(std::vector<Value> values) {
  SQLOG_RETURN_IF_ERROR(ValidateRow(values));
  SerializeRow(values, &scratch_);
  const size_t need = scratch_.size() + 2;  // payload + its slot entry
  if (need > kPageSize - kHeaderBytes) {
    return Status::InvalidArgument(
        StrFormat("row of %zu serialized bytes exceeds the page capacity of %zu",
                  scratch_.size(), kPageSize - kHeaderBytes - 2));
  }

  BufferPool::PageRef ref;
  if (!dir_.empty()) {
    auto fill = pool_->Fetch(dir_.back().page);
    if (!fill.ok()) return fill.status();
    const char* p = fill.value().data();
    const uint16_t slots = LoadU16(p);
    const uint16_t data_start = LoadU16(p + 2);
    const size_t free_bytes = data_start - (kHeaderBytes + 2 * size_t{slots});
    if (need <= free_bytes) ref = std::move(fill.value());
  }
  if (!ref.valid()) {
    PageId id = kInvalidPageId;
    auto fresh = pool_->New(&id);
    if (!fresh.ok()) return fresh.status();
    ref = std::move(fresh.value());
    StoreU16(ref.data(), 0);
    StoreU16(ref.data() + 2, static_cast<uint16_t>(kPageSize));
    dir_.push_back(DirEntry{id, row_count_});
  }

  char* p = ref.data();
  const uint16_t slots = LoadU16(p);
  const uint16_t data_start = LoadU16(p + 2);
  const uint16_t new_start = static_cast<uint16_t>(data_start - scratch_.size());
  std::memcpy(p + new_start, scratch_.data(), scratch_.size());
  StoreU16(p + kHeaderBytes + 2 * size_t{slots}, new_start);
  StoreU16(p, static_cast<uint16_t>(slots + 1));
  StoreU16(p + 2, new_start);
  ref.MarkDirty();

  ++row_count_;
  data_bytes_ += scratch_.size();
  return Status::OK();
}

Result<BufferPool::PageRef> PagedTable::FetchRowPage(size_t row, size_t* slot) const {
  if (row >= row_count_) {
    return Status::OutOfRange(
        StrFormat("row %zu of %llu", row, (unsigned long long)row_count_));
  }
  auto it = std::upper_bound(
      dir_.begin(), dir_.end(), static_cast<uint64_t>(row),
      [](uint64_t r, const DirEntry& e) { return r < e.first_row; });
  --it;
  *slot = row - static_cast<size_t>(it->first_row);
  return pool_->Fetch(it->page);
}

Value PagedTable::CellAt(size_t row, size_t col) const {
  size_t slot = 0;
  auto ref = FetchRowPage(row, &slot);
  // Out-of-range rows are a caller bug (same contract as the in-memory
  // backend); pool-level I/O failure surfaces as NULL here and as a
  // Status from GetRow, which the executor's row path uses.
  if (!ref.ok()) return Value::Null();
  const char* page = ref.value().data();
  const char* p = page + LoadU16(page + kHeaderBytes + 2 * slot);
  Value out;
  for (size_t c = 0; c <= col; ++c) {
    p = DecodeCell(p, c == col ? &out : nullptr);
  }
  return out;
}

Status PagedTable::GetRow(size_t row, std::vector<Value>* out) const {
  size_t slot = 0;
  auto ref = FetchRowPage(row, &slot);
  if (!ref.ok()) return ref.status();
  const char* page = ref.value().data();
  const char* p = page + LoadU16(page + kHeaderBytes + 2 * slot);
  out->clear();
  out->resize(columns().size());
  for (size_t c = 0; c < out->size(); ++c) {
    p = DecodeCell(p, &(*out)[c]);
  }
  return Status::OK();
}

}  // namespace sqlog::engine
