#include "engine/buffer_pool.h"

#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include <cstdio>

#include "util/string_util.h"

namespace sqlog::engine {

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path) {
  if (fd_ >= 0) return Status::Internal("PageFile already open");
  if (path.empty()) {
    const char* tmpdir = ::getenv("TMPDIR");
    std::string templ =
        std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
        "/sqlog_pages.XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    int fd = ::mkstemp(buf.data());
    if (fd < 0) {
      return Status::IoError(StrFormat("mkstemp(%s): %s", buf.data(), strerror(errno)));
    }
    // Unlink immediately: the pages live only as long as this process.
    ::unlink(buf.data());
    fd_ = fd;
    return Status::OK();
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("open(%s): %s", path.c_str(), strerror(errno)));
  }
  fd_ = fd;
  return Status::OK();
}

Status PageFile::Read(PageId id, char* buf) {
  if (fd_ < 0) return Status::Internal("PageFile not open");
  if (id >= next_page_) {
    return Status::OutOfRange(StrFormat("page %u past allocated tail %u", id, next_page_));
  }
  size_t done = 0;
  const off_t base = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  while (done < kPageSize) {
    ssize_t n = ::pread(fd_, buf + done, kPageSize - done, base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("pread(page %u): %s", id, strerror(errno)));
    }
    if (n == 0) {
      // Allocated but never written: the logical content is zeros.
      ::memset(buf + done, 0, kPageSize - done);
      return Status::OK();
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PageFile::Write(PageId id, const char* buf) {
  if (fd_ < 0) return Status::Internal("PageFile not open");
  size_t done = 0;
  const off_t base = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  while (done < kPageSize) {
    ssize_t n = ::pwrite(fd_, buf + done, kPageSize - done, base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("pwrite(page %u): %s", id, strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

void BufferPool::PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
    dirty_ = false;
  }
}

BufferPool::BufferPool(PageFile* file, size_t pool_pages)
    : pool_pages_(pool_pages == 0 ? 1 : pool_pages),
      file_(file),
      memory_(new char[pool_pages_ * kPageSize]) {
  frames_.resize(pool_pages_);
  free_frames_.reserve(pool_pages_);
  // Hand out low frame numbers first; purely cosmetic but deterministic.
  for (size_t i = pool_pages_; i-- > 0;) free_frames_.push_back(i);
  stats_.pool_pages = pool_pages_;
}

BufferPool::~BufferPool() {
  // Best effort: a page file that cannot be written here was already
  // unusable for reads, and destructors cannot report.
  Status flushed = FlushAll();
  (void)flushed;
}

void BufferPool::LruPushBack(size_t frame) {
  Frame& f = frames_[frame];
  f.lru_prev = lru_tail_;
  f.lru_next = kNoFrame;
  if (lru_tail_ != kNoFrame) {
    frames_[lru_tail_].lru_next = frame;
  } else {
    lru_head_ = frame;
  }
  lru_tail_ = frame;
  f.in_lru = true;
}

void BufferPool::LruRemove(size_t frame) {
  Frame& f = frames_[frame];
  if (f.lru_prev != kNoFrame) {
    frames_[f.lru_prev].lru_next = f.lru_next;
  } else {
    lru_head_ = f.lru_next;
  }
  if (f.lru_next != kNoFrame) {
    frames_[f.lru_next].lru_prev = f.lru_prev;
  } else {
    lru_tail_ = f.lru_prev;
  }
  f.lru_prev = kNoFrame;
  f.lru_next = kNoFrame;
  f.in_lru = false;
}

// sqlog-hot
Result<size_t> BufferPool::AcquireFrameLocked() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_head_ == kNoFrame) {
    return Status::IoError(
        StrFormat("buffer pool exhausted: all %zu pages pinned (leaked PageRef?)",
                  pool_pages_));
  }
  size_t frame = lru_head_;
  LruRemove(frame);
  Frame& f = frames_[frame];
  if (f.dirty) {
    SQLOG_RETURN_IF_ERROR_R(file_->Write(f.page, FrameData(frame)));
    f.dirty = false;
    ++stats_.writebacks;
  }
  page_table_.erase(f.page);
  f.page = kInvalidPageId;
  ++stats_.evictions;
  return frame;
}

// sqlog-hot
Result<BufferPool::PageRef> BufferPool::Fetch(PageId id) {
  util::MutexLock lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.in_lru) LruRemove(frame);
    ++f.pins;
    ++stats_.hits;
    return PageRef(this, FrameData(frame), id, frame);
  }
  ++stats_.misses;
  auto frame_or = AcquireFrameLocked();
  if (!frame_or.ok()) return frame_or.status();
  size_t frame = frame_or.value();
  Status read = file_->Read(id, FrameData(frame));
  if (!read.ok()) {
    // sqlog-lint: allow(R10 error path; free_frames_ was reserved to pool size, the push reuses that capacity)
    free_frames_.push_back(frame);
    return read;
  }
  Frame& f = frames_[frame];
  f.page = id;
  f.pins = 1;
  f.dirty = false;
  page_table_[id] = frame;
  return PageRef(this, FrameData(frame), id, frame);
}

// sqlog-hot
Result<BufferPool::PageRef> BufferPool::New(PageId* id) {
  util::MutexLock lock(mu_);
  auto frame_or = AcquireFrameLocked();
  if (!frame_or.ok()) return frame_or.status();
  size_t frame = frame_or.value();
  PageId page = file_->Allocate();
  ::memset(FrameData(frame), 0, kPageSize);
  Frame& f = frames_[frame];
  f.page = page;
  f.pins = 1;
  f.dirty = true;  // reaches the file even if the caller never writes
  page_table_[page] = frame;
  if (id != nullptr) *id = page;
  return PageRef(this, FrameData(frame), page, frame);
}

Status BufferPool::FlushAll() {
  util::MutexLock lock(mu_);
  for (size_t frame = 0; frame < frames_.size(); ++frame) {
    Frame& f = frames_[frame];
    if (f.page == kInvalidPageId || !f.dirty) continue;
    SQLOG_RETURN_IF_ERROR(file_->Write(f.page, FrameData(frame)));
    f.dirty = false;
    ++stats_.writebacks;
  }
  return Status::OK();
}

// sqlog-hot
void BufferPool::Unpin(size_t frame, bool dirty) {
  util::MutexLock lock(mu_);
  Frame& f = frames_[frame];
  f.dirty = f.dirty || dirty;
  if (f.pins > 0 && --f.pins == 0) LruPushBack(frame);
}

BufferPool::Stats BufferPool::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace sqlog::engine
