#include "engine/table.h"

#include "util/string_util.h"

namespace sqlog::engine {

Status Table::AddColumn(const std::string& name, Value::Kind kind) {
  if (row_count_ > 0) {
    return Status::InvalidArgument("cannot add a column to a non-empty table");
  }
  std::string lower = ToLower(name);
  if (index_.count(lower) > 0) {
    return Status::AlreadyExists("duplicate column: " + lower);
  }
  index_[lower] = columns_.size();
  columns_.push_back(Column{lower, kind});
  data_.emplace_back();
  return Status::OK();
}

int Table::ColumnIndex(const std::string& name) const {
  auto it = index_.find(ToLower(name));
  if (it == index_.end()) return -1;
  return static_cast<int>(it->second);
}

Status Table::AppendRow(std::vector<Value> values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", values.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    data_[i].push_back(std::move(values[i]));
  }
  ++row_count_;
  return Status::OK();
}

std::string ResultSet::ToText(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += " | ";
    out += column_names[i];
  }
  out += "\n";
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += "-+-";
    out.append(column_names[i].size(), '-');
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows.size() - max_rows);
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace sqlog::engine
