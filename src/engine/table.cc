#include "engine/table.h"

#include "util/string_util.h"

namespace sqlog::engine {

Status Table::AddColumn(const std::string& name, Value::Kind kind) {
  if (row_count() > 0) {
    return Status::InvalidArgument("cannot add a column to a non-empty table");
  }
  std::string lower = ToLower(name);
  if (index_.count(lower) > 0) {
    return Status::AlreadyExists("duplicate column: " + lower);
  }
  index_[lower] = columns_.size();
  columns_.push_back(Column{std::move(lower), kind});
  return Status::OK();
}

int Table::ColumnIndex(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return -1;
  return static_cast<int>(it->second);
}

Status Table::ValidateRow(const std::vector<Value>& values) const {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, table has %zu columns", values.size(),
                  columns_.size()));
  }
  return Status::OK();
}

Status MemoryTable::AppendRow(std::vector<Value> values) {
  SQLOG_RETURN_IF_ERROR(ValidateRow(values));
  if (data_.size() < columns().size()) data_.resize(columns().size());
  for (size_t i = 0; i < values.size(); ++i) {
    data_[i].push_back(std::move(values[i]));
  }
  ++row_count_;
  return Status::OK();
}

Status MemoryTable::GetRow(size_t row, std::vector<Value>* out) const {
  if (row >= row_count_) {
    return Status::OutOfRange(StrFormat("row %zu of %zu", row, row_count_));
  }
  out->clear();
  out->reserve(data_.size());
  for (const auto& column : data_) out->push_back(column[row]);
  return Status::OK();
}

std::string ResultSet::ToText(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += " | ";
    out += column_names[i];
  }
  out += "\n";
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += "-+-";
    out.append(column_names[i].size(), '-');
  }
  out += "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      out += StrFormat("... (%zu more rows)\n", rows.size() - max_rows);
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace sqlog::engine
