#ifndef SQLOG_ENGINE_DATABASE_H_
#define SQLOG_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "catalog/schema.h"
#include "engine/table.h"
#include "util/random.h"
#include "util/status.h"

namespace sqlog::engine {

/// Named collection of in-memory tables. Lookup is case-insensitive.
class Database {
 public:
  Database() = default;

  /// Creates an empty table with the given columns. Fails when a table
  /// of that name exists.
  Result<Table*> CreateTable(const std::string& name,
                             const std::vector<Table::Column>& columns);

  /// Creates a table from a catalog definition (column types mapped to
  /// value kinds).
  Result<Table*> CreateTableFromCatalog(const catalog::TableDef& def);

  /// Case-insensitive lookup; nullptr when absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindTable(const std::string& name);

  size_t table_count() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

/// Populates a database with a synthetic SkyServer-like sample:
/// `rows` objects in photoprimary/photoobjall (matching objids), a
/// spectroscopic subset in specobj/specobjall, dbobjects metadata, the
/// Employees/Orders example tables, and the Bugs table. Deterministic
/// in `seed`.
Status PopulateSkyServerSample(Database& db, size_t rows, uint64_t seed = 42);

/// Returns the objids present in photoprimary, in insertion order —
/// workload builders use these to generate hitting point lookups.
std::vector<int64_t> PhotoObjIds(const Database& db);

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_DATABASE_H_
