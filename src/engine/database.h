#ifndef SQLOG_ENGINE_DATABASE_H_
#define SQLOG_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "catalog/schema.h"
#include "engine/btree.h"
#include "engine/buffer_pool.h"
#include "engine/table.h"
#include "util/random.h"
#include "util/status.h"

namespace sqlog::engine {

/// Storage configuration for a Database. The defaults reproduce the
/// historical all-in-memory engine exactly; kPaged routes new tables
/// through the buffer pool.
struct DatabaseOptions {
  StorageMode storage = StorageMode::kMemory;
  /// Buffer-pool size in pages (x 8 KiB). Only used once a paged table
  /// or index is created; 4096 pages = 32 MiB.
  size_t buffer_pool_pages = 4096;
  /// Page-file path; empty means an unlinked temp file that vanishes
  /// with the process.
  std::string page_file_path;
};

/// Named collection of tables plus their B+-tree indexes. Lookup is
/// case-insensitive (allocation-free fold probing). Paged tables and
/// indexes share one buffer pool + page file, created lazily.
class Database {
 public:
  Database() = default;
  explicit Database(DatabaseOptions options) : options_(std::move(options)) {}

  /// Creates an empty table with the given columns in the database's
  /// default storage mode. Fails when a table of that name exists.
  Result<Table*> CreateTable(const std::string& name,
                             const std::vector<Table::Column>& columns);
  Result<Table*> CreateTable(const std::string& name,
                             const std::vector<Table::Column>& columns,
                             StorageMode mode);

  /// Creates a table from a catalog definition (column types mapped to
  /// value kinds).
  Result<Table*> CreateTableFromCatalog(const catalog::TableDef& def);

  /// Case-insensitive lookup; nullptr when absent.
  const Table* FindTable(std::string_view name) const;
  Table* FindTable(std::string_view name);

  /// Builds a B+-tree index over an int64 column of an existing table.
  /// The creation-time rows are bulk-loaded when already key-sorted
  /// (the synthetic objid populations are) and inserted one by one
  /// otherwise; NULL cells are skipped. The index is a snapshot: rows
  /// appended afterwards are not visible through it.
  Status CreateIndex(const std::string& table_name, const std::string& column);

  /// Index lookup for the executor; nullptr when the column has none.
  const BTreeIndex* FindIndex(std::string_view table_name,
                              std::string_view column) const;

  size_t table_count() const { return tables_.size(); }
  StorageMode default_storage() const { return options_.storage; }

  /// The shared pool, for stats; nullptr until a paged table or index
  /// exists.
  const BufferPool* buffer_pool() const { return pool_.get(); }

 private:
  /// Creates the page file + pool on first use.
  Status EnsurePool();

  DatabaseOptions options_;
  std::unique_ptr<PageFile> page_file_;
  std::unique_ptr<BufferPool> pool_;
  std::unordered_map<std::string, std::unique_ptr<Table>, AsciiFoldHash, AsciiFoldEq>
      tables_;
  // Keyed "table\x1fcolumn", lower-case.
  std::unordered_map<std::string, std::unique_ptr<BTreeIndex>> indexes_;
};

/// Populates a database with a synthetic SkyServer-like sample:
/// `rows` objects in photoprimary/photoobjall (matching objids), a
/// spectroscopic subset in specobj/specobjall, dbobjects metadata, the
/// Employees/Orders example tables, and the Bugs table. Deterministic
/// in `seed`.
Status PopulateSkyServerSample(Database& db, size_t rows, uint64_t seed = 42);

/// Populates only photoprimary with `rows` objects — the large-scale
/// bench path, where filling the full sample would dwarf the sweep
/// itself. Deterministic in `seed`; objids are SyntheticObjId(i).
Status PopulatePhotoPrimary(Database& db, size_t rows, uint64_t seed = 42);

/// The objid of the i-th synthetic photo object. Ascending in `i`, so
/// index builds over the synthetic tables take the bulk-load path, and
/// workload generators can pick hitting keys without materializing the
/// full id list (which matters when sweeping tens of millions of rows
/// under a bounded-RSS budget).
inline int64_t SyntheticObjId(size_t i) {
  return 587722981740000000LL + static_cast<int64_t>(i) * 131LL;
}

/// Returns the objids present in photoprimary, in insertion order —
/// workload builders use these to generate hitting point lookups.
std::vector<int64_t> PhotoObjIds(const Database& db);

}  // namespace sqlog::engine

#endif  // SQLOG_ENGINE_DATABASE_H_
