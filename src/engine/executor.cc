#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "sql/parser.h"
#include "sql/printer.h"
#include "util/byte_class.h"
#include "util/string_util.h"

namespace sqlog::engine {

namespace sql = ::sqlog::sql;

namespace {

/// A relation during execution: either a zero-copy view of a base table
/// or owned (materialized) rows. Columns carry a binding qualifier
/// (alias or table name) for name resolution.
class Rel {
 public:
  struct Col {
    std::string qualifier;  // lower-case alias/table name; may be empty
    std::string name;       // lower-case column name
  };

  static Rel View(const Table* table, std::string qualifier) {
    Rel rel;
    rel.base_ = table;
    rel.cols_.reserve(table->columns().size());
    for (const auto& col : table->columns()) {
      rel.cols_.push_back(Col{qualifier, col.name});
    }
    return rel;
  }

  static Rel Owned(std::vector<Col> cols, std::vector<std::vector<Value>> rows) {
    Rel rel;
    rel.cols_ = std::move(cols);
    rel.rows_ = std::move(rows);
    return rel;
  }

  size_t NumRows() const { return base_ != nullptr ? base_->row_count() : rows_.size(); }
  size_t NumCols() const { return cols_.size(); }
  const std::vector<Col>& cols() const { return cols_; }

  /// The base table when this relation is a zero-copy view of one
  /// (candidate for an index scan); nullptr for materialized rows.
  const Table* base() const { return base_; }

  const Value& Cell(size_t row, size_t col) const {
    if (base_ == nullptr) return rows_[row][col];
    // In-memory backends hand out stable pointers (zero-copy scan).
    if (const Value* cell = base_->CellPtr(row, col)) return *cell;
    // Paged backends decode a row at a time; the executor walks rows
    // outer, columns inner, so one decode serves all of a row's cells.
    if (cache_row_ != static_cast<int64_t>(row)) {
      if (!base_->GetRow(row, &cache_).ok()) {
        cache_.assign(cols_.size(), Value::Null());
      }
      cache_row_ = static_cast<int64_t>(row);
    }
    return cache_[col];
  }

  /// Copies one full row (used when materializing joins).
  void CopyRowInto(size_t row, std::vector<Value>& out) const {
    for (size_t c = 0; c < NumCols(); ++c) out.push_back(Cell(row, c));
  }

  /// Finds a column by (qualifier, name); qualifier empty matches any.
  /// Returns -1 when not found.
  int Find(const std::string& qualifier, const std::string& name) const {
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i].name != name) continue;
      if (qualifier.empty() || cols_[i].qualifier == qualifier) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

 private:
  const Table* base_ = nullptr;
  std::vector<Col> cols_;
  std::vector<std::vector<Value>> rows_;
  // Single-row decode cache for paged base tables (see Cell).
  mutable int64_t cache_row_ = -1;
  mutable std::vector<Value> cache_;
};

/// SQL LIKE with % and _, case-insensitive.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Classic recursive matcher with memo-free greedy backtracking.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  auto lower = [](char c) { return ToLowerByte(c); };
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || lower(pattern[p]) == lower(text[t]))) {
      ++p;
      ++t;
      continue;
    }
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
      continue;
    }
    if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool IsAggregateName(const std::string& name) {
  std::string lower = ToLower(name);
  // Strip a schema prefix like `dbo.`.
  size_t dot = lower.rfind('.');
  if (dot != std::string::npos) lower = lower.substr(dot + 1);
  return lower == "count" || lower == "sum" || lower == "min" || lower == "max" ||
         lower == "avg";
}

bool ExprContainsAggregate(const sql::Expr& expr) {
  switch (expr.kind()) {
    case sql::ExprKind::kFunctionCall: {
      const auto& fn = static_cast<const sql::FunctionCallExpr&>(expr);
      if (IsAggregateName(fn.name)) return true;
      for (const auto& arg : fn.args) {
        if (ExprContainsAggregate(*arg)) return true;
      }
      return false;
    }
    case sql::ExprKind::kUnary:
      return ExprContainsAggregate(*static_cast<const sql::UnaryExpr&>(expr).operand);
    case sql::ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      return ExprContainsAggregate(*bin.lhs) || ExprContainsAggregate(*bin.rhs);
    }
    default:
      return false;
  }
}

/// Aggregate accumulator.
struct Agg {
  int64_t count = 0;
  double sum = 0.0;
  bool any = false;
  Value min_v;
  Value max_v;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    sum += v.AsDouble();
    if (!any) {
      min_v = v;
      max_v = v;
      any = true;
    } else {
      if (v.Compare(min_v) < 0) min_v = v;
      if (v.Compare(max_v) > 0) max_v = v;
    }
  }
};

/// One evaluation scope: the combined relation plus the current row.
struct RowCtx {
  const Rel* rel = nullptr;
  size_t row = 0;
};

/// Executes statements; one instance per Execute call (cheap).
class Exec {
 public:
  Exec(const Database* db, const ExecutorOptions& options, ExecutorStats* stats)
      : db_(db), options_(options), stats_(stats) {}

  Result<ResultSet> Run(const sql::SelectStatement& stmt);

 private:
  // -- FROM resolution ------------------------------------------------------

  Result<Rel> ResolveFromItem(const sql::FromItem& item);
  Result<Rel> ResolveTableFunction(const sql::TableFunctionRef& fn);
  Result<Rel> FoldFrom(const sql::SelectStatement& stmt);
  Result<Rel> JoinRels(Rel left, Rel right, sql::JoinType type, const sql::Expr* condition,
                       const std::vector<const sql::Expr*>& where_conjuncts);

  // -- expression evaluation -------------------------------------------------

  Result<Value> Eval(const sql::Expr& expr, const RowCtx& ctx);
  Result<bool> EvalBool(const sql::Expr& expr, const RowCtx& ctx);

  /// Evaluates an expression over a whole group: aggregates consume the
  /// group's rows; arithmetic/comparisons recurse; anything else is
  /// evaluated on the group's first row. Used for aggregate select
  /// items and HAVING (e.g. `count(*) > 5`).
  Result<Value> EvalAgg(const sql::Expr& expr, const Rel& rel,
                        const std::vector<size_t>& rows);

  /// Index-scan planning: when WHERE has a top-level `col = int` or
  /// `col IN (ints...)` conjunct over an indexed column of the base
  /// table, probes the B+-tree and fills `candidates` with the matching
  /// row numbers in ascending (table) order. Returns whether an index
  /// was used; the caller still evaluates the full WHERE on candidates,
  /// so the result is identical to a full scan.
  Result<bool> IndexCandidates(const Rel& rel, const sql::Expr* where,
                               std::vector<size_t>* candidates);

  const Database* db_;
  const ExecutorOptions& options_;
  ExecutorStats* const stats_;

  /// Per-statement cache of constant IN-list membership sets, keyed by
  /// the expression node. This is where the rewritten Stifle queries get
  /// their set-oriented advantage: one hash probe per row instead of a
  /// linear pass over the list.
  std::unordered_map<const sql::Expr*, std::unordered_set<std::string>> in_list_sets_;
};

/// Collects top-level AND conjuncts of a WHERE tree.
void CollectConjuncts(const sql::Expr* expr, std::vector<const sql::Expr*>& out) {
  if (expr == nullptr) return;
  if (expr->kind() == sql::ExprKind::kBinary) {
    const auto& bin = static_cast<const sql::BinaryExpr&>(*expr);
    if (bin.op == sql::BinaryOp::kAnd) {
      CollectConjuncts(bin.lhs.get(), out);
      CollectConjuncts(bin.rhs.get(), out);
      return;
    }
  }
  out.push_back(expr);
}

/// Attempts to read `expr` as `colA = colB`; returns both refs.
bool AsColumnEquality(const sql::Expr& expr, const sql::ColumnRefExpr** a,
                      const sql::ColumnRefExpr** b) {
  if (expr.kind() != sql::ExprKind::kBinary) return false;
  const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
  if (bin.op != sql::BinaryOp::kEq) return false;
  if (bin.lhs->kind() != sql::ExprKind::kColumnRef ||
      bin.rhs->kind() != sql::ExprKind::kColumnRef) {
    return false;
  }
  *a = static_cast<const sql::ColumnRefExpr*>(bin.lhs.get());
  *b = static_cast<const sql::ColumnRefExpr*>(bin.rhs.get());
  return true;
}

/// Reads an integral literal (optionally signed) as int64. Mirrors
/// Eval's literal rule — a number without '.'/'e'/'E' stays integral —
/// so index probes agree byte-for-byte with scan-side comparisons.
bool ExtractIntLiteral(const sql::Expr& expr, int64_t* out) {
  if (expr.kind() == sql::ExprKind::kUnary) {
    const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
    int64_t inner = 0;
    if (!ExtractIntLiteral(*unary.operand, &inner)) return false;
    if (unary.op == sql::UnaryOp::kMinus) {
      *out = -inner;
      return true;
    }
    if (unary.op == sql::UnaryOp::kPlus) {
      *out = inner;
      return true;
    }
    return false;
  }
  if (expr.kind() != sql::ExprKind::kLiteral) return false;
  const auto& lit = static_cast<const sql::LiteralExpr&>(expr);
  if (lit.literal_kind != sql::LiteralKind::kNumber) return false;
  if (lit.text.find('.') != std::string::npos ||
      lit.text.find('e') != std::string::npos ||
      lit.text.find('E') != std::string::npos) {
    return false;
  }
  *out = std::strtoll(lit.text.c_str(), nullptr, 0);
  return true;
}

Result<Rel> Exec::ResolveTableFunction(const sql::TableFunctionRef& fn) {
  std::string name = ToLower(fn.name);
  std::string qualifier = fn.alias.empty() ? name : ToLower(fn.alias);
  const Table* photo = db_->FindTable("photoprimary");
  if (photo == nullptr) {
    return Status::NotFound("table function substrate photoprimary missing");
  }
  int objid_col = photo->ColumnIndex("objid");
  int ra_col = photo->ColumnIndex("ra");
  int dec_col = photo->ColumnIndex("dec");
  if (objid_col < 0 || ra_col < 0 || dec_col < 0) {
    return Status::Internal("photoprimary lacks objid/ra/dec");
  }

  auto arg_value = [&](size_t i) -> double {
    if (i >= fn.args.size()) return 0.0;
    if (fn.args[i]->kind() == sql::ExprKind::kLiteral) {
      return static_cast<const sql::LiteralExpr&>(*fn.args[i]).number_value;
    }
    return 0.0;  // variables default to 0 — logs replay without bindings
  };

  if (name == "fgetnearbyobjeq" || name == "fgetnearestobjeq") {
    double ra0 = arg_value(0);
    double dec0 = arg_value(1);
    double radius_deg = arg_value(2) / 60.0;  // arcmin → degrees
    std::vector<Rel::Col> cols = {{qualifier, "objid"}, {qualifier, "distance"}};
    std::vector<std::vector<Value>> rows;
    double best = 1e300;
    std::vector<Value> best_row;
    for (size_t r = 0; r < photo->row_count(); ++r) {
      double dra = photo->CellAt(r, static_cast<size_t>(ra_col)).AsDouble() - ra0;
      double ddec = photo->CellAt(r, static_cast<size_t>(dec_col)).AsDouble() - dec0;
      double dist = std::sqrt(dra * dra + ddec * ddec);
      if (name == "fgetnearestobjeq") {
        if (dist < best) {
          best = dist;
          best_row = {photo->CellAt(r, static_cast<size_t>(objid_col)), Value::Real(dist)};
        }
      } else if (dist <= radius_deg) {
        rows.push_back({photo->CellAt(r, static_cast<size_t>(objid_col)), Value::Real(dist)});
      }
    }
    if (name == "fgetnearestobjeq" && !best_row.empty()) rows.push_back(std::move(best_row));
    return Rel::Owned(std::move(cols), std::move(rows));
  }

  if (name == "fgetobjfromrect") {
    double ra1 = arg_value(0);
    double dec1 = arg_value(1);
    double ra2 = arg_value(2);
    double dec2 = arg_value(3);
    if (ra2 < ra1) std::swap(ra1, ra2);
    if (dec2 < dec1) std::swap(dec1, dec2);
    std::vector<Rel::Col> cols = {{qualifier, "objid"}, {qualifier, "ra"}, {qualifier, "dec"}};
    std::vector<std::vector<Value>> rows;
    for (size_t r = 0; r < photo->row_count(); ++r) {
      double ra = photo->CellAt(r, static_cast<size_t>(ra_col)).AsDouble();
      double dec = photo->CellAt(r, static_cast<size_t>(dec_col)).AsDouble();
      if (ra >= ra1 && ra <= ra2 && dec >= dec1 && dec <= dec2) {
        rows.push_back({photo->CellAt(r, static_cast<size_t>(objid_col)), Value::Real(ra),
                        Value::Real(dec)});
      }
    }
    return Rel::Owned(std::move(cols), std::move(rows));
  }

  return Status::Unsupported("unknown table function: " + name);
}

Result<Rel> Exec::ResolveFromItem(const sql::FromItem& item) {
  switch (item.kind()) {
    case sql::FromKind::kTable: {
      const auto& ref = static_cast<const sql::TableRef&>(item);
      const Table* table = db_->FindTable(ref.table);
      if (table == nullptr) return Status::NotFound("no such table: " + ref.table);
      std::string qualifier = ref.alias.empty() ? ToLower(ref.table) : ToLower(ref.alias);
      return Rel::View(table, qualifier);
    }
    case sql::FromKind::kTableFunction:
      return ResolveTableFunction(static_cast<const sql::TableFunctionRef&>(item));
    case sql::FromKind::kSubquery: {
      const auto& sub = static_cast<const sql::SubqueryRef&>(item);
      Exec inner(db_, options_, stats_);
      auto result = inner.Run(*sub.subquery);
      if (!result.ok()) return result.status();
      std::string qualifier = ToLower(sub.alias);
      std::vector<Rel::Col> cols;
      cols.reserve(result->column_names.size());
      for (const auto& name : result->column_names) {
        cols.push_back(Rel::Col{qualifier, ToLower(name)});
      }
      return Rel::Owned(std::move(cols), std::move(result->rows));
    }
    case sql::FromKind::kJoin: {
      const auto& join = static_cast<const sql::JoinRef&>(item);
      auto left = ResolveFromItem(*join.left);
      if (!left.ok()) return left.status();
      auto right = ResolveFromItem(*join.right);
      if (!right.ok()) return right.status();
      return JoinRels(std::move(left.value()), std::move(right.value()), join.join_type,
                      join.condition.get(), {});
    }
  }
  return Status::Internal("unreachable FROM kind");
}

Result<Rel> Exec::JoinRels(Rel left, Rel right, sql::JoinType type,
                           const sql::Expr* condition,
                           const std::vector<const sql::Expr*>& where_conjuncts) {
  std::vector<Rel::Col> cols = left.cols();
  for (const auto& col : right.cols()) cols.push_back(col);

  // Find one equi-condition binding a left column to a right column —
  // from the ON clause first, then from WHERE conjuncts (comma joins).
  int left_key = -1;
  int right_key = -1;
  std::vector<const sql::Expr*> candidates;
  CollectConjuncts(condition, candidates);
  for (const sql::Expr* conjunct : where_conjuncts) candidates.push_back(conjunct);
  for (const sql::Expr* cand : candidates) {
    const sql::ColumnRefExpr* a = nullptr;
    const sql::ColumnRefExpr* b = nullptr;
    if (!AsColumnEquality(*cand, &a, &b)) continue;
    int la = left.Find(ToLower(a->qualifier), ToLower(a->name));
    int rb = right.Find(ToLower(b->qualifier), ToLower(b->name));
    if (la >= 0 && rb >= 0) {
      left_key = la;
      right_key = rb;
      break;
    }
    int lb = left.Find(ToLower(b->qualifier), ToLower(b->name));
    int ra = right.Find(ToLower(a->qualifier), ToLower(a->name));
    if (lb >= 0 && ra >= 0) {
      left_key = lb;
      right_key = ra;
      break;
    }
  }

  std::vector<std::vector<Value>> rows;
  const bool left_outer = type == sql::JoinType::kLeftOuter;

  // Residual ON predicates (everything beyond the chosen equi key) are
  // re-checked per matched pair via the generic evaluator.
  auto residual_ok = [&](const std::vector<Value>& combined) -> Result<bool> {
    if (condition == nullptr) return true;
    Rel probe = Rel::Owned(cols, {combined});
    RowCtx ctx{&probe, 0};
    return EvalBool(*condition, ctx);
  };

  if (left_key >= 0) {
    // Hash join: build on the right side.
    std::unordered_map<std::string, std::vector<size_t>> build;
    build.reserve(right.NumRows() * 2);
    for (size_t r = 0; r < right.NumRows(); ++r) {
      const Value& v = right.Cell(r, static_cast<size_t>(right_key));
      if (v.is_null()) continue;
      build[v.ToString()].push_back(r);
    }
    for (size_t l = 0; l < left.NumRows(); ++l) {
      const Value& v = left.Cell(l, static_cast<size_t>(left_key));
      bool matched = false;
      if (!v.is_null()) {
        auto it = build.find(v.ToString());
        if (it != build.end()) {
          for (size_t r : it->second) {
            std::vector<Value> combined;
            combined.reserve(cols.size());
            left.CopyRowInto(l, combined);
            right.CopyRowInto(r, combined);
            auto ok = residual_ok(combined);
            if (!ok.ok()) return ok.status();
            if (*ok) {
              matched = true;
              rows.push_back(std::move(combined));
            }
          }
        }
      }
      if (!matched && left_outer) {
        std::vector<Value> combined;
        combined.reserve(cols.size());
        left.CopyRowInto(l, combined);
        for (size_t c = 0; c < right.NumCols(); ++c) combined.push_back(Value::Null());
        rows.push_back(std::move(combined));
      }
    }
  } else {
    // Nested loop (CROSS or non-equi ON).
    for (size_t l = 0; l < left.NumRows(); ++l) {
      bool matched = false;
      for (size_t r = 0; r < right.NumRows(); ++r) {
        std::vector<Value> combined;
        combined.reserve(cols.size());
        left.CopyRowInto(l, combined);
        right.CopyRowInto(r, combined);
        auto ok = residual_ok(combined);
        if (!ok.ok()) return ok.status();
        if (*ok) {
          matched = true;
          rows.push_back(std::move(combined));
        }
      }
      if (!matched && left_outer) {
        std::vector<Value> combined;
        combined.reserve(cols.size());
        left.CopyRowInto(l, combined);
        for (size_t c = 0; c < right.NumCols(); ++c) combined.push_back(Value::Null());
        rows.push_back(std::move(combined));
      }
    }
  }
  return Rel::Owned(std::move(cols), std::move(rows));
}

Result<Rel> Exec::FoldFrom(const sql::SelectStatement& stmt) {
  if (stmt.from_items.empty()) {
    // `SELECT 1`: one empty row.
    return Rel::Owned({}, {std::vector<Value>{}});
  }
  std::vector<const sql::Expr*> where_conjuncts;
  CollectConjuncts(stmt.where.get(), where_conjuncts);

  auto acc = ResolveFromItem(*stmt.from_items[0]);
  if (!acc.ok()) return acc.status();
  Rel folded = std::move(acc.value());
  for (size_t i = 1; i < stmt.from_items.size(); ++i) {
    auto next = ResolveFromItem(*stmt.from_items[i]);
    if (!next.ok()) return next.status();
    auto joined = JoinRels(std::move(folded), std::move(next.value()),
                           sql::JoinType::kCross, nullptr, where_conjuncts);
    if (!joined.ok()) return joined.status();
    folded = std::move(joined.value());
  }
  return folded;
}

Result<Value> Exec::Eval(const sql::Expr& expr, const RowCtx& ctx) {
  switch (expr.kind()) {
    case sql::ExprKind::kLiteral: {
      const auto& lit = static_cast<const sql::LiteralExpr&>(expr);
      switch (lit.literal_kind) {
        case sql::LiteralKind::kNull: return Value::Null();
        case sql::LiteralKind::kString: return Value::Str(lit.text);
        case sql::LiteralKind::kNumber: {
          // Integral literals stay integral (objids exceed double range).
          if (lit.text.find('.') == std::string::npos &&
              lit.text.find('e') == std::string::npos &&
              lit.text.find('E') == std::string::npos) {
            return Value::Int(std::strtoll(lit.text.c_str(), nullptr, 0));
          }
          return Value::Real(lit.number_value);
        }
      }
      return Value::Null();
    }
    case sql::ExprKind::kVariable:
      // Unbound T-SQL variables evaluate to NULL during replay.
      return Value::Null();
    case sql::ExprKind::kColumnRef: {
      const auto& col = static_cast<const sql::ColumnRefExpr&>(expr);
      int idx = ctx.rel->Find(ToLower(col.qualifier), ToLower(col.name));
      if (idx < 0) {
        return Status::NotFound(StrFormat("unknown column: %s", col.name.c_str()));
      }
      return ctx.rel->Cell(ctx.row, static_cast<size_t>(idx));
    }
    case sql::ExprKind::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      if (unary.op == sql::UnaryOp::kNot) {
        auto b = EvalBool(*unary.operand, ctx);
        if (!b.ok()) return b.status();
        return Value::Int(*b ? 0 : 1);
      }
      auto v = Eval(*unary.operand, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) return Value::Null();
      if (unary.op == sql::UnaryOp::kMinus) {
        if (v->kind() == Value::Kind::kInt64) return Value::Int(-v->AsInt());
        return Value::Real(-v->AsDouble());
      }
      return std::move(v.value());
    }
    case sql::ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      switch (bin.op) {
        case sql::BinaryOp::kAnd:
        case sql::BinaryOp::kOr: {
          auto b = EvalBool(expr, ctx);
          if (!b.ok()) return b.status();
          return Value::Int(*b ? 1 : 0);
        }
        case sql::BinaryOp::kEq:
        case sql::BinaryOp::kNotEq:
        case sql::BinaryOp::kLess:
        case sql::BinaryOp::kLessEq:
        case sql::BinaryOp::kGreater:
        case sql::BinaryOp::kGreaterEq: {
          auto b = EvalBool(expr, ctx);
          if (!b.ok()) return b.status();
          return Value::Int(*b ? 1 : 0);
        }
        default:
          break;
      }
      auto lhs = Eval(*bin.lhs, ctx);
      if (!lhs.ok()) return lhs.status();
      auto rhs = Eval(*bin.rhs, ctx);
      if (!rhs.ok()) return rhs.status();
      if (lhs->is_null() || rhs->is_null()) return Value::Null();
      bool both_int = lhs->kind() == Value::Kind::kInt64 &&
                      rhs->kind() == Value::Kind::kInt64;
      switch (bin.op) {
        case sql::BinaryOp::kAdd:
          if (both_int) return Value::Int(lhs->AsInt() + rhs->AsInt());
          return Value::Real(lhs->AsDouble() + rhs->AsDouble());
        case sql::BinaryOp::kSub:
          if (both_int) return Value::Int(lhs->AsInt() - rhs->AsInt());
          return Value::Real(lhs->AsDouble() - rhs->AsDouble());
        case sql::BinaryOp::kMul:
          if (both_int) return Value::Int(lhs->AsInt() * rhs->AsInt());
          return Value::Real(lhs->AsDouble() * rhs->AsDouble());
        case sql::BinaryOp::kDiv: {
          double denom = rhs->AsDouble();
          if (denom == 0.0) return Value::Null();
          return Value::Real(lhs->AsDouble() / denom);
        }
        case sql::BinaryOp::kMod: {
          int64_t denom = rhs->AsInt();
          if (denom == 0) return Value::Null();
          return Value::Int(lhs->AsInt() % denom);
        }
        default:
          return Status::Internal("unexpected binary operator");
      }
    }
    case sql::ExprKind::kSubquery: {
      const auto& sub = static_cast<const sql::SubqueryExpr&>(expr);
      Exec inner(db_, options_, stats_);
      auto result = inner.Run(*sub.subquery);
      if (!result.ok()) return result.status();
      if (result->rows.empty() || result->rows[0].empty()) return Value::Null();
      return result->rows[0][0];
    }
    case sql::ExprKind::kCase: {
      const auto& case_expr = static_cast<const sql::CaseExpr&>(expr);
      for (const auto& branch : case_expr.branches) {
        auto cond = EvalBool(*branch.condition, ctx);
        if (!cond.ok()) return cond.status();
        if (*cond) return Eval(*branch.value, ctx);
      }
      if (case_expr.else_value) return Eval(*case_expr.else_value, ctx);
      return Value::Null();
    }
    case sql::ExprKind::kFunctionCall: {
      const auto& fn = static_cast<const sql::FunctionCallExpr&>(expr);
      // Aggregates are handled by the projection layer; reaching one
      // here means it appeared in a row-level context.
      if (IsAggregateName(fn.name)) {
        return Status::Unsupported("aggregate in row-level context: " + fn.name);
      }
      std::string lower = ToLower(fn.name);
      if (lower == "abs" && fn.args.size() == 1) {
        auto v = Eval(*fn.args[0], ctx);
        if (!v.ok()) return v.status();
        if (v->is_null()) return Value::Null();
        if (v->kind() == Value::Kind::kInt64) {
          int64_t i = v->AsInt();
          return Value::Int(i < 0 ? -i : i);
        }
        return Value::Real(std::fabs(v->AsDouble()));
      }
      if ((lower == "sqrt" || lower == "log" || lower == "exp") && fn.args.size() == 1) {
        auto v = Eval(*fn.args[0], ctx);
        if (!v.ok()) return v.status();
        if (v->is_null()) return Value::Null();
        double x = v->AsDouble();
        if (lower == "sqrt") return Value::Real(std::sqrt(x));
        if (lower == "log") return Value::Real(std::log(x));
        return Value::Real(std::exp(x));
      }
      return Status::Unsupported("unknown scalar function: " + fn.name);
    }
    case sql::ExprKind::kStar:
      return Status::Unsupported("bare * outside select list / count(*)");
    case sql::ExprKind::kBetween:
    case sql::ExprKind::kInList:
    case sql::ExprKind::kInSubquery:
    case sql::ExprKind::kExists:
    case sql::ExprKind::kIsNull:
    case sql::ExprKind::kLike: {
      auto b = EvalBool(expr, ctx);
      if (!b.ok()) return b.status();
      return Value::Int(*b ? 1 : 0);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> Exec::EvalBool(const sql::Expr& expr, const RowCtx& ctx) {
  switch (expr.kind()) {
    case sql::ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      if (bin.op == sql::BinaryOp::kAnd) {
        auto lhs = EvalBool(*bin.lhs, ctx);
        if (!lhs.ok()) return lhs.status();
        if (!*lhs) return false;
        return EvalBool(*bin.rhs, ctx);
      }
      if (bin.op == sql::BinaryOp::kOr) {
        auto lhs = EvalBool(*bin.lhs, ctx);
        if (!lhs.ok()) return lhs.status();
        if (*lhs) return true;
        return EvalBool(*bin.rhs, ctx);
      }
      bool is_comparison =
          bin.op == sql::BinaryOp::kEq || bin.op == sql::BinaryOp::kNotEq ||
          bin.op == sql::BinaryOp::kLess || bin.op == sql::BinaryOp::kLessEq ||
          bin.op == sql::BinaryOp::kGreater || bin.op == sql::BinaryOp::kGreaterEq;
      if (is_comparison) {
        auto lhs = Eval(*bin.lhs, ctx);
        if (!lhs.ok()) return lhs.status();
        auto rhs = Eval(*bin.rhs, ctx);
        if (!rhs.ok()) return rhs.status();
        // SQL semantics: comparisons against NULL are never true.
        if (lhs->is_null() || rhs->is_null()) return false;
        int cmp = lhs->Compare(*rhs);
        switch (bin.op) {
          case sql::BinaryOp::kEq: return cmp == 0;
          case sql::BinaryOp::kNotEq: return cmp != 0;
          case sql::BinaryOp::kLess: return cmp < 0;
          case sql::BinaryOp::kLessEq: return cmp <= 0;
          case sql::BinaryOp::kGreater: return cmp > 0;
          case sql::BinaryOp::kGreaterEq: return cmp >= 0;
          default: return false;
        }
      }
      auto v = Eval(expr, ctx);
      if (!v.ok()) return v.status();
      return !v->is_null() && v->AsDouble() != 0.0;
    }
    case sql::ExprKind::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      if (unary.op == sql::UnaryOp::kNot) {
        auto b = EvalBool(*unary.operand, ctx);
        if (!b.ok()) return b.status();
        return !*b;
      }
      auto v = Eval(expr, ctx);
      if (!v.ok()) return v.status();
      return !v->is_null() && v->AsDouble() != 0.0;
    }
    case sql::ExprKind::kBetween: {
      const auto& between = static_cast<const sql::BetweenExpr&>(expr);
      auto v = Eval(*between.operand, ctx);
      if (!v.ok()) return v.status();
      auto lo = Eval(*between.low, ctx);
      if (!lo.ok()) return lo.status();
      auto hi = Eval(*between.high, ctx);
      if (!hi.ok()) return hi.status();
      if (v->is_null() || lo->is_null() || hi->is_null()) return false;
      bool in_range = v->Compare(*lo) >= 0 && v->Compare(*hi) <= 0;
      return between.negated ? !in_range : in_range;
    }
    case sql::ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      auto v = Eval(*in.operand, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) return false;
      // Fast path: an all-literal list probes a cached hash set. Keyed
      // by canonical value text, which is stable across numeric kinds.
      bool all_literals = true;
      for (const auto& item : in.items) {
        if (item->kind() != sql::ExprKind::kLiteral) {
          all_literals = false;
          break;
        }
      }
      if (all_literals) {
        auto [it, inserted] = in_list_sets_.try_emplace(&expr);
        if (inserted) {
          RowCtx empty_ctx{ctx.rel, ctx.row};
          for (const auto& item : in.items) {
            auto candidate = Eval(*item, empty_ctx);
            if (!candidate.ok()) return candidate.status();
            if (!candidate->is_null()) it->second.insert(candidate->ToString());
          }
        }
        bool member = it->second.count(v->ToString()) > 0;
        return in.negated ? !member : member;
      }
      for (const auto& item : in.items) {
        auto candidate = Eval(*item, ctx);
        if (!candidate.ok()) return candidate.status();
        if (!candidate->is_null() && v->Equals(*candidate)) {
          return !in.negated;
        }
      }
      return in.negated;
    }
    case sql::ExprKind::kInSubquery: {
      const auto& in = static_cast<const sql::InSubqueryExpr&>(expr);
      auto v = Eval(*in.operand, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) return false;
      Exec inner(db_, options_, stats_);
      auto result = inner.Run(*in.subquery);
      if (!result.ok()) return result.status();
      for (const auto& row : result->rows) {
        if (!row.empty() && !row[0].is_null() && v->Equals(row[0])) {
          return !in.negated;
        }
      }
      return in.negated;
    }
    case sql::ExprKind::kExists: {
      const auto& exists = static_cast<const sql::ExistsExpr&>(expr);
      Exec inner(db_, options_, stats_);
      auto result = inner.Run(*exists.subquery);
      if (!result.ok()) return result.status();
      bool nonempty = !result->rows.empty();
      return exists.negated ? !nonempty : nonempty;
    }
    case sql::ExprKind::kIsNull: {
      const auto& is_null = static_cast<const sql::IsNullExpr&>(expr);
      auto v = Eval(*is_null.operand, ctx);
      if (!v.ok()) return v.status();
      return is_null.negated ? !v->is_null() : v->is_null();
    }
    case sql::ExprKind::kLike: {
      const auto& like = static_cast<const sql::LikeExpr&>(expr);
      auto v = Eval(*like.operand, ctx);
      if (!v.ok()) return v.status();
      auto pattern = Eval(*like.pattern, ctx);
      if (!pattern.ok()) return pattern.status();
      if (v->is_null() || pattern->is_null()) return false;
      bool match = LikeMatch(v->ToString(), pattern->ToString());
      return like.negated ? !match : match;
    }
    default: {
      auto v = Eval(expr, ctx);
      if (!v.ok()) return v.status();
      return !v->is_null() && v->AsDouble() != 0.0;
    }
  }
}

/// Output column label for a select item.
std::string ItemLabel(const sql::SelectItem& item) {
  if (!item.alias.empty()) return ToLower(item.alias);
  if (item.expr->kind() == sql::ExprKind::kColumnRef) {
    return ToLower(static_cast<const sql::ColumnRefExpr&>(*item.expr).name);
  }
  if (item.expr->kind() == sql::ExprKind::kFunctionCall) {
    return ToLower(static_cast<const sql::FunctionCallExpr&>(*item.expr).name);
  }
  sql::PrintOptions opts;
  return Print(*item.expr, opts);
}

Result<bool> Exec::IndexCandidates(const Rel& rel, const sql::Expr* where,
                                   std::vector<size_t>* candidates) {
  std::vector<const sql::Expr*> conjuncts;
  CollectConjuncts(where, conjuncts);
  for (const sql::Expr* conjunct : conjuncts) {
    const sql::ColumnRefExpr* colref = nullptr;
    std::vector<int64_t> keys;
    if (conjunct->kind() == sql::ExprKind::kBinary) {
      const auto& bin = static_cast<const sql::BinaryExpr&>(*conjunct);
      if (bin.op != sql::BinaryOp::kEq) continue;
      int64_t key = 0;
      if (bin.lhs->kind() == sql::ExprKind::kColumnRef &&
          ExtractIntLiteral(*bin.rhs, &key)) {
        colref = static_cast<const sql::ColumnRefExpr*>(bin.lhs.get());
      } else if (bin.rhs->kind() == sql::ExprKind::kColumnRef &&
                 ExtractIntLiteral(*bin.lhs, &key)) {
        colref = static_cast<const sql::ColumnRefExpr*>(bin.rhs.get());
      } else {
        continue;
      }
      keys.push_back(key);
    } else if (conjunct->kind() == sql::ExprKind::kInList) {
      const auto& in = static_cast<const sql::InListExpr&>(*conjunct);
      if (in.negated || in.items.empty() ||
          in.operand->kind() != sql::ExprKind::kColumnRef) {
        continue;
      }
      bool all_ints = true;
      keys.reserve(in.items.size());
      for (const auto& item : in.items) {
        int64_t key = 0;
        if (!ExtractIntLiteral(*item, &key)) {
          all_ints = false;
          break;
        }
        keys.push_back(key);
      }
      if (!all_ints) continue;
      colref = static_cast<const sql::ColumnRefExpr*>(in.operand.get());
    } else {
      continue;
    }

    int idx = rel.Find(ToLower(colref->qualifier), ToLower(colref->name));
    if (idx < 0) continue;
    // A base-table view maps relation columns 1:1 onto table columns.
    const BTreeIndex* index =
        db_->FindIndex(rel.base()->name(), rel.cols()[static_cast<size_t>(idx)].name);
    if (index == nullptr) continue;

    // Duplicate keys in an IN list must not duplicate rows: probe each
    // distinct key once. Distinct keys yield disjoint row sets, so the
    // final sort restores table order without a dedupe pass.
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<uint64_t> rows;
    SQLOG_RETURN_IF_ERROR_R(index->LookupMany(keys, &rows));
    std::sort(rows.begin(), rows.end());
    candidates->clear();
    candidates->reserve(rows.size());
    for (uint64_t row : rows) candidates->push_back(static_cast<size_t>(row));
    return true;
  }
  return false;
}

Result<ResultSet> Exec::Run(const sql::SelectStatement& stmt) {
  auto folded = FoldFrom(stmt);
  if (!folded.ok()) return folded.status();
  const Rel& rel = folded.value();

  bool aggregated = !stmt.group_by.empty();
  for (const auto& item : stmt.select_items) {
    if (ExprContainsAggregate(*item.expr)) aggregated = true;
  }

  // Collect the indices of rows surviving WHERE. An indexed equality or
  // IN-list conjunct narrows the walk to the B+-tree's candidates; the
  // full WHERE still runs on each candidate and candidates come back in
  // table order, so both paths produce identical results.
  std::vector<size_t> candidates;
  bool index_scan = false;
  if (options_.use_indexes && rel.base() != nullptr && stmt.where != nullptr) {
    auto used = IndexCandidates(rel, stmt.where.get(), &candidates);
    if (!used.ok()) return used.status();
    index_scan = *used;
  }
  if (rel.base() != nullptr) {
    if (index_scan) {
      ++stats_->index_scans;
    } else {
      ++stats_->full_scans;
    }
  }
  std::vector<size_t> surviving;
  const size_t walk_count = index_scan ? candidates.size() : rel.NumRows();
  for (size_t w = 0; w < walk_count; ++w) {
    const size_t r = index_scan ? candidates[w] : w;
    RowCtx ctx{&rel, r};
    if (stmt.where) {
      auto keep = EvalBool(*stmt.where, ctx);
      if (!keep.ok()) return keep.status();
      if (!*keep) continue;
    }
    surviving.push_back(r);
  }

  ResultSet result;

  // Output column names.
  for (const auto& item : stmt.select_items) {
    if (item.expr->kind() == sql::ExprKind::kStar) {
      const auto& star = static_cast<const sql::StarExpr&>(*item.expr);
      std::string qualifier = ToLower(star.qualifier);
      for (const auto& col : rel.cols()) {
        if (qualifier.empty() || col.qualifier == qualifier) {
          result.column_names.push_back(col.name);
        }
      }
    } else {
      result.column_names.push_back(ItemLabel(item));
    }
  }

  if (!aggregated) {
    // Row-by-row projection, with ORDER BY keys computed alongside.
    struct OutRow {
      std::vector<Value> keys;
      std::vector<Value> cells;
    };
    std::vector<OutRow> out_rows;
    out_rows.reserve(surviving.size());
    for (size_t r : surviving) {
      RowCtx ctx{&rel, r};
      OutRow out;
      for (const auto& item : stmt.select_items) {
        if (item.expr->kind() == sql::ExprKind::kStar) {
          const auto& star = static_cast<const sql::StarExpr&>(*item.expr);
          std::string qualifier = ToLower(star.qualifier);
          for (size_t c = 0; c < rel.NumCols(); ++c) {
            if (qualifier.empty() || rel.cols()[c].qualifier == qualifier) {
              out.cells.push_back(rel.Cell(r, c));
            }
          }
        } else {
          auto v = Eval(*item.expr, ctx);
          if (!v.ok()) return v.status();
          out.cells.push_back(std::move(v.value()));
        }
      }
      for (const auto& key : stmt.order_by) {
        auto v = Eval(*key.expr, ctx);
        if (!v.ok()) return v.status();
        out.keys.push_back(std::move(v.value()));
      }
      out_rows.push_back(std::move(out));
    }
    if (!stmt.order_by.empty()) {
      std::stable_sort(out_rows.begin(), out_rows.end(),
                       [&](const OutRow& a, const OutRow& b) {
                         for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                           int cmp = a.keys[k].Compare(b.keys[k]);
                           if (cmp != 0) {
                             return stmt.order_by[k].descending ? cmp > 0 : cmp < 0;
                           }
                         }
                         return false;
                       });
    }
    std::unordered_set<std::string> seen;
    for (auto& out : out_rows) {
      if (stmt.distinct) {
        std::string key;
        for (const auto& cell : out.cells) {
          key += cell.ToString();
          key.push_back('\x1f');
        }
        if (!seen.insert(key).second) continue;
      }
      result.rows.push_back(std::move(out.cells));
      if (stmt.top_count >= 0 &&
          result.rows.size() >= static_cast<size_t>(stmt.top_count)) {
        break;
      }
    }
    return result;
  }

  // Aggregated path: group surviving rows, one accumulator set per
  // (group key, select item).
  struct Group {
    std::vector<size_t> rows;
  };
  std::vector<std::string> group_order;
  std::unordered_map<std::string, Group> groups;
  for (size_t r : surviving) {
    RowCtx ctx{&rel, r};
    std::string key;
    for (const auto& g : stmt.group_by) {
      auto v = Eval(*g, ctx);
      if (!v.ok()) return v.status();
      key += v->ToString();
      key.push_back('\x1f');
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) group_order.push_back(key);
    it->second.rows.push_back(r);
  }
  if (stmt.group_by.empty() && groups.empty()) {
    // Global aggregate over zero rows still yields one row.
    groups.try_emplace("");
    group_order.push_back("");
  }

  struct AggRow {
    std::vector<Value> keys;
    std::vector<Value> cells;
  };
  std::vector<AggRow> agg_rows;
  for (const auto& key : group_order) {
    const Group& group = groups[key];
    if (stmt.having) {
      auto having_value = EvalAgg(*stmt.having, rel, group.rows);
      if (!having_value.ok()) return having_value.status();
      if (having_value->is_null() || having_value->AsDouble() == 0.0) continue;
    }
    AggRow out;
    for (const auto& item : stmt.select_items) {
      if (item.expr->kind() == sql::ExprKind::kStar) {
        return Status::Unsupported("SELECT * with aggregation");
      }
      auto v = EvalAgg(*item.expr, rel, group.rows);
      if (!v.ok()) return v.status();
      out.cells.push_back(std::move(v.value()));
    }
    for (const auto& order : stmt.order_by) {
      auto v = EvalAgg(*order.expr, rel, group.rows);
      if (!v.ok()) return v.status();
      out.keys.push_back(std::move(v.value()));
    }
    agg_rows.push_back(std::move(out));
  }
  if (!stmt.order_by.empty()) {
    std::stable_sort(agg_rows.begin(), agg_rows.end(),
                     [&](const AggRow& a, const AggRow& b) {
                       for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                         int cmp = a.keys[k].Compare(b.keys[k]);
                         if (cmp != 0) {
                           return stmt.order_by[k].descending ? cmp > 0 : cmp < 0;
                         }
                       }
                       return false;
                     });
  }
  for (auto& out : agg_rows) {
    result.rows.push_back(std::move(out.cells));
    if (stmt.top_count >= 0 && result.rows.size() >= static_cast<size_t>(stmt.top_count)) {
      break;
    }
  }
  return result;
}

Result<Value> Exec::EvalAgg(const sql::Expr& expr, const Rel& rel,
                            const std::vector<size_t>& rows) {
  switch (expr.kind()) {
    case sql::ExprKind::kFunctionCall: {
      const auto& fn = static_cast<const sql::FunctionCallExpr&>(expr);
      if (!IsAggregateName(fn.name)) break;
      std::string lower = ToLower(fn.name);
      size_t dot = lower.rfind('.');
      if (dot != std::string::npos) lower = lower.substr(dot + 1);
      if (lower == "count" &&
          (fn.args.empty() || fn.args[0]->kind() == sql::ExprKind::kStar)) {
        return Value::Int(static_cast<int64_t>(rows.size()));
      }
      if (fn.args.empty()) {
        return Status::InvalidArgument("aggregate without argument: " + fn.name);
      }
      Agg agg;
      std::unordered_set<std::string> distinct_seen;
      for (size_t r : rows) {
        RowCtx ctx{&rel, r};
        auto v = Eval(*fn.args[0], ctx);
        if (!v.ok()) return v.status();
        if (fn.distinct && !v->is_null()) {
          if (!distinct_seen.insert(v->ToString()).second) continue;
        }
        agg.Add(*v);
      }
      if (lower == "count") return Value::Int(agg.count);
      if (!agg.any) return Value::Null();
      if (lower == "sum") return Value::Real(agg.sum);
      if (lower == "avg") return Value::Real(agg.sum / static_cast<double>(agg.count));
      if (lower == "min") return agg.min_v;
      return agg.max_v;
    }
    case sql::ExprKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
      auto lhs = EvalAgg(*bin.lhs, rel, rows);
      if (!lhs.ok()) return lhs.status();
      auto rhs = EvalAgg(*bin.rhs, rel, rows);
      if (!rhs.ok()) return rhs.status();
      if (lhs->is_null() || rhs->is_null()) return Value::Null();
      switch (bin.op) {
        case sql::BinaryOp::kEq: return Value::Int(lhs->Compare(*rhs) == 0 ? 1 : 0);
        case sql::BinaryOp::kNotEq: return Value::Int(lhs->Compare(*rhs) != 0 ? 1 : 0);
        case sql::BinaryOp::kLess: return Value::Int(lhs->Compare(*rhs) < 0 ? 1 : 0);
        case sql::BinaryOp::kLessEq: return Value::Int(lhs->Compare(*rhs) <= 0 ? 1 : 0);
        case sql::BinaryOp::kGreater: return Value::Int(lhs->Compare(*rhs) > 0 ? 1 : 0);
        case sql::BinaryOp::kGreaterEq: return Value::Int(lhs->Compare(*rhs) >= 0 ? 1 : 0);
        case sql::BinaryOp::kAnd:
          return Value::Int(lhs->AsDouble() != 0.0 && rhs->AsDouble() != 0.0 ? 1 : 0);
        case sql::BinaryOp::kOr:
          return Value::Int(lhs->AsDouble() != 0.0 || rhs->AsDouble() != 0.0 ? 1 : 0);
        case sql::BinaryOp::kAdd: return Value::Real(lhs->AsDouble() + rhs->AsDouble());
        case sql::BinaryOp::kSub: return Value::Real(lhs->AsDouble() - rhs->AsDouble());
        case sql::BinaryOp::kMul: return Value::Real(lhs->AsDouble() * rhs->AsDouble());
        case sql::BinaryOp::kDiv: {
          double denom = rhs->AsDouble();
          if (denom == 0.0) return Value::Null();
          return Value::Real(lhs->AsDouble() / denom);
        }
        case sql::BinaryOp::kMod: {
          int64_t denom = rhs->AsInt();
          if (denom == 0) return Value::Null();
          return Value::Int(lhs->AsInt() % denom);
        }
      }
      return Status::Internal("unreachable aggregate binary op");
    }
    case sql::ExprKind::kUnary: {
      const auto& unary = static_cast<const sql::UnaryExpr&>(expr);
      auto v = EvalAgg(*unary.operand, rel, rows);
      if (!v.ok()) return v.status();
      if (v->is_null()) return Value::Null();
      switch (unary.op) {
        case sql::UnaryOp::kNot: return Value::Int(v->AsDouble() == 0.0 ? 1 : 0);
        case sql::UnaryOp::kMinus: return Value::Real(-v->AsDouble());
        case sql::UnaryOp::kPlus: return std::move(v.value());
      }
      return Status::Internal("unreachable aggregate unary op");
    }
    default:
      break;
  }
  // Non-aggregate leaf in a grouped query: evaluate on the group's
  // first row (lenient, like SQLite).
  if (rows.empty()) return Value::Null();
  RowCtx ctx{&rel, rows[0]};
  return Eval(expr, ctx);
}

}  // namespace

Result<ResultSet> Executor::Execute(const sql::SelectStatement& stmt) const {
  Exec exec(db_, options_, &stats_);
  return exec.Run(stmt);
}

Result<ResultSet> Executor::ExecuteSql(const std::string& statement_text) const {
  auto parsed = sql::ParseSelect(statement_text);
  if (!parsed.ok()) return parsed.status();
  return Execute(*parsed.value());
}

}  // namespace sqlog::engine
