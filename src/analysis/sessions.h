#ifndef SQLOG_ANALYSIS_SESSIONS_H_
#define SQLOG_ANALYSIS_SESSIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/template_store.h"

namespace sqlog::analysis {

/// One user session: a gap-bounded run of queries by one user — the
/// unit of the SkyServer traffic reports ([9]-[11] in the paper) and of
/// the human-vs-robot distinction in Sec. 6.5.
struct Session {
  uint32_t user_id = 0;
  std::vector<size_t> query_indices;  // into ParsedLog.queries, time order
  int64_t start_ms = 0;
  int64_t end_ms = 0;

  size_t size() const { return query_indices.size(); }
  int64_t duration_ms() const { return end_ms - start_ms; }
};

/// Session segmentation options.
struct SessionOptions {
  /// A gap longer than this starts a new session (the traffic reports
  /// use 30 minutes; our pipeline default elsewhere is 10).
  int64_t max_gap_ms = 30 * 60 * 1000;
};

/// Splits per-user streams into sessions.
std::vector<Session> SegmentSessions(const core::ParsedLog& parsed,
                                     const SessionOptions& options = {});

/// Aggregate traffic statistics over sessions.
struct TrafficStats {
  size_t session_count = 0;
  size_t user_count = 0;
  double mean_session_length = 0.0;   // queries per session
  double mean_session_duration_s = 0.0;
  double mean_gap_s = 0.0;            // within-session inter-query gap
  /// Sessions flagged as robotic: long, metronomic runs of one template.
  size_t robot_sessions = 0;
  /// Share of all queries inside robot sessions.
  double robot_query_share = 0.0;
};

/// Robot heuristics (Sec. 6.5's "machine download" discussion): a
/// session is robotic when it is long and dominated by one template
/// with machine-regular pacing.
struct RobotOptions {
  size_t min_length = 30;
  /// Minimum share of the session's queries on its most common template.
  double min_dominance = 0.8;
  /// Maximum mean inter-query gap for a machine (humans read results).
  int64_t max_mean_gap_ms = 10 * 1000;
};

/// True when `session` matches the robot heuristics.
bool IsRobotSession(const Session& session, const core::ParsedLog& parsed,
                    const RobotOptions& options = {});

/// Computes traffic statistics over segmented sessions.
TrafficStats ComputeTrafficStats(const std::vector<Session>& sessions,
                                 const core::ParsedLog& parsed,
                                 const RobotOptions& robot_options = {});

}  // namespace sqlog::analysis

#endif  // SQLOG_ANALYSIS_SESSIONS_H_
