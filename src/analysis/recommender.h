#ifndef SQLOG_ANALYSIS_RECOMMENDER_H_
#define SQLOG_ANALYSIS_RECOMMENDER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/template_store.h"

namespace sqlog::analysis {

/// First-order Markov next-template recommender — the substrate for the
/// paper's future-work experiment (Sec. 7): train a query recommender on
/// the raw versus the cleaned log and compare (a) how often it suggests
/// antipattern queries and (b) its usefulness for human users.
///
/// Templates are identified by their skeleton fingerprints, which are
/// stable across TemplateStore instances — so a model trained on one
/// log's ParsedLog can be evaluated against another's.
class Recommender {
 public:
  struct Options {
    /// Transitions spanning a longer gap are not counted (session
    /// boundaries, like the miner's segments).
    int64_t max_gap_ms = 10 * 60 * 1000;
  };

  Recommender();
  explicit Recommender(Options options);

  /// Counts template transitions over per-user gap-bounded segments.
  /// May be called repeatedly to accumulate.
  void Train(const core::ParsedLog& parsed);

  /// Top-k next-template fingerprints after `fingerprint`, most frequent
  /// first. Empty when the template was never seen as a source.
  std::vector<uint64_t> Recommend(uint64_t fingerprint, size_t k) const;

  /// Share of transitions in `eval` whose true successor is within the
  /// top-k recommendations (hit@k). Returns 0 when `eval` has no
  /// transitions.
  double HitRate(const core::ParsedLog& eval, size_t k) const;

  /// Share of top-1 recommendations over `eval`'s transition sources
  /// that land inside `flagged` (e.g. antipattern template
  /// fingerprints). The paper's hypothesis: training on the cleaned log
  /// drives this toward zero.
  double FlaggedRecommendationRate(const core::ParsedLog& eval,
                                   const std::unordered_set<uint64_t>& flagged) const;

  size_t transition_count() const { return transition_count_; }
  size_t source_count() const { return transitions_.size(); }

 private:
  template <typename Fn>
  void ForEachTransition(const core::ParsedLog& parsed, Fn&& fn) const;

  Options options_;
  // source fingerprint → (successor fingerprint → count)
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint64_t>> transitions_;
  size_t transition_count_ = 0;
};

}  // namespace sqlog::analysis

#endif  // SQLOG_ANALYSIS_RECOMMENDER_H_
