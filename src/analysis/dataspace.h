#ifndef SQLOG_ANALYSIS_DATASPACE_H_
#define SQLOG_ANALYSIS_DATASPACE_H_

#include <map>
#include <string>

#include "sql/skeleton.h"

namespace sqlog::analysis {

/// Closed numeric interval with ±infinity sentinels.
struct Interval {
  double lo;
  double hi;

  static Interval All();
  static Interval Point(double v) { return Interval{v, v}; }
  bool is_point() const { return lo == hi; }
};

/// The region of the database a query touches: which tables, and per
/// filter column either a numeric interval or an exact string value.
/// This is the distance substrate of Nguyen et al. [1], which Sec. 6.9
/// reproduces: overlap of two queries' accessed data spaces in [0, 1].
struct DataSpace {
  /// Sorted '+'-joined lower-case table & table-function names; two
  /// queries with different table keys never overlap.
  std::string table_key;
  std::map<std::string, Interval> numeric_ranges;
  std::map<std::string, std::string> string_points;

  /// Exact-identity key (used to collapse identical spaces before the
  /// O(n²) clustering pass).
  std::string SignatureKey() const;
};

/// Builds the data space of an analyzed query from its predicates.
DataSpace ExtractDataSpace(const sql::QueryFacts& facts);

/// Overlap of two data spaces in [0, 1]: 0 for different table sets,
/// otherwise the product of per-column agreement factors (interval
/// Jaccard for numeric columns, equality for string points; a column
/// constrained on one side only contributes 0 — disjoint slices). The
/// paper observes this measure is usually exactly 0 or 1.
double Overlap(const DataSpace& a, const DataSpace& b);

/// Distance = 1 − Overlap.
inline double Distance(const DataSpace& a, const DataSpace& b) {
  return 1.0 - Overlap(a, b);
}

}  // namespace sqlog::analysis

#endif  // SQLOG_ANALYSIS_DATASPACE_H_
