#include "analysis/recommender.h"

#include <algorithm>

namespace sqlog::analysis {

Recommender::Recommender() : options_() {}

Recommender::Recommender(Options options) : options_(options) {}

template <typename Fn>
void Recommender::ForEachTransition(const core::ParsedLog& parsed, Fn&& fn) const {
  for (const auto& stream : parsed.user_streams) {
    for (size_t i = 1; i < stream.size(); ++i) {
      const core::ParsedQuery& prev = parsed.queries[stream[i - 1]];
      const core::ParsedQuery& next = parsed.queries[stream[i]];
      if (next.timestamp_ms - prev.timestamp_ms > options_.max_gap_ms) continue;
      fn(prev.facts.tmpl.fingerprint, next.facts.tmpl.fingerprint);
    }
  }
}

void Recommender::Train(const core::ParsedLog& parsed) {
  ForEachTransition(parsed, [this](uint64_t from, uint64_t to) {
    ++transitions_[from][to];
    ++transition_count_;
  });
}

std::vector<uint64_t> Recommender::Recommend(uint64_t fingerprint, size_t k) const {
  auto it = transitions_.find(fingerprint);
  if (it == transitions_.end()) return {};
  std::vector<std::pair<uint64_t, uint64_t>> ranked(it->second.begin(), it->second.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  std::vector<uint64_t> out;
  out.reserve(std::min(k, ranked.size()));
  for (size_t i = 0; i < ranked.size() && i < k; ++i) out.push_back(ranked[i].first);
  return out;
}

double Recommender::HitRate(const core::ParsedLog& eval, size_t k) const {
  size_t total = 0;
  size_t hits = 0;
  ForEachTransition(eval, [&](uint64_t from, uint64_t to) {
    ++total;
    for (uint64_t candidate : Recommend(from, k)) {
      if (candidate == to) {
        ++hits;
        break;
      }
    }
  });
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double Recommender::FlaggedRecommendationRate(
    const core::ParsedLog& eval, const std::unordered_set<uint64_t>& flagged) const {
  size_t total = 0;
  size_t flagged_hits = 0;
  ForEachTransition(eval, [&](uint64_t from, uint64_t to) {
    (void)to;
    std::vector<uint64_t> top = Recommend(from, 1);
    if (top.empty()) return;
    ++total;
    if (flagged.count(top[0]) > 0) ++flagged_hits;
  });
  if (total == 0) return 0.0;
  return static_cast<double>(flagged_hits) / static_cast<double>(total);
}

}  // namespace sqlog::analysis
