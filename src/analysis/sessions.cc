#include "analysis/sessions.h"

#include <unordered_map>
#include <unordered_set>

namespace sqlog::analysis {

std::vector<Session> SegmentSessions(const core::ParsedLog& parsed,
                                     const SessionOptions& options) {
  std::vector<Session> sessions;
  for (uint32_t user_id = 0; user_id < parsed.user_streams.size(); ++user_id) {
    const auto& stream = parsed.user_streams[user_id];
    Session current;
    current.user_id = user_id;
    int64_t prev_time = 0;
    for (size_t idx : stream) {
      const core::ParsedQuery& query = parsed.queries[idx];
      if (!current.query_indices.empty() &&
          query.timestamp_ms - prev_time > options.max_gap_ms) {
        sessions.push_back(std::move(current));
        current = Session();
        current.user_id = user_id;
      }
      if (current.query_indices.empty()) current.start_ms = query.timestamp_ms;
      current.query_indices.push_back(idx);
      current.end_ms = query.timestamp_ms;
      prev_time = query.timestamp_ms;
    }
    if (!current.query_indices.empty()) sessions.push_back(std::move(current));
  }
  return sessions;
}

bool IsRobotSession(const Session& session, const core::ParsedLog& parsed,
                    const RobotOptions& options) {
  if (session.size() < options.min_length) return false;

  // Template dominance.
  std::unordered_map<uint64_t, size_t> counts;
  size_t best = 0;
  for (size_t idx : session.query_indices) {
    size_t count = ++counts[parsed.queries[idx].template_id];
    if (count > best) best = count;
  }
  double dominance = static_cast<double>(best) / static_cast<double>(session.size());
  if (dominance < options.min_dominance) return false;

  // Machine pacing.
  double mean_gap =
      static_cast<double>(session.duration_ms()) / static_cast<double>(session.size() - 1);
  return mean_gap <= static_cast<double>(options.max_mean_gap_ms);
}

TrafficStats ComputeTrafficStats(const std::vector<Session>& sessions,
                                 const core::ParsedLog& parsed,
                                 const RobotOptions& robot_options) {
  TrafficStats stats;
  stats.session_count = sessions.size();
  if (sessions.empty()) return stats;

  std::unordered_set<uint32_t> users;
  double total_queries = 0.0;
  double total_duration_ms = 0.0;
  double total_gap_ms = 0.0;
  size_t gap_count = 0;
  size_t robot_queries = 0;

  for (const auto& session : sessions) {
    users.insert(session.user_id);
    total_queries += static_cast<double>(session.size());
    total_duration_ms += static_cast<double>(session.duration_ms());
    if (session.size() > 1) {
      total_gap_ms += static_cast<double>(session.duration_ms());
      gap_count += session.size() - 1;
    }
    if (IsRobotSession(session, parsed, robot_options)) {
      ++stats.robot_sessions;
      robot_queries += session.size();
    }
  }

  stats.user_count = users.size();
  stats.mean_session_length = total_queries / static_cast<double>(sessions.size());
  stats.mean_session_duration_s =
      total_duration_ms / static_cast<double>(sessions.size()) / 1000.0;
  stats.mean_gap_s =
      gap_count == 0 ? 0.0 : total_gap_ms / static_cast<double>(gap_count) / 1000.0;
  stats.robot_query_share =
      total_queries == 0.0 ? 0.0 : static_cast<double>(robot_queries) / total_queries;
  return stats;
}

}  // namespace sqlog::analysis
