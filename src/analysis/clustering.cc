#include "analysis/clustering.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>

#include "util/timer.h"

namespace sqlog::analysis {

namespace {

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

double ClusteringResult::average_size() const {
  if (clusters.empty()) return 0.0;
  size_t total = 0;
  for (const auto& cluster : clusters) total += cluster.size();
  return static_cast<double>(total) / static_cast<double>(clusters.size());
}

ClusteringResult ClusterDataSpaces(const std::vector<DataSpace>& spaces,
                                   const ClusteringOptions& options) {
  sqlog::Timer timer;
  ClusteringResult result;
  const size_t n = spaces.size();
  if (n == 0) return result;

  // Collapse identical data spaces (distance 0 joins them at any
  // threshold > 0).
  std::unordered_map<std::string, size_t> representative;  // signature → group id
  std::vector<size_t> group_of(n);
  std::vector<size_t> group_example;  // group id → input index
  for (size_t i = 0; i < n; ++i) {
    std::string key = spaces[i].SignatureKey();
    auto [it, inserted] = representative.try_emplace(key, group_example.size());
    if (inserted) group_example.push_back(i);
    group_of[i] = it->second;
  }

  const size_t g = group_example.size();
  UnionFind uf(g);

  // Bucket distinct groups by table key: cross-bucket distance is 1.
  std::unordered_map<std::string, std::vector<size_t>> buckets;
  for (size_t gi = 0; gi < g; ++gi) {
    buckets[spaces[group_example[gi]].table_key].push_back(gi);
  }
  for (const auto& [key, bucket] : buckets) {
    (void)key;
    for (size_t i = 0; i < bucket.size(); ++i) {
      for (size_t j = i + 1; j < bucket.size(); ++j) {
        if (uf.Find(bucket[i]) == uf.Find(bucket[j])) continue;
        double distance =
            Distance(spaces[group_example[bucket[i]]], spaces[group_example[bucket[j]]]);
        if (distance < options.threshold) uf.Union(bucket[i], bucket[j]);
      }
    }
  }

  // Materialize clusters over the original indices.
  std::unordered_map<size_t, size_t> root_to_cluster;
  for (size_t i = 0; i < n; ++i) {
    size_t root = uf.Find(group_of[i]);
    auto [it, inserted] = root_to_cluster.try_emplace(root, result.clusters.size());
    if (inserted) result.clusters.emplace_back();
    result.clusters[it->second].members.push_back(i);
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const Cluster& a, const Cluster& b) { return a.size() > b.size(); });

  result.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace sqlog::analysis
