#include "analysis/dataspace.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include "util/string_util.h"

namespace sqlog::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Clamp used when measuring lengths of half-bounded intervals so that
/// Jaccard stays meaningful; wide enough for objids.
constexpr double kDomain = 1e19;

double ClampLo(double v) { return v == -kInf ? -kDomain : v; }
double ClampHi(double v) { return v == kInf ? kDomain : v; }

bool LooksNumeric(const std::string& text) {
  if (text.empty()) return false;
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

double NumberOf(const std::string& text) { return std::strtod(text.c_str(), nullptr); }

/// Canonical string constants arrive as "'text'" (printer form); strip
/// the quotes and undo the doubled-quote escaping.
std::string StripQuotes(const std::string& text) {
  if (text.size() < 2 || text.front() != '\'' || text.back() != '\'') return text;
  std::string inner = text.substr(1, text.size() - 2);
  std::string out;
  for (size_t i = 0; i < inner.size(); ++i) {
    out.push_back(inner[i]);
    if (inner[i] == '\'' && i + 1 < inner.size() && inner[i + 1] == '\'') ++i;
  }
  return out;
}

/// Intersects `interval` into the map entry for `column`.
void Constrain(DataSpace& space, const std::string& column, const Interval& interval) {
  auto [it, inserted] = space.numeric_ranges.try_emplace(column, Interval::All());
  Interval& current = it->second;
  (void)inserted;
  current.lo = std::max(current.lo, interval.lo);
  current.hi = std::min(current.hi, interval.hi);
}

}  // namespace

Interval Interval::All() { return Interval{-kInf, kInf}; }

std::string DataSpace::SignatureKey() const {
  std::string key = table_key;
  key.push_back('|');
  for (const auto& [col, interval] : numeric_ranges) {
    key += col;
    key += StrFormat("[%.17g,%.17g]", interval.lo, interval.hi);
  }
  key.push_back('|');
  for (const auto& [col, value] : string_points) {
    key += col;
    key.push_back('=');
    key += value;
    key.push_back(';');
  }
  return key;
}

DataSpace ExtractDataSpace(const sql::QueryFacts& facts) {
  DataSpace space;

  std::vector<std::string> names = facts.tables;
  for (const auto& fn : facts.table_functions) names.push_back(fn);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  space.table_key = Join(names, "+");

  for (const auto& pred : facts.predicates) {
    if (pred.column.empty() || !pred.constant_comparison) continue;
    switch (pred.op) {
      case sql::PredicateOp::kEq: {
        const std::string& value = pred.values.at(0);
        if (LooksNumeric(value)) {
          Constrain(space, pred.column, Interval::Point(NumberOf(value)));
        } else {
          space.string_points[pred.column] = ToLower(StripQuotes(value));
        }
        break;
      }
      case sql::PredicateOp::kLess:
      case sql::PredicateOp::kLessEq: {
        const std::string& value = pred.values.at(0);
        if (LooksNumeric(value)) {
          Constrain(space, pred.column, Interval{-kInf, NumberOf(value)});
        }
        break;
      }
      case sql::PredicateOp::kGreater:
      case sql::PredicateOp::kGreaterEq: {
        const std::string& value = pred.values.at(0);
        if (LooksNumeric(value)) {
          Constrain(space, pred.column, Interval{NumberOf(value), kInf});
        }
        break;
      }
      case sql::PredicateOp::kBetween: {
        const std::string& lo = pred.values.at(0);
        const std::string& hi = pred.values.at(1);
        if (LooksNumeric(lo) && LooksNumeric(hi)) {
          Constrain(space, pred.column, Interval{NumberOf(lo), NumberOf(hi)});
        }
        break;
      }
      case sql::PredicateOp::kIn: {
        // Approximate an IN list by its numeric hull.
        double lo = kInf;
        double hi = -kInf;
        bool numeric = !pred.values.empty();
        for (const auto& value : pred.values) {
          if (!LooksNumeric(value)) {
            numeric = false;
            break;
          }
          lo = std::min(lo, NumberOf(value));
          hi = std::max(hi, NumberOf(value));
        }
        if (numeric) Constrain(space, pred.column, Interval{lo, hi});
        break;
      }
      default:
        break;  // LIKE / IS NULL / opaque predicates do not bound a region
    }
  }
  return space;
}

namespace {

double IntervalJaccard(const Interval& a, const Interval& b) {
  double ilo = std::max(a.lo, b.lo);
  double ihi = std::min(a.hi, b.hi);
  if (ilo > ihi) return 0.0;
  if (a.is_point() && b.is_point()) return 1.0;  // equal points (ilo<=ihi held)
  double ulo = ClampLo(std::min(a.lo, b.lo));
  double uhi = ClampHi(std::max(a.hi, b.hi));
  double inter = ClampHi(ihi) - ClampLo(ilo);
  double uni = uhi - ulo;
  if (uni <= 0.0) return 1.0;  // both degenerate and equal
  return inter / uni;
}

}  // namespace

double Overlap(const DataSpace& a, const DataSpace& b) {
  if (a.table_key != b.table_key) return 0.0;

  double factor = 1.0;

  // Numeric columns constrained on either side.
  auto ita = a.numeric_ranges.begin();
  auto itb = b.numeric_ranges.begin();
  while (ita != a.numeric_ranges.end() || itb != b.numeric_ranges.end()) {
    if (itb == b.numeric_ranges.end() ||
        (ita != a.numeric_ranges.end() && ita->first < itb->first)) {
      return 0.0;  // constrained in a only: disjoint slice vs whole
    }
    if (ita == a.numeric_ranges.end() || itb->first < ita->first) {
      return 0.0;  // constrained in b only
    }
    factor *= IntervalJaccard(ita->second, itb->second);
    if (factor == 0.0) return 0.0;
    ++ita;
    ++itb;
  }

  // String equality points.
  auto sa = a.string_points.begin();
  auto sb = b.string_points.begin();
  while (sa != a.string_points.end() || sb != b.string_points.end()) {
    if (sb == b.string_points.end() ||
        (sa != a.string_points.end() && sa->first < sb->first)) {
      return 0.0;
    }
    if (sa == a.string_points.end() || sb->first < sa->first) {
      return 0.0;
    }
    if (sa->second != sb->second) return 0.0;
    ++sa;
    ++sb;
  }
  return factor;
}

}  // namespace sqlog::analysis
