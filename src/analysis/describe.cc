#include "analysis/describe.h"

#include <algorithm>

#include "util/string_util.h"

namespace sqlog::analysis {

namespace {

bool HasFunction(const sql::QueryFacts& facts, const char* name) {
  for (const auto& fn : facts.table_functions) {
    if (fn == name) return true;
  }
  return false;
}

bool HasTable(const sql::QueryFacts& facts, const char* name) {
  for (const auto& table : facts.tables) {
    if (table == name) return true;
  }
  return false;
}

const sql::Predicate* SinglePredicate(const sql::QueryFacts& facts) {
  if (facts.predicates.size() != 1) return nullptr;
  return &facts.predicates[0];
}

bool IsAggregateOnly(const sql::QueryFacts& facts) {
  return facts.selected_columns.size() == 1 &&
         (facts.selected_columns[0] == "count" || facts.selected_columns[0] == "sum" ||
          facts.selected_columns[0] == "min" || facts.selected_columns[0] == "max" ||
          facts.selected_columns[0] == "avg");
}

std::string MainTable(const sql::QueryFacts& facts) {
  if (!facts.tables.empty()) return facts.tables.front();
  if (!facts.table_functions.empty()) return facts.table_functions.front();
  return "the database";
}

}  // namespace

std::string DescribeTemplate(const sql::QueryFacts& facts) {
  // Spatial searches via the SkyServer table-valued functions.
  if (HasFunction(facts, "fgetnearbyobjeq")) {
    return "gets objects within a radius of an equatorial point (cone search)";
  }
  if (HasFunction(facts, "fgetnearestobjeq")) {
    return "gets the nearest object to an equatorial point";
  }
  if (HasFunction(facts, "fgetobjfromrect")) {
    return "gets objects inside a rectangular sky region";
  }

  const sql::Predicate* pred = SinglePredicate(facts);

  // HTM / range counting (the paper's rank-3 "special search").
  if (IsAggregateOnly(facts) && facts.selected_columns[0] == "count") {
    for (const auto& p : facts.predicates) {
      if (p.column == "htmid") {
        return "counts objects within a range of spherical triangles (HTM search)";
      }
    }
    return StrFormat("counts rows of %s", MainTable(facts).c_str());
  }

  // Point lookup by a key-ish equality.
  if (pred != nullptr && pred->op == sql::PredicateOp::kEq && pred->constant_comparison) {
    if (pred->column == "objid" || pred->column == "specobjid") {
      return StrFormat("fetches attributes of one object by %s (point lookup)",
                       pred->column.c_str());
    }
    if (HasTable(facts, "dbobjects")) {
      return "browses schema metadata (DBObjects)";
    }
    return StrFormat("fetches rows of %s where %s equals a constant",
                     MainTable(facts).c_str(), pred->column.c_str());
  }

  // Joins of base tables (before the range heuristics: a filtered join
  // is still best summarized as a join).
  if (facts.tables.size() >= 2) {
    return StrFormat("joins %s", Join(facts.tables, " with ").c_str());
  }

  // Sliding / range scans: all predicates are range-shaped.
  bool all_ranges = !facts.predicates.empty();
  for (const auto& p : facts.predicates) {
    if (p.op == sql::PredicateOp::kEq || p.op == sql::PredicateOp::kIn ||
        p.op == sql::PredicateOp::kLike || p.op == sql::PredicateOp::kIsNull ||
        p.op == sql::PredicateOp::kIsNotNull || p.op == sql::PredicateOp::kOther) {
      all_ranges = false;
      break;
    }
  }
  if (all_ranges && facts.where_conjunctive) {
    bool one_column = true;
    for (const auto& p : facts.predicates) {
      one_column = one_column && p.column == facts.predicates[0].column;
    }
    if (one_column) {
      return StrFormat("scans %s over a %s range (window/slice access)",
                       MainTable(facts).c_str(), facts.predicates[0].column.c_str());
    }
    return StrFormat("scans %s over a multi-column range (region slice)",
                     MainTable(facts).c_str());
  }

  // NULL searches.
  for (const auto& p : facts.predicates) {
    if (p.op == sql::PredicateOp::kIsNull || p.compares_to_null_literal) {
      return StrFormat("searches %s for missing (NULL) %s values",
                       MainTable(facts).c_str(), p.column.c_str());
    }
  }

  if (facts.predicates.empty()) {
    return StrFormat("reads %s without a filter", MainTable(facts).c_str());
  }
  return StrFormat("filters %s by %zu predicates", MainTable(facts).c_str(),
                   facts.predicates.size());
}

}  // namespace sqlog::analysis
