#ifndef SQLOG_ANALYSIS_CLUSTERING_H_
#define SQLOG_ANALYSIS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "analysis/dataspace.h"

namespace sqlog::analysis {

/// Options for the query-clustering reproduction of Sec. 6.9.
struct ClusteringOptions {
  /// Two queries with Distance(a, b) < threshold join one cluster
  /// (single linkage). The paper sweeps 0.1 … 0.9.
  double threshold = 0.9;
};

/// One cluster: member indices into the input data-space vector.
struct Cluster {
  std::vector<size_t> members;
  size_t size() const { return members.size(); }
};

/// Clustering outcome with the paper's Fig. 3 measures.
struct ClusteringResult {
  std::vector<Cluster> clusters;  // sorted by size, descending
  double runtime_seconds = 0.0;

  size_t cluster_count() const { return clusters.size(); }
  double average_size() const;
};

/// Single-linkage threshold clustering over data spaces. Identical
/// spaces are collapsed first (distance 0), then distinct spaces are
/// compared pairwise within equal table-key buckets — an exact
/// optimization, since different table keys always have distance 1.
ClusteringResult ClusterDataSpaces(const std::vector<DataSpace>& spaces,
                                   const ClusteringOptions& options);

}  // namespace sqlog::analysis

#endif  // SQLOG_ANALYSIS_CLUSTERING_H_
