#ifndef SQLOG_ANALYSIS_DESCRIBE_H_
#define SQLOG_ANALYSIS_DESCRIBE_H_

#include <string>

#include "sql/skeleton.h"

namespace sqlog::analysis {

/// Produces a short human-readable description of what a query template
/// does — the "Description" column of the paper's Table 7, generated
/// heuristically instead of by hand: spatial searches via the SkyServer
/// table functions, HTM-range counts, point lookups by key, sliding
/// range scans, metadata browsing, and generic fallbacks.
std::string DescribeTemplate(const sql::QueryFacts& facts);

}  // namespace sqlog::analysis

#endif  // SQLOG_ANALYSIS_DESCRIBE_H_
