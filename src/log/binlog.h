#ifndef SQLOG_LOG_BINLOG_H_
#define SQLOG_LOG_BINLOG_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "log/log_stream.h"
#include "log/record.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace sqlog::log {

/// `.sqb`: the template-dictionary binary query-log format. The writer
/// lexes every statement, interns its normalized template into a
/// dictionary, and stores each record as (template id, constant bytes)
/// plus delta/varint-coded metadata columns — the Xie et al. template
/// compression idea applied to the repo's own fingerprint machinery. The
/// reader splices the constants back into the template text, so a CSV →
/// `.sqb` → CSV round trip is byte-identical (the writer verifies each
/// encoded statement against its reconstruction and falls back to a
/// verbatim encoding on any mismatch).
///
/// Dictionary entries also carry an opaque serialized facts *recipe*
/// (core::BuildStatementRecipe) so a reader-side parse cache can be
/// seeded straight from the file and ingest with zero full parses. The
/// log layer never interprets recipe bytes — layering keeps the SQL
/// parser out of src/log (lint rule R1).
///
/// Wire layout, versioning and checksum scheme: binlog_format.h and
/// DESIGN.md "Binary log format".

struct BinLogWriterOptions {
  /// Records per columnar block. Blocks are the checksum, compression
  /// and skip granularity; the reader's peak memory is O(block).
  size_t block_records = 4096;
  /// Write seq = output position instead of record.seq (the streaming
  /// equivalent of QueryLog::Renumber, mirroring LogWriterOptions).
  bool renumber = false;
  /// Builds the serialized facts recipe stored with each new dictionary
  /// template (pass core::BuildStatementRecipe). Null stores no recipes:
  /// the file still round-trips byte-identically, readers just cannot
  /// seed a parse cache from it.
  std::function<std::string(const std::string&)> recipe_builder;
};

class BinLogWriter : public RecordWriter {
 public:
  explicit BinLogWriter(BinLogWriterOptions options = {});
  ~BinLogWriter() override;

  BinLogWriter(BinLogWriter&&) = default;
  BinLogWriter& operator=(BinLogWriter&&) = default;

  Status Open(const std::string& path) override;
  Status Append(const LogRecord& record) override;

  /// Flushes the current block, writes the dictionary/strings/index
  /// sections and the footer, and closes the file.
  Status Close() override;

  uint64_t records_written() const override { return records_written_; }

  /// Statements that did not match their template's byte layout (or did
  /// not lex) and were stored verbatim. The round-trip stays exact; the
  /// ratio is a compression health signal surfaced by `sqlog convert`.
  uint64_t verbatim_records() const { return verbatim_records_; }
  /// Templates interned so far.
  uint64_t dictionary_size() const { return dictionary_.size(); }

 private:
  struct DictEntry {
    std::string text;                                   // representative raw statement
    std::vector<std::pair<uint32_t, uint32_t>> spans;   // constant byte ranges in text
    std::string recipe;                                 // opaque serialized facts recipe
  };

  Status FlushBlock();
  uint32_t InternString(const std::string& value);
  /// Encodes `statement` into statements_ as a template reference or a
  /// verbatim payload.
  void EncodeStatement(const std::string& statement);

  BinLogWriterOptions options_ SQLOG_CONST_AFTER_INIT;
  std::ofstream out_ SQLOG_SHARD_LOCAL;
  bool open_ SQLOG_SHARD_LOCAL = false;
  uint64_t records_written_ SQLOG_SHARD_LOCAL = 0;
  uint64_t verbatim_records_ SQLOG_SHARD_LOCAL = 0;
  uint64_t bytes_written_ SQLOG_SHARD_LOCAL = 0;

  // Template dictionary + user/session string table (insertion-ordered;
  // the maps are lookup indices only and are never iterated, so the
  // on-disk bytes stay deterministic).
  std::vector<DictEntry> dictionary_ SQLOG_SHARD_LOCAL;
  std::unordered_map<std::string, uint32_t> dict_ids_ SQLOG_SHARD_LOCAL;
  std::vector<std::string> strings_ SQLOG_SHARD_LOCAL;
  std::unordered_map<std::string, uint32_t> string_ids_ SQLOG_SHARD_LOCAL;

  // Current block, column by column.
  std::vector<uint64_t> seqs_ SQLOG_SHARD_LOCAL;
  std::vector<int64_t> timestamps_ SQLOG_SHARD_LOCAL;
  std::vector<uint32_t> users_ SQLOG_SHARD_LOCAL;
  std::vector<uint32_t> sessions_ SQLOG_SHARD_LOCAL;
  std::vector<int64_t> row_counts_ SQLOG_SHARD_LOCAL;
  std::vector<uint8_t> truths_ SQLOG_SHARD_LOCAL;
  std::string statements_ SQLOG_SHARD_LOCAL;  // pre-encoded statement column

  // Per-block index rows accumulated for the footer index section.
  struct IndexRow {
    uint64_t offset = 0;
    uint64_t record_count = 0;
    int64_t first_timestamp = 0;
  };
  std::vector<IndexRow> index_ SQLOG_SHARD_LOCAL;

  std::string key_buffer_ SQLOG_SHARD_LOCAL;  // reused normalized-key scratch
  std::string scratch_ SQLOG_SHARD_LOCAL;     // reused encode scratch
};

struct BinLogReaderOptions {
  /// Map the file and decode in place (fastest). When off — or when the
  /// platform has no mmap — the reader streams: footer and sections are
  /// read up front, blocks one at a time, so memory stays O(block).
  bool use_mmap = true;
};

class BinLogReader : public RecordReader {
 public:
  explicit BinLogReader(BinLogReaderOptions options = {});
  ~BinLogReader() override;

  // Not movable: the mmap handle would double-unmap. Use via
  // std::unique_ptr (LogIo::OpenLogReader) when ownership must move.
  BinLogReader(BinLogReader&&) = delete;
  BinLogReader& operator=(BinLogReader&&) = delete;

  /// Opens and validates `path`: header, footer, dictionary, string
  /// table and block index are checked (magics, version, checksums,
  /// bounds) before the first record is produced. Any corruption is a
  /// ParseError naming the offset and section.
  Status Open(const std::string& path) override;

  /// Borrow-the-buffer flavour for tests and the fuzz harness: decodes
  /// straight from `data`, which must outlive the reader. Never mmaps.
  Status OpenFromBuffer(std::string_view data);

  Status ReadRecord(LogRecord* record, bool* eof) override;

  uint64_t records_read() const override { return records_read_; }

  /// Shape of the record most recently produced by ReadRecord: its
  /// dictionary ordinal and the (offset, size) of each constant inside
  /// the returned statement text, or kVerbatim. The writer only emits a
  /// template reference when every constant span is the canonical
  /// rendering of its literal, so consumers may derive slot texts from
  /// the spans without lexing. Null before the first successful read;
  /// the pointee is valid until the next ReadRecord call — batch loops
  /// copy it out with RecordShape::CopyFrom against a pooled element
  /// (moving the span vector would strand the reader's block-to-block
  /// capacity reuse).
  const RecordShape* last_shape() const { return last_shape_; }

  /// One decoded dictionary template: the raw template text, its
  /// constant spans, and the opaque facts recipe stored by the writer
  /// (empty when the file carries none). Exposed so core can seed its
  /// parse cache without the log layer touching recipe contents.
  struct DictionaryEntry {
    std::string text;
    std::vector<std::pair<uint32_t, uint32_t>> spans;
    std::string recipe;
  };
  const std::vector<DictionaryEntry>& dictionary() const { return dictionary_; }

  uint64_t record_count() const { return record_count_; }
  uint64_t block_count() const { return index_.size(); }
  /// True when Open() decoded via a memory map (false: streamed reads).
  bool mapped() const { return mapped_data_ != nullptr; }

 private:
  struct IndexRow {
    uint64_t offset = 0;
    uint64_t record_count = 0;
    int64_t first_timestamp = 0;
  };

  Status OpenCommon(std::string_view whole, bool streaming);
  Status DecodeMetadata(std::string_view dict, std::string_view strings,
                        std::string_view index, uint64_t dict_offset,
                        uint64_t strings_offset, uint64_t index_offset);
  /// Reads + verifies the section frame at `offset`, returning the
  /// payload (view into `whole` or into an owned buffer when streaming).
  Status LoadSection(std::string_view whole, uint64_t offset, uint64_t end,
                     uint32_t magic, const char* name, std::string_view* payload,
                     std::string* owned);
  Status DecodeBlock(size_t block_index);
  void ResetState();

  BinLogReaderOptions options_ SQLOG_CONST_AFTER_INIT;

  // Exactly one source is active: a borrowed buffer, an mmap, or the
  // streaming file handle.
  std::string_view borrowed_ SQLOG_SHARD_LOCAL;
  void* mapped_data_ SQLOG_SHARD_LOCAL = nullptr;
  size_t mapped_size_ SQLOG_SHARD_LOCAL = 0;
  std::ifstream in_ SQLOG_SHARD_LOCAL;
  uint64_t file_size_ SQLOG_SHARD_LOCAL = 0;
  bool streaming_ SQLOG_SHARD_LOCAL = false;

  // Decoded metadata.
  struct DecodedTemplate {
    std::vector<std::string> pieces;  // spans.size() + 1 text pieces
    size_t span_count = 0;
    size_t pieces_bytes = 0;  // sum of piece sizes, for statement reserve
  };
  std::vector<DictionaryEntry> dictionary_ SQLOG_SHARD_LOCAL;
  std::vector<DecodedTemplate> templates_ SQLOG_SHARD_LOCAL;
  std::vector<std::string> strings_ SQLOG_SHARD_LOCAL;
  std::vector<IndexRow> index_ SQLOG_SHARD_LOCAL;
  uint64_t record_count_ SQLOG_SHARD_LOCAL = 0;
  uint64_t dict_offset_end_ SQLOG_SHARD_LOCAL = 0;  // where the last block ends

  // Iteration state.
  size_t next_block_ SQLOG_SHARD_LOCAL = 0;
  std::vector<LogRecord> block_records_ SQLOG_SHARD_LOCAL;
  std::vector<RecordShape> block_shapes_ SQLOG_SHARD_LOCAL;  // parallel to block_records_
  RecordShape* last_shape_ SQLOG_SHARD_LOCAL = nullptr;
  size_t next_record_ SQLOG_SHARD_LOCAL = 0;
  uint64_t records_read_ SQLOG_SHARD_LOCAL = 0;
  std::string block_buffer_ SQLOG_SHARD_LOCAL;  // streaming-mode block scratch
};

}  // namespace sqlog::log

#endif  // SQLOG_LOG_BINLOG_H_
