#include "log/record.h"

#include <algorithm>
#include <unordered_set>

namespace sqlog::log {

const char* TruthLabelName(TruthLabel label) {
  switch (label) {
    case TruthLabel::kUnlabeled: return "unlabeled";
    case TruthLabel::kOrganic: return "organic";
    case TruthLabel::kDwStifle: return "dw_stifle";
    case TruthLabel::kDsStifle: return "ds_stifle";
    case TruthLabel::kDfStifle: return "df_stifle";
    case TruthLabel::kCthReal: return "cth_real";
    case TruthLabel::kCthFalse: return "cth_false";
    case TruthLabel::kSws: return "sws";
    case TruthLabel::kSnc: return "snc";
    case TruthLabel::kDuplicate: return "duplicate";
    case TruthLabel::kNoise: return "noise";
    case TruthLabel::kSelectStar: return "select_star";
    case TruthLabel::kNullFear: return "null_fear";
    case TruthLabel::kSpaghettiJoin: return "spaghetti_join";
    case TruthLabel::kNonSargable: return "non_sargable";
  }
  return "unlabeled";
}

TruthLabel ParseTruthLabel(const std::string& name) {
  static constexpr TruthLabel kAll[] = {
      TruthLabel::kUnlabeled, TruthLabel::kOrganic,  TruthLabel::kDwStifle,
      TruthLabel::kDsStifle,  TruthLabel::kDfStifle, TruthLabel::kCthReal,
      TruthLabel::kCthFalse,  TruthLabel::kSws,      TruthLabel::kSnc,
      TruthLabel::kDuplicate, TruthLabel::kNoise,    TruthLabel::kSelectStar,
      TruthLabel::kNullFear,  TruthLabel::kSpaghettiJoin,
      TruthLabel::kNonSargable,
  };
  for (TruthLabel label : kAll) {
    if (name == TruthLabelName(label)) return label;
  }
  return TruthLabel::kUnlabeled;
}

void QueryLog::SortByTime() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     if (a.timestamp_ms != b.timestamp_ms) {
                       return a.timestamp_ms < b.timestamp_ms;
                     }
                     return a.seq < b.seq;
                   });
}

void QueryLog::Renumber() {
  for (size_t i = 0; i < records_.size(); ++i) {
    records_[i].seq = static_cast<uint64_t>(i);
  }
}

size_t QueryLog::DistinctUserCount() const {
  std::unordered_set<std::string> users;
  for (const auto& record : records_) {
    if (!record.user.empty()) users.insert(record.user);
  }
  return users.size();
}

}  // namespace sqlog::log
