#ifndef SQLOG_LOG_LOG_IO_H_
#define SQLOG_LOG_LOG_IO_H_

#include <string>

#include "log/record.h"
#include "util/status.h"

namespace sqlog::log {

/// CSV serialization of query logs. Format (with header row):
///   seq,timestamp_ms,user,session,row_count,truth,statement
/// Statements are CSV-escaped, so embedded commas/quotes/newlines
/// round-trip.
class LogIo {
 public:
  /// Serializes a log to CSV text.
  static std::string ToCsv(const QueryLog& log);

  /// Parses CSV text produced by ToCsv (or hand-written with the same
  /// header). Rows with the wrong field count produce an error.
  static Result<QueryLog> FromCsv(const std::string& csv_text);

  /// Writes a log to a file.
  static Status WriteFile(const QueryLog& log, const std::string& path);

  /// Reads a log from a file.
  static Result<QueryLog> ReadFile(const std::string& path);
};

}  // namespace sqlog::log

#endif  // SQLOG_LOG_LOG_IO_H_
