#ifndef SQLOG_LOG_LOG_IO_H_
#define SQLOG_LOG_LOG_IO_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "log/log_stream.h"
#include "log/record.h"
#include "util/status.h"

namespace sqlog::log {

/// On-disk query-log formats. kAuto resolves by content for reads (the
/// `.sqb` magic is probed, so a renamed file still opens correctly) and
/// by file extension for writes.
enum class LogFormat {
  kAuto,
  kCsv,  // the textual format of kLogCsvHeader
  kSqb,  // the template-dictionary binary container (log/binlog.h)
};

/// Returns a stable name ("auto", "csv", "sqb") for a format.
const char* LogFormatName(LogFormat format);

/// Parses a `--format=` flag value; InvalidArgument on anything but
/// "auto", "csv" or "sqb".
Result<LogFormat> ParseLogFormatName(std::string_view name);

/// Probes the first bytes of `path`: the 8-byte `.sqb` magic means
/// kSqb, anything else (including a short or empty file) means kCsv —
/// CSV has no magic, so it is the fallback, and a corrupt binary file
/// still fails with a precise ParseError once actually opened as kSqb.
Result<LogFormat> DetectLogFormat(const std::string& path);

/// Resolves kAuto for a read of `path` via DetectLogFormat; concrete
/// formats pass through.
Result<LogFormat> ResolveReadFormat(LogFormat format, const std::string& path);

/// Resolves kAuto for a write to `path`: a ".sqb" extension means kSqb,
/// anything else kCsv.
LogFormat ResolveWriteFormat(LogFormat format, const std::string& path);

/// Builds the serialized template recipe stored with each dictionary
/// entry of a `.sqb` file (core::BuildStatementRecipe has this shape —
/// the log layer only transports the bytes).
using RecipeBuilder = std::function<std::string(const std::string&)>;

/// File serialization of query logs. The CSV format (with header row):
///   seq,timestamp_ms,user,session,row_count,truth,statement
/// Statements are CSV-escaped, so embedded commas/quotes/newlines
/// round-trip. The binary `.sqb` format round-trips the same records
/// byte-identically through a template dictionary (log/binlog.h).
class LogIo {
 public:
  /// Serializes a log to CSV text.
  static std::string ToCsv(const QueryLog& log);

  /// Parses CSV text produced by ToCsv (or hand-written with the same
  /// header). Rows with the wrong field count produce an error.
  static Result<QueryLog> FromCsv(const std::string& csv_text);

  /// Writes a log to a file. kAuto picks the format from the extension;
  /// `recipe_builder` (used only for kSqb) adds parse-cache recipes to
  /// the dictionary so readers can ingest with zero full parses.
  static Status WriteFile(const QueryLog& log, const std::string& path,
                          LogFormat format = LogFormat::kCsv,
                          RecipeBuilder recipe_builder = nullptr);

  /// Reads a log from a file; kAuto probes the content.
  static Result<QueryLog> ReadFile(const std::string& path,
                                   LogFormat format = LogFormat::kAuto);

  /// Opens `path` with the reader implementation matching `format`
  /// (kAuto probes the file magic). The `.sqb` branch validates the
  /// whole container structure during Open.
  static Result<std::unique_ptr<RecordReader>> OpenLogReader(
      const std::string& path, LogFormat format = LogFormat::kAuto);

  /// Creates (but does not open) the writer implementation for
  /// `format`, which must be concrete — resolve kAuto first. `renumber`
  /// maps to the corresponding writer option; `recipe_builder` is used
  /// only by the `.sqb` writer.
  static std::unique_ptr<RecordWriter> MakeLogWriter(
      LogFormat format, bool renumber = false, RecipeBuilder recipe_builder = nullptr);
};

}  // namespace sqlog::log

#endif  // SQLOG_LOG_LOG_IO_H_
