#include "log/log_stream.h"

#include <charconv>

#include "util/string_util.h"

namespace sqlog::log {

namespace {

/// Trims a field for inclusion in an error message (malformed fields can
/// be arbitrarily long statements).
std::string FieldPreview(const std::string& field) {
  constexpr size_t kMax = 32;
  if (field.size() <= kMax) return field;
  return field.substr(0, kMax) + "...";
}

/// Strict full-field integer parse: the entire field must be one valid
/// in-range number — no leading whitespace, no trailing characters, no
/// silent overflow (everything std::strtoull happily ignores).
template <typename IntT>
Status ParseIntField(const std::string& field, const char* name,
                     uint64_t line_number, IntT* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  IntT value{};
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError(StrFormat("line %llu: %s out of range: '%s'",
                                        (unsigned long long)line_number, name,
                                        FieldPreview(field).c_str()));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError(StrFormat("line %llu: invalid %s: '%s'",
                                        (unsigned long long)line_number, name,
                                        FieldPreview(field).c_str()));
  }
  *out = value;
  return Status::OK();
}

}  // namespace

bool IsLogCsvHeaderLine(std::string_view line) {
  return StartsWithIgnoreCase(line, "seq,");
}

Result<LogRecord> RecordFromCsvFields(std::vector<std::string>&& fields,
                                      uint64_t line_number) {
  if (fields.size() != kLogCsvFieldCount) {
    return Status::ParseError(StrFormat("line %llu: expected %zu CSV fields, got %zu",
                                        (unsigned long long)line_number,
                                        kLogCsvFieldCount, fields.size()));
  }
  LogRecord record;
  SQLOG_RETURN_IF_ERROR_R(ParseIntField(fields[0], "seq", line_number, &record.seq));
  SQLOG_RETURN_IF_ERROR_R(
      ParseIntField(fields[1], "timestamp_ms", line_number, &record.timestamp_ms));
  SQLOG_RETURN_IF_ERROR_R(
      ParseIntField(fields[4], "row_count", line_number, &record.row_count));
  record.user = std::move(fields[2]);
  record.session = std::move(fields[3]);
  record.truth = ParseTruthLabel(fields[5]);
  record.statement = std::move(fields[6]);
  return record;
}

void AppendCsvRow(const LogRecord& record, uint64_t seq, std::string& out) {
  out += std::to_string(seq);
  out.push_back(',');
  out += std::to_string(record.timestamp_ms);
  out.push_back(',');
  out += Csv::EscapeField(record.user);
  out.push_back(',');
  out += Csv::EscapeField(record.session);
  out.push_back(',');
  out += std::to_string(record.row_count);
  out.push_back(',');
  out += TruthLabelName(record.truth);
  out.push_back(',');
  out += Csv::EscapeField(record.statement);
  out.push_back('\n');
}

// ---------------------------------------------------------------- LogReader

LogReader::LogReader(LogReaderOptions options) : options_(options) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.chunk_bytes == 0) options_.chunk_bytes = 4096;
}

Status LogReader::Open(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) return Status::IoError("cannot open for reading: " + path);
  chunk_.resize(options_.chunk_bytes);
  splitter_ = Csv::LineSplitter();
  source_drained_ = false;
  exhausted_ = false;
  line_number_ = 0;
  records_read_ = 0;
  return Status::OK();
}

Status LogReader::NextLine(std::string* line, bool* got) {
  *got = false;
  while (true) {
    if (splitter_.Next(line)) {
      *got = true;
      return Status::OK();
    }
    if (source_drained_) return Status::OK();
    in_.read(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
    std::streamsize n = in_.gcount();
    if (n > 0) splitter_.Feed(std::string_view(chunk_.data(), static_cast<size_t>(n)));
    if (in_.eof()) {
      splitter_.Finish();
      source_drained_ = true;
      if (splitter_.truncated_in_quotes()) {
        return Status::ParseError(
            StrFormat("line %llu: input truncated inside a quoted field",
                      (unsigned long long)(line_number_ + 1)));
      }
    } else if (!in_) {
      return Status::IoError("read failed");
    }
  }
}

Status LogReader::ReadRecord(LogRecord* record, bool* eof) {
  *eof = false;
  std::string line;
  while (true) {
    bool got = false;
    SQLOG_RETURN_IF_ERROR(NextLine(&line, &got));
    if (!got) {
      exhausted_ = true;
      *eof = true;
      return Status::OK();
    }
    ++line_number_;
    if (Trim(line).empty()) continue;
    if (IsLogCsvHeaderLine(line)) {
      // The header is legal only as the very first logical line; a
      // header inside the file would otherwise be swallowed as data.
      if (line_number_ == 1) continue;
      return Status::ParseError(StrFormat("line %llu: stray header row",
                                          (unsigned long long)line_number_));
    }
    auto fields = Csv::ParseLine(line);
    if (!fields.ok()) {
      return Status::ParseError(StrFormat("line %llu: %s",
                                          (unsigned long long)line_number_,
                                          fields.status().message().c_str()));
    }
    auto parsed = RecordFromCsvFields(std::move(fields.value()), line_number_);
    if (!parsed.ok()) return parsed.status();
    *record = std::move(parsed.value());
    ++records_read_;
    return Status::OK();
  }
}

Status LogReader::ReadBatch(std::vector<LogRecord>* batch) {
  batch->clear();
  if (batch->capacity() < options_.batch_size) batch->reserve(options_.batch_size);
  LogRecord record;
  bool eof = false;
  while (batch->size() < options_.batch_size) {
    SQLOG_RETURN_IF_ERROR(ReadRecord(&record, &eof));
    if (eof) break;
    batch->push_back(std::move(record));
  }
  return Status::OK();
}

// ---------------------------------------------------------------- LogWriter

LogWriter::LogWriter(LogWriterOptions options) : options_(options) {
  if (options_.buffer_bytes == 0) options_.buffer_bytes = 4096;
}

LogWriter::~LogWriter() {
  if (open_) (void)Close();  // best-effort; callers wanting errors call Close()
}

Status LogWriter::Open(const std::string& path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) return Status::IoError("cannot open for writing: " + path);
  open_ = true;
  records_written_ = 0;
  buffer_.clear();
  if (options_.write_header) {
    buffer_ = kLogCsvHeader;
    buffer_.push_back('\n');
  }
  return Status::OK();
}

Status LogWriter::Append(const LogRecord& record) {
  if (!open_) return Status::Internal("LogWriter::Append on a closed writer");
  AppendCsvRow(record, options_.renumber ? records_written_ : record.seq, buffer_);
  ++records_written_;
  if (buffer_.size() >= options_.buffer_bytes) return Flush();
  return Status::OK();
}

Status LogWriter::Flush() {
  if (!open_) return Status::Internal("LogWriter::Flush on a closed writer");
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
    if (!out_) return Status::IoError("write failed");
  }
  return Status::OK();
}

Status LogWriter::Close() {
  if (!open_) return Status::OK();
  Status flushed = Flush();
  open_ = false;
  out_.close();
  if (!flushed.ok()) return flushed;
  if (out_.fail()) return Status::IoError("close failed");
  return Status::OK();
}

}  // namespace sqlog::log
