#include "log/arena.h"

#include <algorithm>
#include <cstring>

namespace sqlog::log {

StringArena::StringArena(size_t chunk_bytes)
    : chunk_bytes_(std::max<size_t>(chunk_bytes, 64)) {}

std::string_view StringArena::Intern(std::string_view s) {
  auto it = interned_.find(s);
  if (it != interned_.end()) return *it;
  std::string_view stored = Store(s);
  interned_.insert(stored);
  return stored;
}

std::string_view StringArena::Store(std::string_view s) {
  // Oversized strings get a dedicated chunk so the common chunk size
  // stays small; empty strings need no storage at all.
  if (s.empty()) return std::string_view();
  size_t need = s.size();
  if (need > chunk_bytes_) {
    chunks_.push_back(std::make_unique<char[]>(need));
    char* dst = chunks_.back().get();
    std::memcpy(dst, s.data(), need);
    // Keep the partially-filled regular chunk (if any) usable by moving
    // the dedicated chunk behind it; otherwise mark the dedicated chunk
    // full so regular stores never write into it.
    if (chunks_.size() >= 2 && chunk_used_ < chunk_bytes_) {
      std::swap(chunks_[chunks_.size() - 1], chunks_[chunks_.size() - 2]);
    } else {
      chunk_used_ = chunk_bytes_;
    }
    payload_bytes_ += need;
    return std::string_view(dst, need);
  }
  if (chunks_.empty() || chunk_used_ + need > chunk_bytes_) {
    chunks_.push_back(std::make_unique<char[]>(chunk_bytes_));
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), need);
  chunk_used_ += need;
  payload_bytes_ += need;
  return std::string_view(dst, need);
}

}  // namespace sqlog::log
