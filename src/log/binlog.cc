#include "log/binlog.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "log/binlog_format.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "util/hash.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define SQLOG_BINLOG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sqlog::log {

namespace {

using binfmt::AppendU32;
using binfmt::AppendU64;
using binfmt::AppendVarint;
using binfmt::AppendZigzag;
using binfmt::ByteReader;

constexpr uint8_t kMaxTruthByte = static_cast<uint8_t>(TruthLabel::kNonSargable);

/// seq deltas round-trip through two's-complement subtraction so any
/// uint64 sequence (not just monotone ones) encodes exactly.
uint64_t SeqDelta(uint64_t current, uint64_t previous) { return current - previous; }

// --- Constant-span packing ---------------------------------------------
//
// Most SkyServer constants are ASCII numerics ("188", "0.736808"), so
// each constant starts with a header varint (payload << 2 | kind) and
// the digit text rides as binary:
//   kind 0 raw:        payload = byte count, raw bytes follow
//   kind 1 integer:    payload = 0, zigzag varint follows ("%lld" text)
//   kind 2 fixed:      payload = fraction width; varint int part +
//                      varint fraction follow ("I.F", F zero-padded)
//   kind 3 neg fixed:  kind 2 with a leading '-'
// The writer only packs a span after rendering the packed form back and
// comparing bytes — exactness stays guaranteed by construction, and any
// non-canonical spelling ("007", "1e4", "+1", "1.") stays raw.

constexpr uint64_t kConstRaw = 0;
constexpr uint64_t kConstInt = 1;
constexpr uint64_t kConstFixed = 2;
constexpr uint64_t kConstNegFixed = 3;
/// 18 digits always fit uint64_t (and int64_t after the sign split).
constexpr size_t kMaxPackedDigits = 18;

/// Parses `digits` as a canonical base-10 number: nonempty, all digits,
/// no leading zero unless the number is exactly "0".
bool ParseCanonicalDecimal(std::string_view digits, uint64_t* value) {
  if (digits.empty() || digits.size() > kMaxPackedDigits) return false;
  if (digits.size() > 1 && digits.front() == '0') return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

/// Like ParseCanonicalDecimal but leading zeros are data ("005474"):
/// the fraction side of a fixed-point constant.
bool ParsePaddedDecimal(std::string_view digits, uint64_t* value) {
  if (digits.empty() || digits.size() > kMaxPackedDigits) return false;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

void RenderUnsigned(uint64_t value, std::string* out) {
  char buffer[24];
  int written = std::snprintf(buffer, sizeof buffer, "%llu",
                              static_cast<unsigned long long>(value));
  out->append(buffer, static_cast<size_t>(written));
}

void RenderPaddedFraction(uint64_t value, size_t width, std::string* out) {
  char buffer[24];
  int written = std::snprintf(buffer, sizeof buffer, "%0*llu", static_cast<int>(width),
                              static_cast<unsigned long long>(value));
  out->append(buffer, static_cast<size_t>(written));
}

/// Appends `span` as a packed constant. Falls back to the raw encoding
/// whenever the packed render would not be byte-identical.
void AppendPackedConstant(std::string_view span, std::string* scratch,
                          std::string* out) {
  std::string_view body = span;
  const bool negative = !body.empty() && body.front() == '-';
  if (negative) body.remove_prefix(1);

  const size_t dot = body.find('.');
  uint64_t int_part = 0;
  if (dot == std::string_view::npos) {
    if (ParseCanonicalDecimal(body, &int_part) && !(negative && int_part == 0)) {
      const int64_t value =
          negative ? -static_cast<int64_t>(int_part) : static_cast<int64_t>(int_part);
      AppendVarint(kConstInt, out);
      AppendZigzag(value, out);
      return;
    }
  } else {
    uint64_t fraction = 0;
    const std::string_view frac_digits = body.substr(dot + 1);
    if (ParseCanonicalDecimal(body.substr(0, dot), &int_part) &&
        ParsePaddedDecimal(frac_digits, &fraction)) {
      // Render-verify: the only way a canonical parse can still diverge
      // is a future edit breaking an invariant — cheap insurance.
      scratch->clear();
      if (negative) scratch->push_back('-');
      RenderUnsigned(int_part, scratch);
      scratch->push_back('.');
      RenderPaddedFraction(fraction, frac_digits.size(), scratch);
      if (*scratch == span) {
        AppendVarint((static_cast<uint64_t>(frac_digits.size()) << 2) |
                         (negative ? kConstNegFixed : kConstFixed),
                     out);
        AppendVarint(int_part, out);
        AppendVarint(fraction, out);
        return;
      }
    }
  }

  AppendVarint(static_cast<uint64_t>(span.size()) << 2 | kConstRaw, out);
  out->append(span);
}

/// Reads one packed constant and appends its text to `out`.
Status ReadPackedConstant(ByteReader& reader, std::string* out) {
  uint64_t header = 0;
  SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&header));
  const uint64_t kind = header & 3;
  const uint64_t payload = header >> 2;
  switch (kind) {
    case kConstRaw: {
      std::string_view bytes;
      SQLOG_RETURN_IF_ERROR(reader.ReadBytes(payload, &bytes));
      out->append(bytes);
      return Status::OK();
    }
    case kConstInt: {
      if (payload != 0) return reader.Error("malformed integer constant header");
      int64_t value = 0;
      SQLOG_RETURN_IF_ERROR(reader.ReadZigzag(&value));
      char buffer[24];
      int written = std::snprintf(buffer, sizeof buffer, "%lld",
                                  static_cast<long long>(value));
      out->append(buffer, static_cast<size_t>(written));
      return Status::OK();
    }
    default: {  // kConstFixed / kConstNegFixed
      if (payload == 0 || payload > kMaxPackedDigits) {
        return reader.Error("fixed-point constant fraction too wide");
      }
      uint64_t int_part = 0;
      uint64_t fraction = 0;
      SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&int_part));
      SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&fraction));
      if (kind == kConstNegFixed) out->push_back('-');
      RenderUnsigned(int_part, out);
      out->push_back('.');
      RenderPaddedFraction(fraction, payload, out);
      return Status::OK();
    }
  }
}

/// True when the token's raw statement bytes are exactly the canonical
/// rendering of its processed text: quote + doubled-quote escapes +
/// quote for strings, identity for everything else. This is the format's
/// fast-ingest contract — a template reference promises that readers can
/// derive each literal's text from its constant span alone, without
/// lexing (core::DeriveSlotTexts). Today's lexer guarantees it for every
/// statement it accepts; enforcing it here makes it a wire property
/// rather than a lexer implementation detail.
bool RawSpanIsCanonical(const sql::Token& token, std::string_view raw) {
  if (token.type != sql::TokenType::kString) return raw == token.text;
  if (raw.size() < 2 || raw.front() != '\'' || raw.back() != '\'') return false;
  const std::string_view body = raw.substr(1, raw.size() - 2);
  size_t i = 0;
  for (char c : token.text) {
    if (i >= body.size() || body[i] != c) return false;
    ++i;
    if (c == '\'') {  // interior quotes must be doubled
      if (i >= body.size() || body[i] != '\'') return false;
      ++i;
    }
  }
  return i == body.size();
}

}  // namespace

// ------------------------------------------------------------- BinLogWriter

BinLogWriter::BinLogWriter(BinLogWriterOptions options) : options_(std::move(options)) {
  if (options_.block_records == 0) options_.block_records = 1;
}

BinLogWriter::~BinLogWriter() {
  if (open_) (void)Close();  // best-effort; callers wanting errors call Close()
}

Status BinLogWriter::Open(const std::string& path) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) return Status::IoError("cannot open for writing: " + path);
  open_ = true;
  records_written_ = 0;
  verbatim_records_ = 0;
  bytes_written_ = 0;
  dictionary_.clear();
  dict_ids_.clear();
  strings_.clear();
  string_ids_.clear();
  seqs_.clear();
  timestamps_.clear();
  users_.clear();
  sessions_.clear();
  row_counts_.clear();
  truths_.clear();
  statements_.clear();
  index_.clear();
  // String id 0 is the empty string, so anonymous records cost one byte.
  InternString("");

  std::string header(binfmt::kFileMagic, sizeof(binfmt::kFileMagic));
  AppendU32(binfmt::kVersion, &header);
  AppendU32(0, &header);  // flags
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out_) return Status::IoError("write failed: " + path);
  bytes_written_ = header.size();
  return Status::OK();
}

uint32_t BinLogWriter::InternString(const std::string& value) {
  auto it = string_ids_.find(value);
  if (it != string_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.push_back(value);
  string_ids_.emplace(value, id);
  return id;
}

void BinLogWriter::EncodeStatement(const std::string& statement) {
  auto encode_verbatim = [&] {
    ++verbatim_records_;
    AppendVarint(0, &statements_);
    AppendVarint(statement.size(), &statements_);
    statements_.append(statement);
  };

  // Statements the lexer rejects cannot be templated; they still
  // round-trip, byte for byte, through the verbatim encoding.
  auto lexed = sql::Lex(statement);
  if (!lexed.ok()) {
    encode_verbatim();
    return;
  }
  const sql::TokenStream& tokens = lexed.value();
  key_buffer_.clear();
  sql::AppendNormalizedKey(tokens, &key_buffer_);

  auto it = dict_ids_.find(key_buffer_);
  uint32_t dict_id;
  if (it == dict_ids_.end()) {
    // First sighting: this statement becomes the template's
    // representative text, its placeholdered tokens the constant spans.
    DictEntry entry;
    entry.text = statement;
    for (size_t token_index : sql::PlaceholderedTokenIndices(tokens)) {
      const sql::Token& token = tokens[token_index];
      entry.spans.emplace_back(static_cast<uint32_t>(token.offset),
                               static_cast<uint32_t>(token.raw_size()));
    }
    if (options_.recipe_builder) entry.recipe = options_.recipe_builder(statement);
    dict_id = static_cast<uint32_t>(dictionary_.size());
    dictionary_.push_back(std::move(entry));
    dict_ids_.emplace(key_buffer_, dict_id);
  } else {
    dict_id = it->second;
  }

  // Splice this statement's own constants into the template text and
  // require byte equality — the self-check that makes the round trip
  // exact by construction. Same key but different inter-constant bytes
  // (comment/whitespace/case variants) falls back to verbatim.
  const DictEntry& entry = dictionary_[dict_id];
  const std::vector<size_t> lit_idx = sql::PlaceholderedTokenIndices(tokens);
  if (lit_idx.size() != entry.spans.size()) {
    encode_verbatim();
    return;
  }
  scratch_.clear();
  size_t template_pos = 0;
  for (size_t j = 0; j < entry.spans.size(); ++j) {
    scratch_.append(entry.text, template_pos, entry.spans[j].first - template_pos);
    const sql::Token& token = tokens[lit_idx[j]];
    scratch_.append(statement, token.offset, token.raw_size());
    template_pos = entry.spans[j].first + entry.spans[j].second;
  }
  scratch_.append(entry.text, template_pos, entry.text.size() - template_pos);
  if (scratch_ != statement) {
    encode_verbatim();
    return;
  }
  for (size_t j = 0; j < lit_idx.size(); ++j) {
    const sql::Token& token = tokens[lit_idx[j]];
    if (!RawSpanIsCanonical(token, std::string_view(statement)
                                       .substr(token.offset, token.raw_size()))) {
      encode_verbatim();
      return;
    }
  }

  AppendVarint(static_cast<uint64_t>(dict_id) + 1, &statements_);
  for (size_t j = 0; j < lit_idx.size(); ++j) {
    const sql::Token& token = tokens[lit_idx[j]];
    AppendPackedConstant(
        std::string_view(statement).substr(token.offset, token.raw_size()),
        &scratch_, &statements_);
  }
}

Status BinLogWriter::Append(const LogRecord& record) {
  if (!open_) return Status::Internal("BinLogWriter::Append on a closed writer");
  seqs_.push_back(options_.renumber ? records_written_ : record.seq);
  timestamps_.push_back(record.timestamp_ms);
  users_.push_back(InternString(record.user));
  sessions_.push_back(InternString(record.session));
  row_counts_.push_back(record.row_count);
  truths_.push_back(static_cast<uint8_t>(record.truth));
  EncodeStatement(record.statement);
  ++records_written_;
  if (seqs_.size() >= options_.block_records) return FlushBlock();
  return Status::OK();
}

Status BinLogWriter::FlushBlock() {
  if (seqs_.empty()) return Status::OK();
  const size_t n = seqs_.size();

  scratch_.clear();
  std::string& payload = scratch_;
  // Column 1: seq — first raw, then consecutive deltas (zigzag).
  AppendVarint(seqs_[0], &payload);
  for (size_t i = 1; i < n; ++i) {
    AppendZigzag(static_cast<int64_t>(SeqDelta(seqs_[i], seqs_[i - 1])), &payload);
  }
  // Column 2: timestamps — zigzag first, zigzag deltas after.
  AppendZigzag(timestamps_[0], &payload);
  for (size_t i = 1; i < n; ++i) AppendZigzag(timestamps_[i] - timestamps_[i - 1], &payload);
  // Columns 3-4: user/session string-table ids.
  for (uint32_t id : users_) AppendVarint(id, &payload);
  for (uint32_t id : sessions_) AppendVarint(id, &payload);
  // Column 5: row counts (zigzag: -1 is the common "unknown").
  for (int64_t rows : row_counts_) AppendZigzag(rows, &payload);
  // Column 6: truth labels, one byte each.
  payload.append(reinterpret_cast<const char*>(truths_.data()), truths_.size());
  // Column 7: the pre-encoded statement column.
  payload.append(statements_);

  if (payload.size() > binfmt::kMaxBlockPayload) {
    return Status::Internal("block payload exceeds the format's size ceiling");
  }
  std::string frame;
  frame.reserve(binfmt::kBlockFrameBytes + payload.size());
  AppendU32(binfmt::kBlockMagic, &frame);
  AppendU32(static_cast<uint32_t>(payload.size()), &frame);
  AppendU32(static_cast<uint32_t>(n), &frame);
  AppendU64(Fnv1a64(payload), &frame);
  frame.append(payload);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out_) return Status::IoError("write failed");

  index_.push_back({bytes_written_, n, timestamps_[0]});
  bytes_written_ += frame.size();
  seqs_.clear();
  timestamps_.clear();
  users_.clear();
  sessions_.clear();
  row_counts_.clear();
  truths_.clear();
  statements_.clear();
  return Status::OK();
}

Status BinLogWriter::Close() {
  if (!open_) return Status::OK();
  Status flushed = FlushBlock();
  if (!flushed.ok()) {
    open_ = false;
    out_.close();
    return flushed;
  }

  auto write_section = [&](uint32_t magic, const std::string& payload) -> Status {
    std::string frame;
    frame.reserve(binfmt::kSectionFrameBytes + payload.size());
    AppendU32(magic, &frame);
    AppendU64(payload.size(), &frame);
    AppendU64(Fnv1a64(payload), &frame);
    frame.append(payload);
    out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!out_) return Status::IoError("write failed");
    bytes_written_ += frame.size();
    return Status::OK();
  };

  binfmt::Footer footer;
  footer.record_count = records_written_;
  footer.block_count = index_.size();
  footer.dict_count = dictionary_.size();
  footer.string_count = strings_.size();

  // Dictionary section: text, constant spans (start-delta + length), and
  // the opaque recipe, per template in insertion order.
  std::string payload;
  AppendVarint(dictionary_.size(), &payload);
  for (const DictEntry& entry : dictionary_) {
    AppendVarint(entry.text.size(), &payload);
    payload.append(entry.text);
    AppendVarint(entry.spans.size(), &payload);
    uint32_t previous_end = 0;
    for (const auto& [start, length] : entry.spans) {
      AppendVarint(start - previous_end, &payload);
      AppendVarint(length, &payload);
      previous_end = start + length;
    }
    AppendVarint(entry.recipe.size(), &payload);
    payload.append(entry.recipe);
  }
  footer.dict_offset = bytes_written_;
  Status status = write_section(binfmt::kDictMagic, payload);
  if (!status.ok()) {
    open_ = false;
    out_.close();
    return status;
  }

  // String table (user/session values).
  payload.clear();
  AppendVarint(strings_.size(), &payload);
  for (const std::string& value : strings_) {
    AppendVarint(value.size(), &payload);
    payload.append(value);
  }
  footer.strings_offset = bytes_written_;
  status = write_section(binfmt::kStringsMagic, payload);
  if (!status.ok()) {
    open_ = false;
    out_.close();
    return status;
  }

  // Block index: offset deltas, record counts, first-timestamp deltas —
  // enough to seek straight to any block and skip by time range.
  payload.clear();
  AppendVarint(index_.size(), &payload);
  uint64_t previous_offset = binfmt::kHeaderBytes;
  int64_t previous_ts = 0;
  for (const IndexRow& row : index_) {
    AppendVarint(row.offset - previous_offset, &payload);
    AppendVarint(row.record_count, &payload);
    AppendZigzag(row.first_timestamp - previous_ts, &payload);
    previous_offset = row.offset;
    previous_ts = row.first_timestamp;
  }
  footer.index_offset = bytes_written_;
  status = write_section(binfmt::kIndexMagic, payload);
  if (!status.ok()) {
    open_ = false;
    out_.close();
    return status;
  }

  std::string tail;
  footer.AppendTo(&tail);
  out_.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  open_ = false;
  out_.close();
  if (out_.fail()) return Status::IoError("close failed");
  return Status::OK();
}

// ------------------------------------------------------------- BinLogReader

BinLogReader::BinLogReader(BinLogReaderOptions options) : options_(options) {}

BinLogReader::~BinLogReader() { ResetState(); }

void BinLogReader::ResetState() {
#if SQLOG_BINLOG_HAVE_MMAP
  if (mapped_data_ != nullptr) munmap(mapped_data_, mapped_size_);
#endif
  mapped_data_ = nullptr;
  mapped_size_ = 0;
  borrowed_ = {};
  if (in_.is_open()) in_.close();
  in_.clear();
  file_size_ = 0;
  streaming_ = false;
  dictionary_.clear();
  templates_.clear();
  strings_.clear();
  index_.clear();
  record_count_ = 0;
  next_block_ = 0;
  block_records_.clear();
  block_shapes_.clear();
  last_shape_ = nullptr;
  next_record_ = 0;
  records_read_ = 0;
}

Status BinLogReader::Open(const std::string& path) {
  ResetState();
#if SQLOG_BINLOG_HAVE_MMAP
  if (options_.use_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open for reading: " + path);
    struct stat st;
    if (fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("cannot stat: " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    void* map = size == 0 ? MAP_FAILED : mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map != MAP_FAILED) {
      mapped_data_ = map;
      mapped_size_ = size;
      Status status =
          OpenCommon(std::string_view(static_cast<const char*>(map), size), false);
      if (!status.ok()) ResetState();
      return status;
    }
    // mmap unavailable (or an empty file): fall through to streaming,
    // which reports the structural error with the same message shape.
  }
#endif
  in_.open(path, std::ios::binary);
  if (!in_) return Status::IoError("cannot open for reading: " + path);
  in_.seekg(0, std::ios::end);
  const std::streamoff end = in_.tellg();
  if (end < 0) return Status::IoError("cannot stat: " + path);
  file_size_ = static_cast<uint64_t>(end);
  streaming_ = true;
  Status status = OpenCommon({}, true);
  if (!status.ok()) {
    // Keep the diagnosis, drop the half-open state.
    std::string message(status.message());
    StatusCode code = status.code();
    ResetState();
    return Status(code, std::move(message));
  }
  return status;
}

Status BinLogReader::OpenFromBuffer(std::string_view data) {
  ResetState();
  borrowed_ = data;
  Status status = OpenCommon(data, false);
  if (!status.ok()) {
    std::string message(status.message());
    StatusCode code = status.code();
    ResetState();
    return Status(code, std::move(message));
  }
  return status;
}

Status BinLogReader::LoadSection(std::string_view whole, uint64_t offset, uint64_t end,
                                 uint32_t magic, const char* name,
                                 std::string_view* payload, std::string* owned) {
  std::string_view frame;
  if (streaming_) {
    if (end - offset > binfmt::kMaxSectionPayload + binfmt::kSectionFrameBytes) {
      ByteReader reader({}, offset, name);
      return reader.Error("section exceeds the format's size ceiling");
    }
    owned->resize(static_cast<size_t>(end - offset));
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(owned->data(), static_cast<std::streamsize>(owned->size()));
    if (!in_) return Status::IoError("read failed");
    frame = *owned;
  } else {
    frame = whole.substr(static_cast<size_t>(offset), static_cast<size_t>(end - offset));
  }

  ByteReader reader(frame, offset, name);
  uint32_t stored_magic = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
  SQLOG_RETURN_IF_ERROR(reader.ReadU32(&stored_magic));
  if (stored_magic != magic) return reader.Error("bad section magic");
  SQLOG_RETURN_IF_ERROR(reader.ReadU64(&payload_len));
  SQLOG_RETURN_IF_ERROR(reader.ReadU64(&checksum));
  if (payload_len != frame.size() - binfmt::kSectionFrameBytes) {
    return reader.Error("section length disagrees with the footer offsets");
  }
  std::string_view body = frame.substr(binfmt::kSectionFrameBytes);
  if (Fnv1a64(body) != checksum) return reader.Error("section checksum mismatch");
  *payload = body;
  return Status::OK();
}

Status BinLogReader::OpenCommon(std::string_view whole, bool streaming) {
  const uint64_t size = streaming ? file_size_ : whole.size();
  {
    ByteReader reader(whole.substr(0, 0), 0, "header");
    if (size < binfmt::kHeaderBytes + binfmt::kFooterBytes) {
      return reader.Error("file too small for a binary log");
    }
  }

  // Header: magic, version, flags.
  char header_buf[binfmt::kHeaderBytes];
  std::string_view header;
  if (streaming) {
    in_.seekg(0);
    in_.read(header_buf, sizeof(header_buf));
    if (!in_) return Status::IoError("read failed");
    header = std::string_view(header_buf, sizeof(header_buf));
  } else {
    header = whole.substr(0, binfmt::kHeaderBytes);
  }
  ByteReader header_reader(header, 0, "header");
  if (std::memcmp(header.data(), binfmt::kFileMagic, sizeof(binfmt::kFileMagic)) != 0) {
    return header_reader.Error("bad file magic");
  }
  {
    std::string_view rest = header.substr(sizeof(binfmt::kFileMagic));
    ByteReader reader(rest, sizeof(binfmt::kFileMagic), "header");
    uint32_t version = 0;
    uint32_t flags = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadU32(&version));
    if (version != binfmt::kVersion) {
      return reader.Error(StrFormat("unsupported format version %u (this build reads %u)",
                                    version, binfmt::kVersion));
    }
    SQLOG_RETURN_IF_ERROR(reader.ReadU32(&flags));
    if (flags != 0) return reader.Error(StrFormat("unsupported format flags 0x%x", flags));
  }

  // Footer, from the end.
  const uint64_t footer_offset = size - binfmt::kFooterBytes;
  char footer_buf[binfmt::kFooterBytes];
  std::string_view footer_bytes;
  if (streaming) {
    in_.seekg(static_cast<std::streamoff>(footer_offset));
    in_.read(footer_buf, sizeof(footer_buf));
    if (!in_) return Status::IoError("read failed");
    footer_bytes = std::string_view(footer_buf, sizeof(footer_buf));
  } else {
    footer_bytes = whole.substr(static_cast<size_t>(footer_offset));
  }
  auto footer = binfmt::Footer::Parse(footer_bytes, footer_offset);
  SQLOG_RETURN_IF_ERROR(footer.status());

  ByteReader footer_reader(footer_bytes, footer_offset, "footer");
  if (footer->dict_offset < binfmt::kHeaderBytes ||
      footer->dict_offset > footer->strings_offset ||
      footer->strings_offset > footer->index_offset ||
      footer->index_offset > footer_offset || footer->reserved != 0) {
    return footer_reader.Error("section offsets out of bounds");
  }

  // Sections, each verified against its frame checksum.
  std::string dict_owned;
  std::string strings_owned;
  std::string index_owned;
  std::string_view dict_payload;
  std::string_view strings_payload;
  std::string_view index_payload;
  const uint64_t min_frame = binfmt::kSectionFrameBytes;
  if (footer->strings_offset - footer->dict_offset < min_frame ||
      footer->index_offset - footer->strings_offset < min_frame ||
      footer_offset - footer->index_offset < min_frame) {
    return footer_reader.Error("section offsets out of bounds");
  }
  SQLOG_RETURN_IF_ERROR(LoadSection(whole, footer->dict_offset, footer->strings_offset,
                                    binfmt::kDictMagic, "dictionary", &dict_payload,
                                    &dict_owned));
  SQLOG_RETURN_IF_ERROR(LoadSection(whole, footer->strings_offset, footer->index_offset,
                                    binfmt::kStringsMagic, "strings", &strings_payload,
                                    &strings_owned));
  SQLOG_RETURN_IF_ERROR(LoadSection(whole, footer->index_offset, footer_offset,
                                    binfmt::kIndexMagic, "index", &index_payload,
                                    &index_owned));
  SQLOG_RETURN_IF_ERROR(DecodeMetadata(dict_payload, strings_payload, index_payload,
                                       footer->dict_offset, footer->strings_offset,
                                       footer->index_offset));

  // Cross-checks binding the index to the footer's global counts.
  if (index_.size() != footer->block_count ||
      dictionary_.size() != footer->dict_count ||
      strings_.size() != footer->string_count) {
    return footer_reader.Error("footer counts disagree with the decoded sections");
  }
  uint64_t indexed_records = 0;
  for (const IndexRow& row : index_) indexed_records += row.record_count;
  if (indexed_records != footer->record_count) {
    return footer_reader.Error("index record counts disagree with the footer");
  }
  for (size_t i = 0; i < index_.size(); ++i) {
    const uint64_t block_end = i + 1 < index_.size() ? index_[i + 1].offset
                                                     : footer->dict_offset;
    if (index_[i].offset < binfmt::kHeaderBytes ||
        index_[i].offset + binfmt::kBlockFrameBytes > block_end ||
        block_end > footer->dict_offset) {
      return footer_reader.Error(StrFormat("block %zu offset out of bounds", i));
    }
  }
  record_count_ = footer->record_count;

  // Keep the dictionary offsets so block decoding can locate payloads;
  // stash block extents in the index rows' offset fields (extent ends
  // are derived per block in DecodeBlock from the successor / footer).
  dict_offset_end_ = footer->dict_offset;
  return Status::OK();
}

Status BinLogReader::DecodeMetadata(std::string_view dict, std::string_view strings,
                                    std::string_view index, uint64_t dict_offset,
                                    uint64_t strings_offset, uint64_t index_offset) {
  // String table.
  {
    ByteReader reader(strings, strings_offset + binfmt::kSectionFrameBytes, "strings");
    uint64_t count = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&count));
    if (count > strings.size()) return reader.Error("string count exceeds section size");
    strings_.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      std::string_view value;
      SQLOG_RETURN_IF_ERROR(reader.ReadLengthDelimited(&value));
      strings_.emplace_back(value);
    }
    if (!reader.exhausted()) return reader.Error("trailing bytes");
  }

  // Dictionary.
  {
    ByteReader reader(dict, dict_offset + binfmt::kSectionFrameBytes, "dictionary");
    uint64_t count = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&count));
    if (count > dict.size()) return reader.Error("template count exceeds section size");
    dictionary_.reserve(static_cast<size_t>(count));
    templates_.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      DictionaryEntry entry;
      std::string_view text;
      SQLOG_RETURN_IF_ERROR(reader.ReadLengthDelimited(&text));
      entry.text.assign(text);
      uint64_t span_count = 0;
      SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&span_count));
      if (span_count > text.size()) {
        return reader.Error("constant span count exceeds template size");
      }
      DecodedTemplate decoded;
      decoded.span_count = static_cast<size_t>(span_count);
      entry.spans.reserve(decoded.span_count);
      decoded.pieces.reserve(decoded.span_count + 1);
      uint64_t cursor = 0;
      for (uint64_t j = 0; j < span_count; ++j) {
        uint64_t start_delta = 0;
        uint64_t length = 0;
        SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&start_delta));
        SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&length));
        const uint64_t start = cursor + start_delta;
        if (start > text.size() || length > text.size() - start) {
          return reader.Error("constant span out of template bounds");
        }
        decoded.pieces.emplace_back(text.substr(static_cast<size_t>(cursor),
                                                static_cast<size_t>(start - cursor)));
        entry.spans.emplace_back(static_cast<uint32_t>(start),
                                 static_cast<uint32_t>(length));
        cursor = start + length;
      }
      decoded.pieces.emplace_back(text.substr(static_cast<size_t>(cursor)));
      for (const std::string& piece : decoded.pieces) {
        decoded.pieces_bytes += piece.size();
      }
      std::string_view recipe;
      SQLOG_RETURN_IF_ERROR(reader.ReadLengthDelimited(&recipe));
      entry.recipe.assign(recipe);
      dictionary_.push_back(std::move(entry));
      templates_.push_back(std::move(decoded));
    }
    if (!reader.exhausted()) return reader.Error("trailing bytes");
  }

  // Block index.
  {
    ByteReader reader(index, index_offset + binfmt::kSectionFrameBytes, "index");
    uint64_t count = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&count));
    if (count > index.size()) return reader.Error("block count exceeds section size");
    index_.reserve(static_cast<size_t>(count));
    uint64_t previous_offset = binfmt::kHeaderBytes;
    int64_t previous_ts = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t offset_delta = 0;
      IndexRow row;
      SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&offset_delta));
      SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&row.record_count));
      int64_t ts_delta = 0;
      SQLOG_RETURN_IF_ERROR(reader.ReadZigzag(&ts_delta));
      row.offset = previous_offset + offset_delta;
      if (i > 0 && offset_delta == 0) return reader.Error("non-ascending block offsets");
      row.first_timestamp = previous_ts + ts_delta;
      previous_offset = row.offset;
      previous_ts = row.first_timestamp;
      index_.push_back(row);
    }
    if (!reader.exhausted()) return reader.Error("trailing bytes");
  }
  return Status::OK();
}

Status BinLogReader::DecodeBlock(size_t block_index) {
  const uint64_t offset = index_[block_index].offset;
  const uint64_t end = block_index + 1 < index_.size() ? index_[block_index + 1].offset
                                                       : dict_offset_end_;
  const std::string section_name = StrFormat("block %zu", block_index);

  std::string_view frame;
  if (streaming_) {
    block_buffer_.resize(static_cast<size_t>(end - offset));
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(block_buffer_.data(), static_cast<std::streamsize>(block_buffer_.size()));
    if (!in_) return Status::IoError("read failed");
    frame = block_buffer_;
  } else {
    std::string_view whole =
        mapped_data_ != nullptr
            ? std::string_view(static_cast<const char*>(mapped_data_), mapped_size_)
            : borrowed_;
    frame = whole.substr(static_cast<size_t>(offset), static_cast<size_t>(end - offset));
  }

  ByteReader frame_reader(frame, offset, section_name);
  uint32_t magic = 0;
  uint32_t payload_len = 0;
  uint32_t declared_count = 0;
  uint64_t checksum = 0;
  SQLOG_RETURN_IF_ERROR(frame_reader.ReadU32(&magic));
  if (magic != binfmt::kBlockMagic) return frame_reader.Error("bad block magic");
  SQLOG_RETURN_IF_ERROR(frame_reader.ReadU32(&payload_len));
  SQLOG_RETURN_IF_ERROR(frame_reader.ReadU32(&declared_count));
  SQLOG_RETURN_IF_ERROR(frame_reader.ReadU64(&checksum));
  if (payload_len != frame.size() - binfmt::kBlockFrameBytes) {
    return frame_reader.Error("block length disagrees with the index");
  }
  if (declared_count != index_[block_index].record_count) {
    return frame_reader.Error("block record count disagrees with the index");
  }
  std::string_view payload = frame.substr(binfmt::kBlockFrameBytes);
  if (Fnv1a64(payload) != checksum) return frame_reader.Error("block checksum mismatch");

  const size_t n = declared_count;
  // The truth column alone needs one byte per record, so any plausible
  // count is bounded by the payload size — reject before allocating.
  if (n > payload.size()) return frame_reader.Error("record count exceeds block size");

  block_records_.assign(n, LogRecord{});
  // Shapes are reset per record in the statement column below rather
  // than reassigned here: keeping the elements alive lets their span
  // vectors retain capacity across blocks (zero steady-state allocs).
  if (block_shapes_.size() < n) block_shapes_.resize(n);
  ByteReader reader(payload, offset + binfmt::kBlockFrameBytes, section_name);

  // Column 1: seq.
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&seq));
    } else {
      int64_t delta = 0;
      SQLOG_RETURN_IF_ERROR(reader.ReadZigzag(&delta));
      seq += static_cast<uint64_t>(delta);
    }
    block_records_[i].seq = seq;
  }
  // Column 2: timestamps.
  int64_t ts = 0;
  for (size_t i = 0; i < n; ++i) {
    int64_t value = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadZigzag(&value));
    ts = i == 0 ? value : ts + value;
    block_records_[i].timestamp_ms = ts;
  }
  if (n > 0 && block_records_[0].timestamp_ms != index_[block_index].first_timestamp) {
    return reader.Error("block first timestamp disagrees with the index");
  }
  // Columns 3-4: user/session ids.
  for (size_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&id));
    if (id >= strings_.size()) return reader.Error("user id outside the string table");
    block_records_[i].user = strings_[static_cast<size_t>(id)];
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&id));
    if (id >= strings_.size()) return reader.Error("session id outside the string table");
    block_records_[i].session = strings_[static_cast<size_t>(id)];
  }
  // Column 5: row counts.
  for (size_t i = 0; i < n; ++i) {
    SQLOG_RETURN_IF_ERROR(reader.ReadZigzag(&block_records_[i].row_count));
  }
  // Column 6: truth labels.
  std::string_view truth_bytes;
  SQLOG_RETURN_IF_ERROR(reader.ReadBytes(n, &truth_bytes));
  for (size_t i = 0; i < n; ++i) {
    uint8_t value = static_cast<uint8_t>(truth_bytes[i]);
    if (value > kMaxTruthByte) return reader.Error("unknown truth label");
    block_records_[i].truth = static_cast<TruthLabel>(value);
  }
  // Column 7: statements — template reference + constants, or verbatim.
  for (size_t i = 0; i < n; ++i) {
    RecordShape& shape = block_shapes_[i];
    shape.template_ordinal = RecordShape::kVerbatim;
    shape.constants.clear();
    uint64_t tag = 0;
    SQLOG_RETURN_IF_ERROR(reader.ReadVarint(&tag));
    if (tag == 0) {
      std::string_view text;
      SQLOG_RETURN_IF_ERROR(reader.ReadLengthDelimited(&text));
      block_records_[i].statement.assign(text);
      continue;
    }
    const uint64_t dict_id = tag - 1;
    if (dict_id >= templates_.size()) {
      return reader.Error("template id outside the dictionary");
    }
    const DecodedTemplate& tmpl = templates_[static_cast<size_t>(dict_id)];
    std::string& statement = block_records_[i].statement;
    shape.template_ordinal = static_cast<uint32_t>(dict_id);
    shape.constants.reserve(tmpl.span_count);
    statement.clear();
    // One allocation instead of log(n) growth steps: pieces are known,
    // constants rarely exceed ~24 rendered bytes each.
    statement.reserve(tmpl.pieces_bytes + 24 * tmpl.span_count);
    for (size_t j = 0; j < tmpl.span_count; ++j) {
      statement.append(tmpl.pieces[j]);
      const size_t constant_start = statement.size();
      SQLOG_RETURN_IF_ERROR(ReadPackedConstant(reader, &statement));
      shape.constants.emplace_back(static_cast<uint32_t>(constant_start),
                                   static_cast<uint32_t>(statement.size() - constant_start));
    }
    statement.append(tmpl.pieces[tmpl.span_count]);
  }
  if (!reader.exhausted()) return reader.Error("trailing bytes in block payload");
  return Status::OK();
}

Status BinLogReader::ReadRecord(LogRecord* record, bool* eof) {
  *eof = false;
  while (next_record_ >= block_records_.size()) {
    if (next_block_ >= index_.size()) {
      *eof = true;
      return Status::OK();
    }
    SQLOG_RETURN_IF_ERROR(DecodeBlock(next_block_));
    ++next_block_;
    next_record_ = 0;
  }
  *record = std::move(block_records_[next_record_]);
  last_shape_ = &block_shapes_[next_record_];
  ++next_record_;
  ++records_read_;
  return Status::OK();
}

}  // namespace sqlog::log
