#ifndef SQLOG_LOG_GENERATOR_H_
#define SQLOG_LOG_GENERATOR_H_

#include <cstdint>

#include "log/record.h"
#include "util/random.h"

namespace sqlog::log {

/// Mix configuration for the synthetic SkyServer-style workload. The
/// default fractions are calibrated so that the pipeline reproduces the
/// *shape* of the paper's Table 5: ~96% SELECT share, ~4% duplicates,
/// ~19% of the log covered by solvable Stifles, CTH coverage ~1%, a
/// heavy SWS share, and top patterns dominated by one-user spatial
/// robots.
struct GeneratorConfig {
  uint64_t seed = 20180416;       // ICDE'18 vintage
  size_t target_statements = 200000;

  // Workload family shares (of all statements). The remainder after
  // noise/errors/stifles/cth/sws is filled with human ad-hoc queries.
  double frac_noise_dml = 0.041;       // INSERT/UPDATE/CREATE/... statements
  double frac_syntax_errors = 0.004;   // unparseable SELECTs
  double frac_spatial_nearby = 0.087;  // paper Table 7 rank 1 (1 user)
  double frac_spatial_rect = 0.080;    // rank 2 (19 users)
  double frac_htm_count = 0.057;       // rank 3 (1 user)
  double frac_nearby_info = 0.054;     // rank 4 (1 user)
  double frac_scan_strip = 0.018;      // rank 5 (1 user)
  double frac_dw_stifle = 0.150;       // Table 6 ranks 1-3
  double frac_ds_stifle = 0.030;       // Table 6 ranks 4-5
  double frac_df_stifle = 0.005;
  double frac_cth = 0.011;
  double frac_sws = 0.120;             // sliding-window robots
  double frac_snc = 0.002;

  // Catalog-expansion families (SQLCheck-style antipatterns). All
  // default to 0 so the calibrated Table-5 mix — and every golden file
  // derived from it — is untouched; detector tests opt in. Zero-frac
  // families draw nothing from the RNG (users and emitters are skipped
  // entirely).
  double frac_select_star = 0.0;     // SELECT * (implicit columns)
  double frac_null_fear = 0.0;       // <> filters on nullable columns
  double frac_spaghetti_join = 0.0;  // comma joins without a join predicate
  double frac_non_sargable = 0.0;    // computed comparisons on key columns

  /// Probability that a SELECT is instantly re-issued (web-form reload);
  /// produces the duplicates the dedup stage removes (Table 4).
  double duplicate_prob = 0.042;

  /// Number of ordinary human users issuing ad-hoc queries.
  int human_users = 400;

  /// Distinct sliding-window robot families (each one template + user).
  int sws_families = 23;

  /// Distinct CTH candidate families; ~56% are real (28/50 in the paper).
  int cth_families = 50;
  double cth_real_share = 0.56;
};

/// Deterministic synthetic query-log generator. Given the same config it
/// produces a byte-identical log, so experiments and golden tests are
/// reproducible. Records carry TruthLabel ground truth.
class Generator {
 public:
  explicit Generator(GeneratorConfig config) : config_(config), rng_(config.seed) {}

  /// Generates the full log, time-sorted and renumbered.
  QueryLog Generate();

 private:
  struct UserClock {
    std::string ip;
    int64_t cursor_ms = 0;
  };

  // Family emitters. Each emits one session (a run of statements from
  // one user) and returns the number of statements emitted.
  size_t EmitSpatialNearbySession(QueryLog& log);
  size_t EmitSpatialRectSession(QueryLog& log);
  size_t EmitHtmCountSession(QueryLog& log);
  size_t EmitNearbyInfoSession(QueryLog& log);
  size_t EmitScanStripSession(QueryLog& log);
  size_t EmitDwStifleSession(QueryLog& log);
  size_t EmitDsStifleSession(QueryLog& log);
  size_t EmitDfStifleSession(QueryLog& log);
  size_t EmitCthSession(QueryLog& log);
  size_t EmitSwsSession(QueryLog& log);
  size_t EmitSncSession(QueryLog& log);
  size_t EmitSelectStarSession(QueryLog& log);
  size_t EmitNullFearSession(QueryLog& log);
  size_t EmitSpaghettiJoinSession(QueryLog& log);
  size_t EmitNonSargableSession(QueryLog& log);
  size_t EmitHumanSession(QueryLog& log);
  size_t EmitNoiseStatement(QueryLog& log);
  size_t EmitSyntaxErrorStatement(QueryLog& log);

  /// Appends one record for `user`, advancing its clock by
  /// `gap_ms`; with probability duplicate_prob appends an immediate
  /// duplicate labelled kDuplicate.
  void Emit(QueryLog& log, UserClock& user, const std::string& statement,
            int64_t row_count, TruthLabel truth, int64_t gap_ms);

  /// Advances a user clock past a between-sessions pause.
  void SessionPause(UserClock& user);

  /// Random in-run gap between consecutive statements of one session.
  int64_t InRunGapMs();

  UserClock MakeUser(const char* prefix, int index);

  /// Deterministic hash for synthesizing stable per-user IPs.
  static uint64_t Fnv1aOfPrefix(const char* prefix, int index);

  GeneratorConfig config_;
  Rng rng_;

  // Dedicated robot users, created lazily in Generate().
  std::vector<UserClock> spatial_nearby_users_;
  std::vector<UserClock> spatial_rect_users_;
  std::vector<UserClock> htm_count_users_;
  std::vector<UserClock> nearby_info_users_;
  std::vector<UserClock> scan_strip_users_;
  std::vector<UserClock> dw_users_;
  std::vector<UserClock> ds_users_;
  std::vector<UserClock> df_users_;
  std::vector<std::vector<UserClock>> cth_family_users_;
  std::vector<UserClock> sws_users_;
  std::vector<UserClock> snc_users_;
  std::vector<UserClock> select_star_users_;
  std::vector<UserClock> null_fear_users_;
  std::vector<UserClock> spaghetti_users_;
  std::vector<UserClock> non_sargable_users_;
  std::vector<UserClock> human_users_;
  std::vector<UserClock> noise_users_;

  // Per-family sliding-window positions for the SWS robots.
  std::vector<double> sws_window_pos_;
  // Round-robin cursor over CTH families.
  size_t next_cth_family_ = 0;
};

/// Convenience wrapper: generate with the given config.
QueryLog GenerateLog(const GeneratorConfig& config);

}  // namespace sqlog::log

#endif  // SQLOG_LOG_GENERATOR_H_
