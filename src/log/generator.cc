#include "log/generator.h"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace sqlog::log {

namespace {

// 2003-01-01 00:00:00 UTC — the SkyServer study window opens here.
constexpr int64_t kEpochStartMs = 1041379200000LL;

/// SkyServer-style 18-digit object id.
int64_t MakeObjId(Rng& rng) {
  return 587722981740000000LL + static_cast<int64_t>(rng.Uniform(9000000ULL)) * 131LL;
}

/// SkyServer-style spectro object id.
int64_t MakeSpecObjId(Rng& rng) {
  return 75094090000000000LL + static_cast<int64_t>(rng.Uniform(8000000ULL)) * 257LL;
}

std::string FormatDouble(double v) { return StrFormat("%.6f", v); }

/// Picks a deterministic k-subset of `pool` based on `salt`, preserving
/// pool order. Used to build distinct CTH/SWS column sets per family.
std::vector<std::string> PickColumns(const std::vector<std::string>& pool, size_t count,
                                     uint64_t salt) {
  std::vector<std::string> out;
  if (count >= pool.size()) return pool;
  size_t start = salt % pool.size();
  size_t step = 1 + (salt / 7) % (pool.size() - 1);
  size_t idx = start;
  while (out.size() < count) {
    const std::string& candidate = pool[idx % pool.size()];
    bool seen = false;
    for (const auto& existing : out) {
      if (existing == candidate) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(candidate);
    idx += step;
    ++step;  // avoid short cycles when step divides pool size
  }
  return out;
}

std::string JoinColumns(const std::vector<std::string>& cols) {
  std::string out;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols[i];
  }
  return out;
}

}  // namespace

QueryLog GenerateLog(const GeneratorConfig& config) {
  return Generator(config).Generate();
}

Generator::UserClock Generator::MakeUser(const char* prefix, int index) {
  UserClock user;
  // Synthetic dotted-quad derived deterministically from prefix + index.
  uint64_t h = Fnv1aOfPrefix(prefix, index);
  user.ip = StrFormat("%u.%u.%u.%u", static_cast<unsigned>((h >> 24) % 223 + 1),
                      static_cast<unsigned>((h >> 16) & 0xff),
                      static_cast<unsigned>((h >> 8) & 0xff),
                      static_cast<unsigned>(h & 0xff));
  user.cursor_ms = kEpochStartMs + static_cast<int64_t>(rng_.Uniform(90ULL * 24 * 3600 * 1000));
  return user;
}

uint64_t Generator::Fnv1aOfPrefix(const char* prefix, int index) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = prefix; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  h ^= static_cast<uint64_t>(index) + 0x9e37;
  h *= 0x100000001b3ULL;
  return h;
}

void Generator::Emit(QueryLog& log, UserClock& user, const std::string& statement,
                     int64_t row_count, TruthLabel truth, int64_t gap_ms) {
  user.cursor_ms += gap_ms;
  LogRecord record;
  record.seq = static_cast<uint64_t>(log.size());
  record.timestamp_ms = user.cursor_ms;
  record.user = user.ip;
  record.session = StrFormat("%s#%lld", user.ip.c_str(),
                             static_cast<long long>(user.cursor_ms / (3600 * 1000)));
  record.statement = statement;
  record.row_count = row_count;
  record.truth = truth;
  log.Append(std::move(record));

  // Web-form reload: the same statement lands again within a second.
  if (rng_.Chance(config_.duplicate_prob)) {
    user.cursor_ms += static_cast<int64_t>(100 + rng_.Uniform(800));
    LogRecord dup;
    dup.seq = static_cast<uint64_t>(log.size());
    dup.timestamp_ms = user.cursor_ms;
    dup.user = user.ip;
    dup.session = StrFormat("%s#%lld", user.ip.c_str(),
                            static_cast<long long>(user.cursor_ms / (3600 * 1000)));
    dup.statement = statement;
    dup.row_count = row_count;
    // Reloads of broken/DML statements are still noise, not clean dups.
    dup.truth = truth == TruthLabel::kNoise ? truth : TruthLabel::kDuplicate;
    log.Append(std::move(dup));
  }
}

void Generator::SessionPause(UserClock& user) {
  // 10 minutes to 48 hours between sessions of the same user.
  user.cursor_ms += static_cast<int64_t>(10 * 60 * 1000 + rng_.Uniform(48ULL * 3600 * 1000));
}

int64_t Generator::InRunGapMs() { return static_cast<int64_t>(400 + rng_.Uniform(4200)); }

// --- spatial robot families (paper Table 7) ---------------------------------

size_t Generator::EmitSpatialNearbySession(QueryLog& log) {
  UserClock& user = spatial_nearby_users_[0];
  size_t n = 80 + rng_.Uniform(400);
  for (size_t i = 0; i < n; ++i) {
    double ra = rng_.NextDouble() * 360.0;
    double dec = rng_.NextDouble() * 180.0 - 90.0;
    double radius = 0.5 + rng_.NextDouble() * 2.5;
    std::string sql = StrFormat(
        "SELECT g.objID, g.ra, g.dec, g.u, g.g, g.r, g.i, g.z, s.specObjID "
        "FROM photoObjAll as g JOIN fGetNearbyObjEq(%s, %s, %s) as gn "
        "ON g.objID = gn.objID LEFT OUTER JOIN specObj s ON s.bestObjID = gn.objID",
        FormatDouble(ra).c_str(), FormatDouble(dec).c_str(), FormatDouble(radius).c_str());
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(300)), TruthLabel::kOrganic,
         InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitSpatialRectSession(QueryLog& log) {
  UserClock& user = spatial_rect_users_[rng_.Uniform(spatial_rect_users_.size())];
  size_t n = 40 + rng_.Uniform(240);
  for (size_t i = 0; i < n; ++i) {
    double ra1 = rng_.NextDouble() * 355.0;
    double dec1 = rng_.NextDouble() * 170.0 - 90.0;
    double lo = 14.0 + rng_.NextDouble() * 4.0;
    std::string sql = StrFormat(
        "SELECT p.objID, p.ra, p.dec, p.r "
        "FROM fGetObjFromRect(%s, %s, %s, %s) n, photoPrimary p "
        "WHERE n.objID = p.objID and r between %s and %s",
        FormatDouble(ra1).c_str(), FormatDouble(dec1).c_str(),
        FormatDouble(ra1 + 0.5).c_str(), FormatDouble(dec1 + 0.5).c_str(),
        FormatDouble(lo).c_str(), FormatDouble(lo + 3.0).c_str());
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(800)), TruthLabel::kOrganic,
         InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitHtmCountSession(QueryLog& log) {
  UserClock& user = htm_count_users_[0];
  size_t n = 120 + rng_.Uniform(500);
  int64_t htm = static_cast<int64_t>(rng_.Uniform(1000000000ULL)) * 16;
  for (size_t i = 0; i < n; ++i) {
    std::string sql = StrFormat(
        "SELECT count(*) FROM photoPrimary WHERE htmid >= %lld and htmid <= %lld",
        static_cast<long long>(htm), static_cast<long long>(htm + 16384));
    htm += 16384;  // disjoint, sliding triangles
    Emit(log, user, sql, 1, TruthLabel::kOrganic, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitNearbyInfoSession(QueryLog& log) {
  UserClock& user = nearby_info_users_[0];
  size_t n = 80 + rng_.Uniform(360);
  for (size_t i = 0; i < n; ++i) {
    double ra = rng_.NextDouble() * 360.0;
    double dec = rng_.NextDouble() * 180.0 - 90.0;
    std::string sql = StrFormat(
        "SELECT p.objID, p.run, p.rerun, p.camcol, p.field, p.ra, p.dec "
        "FROM fGetNearbyObjEq(%s, %s, 1.0) n, photoPrimary p WHERE n.objID = p.objID",
        FormatDouble(ra).c_str(), FormatDouble(dec).c_str());
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(200)), TruthLabel::kOrganic,
         InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitScanStripSession(QueryLog& log) {
  UserClock& user = scan_strip_users_[0];
  size_t n = 30 + rng_.Uniform(160);
  for (size_t i = 0; i < n; ++i) {
    double ra = rng_.NextDouble() * 360.0;
    double dec = rng_.NextDouble() * 180.0 - 90.0;
    long long run = 94 + static_cast<long long>(rng_.Uniform(8000));
    std::string sql = StrFormat(
        "SELECT ra, dec, objID, run, camcol, field "
        "FROM fGetNearbyObjEq(%s, %s, 2.0) n, photoPrimary p "
        "WHERE n.objID = p.objID and p.run = %lld",
        FormatDouble(ra).c_str(), FormatDouble(dec).c_str(), run);
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(400)), TruthLabel::kOrganic,
         InRunGapMs());
  }
  SessionPause(user);
  return n;
}

// --- Stifle families (paper Table 6) -----------------------------------------

size_t Generator::EmitDwStifleSession(QueryLog& log) {
  // Three colour-band variants, weighted like Table 6 ranks 1-3.
  static constexpr std::array<const char*, 3> kBands = {"g", "r", "i"};
  uint64_t pick = rng_.Uniform(14 + 14 + 10);
  size_t variant = pick < 14 ? 0 : (pick < 28 ? 1 : 2);
  // Rank 1 comes from 2 IPs, rank 2 from 3 IPs, rank 3 from 1 IP.
  static constexpr std::array<size_t, 3> kIpBase = {0, 2, 5};
  static constexpr std::array<size_t, 3> kIpCount = {2, 3, 1};
  UserClock& user = dw_users_[kIpBase[variant] + rng_.Uniform(kIpCount[variant])];

  size_t n = 4 + rng_.Uniform(36);
  for (size_t i = 0; i < n; ++i) {
    std::string sql = StrFormat(
        "SELECT rowc_%s, colc_%s FROM photoPrimary WHERE objID = %lld", kBands[variant],
        kBands[variant], static_cast<long long>(MakeObjId(rng_)));
    Emit(log, user, sql, 1, TruthLabel::kDwStifle, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitDsStifleSession(QueryLog& log) {
  // Two alternating-band variants (Table 6 ranks 4-5): for each object,
  // fetch band A centroids then band B centroids — same FROM and WHERE,
  // different SELECT.
  size_t variant = rng_.Uniform(2);
  const char* first = variant == 0 ? "r" : "g";
  const char* second = variant == 0 ? "g" : "r";
  UserClock& user = ds_users_[variant * 2 + rng_.Uniform(2)];

  size_t pairs = 2 + rng_.Uniform(9);
  for (size_t i = 0; i < pairs; ++i) {
    long long objid = static_cast<long long>(MakeObjId(rng_));
    Emit(log, user,
         StrFormat("SELECT rowc_%s, colc_%s FROM photoPrimary WHERE objID = %lld", first,
                   first, objid),
         1, TruthLabel::kDsStifle, InRunGapMs());
    Emit(log, user,
         StrFormat("SELECT rowc_%s, colc_%s FROM photoPrimary WHERE objID = %lld", second,
                   second, objid),
         1, TruthLabel::kDsStifle, static_cast<int64_t>(150 + rng_.Uniform(900)));
  }
  SessionPause(user);
  return pairs * 2;
}

size_t Generator::EmitDfStifleSession(QueryLog& log) {
  UserClock& user = df_users_[rng_.Uniform(df_users_.size())];
  size_t pairs = 2 + rng_.Uniform(7);
  for (size_t i = 0; i < pairs; ++i) {
    long long objid = static_cast<long long>(MakeObjId(rng_));
    Emit(log, user,
         StrFormat("SELECT ra, dec FROM photoPrimary WHERE objID = %lld", objid), 1,
         TruthLabel::kDfStifle, InRunGapMs());
    Emit(log, user,
         StrFormat("SELECT flags, status FROM photoObjAll WHERE objID = %lld", objid), 1,
         TruthLabel::kDfStifle, static_cast<int64_t>(150 + rng_.Uniform(900)));
  }
  SessionPause(user);
  return pairs * 2;
}

// --- CTH candidate families ---------------------------------------------------

size_t Generator::EmitCthSession(QueryLog& log) {
  size_t family = next_cth_family_;
  next_cth_family_ = (next_cth_family_ + 1) % cth_family_users_.size();
  size_t real_count =
      static_cast<size_t>(config_.cth_real_share * static_cast<double>(config_.cth_families));
  bool real = family < real_count;
  auto& users = cth_family_users_[family];
  UserClock& user = users[rng_.Uniform(users.size())];

  static const std::vector<std::string> kSpecCols = {
      "plate", "fiberID", "mjd", "specObjID", "z", "zErr", "ra", "dec"};
  static const std::vector<std::string> kPhotoCols = {
      "ra", "dec", "u", "g", "r", "i", "z", "run", "camcol", "field", "flags"};

  size_t emitted = 0;
  if (real) {
    // Program-driven treasure hunt: locate an object, then immediately
    // fetch dependent rows keyed by the located id. Distinct select
    // lists per family keep the templates distinct.
    bool spec_flavour = (family % 2) == 0;
    size_t width = 2 + family % 4;
    if (spec_flavour) {
      double ra = rng_.NextDouble() * 360.0;
      double dec = rng_.NextDouble() * 180.0 - 90.0;
      Emit(log, user,
           StrFormat("SELECT * FROM dbo.fGetNearestObjEq(%s, %s, 0.1)",
                     FormatDouble(ra).c_str(), FormatDouble(dec).c_str()),
           1, TruthLabel::kCthReal, InRunGapMs());
      ++emitted;
      std::string cols = JoinColumns(PickColumns(kSpecCols, width, family * 131 + 7));
      size_t followups = 1 + rng_.Uniform(5);
      for (size_t i = 0; i < followups; ++i) {
        Emit(log, user,
             StrFormat("SELECT %s FROM specObjAll WHERE specObjID = %lld", cols.c_str(),
                       static_cast<long long>(MakeSpecObjId(rng_))),
             1, TruthLabel::kCthReal, static_cast<int64_t>(rng_.Uniform(400)));
        ++emitted;
      }
    } else {
      long long run = 94 + static_cast<long long>(rng_.Uniform(8000));
      Emit(log, user,
           StrFormat("SELECT objID, ra, dec FROM photoPrimary WHERE run = %lld", run),
           static_cast<int64_t>(5 + rng_.Uniform(40)), TruthLabel::kCthReal, InRunGapMs());
      ++emitted;
      std::string cols = JoinColumns(PickColumns(kPhotoCols, width, family * 977 + 13));
      size_t followups = 2 + rng_.Uniform(6);
      for (size_t i = 0; i < followups; ++i) {
        Emit(log, user,
             StrFormat("SELECT %s FROM photoObjAll WHERE objID = %lld", cols.c_str(),
                       static_cast<long long>(MakeObjId(rng_))),
             1, TruthLabel::kCthReal, static_cast<int64_t>(rng_.Uniform(400)));
        ++emitted;
      }
    }
  } else {
    // Human browsing that merely looks like a treasure hunt: list the
    // tables, think for a while, then open one.
    static const std::vector<std::string> kMetaCols = {"description", "text", "access",
                                                       "rank", "type"};
    static constexpr std::array<const char*, 6> kTableNames = {
        "Galaxy", "Star", "photoObjAll", "specObj", "photoPrimary", "specObjAll"};
    size_t width = 1 + family % 3;
    std::string q1_cols = (family % 2) == 0 ? "name, type" : "name, type, access";
    Emit(log, user,
         StrFormat("SELECT %s FROM DBObjects WHERE type = 'U' ORDER BY name",
                   q1_cols.c_str()),
         static_cast<int64_t>(40 + rng_.Uniform(80)), TruthLabel::kCthFalse, InRunGapMs());
    ++emitted;
    std::string cols = JoinColumns(PickColumns(kMetaCols, width, family * 613 + 3));
    // Humans reflect before the follow-up: 15-90 seconds.
    Emit(log, user,
         StrFormat("SELECT %s FROM DBObjects WHERE name = '%s'", cols.c_str(),
                   kTableNames[rng_.Uniform(kTableNames.size())]),
         1, TruthLabel::kCthFalse, static_cast<int64_t>(15000 + rng_.Uniform(75000)));
    ++emitted;
  }
  SessionPause(user);
  return emitted;
}

// --- SWS robots ----------------------------------------------------------------

size_t Generator::EmitSwsSession(QueryLog& log) {
  size_t family = rng_.Uniform(sws_users_.size());
  UserClock& user = sws_users_[family];
  static const std::vector<std::string> kExtraCols = {
      "u", "g", "r", "i", "z", "run", "rerun", "camcol", "field", "htmid", "type", "flags"};
  // Guaranteed-distinct column sets per family: singles first, then
  // adjacent pairs with growing stride — one robot, one template.
  std::vector<std::string> cols;
  const size_t pool = kExtraCols.size();
  if (family < pool) {
    cols = {kExtraCols[family]};
  } else {
    size_t rank = family - pool;
    size_t first = rank % pool;
    size_t stride = 1 + rank / pool;
    cols = {kExtraCols[first], kExtraCols[(first + stride) % pool]};
  }
  std::string extra = JoinColumns(cols);

  size_t n = 80 + rng_.Uniform(700);
  double& pos = sws_window_pos_[family];
  const double width = 0.05;
  for (size_t i = 0; i < n; ++i) {
    std::string sql = StrFormat(
        "SELECT objID, ra, dec, %s FROM photoPrimary WHERE ra >= %s and ra < %s",
        extra.c_str(), FormatDouble(pos).c_str(), FormatDouble(pos + width).c_str());
    pos += width;  // disjoint sliding windows — the machine download
    if (pos >= 360.0) pos -= 360.0;
    Emit(log, user, sql, static_cast<int64_t>(500 + rng_.Uniform(4500)), TruthLabel::kSws,
         InRunGapMs());
  }
  SessionPause(user);
  return n;
}

// --- misc families ---------------------------------------------------------------

size_t Generator::EmitSncSession(QueryLog& log) {
  UserClock& user = snc_users_[rng_.Uniform(snc_users_.size())];
  size_t n = 1 + rng_.Uniform(3);
  for (size_t i = 0; i < n; ++i) {
    bool negated = rng_.Chance(0.4);
    Emit(log, user,
         negated ? std::string("SELECT * FROM Bugs WHERE assigned_to <> NULL")
                 : std::string("SELECT * FROM Bugs WHERE assigned_to = NULL"),
         0, TruthLabel::kSnc, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

// --- catalog-expansion families (SQLCheck-style antipatterns) -------------------
//
// Each family is crafted to hit exactly one of the new per-query
// detectors: the predicates stay off key columns (or off kEq) so the
// Stifle scans ignore them, and never compare to NULL literals so SNC
// stays quiet. Labels are the ground truth for detector_registry_test.

size_t Generator::EmitSelectStarSession(QueryLog& log) {
  UserClock& user = select_star_users_[rng_.Uniform(select_star_users_.size())];
  size_t n = 2 + rng_.Uniform(6);
  for (size_t i = 0; i < n; ++i) {
    std::string sql =
        StrFormat("SELECT * FROM specObjAll WHERE z > %s and zErr < %s",
                  FormatDouble(rng_.NextDouble()).c_str(),
                  FormatDouble(0.001 + rng_.NextDouble() * 0.01).c_str());
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(900)),
         TruthLabel::kSelectStar, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitNullFearSession(QueryLog& log) {
  UserClock& user = null_fear_users_[rng_.Uniform(null_fear_users_.size())];
  size_t n = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    // Bugs.assigned_to is nullable: `<> k` silently drops the NULL rows.
    std::string sql =
        StrFormat("SELECT bugId, status FROM Bugs WHERE assigned_to <> %llu",
                  static_cast<unsigned long long>(1 + rng_.Uniform(500)));
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(200)),
         TruthLabel::kNullFear, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitSpaghettiJoinSession(QueryLog& log) {
  UserClock& user = spaghetti_users_[rng_.Uniform(spaghetti_users_.size())];
  size_t n = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    // Comma join with no join predicate at all — an implicit cross
    // product of photoPrimary × specObjAll.
    std::string sql = StrFormat(
        "SELECT p.objID, s.z FROM photoPrimary p, specObjAll s WHERE s.z > %s",
        FormatDouble(rng_.NextDouble()).c_str());
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(5000)),
         TruthLabel::kSpaghettiJoin, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitNonSargableSession(QueryLog& log) {
  UserClock& user = non_sargable_users_[rng_.Uniform(non_sargable_users_.size())];
  size_t n = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    // Arithmetic on the key column defeats the index; the solver can
    // fold the constant to the other side.
    std::string sql = StrFormat(
        "SELECT bugId, status FROM Bugs WHERE bugId + %llu > %llu",
        static_cast<unsigned long long>(1 + rng_.Uniform(20)),
        static_cast<unsigned long long>(100 + rng_.Uniform(4000)));
    Emit(log, user, sql, static_cast<int64_t>(rng_.Uniform(300)),
         TruthLabel::kNonSargable, InRunGapMs());
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitHumanSession(QueryLog& log) {
  UserClock& user = human_users_[rng_.Zipf(human_users_.size(), 1.2)];
  size_t n = 1 + rng_.Uniform(6);
  for (size_t i = 0; i < n; ++i) {
    std::string sql;
    int64_t rows = static_cast<int64_t>(rng_.Uniform(5000));
    // Weighted shape choice: the two low-variety shapes (count-by-class,
    // DBObjects browse) are rare, like in the real log — otherwise the
    // unrestricted-dedup gap of Table 4 would balloon.
    static constexpr int kShapeOf[20] = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3,
                                         4, 4, 4, 5, 6, 6, 7, 7, 8, 8};
    switch (kShapeOf[rng_.Uniform(20)]) {
      case 0:
        sql = StrFormat(
            "SELECT top %llu objID, ra, dec, u, g, r, i, z FROM Galaxy "
            "WHERE r < %s and g - r > %s",
            static_cast<unsigned long long>(10 + rng_.Uniform(90) * 10),
            FormatDouble(14.0 + rng_.NextDouble() * 8).c_str(),
            FormatDouble(rng_.NextDouble()).c_str());
        break;
      case 1:
        sql = StrFormat(
            "SELECT objID, ra, dec FROM photoPrimary WHERE ra > %s and ra < %s "
            "and dec > %s and dec < %s",
            FormatDouble(rng_.NextDouble() * 350).c_str(),
            FormatDouble(rng_.NextDouble() * 350 + 5).c_str(),
            FormatDouble(rng_.NextDouble() * 160 - 90).c_str(),
            FormatDouble(rng_.NextDouble() * 160 - 70).c_str());
        break;
      case 2:
        sql = StrFormat(
            "SELECT p.objID, p.u, p.g, p.r, p.i, p.z, s.z as redshift "
            "FROM photoPrimary p JOIN specObj s ON s.bestObjID = p.objID "
            "WHERE s.z between %s and %s",
            FormatDouble(rng_.NextDouble() * 0.4).c_str(),
            FormatDouble(0.4 + rng_.NextDouble() * 0.4).c_str());
        break;
      case 3:
        sql = StrFormat("SELECT count(*) FROM specObj WHERE specClass = %llu",
                        static_cast<unsigned long long>(1 + rng_.Uniform(6)));
        rows = 1;
        break;
      case 4:
        sql = StrFormat("SELECT plate, mjd, fiberID FROM specObj WHERE z > %s and zErr < %s",
                        FormatDouble(rng_.NextDouble()).c_str(),
                        FormatDouble(0.001 + rng_.NextDouble() * 0.01).c_str());
        break;
      case 5:
        sql = "SELECT name FROM DBObjects WHERE type = 'V'";
        rows = 42;
        break;
      case 6:
        sql = StrFormat(
            "SELECT top 10 * FROM photoPrimary WHERE htmid between %llu and %llu",
            static_cast<unsigned long long>(rng_.Uniform(1000000000ULL)),
            static_cast<unsigned long long>(1000000000ULL + rng_.Uniform(1000000ULL)));
        break;
      case 7:
        sql = StrFormat(
            "SELECT objID, u - g as ug, g - r as gr FROM photoPrimary "
            "WHERE type = %llu and u - g between %s and %s",
            static_cast<unsigned long long>(3 + rng_.Uniform(4)),
            FormatDouble(rng_.NextDouble()).c_str(),
            FormatDouble(1.0 + rng_.NextDouble()).c_str());
        break;
      default:
        sql = StrFormat(
            "SELECT s.plate, s.mjd, s.fiberID, s.z FROM specObjAll s "
            "WHERE s.specClass = %llu and s.zErr < %s ORDER BY s.z desc",
            static_cast<unsigned long long>(1 + rng_.Uniform(6)),
            FormatDouble(0.001 + rng_.NextDouble() * 0.01).c_str());
        break;
    }
    // Humans pause 3-120 seconds between queries.
    Emit(log, user, sql, rows, TruthLabel::kOrganic,
         static_cast<int64_t>(3000 + rng_.Uniform(117000)));
  }
  SessionPause(user);
  return n;
}

size_t Generator::EmitNoiseStatement(QueryLog& log) {
  UserClock& user = noise_users_[rng_.Uniform(noise_users_.size())];
  std::string sql;
  switch (rng_.Uniform(5)) {
    case 0:
      sql = StrFormat("INSERT INTO mydb.results (objID, ra, dec) VALUES (%lld, 1.0, 2.0)",
                      static_cast<long long>(MakeObjId(rng_)));
      break;
    case 1:
      sql = StrFormat("UPDATE mydb.results SET checked = 1 WHERE objID = %lld",
                      static_cast<long long>(MakeObjId(rng_)));
      break;
    case 2:
      sql = "CREATE TABLE #tmp (objID bigint, ra float, dec float)";
      break;
    case 3:
      sql = StrFormat("DELETE FROM mydb.results WHERE objID = %lld",
                      static_cast<long long>(MakeObjId(rng_)));
      break;
    default:
      sql = "DROP TABLE #tmp";
      break;
  }
  Emit(log, user, sql, 0, TruthLabel::kNoise, InRunGapMs());
  SessionPause(user);
  return 1;
}

size_t Generator::EmitSyntaxErrorStatement(QueryLog& log) {
  UserClock& user = noise_users_[rng_.Uniform(noise_users_.size())];
  static constexpr std::array<const char*, 4> kBroken = {
      "SELECT FROM photoPrimary WHERE objID = 1",
      "SELECT objid, FROM photoPrimary",
      "SELECT count( FROM photoPrimary",
      "SELECT * FROM photoPrimary WHERE ra >",
  };
  Emit(log, user, kBroken[rng_.Uniform(kBroken.size())], 0, TruthLabel::kNoise,
       InRunGapMs());
  SessionPause(user);
  return 1;
}

// --- driver ---------------------------------------------------------------------

QueryLog Generator::Generate() {
  // Dedicated users per robot family.
  spatial_nearby_users_ = {MakeUser("nearby", 0)};
  spatial_rect_users_.clear();
  for (int i = 0; i < 19; ++i) spatial_rect_users_.push_back(MakeUser("rect", i));
  htm_count_users_ = {MakeUser("htm", 0)};
  nearby_info_users_ = {MakeUser("nearbyinfo", 0)};
  scan_strip_users_ = {MakeUser("strip", 0)};
  dw_users_.clear();
  for (int i = 0; i < 6; ++i) dw_users_.push_back(MakeUser("dw", i));
  ds_users_.clear();
  for (int i = 0; i < 4; ++i) ds_users_.push_back(MakeUser("ds", i));
  df_users_.clear();
  for (int i = 0; i < 2; ++i) df_users_.push_back(MakeUser("df", i));

  size_t real_count = static_cast<size_t>(config_.cth_real_share *
                                          static_cast<double>(config_.cth_families));
  cth_family_users_.clear();
  cth_family_users_.resize(static_cast<size_t>(config_.cth_families));
  for (size_t f = 0; f < cth_family_users_.size(); ++f) {
    // Real (program-driven) hunts come from 1-3 IPs; human look-alikes
    // from many — this separation drives Fig. 2(d).
    size_t ip_count = f < real_count ? 1 + f % 3 : 4 + f % 9;
    for (size_t i = 0; i < ip_count; ++i) {
      cth_family_users_[f].push_back(MakeUser("cth", static_cast<int>(f * 100 + i)));
    }
  }

  sws_users_.clear();
  sws_window_pos_.clear();
  for (int i = 0; i < config_.sws_families; ++i) {
    sws_users_.push_back(MakeUser("sws", i));
    sws_window_pos_.push_back(rng_.NextDouble() * 300.0);
  }
  snc_users_.clear();
  for (int i = 0; i < 3; ++i) snc_users_.push_back(MakeUser("snc", i));
  // Opt-in families: zero-frac families must not perturb the RNG
  // stream (each MakeUser draws from it), or the calibrated default
  // log — and the goldens — would shift.
  select_star_users_.clear();
  if (config_.frac_select_star > 0) {
    for (int i = 0; i < 3; ++i) select_star_users_.push_back(MakeUser("selstar", i));
  }
  null_fear_users_.clear();
  if (config_.frac_null_fear > 0) {
    for (int i = 0; i < 3; ++i) null_fear_users_.push_back(MakeUser("nullfear", i));
  }
  spaghetti_users_.clear();
  if (config_.frac_spaghetti_join > 0) {
    for (int i = 0; i < 3; ++i) spaghetti_users_.push_back(MakeUser("spaghetti", i));
  }
  non_sargable_users_.clear();
  if (config_.frac_non_sargable > 0) {
    for (int i = 0; i < 3; ++i) non_sargable_users_.push_back(MakeUser("nonsarg", i));
  }
  human_users_.clear();
  for (int i = 0; i < config_.human_users; ++i) {
    human_users_.push_back(MakeUser("human", i));
  }
  noise_users_.clear();
  for (int i = 0; i < 12; ++i) noise_users_.push_back(MakeUser("noise", i));

  struct Family {
    double frac;
    size_t emitted;
    size_t (Generator::*emit)(QueryLog&);
  };
  double human_frac = 1.0 - config_.frac_noise_dml - config_.frac_syntax_errors -
                      config_.frac_spatial_nearby - config_.frac_spatial_rect -
                      config_.frac_htm_count - config_.frac_nearby_info -
                      config_.frac_scan_strip - config_.frac_dw_stifle -
                      config_.frac_ds_stifle - config_.frac_df_stifle - config_.frac_cth -
                      config_.frac_sws - config_.frac_snc - config_.frac_select_star -
                      config_.frac_null_fear - config_.frac_spaghetti_join -
                      config_.frac_non_sargable;
  if (human_frac < 0.05) human_frac = 0.05;

  std::vector<Family> families = {
      {config_.frac_spatial_nearby, 0, &Generator::EmitSpatialNearbySession},
      {config_.frac_spatial_rect, 0, &Generator::EmitSpatialRectSession},
      {config_.frac_htm_count, 0, &Generator::EmitHtmCountSession},
      {config_.frac_nearby_info, 0, &Generator::EmitNearbyInfoSession},
      {config_.frac_scan_strip, 0, &Generator::EmitScanStripSession},
      {config_.frac_dw_stifle, 0, &Generator::EmitDwStifleSession},
      {config_.frac_ds_stifle, 0, &Generator::EmitDsStifleSession},
      {config_.frac_df_stifle, 0, &Generator::EmitDfStifleSession},
      {config_.frac_cth, 0, &Generator::EmitCthSession},
      {config_.frac_sws, 0, &Generator::EmitSwsSession},
      {config_.frac_snc, 0, &Generator::EmitSncSession},
      {config_.frac_noise_dml, 0, &Generator::EmitNoiseStatement},
      {config_.frac_syntax_errors, 0, &Generator::EmitSyntaxErrorStatement},
      {human_frac, 0, &Generator::EmitHumanSession},
  };
  // Append opt-in families only when enabled: a zero-frac entry would
  // still draw deficit jitter every scheduler round and shift the
  // default RNG stream.
  if (config_.frac_select_star > 0) {
    families.push_back({config_.frac_select_star, 0, &Generator::EmitSelectStarSession});
  }
  if (config_.frac_null_fear > 0) {
    families.push_back({config_.frac_null_fear, 0, &Generator::EmitNullFearSession});
  }
  if (config_.frac_spaghetti_join > 0) {
    families.push_back(
        {config_.frac_spaghetti_join, 0, &Generator::EmitSpaghettiJoinSession});
  }
  if (config_.frac_non_sargable > 0) {
    families.push_back({config_.frac_non_sargable, 0, &Generator::EmitNonSargableSession});
  }

  QueryLog log;
  // Emit sessions until every family has met its quota: small families
  // (DF-Stifle, SNC, CTH) must not be starved by the big robots, so the
  // loop keys on per-family deficits rather than the total size.
  while (true) {
    double best_deficit = 0.0;
    size_t best = families.size();
    for (size_t i = 0; i < families.size(); ++i) {
      double want = families[i].frac * static_cast<double>(config_.target_statements);
      double deficit = want - static_cast<double>(families[i].emitted);
      // Jitter interleaves the tail ends of similar-sized families.
      deficit += rng_.NextDouble() * 4.0;
      if (deficit > best_deficit && deficit > 1.0) {
        best_deficit = deficit;
        best = i;
      }
    }
    if (best == families.size()) break;  // all quotas met
    families[best].emitted += (this->*families[best].emit)(log);
  }

  log.SortByTime();
  log.Renumber();
  return log;
}

}  // namespace sqlog::log
