#ifndef SQLOG_LOG_BINLOG_FORMAT_H_
#define SQLOG_LOG_BINLOG_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/hash.h"
#include "util/status.h"
#include "util/string_util.h"

/// Wire-level definitions of the `.sqb` template-dictionary binary log
/// container (see DESIGN.md "Binary log format" for the layout diagram).
/// Everything here is deterministic and platform-independent: integers
/// are little-endian, variable-width fields use LEB128 varints, signed
/// columns are zigzag-coded. The reader side never trusts a length or
/// count before bounds-checking it against the remaining bytes, so a
/// corrupt file yields a structured ParseError naming the offset and
/// section instead of an allocation blow-up or an out-of-bounds read.
namespace sqlog::log::binfmt {

/// File layout:
///
///   [header 16B][record blocks ...][dict][strings][index][footer 80B]
///
/// The header is validated first (magic, version, flags); the footer is
/// located from the end of the file and carries the section offsets plus
/// its own checksum, so a reader can mmap the file and skip straight to
/// any block via the index.
inline constexpr char kFileMagic[8] = {'\x89', 'S', 'Q', 'B', '\r', '\n', '\x1a', '\n'};
inline constexpr char kFooterMagic[8] = {'S', 'Q', 'B', 'E', 'N', 'D', '\r', '\n'};
inline constexpr uint32_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 16;   // magic + version + flags
inline constexpr size_t kFooterBytes = 80;   // 9 u64 fields + trailing magic

/// Frame magics ("BLK1", "DIC1", "STR1", "IDX1" as little-endian u32).
inline constexpr uint32_t kBlockMagic = 0x314B4C42;
inline constexpr uint32_t kDictMagic = 0x31434944;
inline constexpr uint32_t kStringsMagic = 0x31525453;
inline constexpr uint32_t kIndexMagic = 0x31584449;

/// Block frame: magic u32 | payload_len u32 | record_count u32 |
/// checksum u64 | payload. Section frames (dict/strings/index) reuse the
/// shape with a u64 payload length and no record count.
inline constexpr size_t kBlockFrameBytes = 4 + 4 + 4 + 8;
inline constexpr size_t kSectionFrameBytes = 4 + 8 + 8;

/// Hard ceilings, far above anything a real log produces, so a corrupt
/// count fails fast instead of driving a giant loop or allocation.
inline constexpr uint64_t kMaxBlockPayload = uint64_t{1} << 31;
inline constexpr uint64_t kMaxSectionPayload = uint64_t{1} << 33;

// --------------------------------------------------------------- encoding

inline void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// LEB128: 7 value bits per byte, high bit = continuation.
inline void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void AppendZigzag(int64_t v, std::string* out) {
  AppendVarint(ZigzagEncode(v), out);
}

// --------------------------------------------------------------- decoding

/// Bounds-checked cursor over one region of the file. Every read either
/// succeeds or produces a ParseError naming the section and the absolute
/// file offset where decoding stopped — the uniform failure shape the
/// corruption tests pin.
class ByteReader {
 public:
  /// `base_offset` is the absolute file offset of data[0]; `section`
  /// names the region in error messages ("block 3", "dictionary", ...).
  ByteReader(std::string_view data, uint64_t base_offset, std::string section)
      : data_(data), base_(base_offset), section_(std::move(section)) {}

  size_t pos() const { return pos_; }
  uint64_t file_offset() const { return base_ + pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("%s at offset %llu (%s section)", what.c_str(),
                                        (unsigned long long)file_offset(),
                                        section_.c_str()));
  }

  Status ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return Error("truncated varint");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical 10-byte encodings that would shift bits
        // past the top of the value.
        if (shift == 63 && byte > 1) return Error("varint overflows 64 bits");
        *out = value;
        return Status::OK();
      }
    }
    return Error("varint overflows 64 bits");
  }

  Status ReadZigzag(int64_t* out) {
    uint64_t raw = 0;
    SQLOG_RETURN_IF_ERROR(ReadVarint(&raw));
    *out = ZigzagDecode(raw);
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Error("truncated u32");
    uint32_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 4);  // little-endian hosts only; see below
    *out = FromLittle32(v);
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Error("truncated u64");
    uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 8);
    *out = FromLittle64(v);
    pos_ += 8;
    return Status::OK();
  }

  /// Reads `len` raw bytes as a view into the underlying region. The
  /// caller must have obtained `len` from a bounds-checked read; this
  /// still re-validates it.
  Status ReadBytes(uint64_t len, std::string_view* out) {
    if (len > remaining()) return Error(StrFormat("length %llu exceeds remaining %zu bytes",
                                                  (unsigned long long)len, remaining()));
    *out = data_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  /// Varint length followed by that many raw bytes.
  Status ReadLengthDelimited(std::string_view* out) {
    uint64_t len = 0;
    SQLOG_RETURN_IF_ERROR(ReadVarint(&len));
    return ReadBytes(len, out);
  }

 private:
  // The repo targets little-endian platforms; these keep the decode
  // well-defined if that ever changes.
  static uint32_t FromLittle32(uint32_t v) {
    unsigned char b[4];
    std::memcpy(b, &v, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  }
  static uint64_t FromLittle64(uint64_t v) {
    unsigned char b[8];
    std::memcpy(b, &v, 8);
    uint64_t out = 0;
    for (int i = 7; i >= 0; --i) out = (out << 8) | b[i];
    return out;
  }

  std::string_view data_;
  size_t pos_ = 0;
  uint64_t base_ = 0;
  std::string section_;
};

/// The fixed-size footer. `checksum` covers the eight preceding u64
/// fields, so a bit flip anywhere in the offsets or counts is caught
/// before any of them is dereferenced.
struct Footer {
  uint64_t dict_offset = 0;
  uint64_t strings_offset = 0;
  uint64_t index_offset = 0;
  uint64_t record_count = 0;
  uint64_t block_count = 0;
  uint64_t dict_count = 0;
  uint64_t string_count = 0;
  uint64_t reserved = 0;

  void AppendTo(std::string* out) const {
    std::string fields;
    fields.reserve(64);
    AppendU64(dict_offset, &fields);
    AppendU64(strings_offset, &fields);
    AppendU64(index_offset, &fields);
    AppendU64(record_count, &fields);
    AppendU64(block_count, &fields);
    AppendU64(dict_count, &fields);
    AppendU64(string_count, &fields);
    AppendU64(reserved, &fields);
    out->append(fields);
    AppendU64(Fnv1a64(fields), out);
    out->append(kFooterMagic, sizeof(kFooterMagic));
  }

  /// Parses + verifies a footer from its `kFooterBytes` raw bytes.
  /// `base_offset` is the footer's absolute file offset (for errors).
  static Result<Footer> Parse(std::string_view bytes, uint64_t base_offset) {
    ByteReader reader(bytes, base_offset, "footer");
    if (bytes.size() != kFooterBytes) return reader.Error("footer size mismatch");
    if (std::memcmp(bytes.data() + 72, kFooterMagic, sizeof(kFooterMagic)) != 0) {
      return reader.Error("bad footer magic");
    }
    const uint64_t expected = Fnv1a64(bytes.substr(0, 64));
    Footer footer;
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.dict_offset));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.strings_offset));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.index_offset));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.record_count));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.block_count));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.dict_count));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.string_count));
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&footer.reserved));
    uint64_t stored = 0;
    SQLOG_RETURN_IF_ERROR_R(reader.ReadU64(&stored));
    if (stored != expected) return reader.Error("footer checksum mismatch");
    return footer;
  }
};

}  // namespace sqlog::log::binfmt

#endif  // SQLOG_LOG_BINLOG_FORMAT_H_
