#ifndef SQLOG_LOG_RECORD_H_
#define SQLOG_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sqlog::log {

/// Ground-truth labels attached by the synthetic workload generator.
/// Real logs carry kUnlabeled everywhere. The labels substitute for the
/// paper's domain experts (Sec. 6.6/6.7): the generator knows by
/// construction whether a follow-up query was program-driven.
enum class TruthLabel {
  kUnlabeled,
  kOrganic,     // genuine ad-hoc user interest
  kDwStifle,
  kDsStifle,
  kDfStifle,
  kCthReal,     // dependent follow-up issued by software
  kCthFalse,    // looks like a CTH candidate but is human browsing
  kSws,         // sliding-window-search robot
  kSnc,         // searching-nullable-columns mistake
  kDuplicate,   // unintended duplicate (web reload)
  kNoise,       // DML/DDL/broken statements
  kSelectStar,  // implicit-columns hit (SELECT *)
  kNullFear,    // <> filter on a nullable column
  kSpaghettiJoin,  // comma join without a join predicate
  kNonSargable,    // computed comparison on a key column
};

/// Returns a stable name for a truth label.
const char* TruthLabelName(TruthLabel label);

/// Parses a truth-label name; unknown names map to kUnlabeled.
TruthLabel ParseTruthLabel(const std::string& name);

/// How a `.sqb` record was encoded on disk: the dictionary ordinal of
/// its template plus the byte range of each constant inside the decoded
/// statement text, in dictionary-span order. Verbatim records (and every
/// record of a non-`.sqb` source) carry `kVerbatim` and no spans.
/// BinLogReader surfaces one shape per record so ingestion can derive
/// literal slot texts straight from the spans and skip lexing entirely
/// (core::StreamingParser's seeded fast path). Declared here rather than
/// in binlog.h so core can name the type without pulling in the format.
struct RecordShape {
  static constexpr uint32_t kVerbatim = ~uint32_t{0};
  uint32_t template_ordinal = kVerbatim;
  std::vector<std::pair<uint32_t, uint32_t>> constants;  // (offset, size)

  /// Overwrites this shape with `other` (verbatim when null), reusing the
  /// span vector's capacity. Batch loops that collect one shape per record
  /// use this against a pooled element instead of copy-constructing, so
  /// steady state costs no allocation per record.
  void CopyFrom(const RecordShape* other) {
    if (other == nullptr) {
      template_ordinal = kVerbatim;
      constants.clear();
    } else {
      template_ordinal = other->template_ordinal;
      constants.assign(other->constants.begin(), other->constants.end());
    }
  }
};

/// One raw query-log row. Mirrors the SkyServer SQL-log columns the
/// paper relies on: statement text, timestamp, requesting IP ("user"),
/// session label, and result row count. `user` and `session` may be
/// empty — the pipeline then degrades exactly as Sec. 6.8 describes.
struct LogRecord {
  uint64_t seq = 0;          // position in the raw log
  int64_t timestamp_ms = 0;  // milliseconds since epoch
  std::string user;          // requesting IP or user id
  std::string session;       // session label
  std::string statement;     // raw SQL text
  int64_t row_count = -1;    // rows returned; -1 when unknown
  TruthLabel truth = TruthLabel::kUnlabeled;
};

/// A query log: records plus bookkeeping helpers.
class QueryLog {
 public:
  QueryLog() = default;
  explicit QueryLog(std::vector<LogRecord> records) : records_(std::move(records)) {}

  const std::vector<LogRecord>& records() const { return records_; }
  std::vector<LogRecord>& records() { return records_; }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  void Append(LogRecord record) { records_.push_back(std::move(record)); }

  /// Sorts by (timestamp, seq) — log order with a stable tie-break.
  void SortByTime();

  /// Re-assigns seq = position after sorting or filtering.
  void Renumber();

  /// Number of distinct non-empty users.
  size_t DistinctUserCount() const;

 private:
  std::vector<LogRecord> records_;
};

}  // namespace sqlog::log

#endif  // SQLOG_LOG_RECORD_H_
