#include "log/log_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace sqlog::log {

namespace {
constexpr const char* kHeader = "seq,timestamp_ms,user,session,row_count,truth,statement";
constexpr size_t kFieldCount = 7;
}  // namespace

std::string LogIo::ToCsv(const QueryLog& log) {
  std::string out = kHeader;
  out.push_back('\n');
  for (const auto& record : log.records()) {
    std::vector<std::string> fields;
    fields.reserve(kFieldCount);
    fields.push_back(std::to_string(record.seq));
    fields.push_back(std::to_string(record.timestamp_ms));
    fields.push_back(record.user);
    fields.push_back(record.session);
    fields.push_back(std::to_string(record.row_count));
    fields.push_back(TruthLabelName(record.truth));
    fields.push_back(record.statement);
    out += Csv::JoinLine(fields);
    out.push_back('\n');
  }
  return out;
}

Result<QueryLog> LogIo::FromCsv(const std::string& csv_text) {
  std::vector<std::string> lines = Csv::SplitLogicalLines(csv_text);
  QueryLog log;
  bool first = true;
  for (const auto& line : lines) {
    if (Trim(line).empty()) continue;
    if (first) {
      first = false;
      if (StartsWithIgnoreCase(line, "seq,")) continue;  // header
    }
    auto fields = Csv::ParseLine(line);
    if (!fields.ok()) return fields.status();
    if (fields->size() != kFieldCount) {
      return Status::ParseError(
          StrFormat("expected %zu CSV fields, got %zu", kFieldCount, fields->size()));
    }
    LogRecord record;
    record.seq = std::strtoull((*fields)[0].c_str(), nullptr, 10);
    record.timestamp_ms = std::strtoll((*fields)[1].c_str(), nullptr, 10);
    record.user = (*fields)[2];
    record.session = (*fields)[3];
    record.row_count = std::strtoll((*fields)[4].c_str(), nullptr, 10);
    record.truth = ParseTruthLabel((*fields)[5]);
    record.statement = (*fields)[6];
    log.Append(std::move(record));
  }
  return log;
}

Status LogIo::WriteFile(const QueryLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  std::string csv = ToCsv(log);
  out.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<QueryLog> LogIo::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromCsv(buffer.str());
}

}  // namespace sqlog::log
