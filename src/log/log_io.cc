#include "log/log_io.h"

#include <cstring>
#include <fstream>

#include "log/binlog.h"
#include "log/binlog_format.h"
#include "log/log_stream.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace sqlog::log {

const char* LogFormatName(LogFormat format) {
  switch (format) {
    case LogFormat::kAuto:
      return "auto";
    case LogFormat::kCsv:
      return "csv";
    case LogFormat::kSqb:
      return "sqb";
  }
  return "unknown";
}

Result<LogFormat> ParseLogFormatName(std::string_view name) {
  if (name == "auto") return LogFormat::kAuto;
  if (name == "csv") return LogFormat::kCsv;
  if (name == "sqb") return LogFormat::kSqb;
  return Status::InvalidArgument(
      StrFormat("unknown log format '%.*s' (expected auto, csv or sqb)",
                static_cast<int>(name.size()), name.data()));
}

Result<LogFormat> DetectLogFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char probe[sizeof(binfmt::kFileMagic)];
  in.read(probe, sizeof(probe));
  if (in.gcount() == static_cast<std::streamsize>(sizeof(probe)) &&
      std::memcmp(probe, binfmt::kFileMagic, sizeof(probe)) == 0) {
    return LogFormat::kSqb;
  }
  return LogFormat::kCsv;
}

Result<LogFormat> ResolveReadFormat(LogFormat format, const std::string& path) {
  if (format != LogFormat::kAuto) return format;
  return DetectLogFormat(path);
}

LogFormat ResolveWriteFormat(LogFormat format, const std::string& path) {
  if (format != LogFormat::kAuto) return format;
  constexpr std::string_view kExt = ".sqb";
  if (path.size() >= kExt.size() &&
      std::string_view(path).substr(path.size() - kExt.size()) == kExt) {
    return LogFormat::kSqb;
  }
  return LogFormat::kCsv;
}

Result<std::unique_ptr<RecordReader>> LogIo::OpenLogReader(const std::string& path,
                                                           LogFormat format) {
  auto resolved = ResolveReadFormat(format, path);
  SQLOG_RETURN_IF_ERROR_R(resolved.status());
  std::unique_ptr<RecordReader> reader;
  if (*resolved == LogFormat::kSqb) {
    reader = std::make_unique<BinLogReader>();
  } else {
    reader = std::make_unique<LogReader>();
  }
  SQLOG_RETURN_IF_ERROR_R(reader->Open(path));
  return reader;
}

std::unique_ptr<RecordWriter> LogIo::MakeLogWriter(LogFormat format, bool renumber,
                                                   RecipeBuilder recipe_builder) {
  if (format == LogFormat::kSqb) {
    BinLogWriterOptions options;
    options.renumber = renumber;
    options.recipe_builder = std::move(recipe_builder);
    return std::make_unique<BinLogWriter>(options);
  }
  LogWriterOptions options;
  options.renumber = renumber;
  return std::make_unique<LogWriter>(options);
}

std::string LogIo::ToCsv(const QueryLog& log) {
  std::string out = kLogCsvHeader;
  out.push_back('\n');
  for (const auto& record : log.records()) {
    AppendCsvRow(record, record.seq, out);
  }
  return out;
}

Result<QueryLog> LogIo::FromCsv(const std::string& csv_text) {
  std::vector<std::string> lines = Csv::SplitLogicalLines(csv_text);
  QueryLog log;
  uint64_t line_number = 0;
  for (auto& line : lines) {
    ++line_number;
    if (Trim(line).empty()) continue;
    if (IsLogCsvHeaderLine(line)) {
      // Only the first logical line may be the header; a header-shaped
      // line later in the file signals concatenated or corrupted input
      // and must not be swallowed as data.
      if (line_number == 1) continue;
      return Status::ParseError(
          StrFormat("line %llu: stray header row", (unsigned long long)line_number));
    }
    auto fields = Csv::ParseLine(line);
    if (!fields.ok()) {
      return Status::ParseError(StrFormat("line %llu: %s",
                                          (unsigned long long)line_number,
                                          fields.status().message().c_str()));
    }
    auto record = RecordFromCsvFields(std::move(fields.value()), line_number);
    if (!record.ok()) return record.status();
    log.Append(std::move(record.value()));
  }
  return log;
}

Status LogIo::WriteFile(const QueryLog& log, const std::string& path, LogFormat format,
                        RecipeBuilder recipe_builder) {
  std::unique_ptr<RecordWriter> writer = MakeLogWriter(
      ResolveWriteFormat(format, path), /*renumber=*/false, std::move(recipe_builder));
  SQLOG_RETURN_IF_ERROR(writer->Open(path));
  for (const auto& record : log.records()) {
    SQLOG_RETURN_IF_ERROR(writer->Append(record));
  }
  return writer->Close();
}

Result<QueryLog> LogIo::ReadFile(const std::string& path, LogFormat format) {
  // Streams records one at a time instead of slurping the file into one
  // string — only the decoded records are held.
  auto reader = OpenLogReader(path, format);
  SQLOG_RETURN_IF_ERROR_R(reader.status());
  QueryLog log;
  LogRecord record;
  bool eof = false;
  while (true) {
    SQLOG_RETURN_IF_ERROR_R((*reader)->ReadRecord(&record, &eof));
    if (eof) break;
    log.Append(std::move(record));
  }
  return log;
}

}  // namespace sqlog::log
