#include "log/log_io.h"

#include <fstream>

#include "log/log_stream.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace sqlog::log {

std::string LogIo::ToCsv(const QueryLog& log) {
  std::string out = kLogCsvHeader;
  out.push_back('\n');
  for (const auto& record : log.records()) {
    AppendCsvRow(record, record.seq, out);
  }
  return out;
}

Result<QueryLog> LogIo::FromCsv(const std::string& csv_text) {
  std::vector<std::string> lines = Csv::SplitLogicalLines(csv_text);
  QueryLog log;
  uint64_t line_number = 0;
  for (auto& line : lines) {
    ++line_number;
    if (Trim(line).empty()) continue;
    if (IsLogCsvHeaderLine(line)) {
      // Only the first logical line may be the header; a header-shaped
      // line later in the file signals concatenated or corrupted input
      // and must not be swallowed as data.
      if (line_number == 1) continue;
      return Status::ParseError(
          StrFormat("line %llu: stray header row", (unsigned long long)line_number));
    }
    auto fields = Csv::ParseLine(line);
    if (!fields.ok()) {
      return Status::ParseError(StrFormat("line %llu: %s",
                                          (unsigned long long)line_number,
                                          fields.status().message().c_str()));
    }
    auto record = RecordFromCsvFields(std::move(fields.value()), line_number);
    if (!record.ok()) return record.status();
    log.Append(std::move(record.value()));
  }
  return log;
}

Status LogIo::WriteFile(const QueryLog& log, const std::string& path) {
  LogWriter writer;
  SQLOG_RETURN_IF_ERROR(writer.Open(path));
  for (const auto& record : log.records()) {
    SQLOG_RETURN_IF_ERROR(writer.Append(record));
  }
  return writer.Close();
}

Result<QueryLog> LogIo::ReadFile(const std::string& path) {
  // Streams in bounded chunks instead of slurping the file into one
  // string — only the decoded records are held.
  LogReader reader;
  SQLOG_RETURN_IF_ERROR_R(reader.Open(path));
  QueryLog log;
  LogRecord record;
  bool eof = false;
  while (true) {
    SQLOG_RETURN_IF_ERROR_R(reader.ReadRecord(&record, &eof));
    if (eof) break;
    log.Append(std::move(record));
  }
  return log;
}

}  // namespace sqlog::log
