#ifndef SQLOG_LOG_ARENA_H_
#define SQLOG_LOG_ARENA_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace sqlog::log {

/// Append-only interning arena for the strings that repeat massively
/// across query-log batches — user ids, session labels, and the
/// statements held by streaming dedup state. Equal strings are stored
/// once; callers get stable string_views into chunked arena storage, so
/// per-record cost collapses from one heap string each to one pointer.
///
/// Views stay valid for the arena's lifetime (chunks are never moved or
/// freed before destruction). Not thread-safe; each streaming stage owns
/// its own arena.
class StringArena {
 public:
  explicit StringArena(size_t chunk_bytes = kDefaultChunkBytes);

  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// Returns a view of an arena-owned copy of `s`; equal inputs return
  /// the same view.
  std::string_view Intern(std::string_view s);

  /// Distinct strings stored.
  size_t size() const { return interned_.size(); }

  /// Bytes of string payload held (excluding index overhead).
  size_t payload_bytes() const { return payload_bytes_; }

  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

 private:
  /// Copies `s` into chunk storage (no dedup) and returns the view.
  std::string_view Store(std::string_view s);

  struct ViewHash {
    size_t operator()(std::string_view v) const {
      return std::hash<std::string_view>{}(v);
    }
  };

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = 0;  // bytes used in chunks_.back()
  size_t payload_bytes_ = 0;
  std::unordered_set<std::string_view, ViewHash> interned_;
};

}  // namespace sqlog::log

#endif  // SQLOG_LOG_ARENA_H_
